"""Tests for the deterministic fault-injection layer (repro.faults)."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    KernelFault,
    KillClient,
    ProfileFault,
    TransferFault,
)
from repro.gpu.device import GpuDevice
from repro.gpu.errors import CudaErrorCode
from repro.gpu.specs import V100_16GB
from repro.metrics.availability import ErrorLedger
from repro.profiler.profiles import KernelProfile, ModelProfile, ProfileStore
from repro.runtime.client import ClientContext
from repro.runtime.direct import DirectStreamBackend
from repro.runtime.host import HostThread
from repro.sim.engine import Simulator
from repro.sim.process import Timeout, spawn

from helpers import compute_spec, make_kernel


# ---------------------------------------------------------------------------
# Plan construction and sampling
# ---------------------------------------------------------------------------

def test_kill_event_requires_exactly_one_trigger():
    with pytest.raises(ValueError):
        KillClient("c")
    with pytest.raises(ValueError):
        KillClient("c", at_time=1.0, after_ops=5)
    assert KillClient("c", at_time=1.0).describe()
    assert KillClient("c", after_ops=5).describe()


def test_profile_fault_validates_mode():
    with pytest.raises(ValueError):
        ProfileFault("k", mode="scramble")
    assert ProfileFault("k", mode="drop").describe()


def test_timed_events_sorted_with_stable_ties():
    plan = FaultPlan((
        TransferFault(at_time=0.5),
        KernelFault("k", at_time=0.2),
        KillClient("c", after_ops=3),
        KillClient("d", at_time=0.2),
    ))
    timed = plan.timed_events()
    assert [type(e).__name__ for e in timed] == [
        "KernelFault", "KillClient", "TransferFault"]
    assert len(plan.op_triggered_kills()) == 1


def test_sample_is_deterministic():
    a = FaultPlan.sample(7, ["x", "y", "z"], kernels=["k1", "k2"],
                         horizon=2.0, max_kills=2, kernel_faults=1,
                         transfer_faults=1)
    b = FaultPlan.sample(7, ["x", "y", "z"], kernels=["k1", "k2"],
                         horizon=2.0, max_kills=2, kernel_faults=1,
                         transfer_faults=1)
    assert a == b
    assert len(a) == 4
    c = FaultPlan.sample(8, ["x", "y", "z"], horizon=2.0, max_kills=2)
    assert c != a


# ---------------------------------------------------------------------------
# Injector execution
# ---------------------------------------------------------------------------

def _simple_client(sim):
    device = GpuDevice(sim, V100_16GB)
    backend = DirectStreamBackend(sim, device)
    ctx = ClientContext(backend, "c", HostThread(sim))
    return device, backend, ctx


def test_injector_kills_at_time():
    sim = Simulator()
    _device, _backend, ctx = _simple_client(sim)
    plan = FaultPlan((KillClient("c", at_time=1e-3),))
    injector = FaultInjector(sim, plan, clients={"c": ctx}).start()
    sim.run(until=5e-3)
    assert ctx.closed
    assert injector.log and injector.log[0]["type"] == "KillClient"
    assert injector.log[0]["time"] == pytest.approx(1e-3)


def test_injector_kills_after_n_ops():
    sim = Simulator()
    _device, _backend, ctx = _simple_client(sim)
    plan = FaultPlan((KillClient("c", after_ops=3),))
    FaultInjector(sim, plan, clients={"c": ctx}).start()
    issued = []

    def job():
        for i in range(10):
            done = yield from ctx.launch_kernel(
                make_kernel(compute_spec(f"k{i}", duration=1e-4)))
            issued.append(done.error)
            yield Timeout(1e-3)

    spawn(sim, job())
    sim.run()
    assert ctx.closed
    # Exactly 3 ops issued before the kill; the rest were rejected.
    assert ctx.ops_issued == 3
    rejected = [e for e in issued if e is not None]
    assert all(e.code is CudaErrorCode.CONTEXT_POISONED for e in rejected)


def test_injector_arms_device_faults():
    sim = Simulator()
    device, _backend, ctx = _simple_client(sim)
    plan = FaultPlan((KernelFault("victim-k", at_time=1e-3),))
    FaultInjector(sim, plan, device=device, clients={"c": ctx}).start()
    record = {}

    def job():
        yield Timeout(2e-3)  # after the fault is armed
        done = yield from ctx.launch_kernel(
            make_kernel(compute_spec("victim-k", duration=1e-3)))
        yield done
        record["error"] = done.error

    spawn(sim, job())
    sim.run()
    assert record["error"].code is CudaErrorCode.LAUNCH_FAILURE
    assert device.kernels_faulted == 1


def test_injector_applies_profile_faults():
    store = ProfileStore()
    profile = ModelProfile("m", "inference", "V100-16GB", 1e-3)
    from repro.kernels.kernel import ResourceProfile

    profile.kernels["k1"] = KernelProfile("k1", 1e-3, 0.5, 0.5, 10,
                                          ResourceProfile.COMPUTE)
    profile.kernels["k2"] = KernelProfile("k2", 2e-3, 0.5, 0.5, 10,
                                          ResourceProfile.COMPUTE)
    store.add(profile)
    sim = Simulator()
    plan = FaultPlan((
        ProfileFault("k1", mode="drop"),
        ProfileFault("k2", mode="corrupt", factor=4.0),
    ))
    FaultInjector(sim, plan, profiles=store).start()
    assert store.lookup("k1") is None
    assert store.lookup("k2").duration == pytest.approx(8e-3)
    # The per-model view stays consistent with the flat lookup table.
    assert store.model("m", "inference").lookup("k1") is None
    assert store.model("m", "inference").lookup("k2").duration == \
        pytest.approx(8e-3)


# ---------------------------------------------------------------------------
# Error ledger
# ---------------------------------------------------------------------------

def test_ledger_records_and_serializes_canonically():
    ledger = ErrorLedger()
    ledger.record_served("a")
    ledger.record_served("a")
    ledger.record_failed("a")
    ledger.record_error("a", "launch_failure", 0.5)
    ledger.record_down("a", 1.0)
    ledger.record_recovered("a", 1.25)
    entry = ledger.client("a")
    assert entry.served == 2 and entry.failed == 1 and entry.restarts == 1
    assert entry.recovery_times == [pytest.approx(0.25)]
    assert ledger.total_errors() == 1
    assert ledger.availability("a", horizon=10.0) == pytest.approx(0.975)

    other = ErrorLedger()
    other.record_served("a")
    other.record_served("a")
    other.record_failed("a")
    other.record_error("a", "launch_failure", 0.5)
    other.record_down("a", 1.0)
    other.record_recovered("a", 1.25)
    assert ledger.to_json() == other.to_json()


def test_ledger_availability_with_open_downtime():
    ledger = ErrorLedger()
    ledger.record_down("a", 6.0)
    # Still down at the end of a 10s horizon: 4s of downtime.
    assert ledger.availability("a", horizon=10.0) == pytest.approx(0.6)


def test_ledger_serializes_uptime_and_recovery_fields():
    ledger = ErrorLedger()
    ledger.record_down("a", 1.0)
    ledger.record_recovered("a", 1.5)
    ledger.record_down("a", 4.0)
    ledger.record_recovered("a", 5.0)
    # Before finalize there is no horizon: uptime is unknown, but the
    # recovery-time average is already available.
    entry = ledger.client("a").to_dict()
    assert entry["uptime_fraction"] is None
    assert entry["time_to_recover"] == pytest.approx(0.75)

    ledger.finalize(10.0)
    entry = ledger.client("a").to_dict()
    assert entry["uptime_fraction"] == pytest.approx(1 - 1.5 / 10.0)
    assert entry["time_to_recover"] == pytest.approx(0.75)
    # Canonical JSON carries both fields.
    payload = ledger.to_dict()["clients"]["a"]
    assert payload["uptime_fraction"] == entry["uptime_fraction"]
    assert payload["time_to_recover"] == entry["time_to_recover"]


def test_ledger_uptime_counts_open_downtime_to_horizon():
    ledger = ErrorLedger()
    ledger.record_down("a", 6.0)
    ledger.finalize(10.0)
    entry = ledger.client("a")
    assert entry.uptime_fraction() == pytest.approx(0.6)
    assert entry.time_to_recover() is None
    # A client that never went down has full uptime.
    ledger.record_served("b")
    ledger.finalize(10.0)
    assert ledger.client("b").uptime_fraction() == pytest.approx(1.0)


def test_ledger_table_lists_clients_sorted():
    ledger = ErrorLedger()
    ledger.record_error("zeta", "client_killed", 0.1)
    ledger.record_served("alpha")
    table = ledger.format_table()
    assert table.index("alpha") < table.index("zeta")
    assert "client_killedx1" in table
