"""Tests for the continuous-batching LLM serving scenario.

Covers the engine invariants (FIFO admission order, exact KV-cache
byte conservation across evictions), the soft-OOM machinery under a
tight KV budget, the Orion prefill-protection phase hints, and the
Scenario-API contract (same-seed byte-identical canonical JSON).
"""

import json

import pytest

from repro.experiments.scenario import Scenario, run
from repro.workloads.llmserve import (
    KvCacheAccounting,
    _run_llm_scenario,
)


def _llm(**params):
    return run(Scenario(kind="llm", params=params)).result


# Small-but-real defaults: enough traffic to exercise batching without
# making the suite slow.
FAST = dict(seed=0, duration=0.15, request_rate=80.0, max_batch=4,
            be_clients=0)

# A KV budget tight enough that growth and admission fault: blocks are
# 16 tokens x kv_cache_bytes(1, 1) = 3 MiB for llm-small, so 20 MiB is
# ~6 blocks against ~32-token prompts growing ~24 output tokens.
TIGHT = dict(seed=3, duration=0.25, request_rate=120.0, max_batch=4,
             be_clients=0, kv_budget_mb=20.0, prompt_mean=32.0,
             output_mean=24.0)


@pytest.fixture(scope="module")
def base_result():
    return _llm(**FAST)


@pytest.fixture(scope="module")
def tight_result():
    return _llm(**TIGHT)


# ----------------------------------------------------------------------
# KV accounting unit invariants
# ----------------------------------------------------------------------
class TestKvCacheAccounting:
    def test_conservation_through_grant_release(self):
        kv = KvCacheAccounting(block_bytes=1024)
        kv.grant(0, 3)
        kv.grant(1, 2)
        assert kv.in_use_bytes == 5 * 1024
        assert kv.conserved
        assert kv.release(0) == 3
        assert kv.release(0) == 0  # idempotent
        assert kv.in_use_bytes == 2 * 1024
        assert kv.conserved
        kv.release(1)
        assert kv.in_use_bytes == 0
        assert kv.granted_bytes == kv.released_bytes == 5 * 1024

    def test_peak_tracks_high_water_mark(self):
        kv = KvCacheAccounting(block_bytes=10)
        kv.grant(0, 4)
        kv.release(0)
        kv.grant(1, 2)
        assert kv.peak_bytes == 40

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            KvCacheAccounting(block_bytes=0)


# ----------------------------------------------------------------------
# The serving loop end to end
# ----------------------------------------------------------------------
class TestServingLoop:
    def test_requests_complete_with_metrics(self, base_result):
        r = base_result
        assert r.requests_arrived > 0
        assert r.requests_completed > 0
        assert r.ttft.count > 0
        assert r.ttft.p50 > 0
        assert r.decode_tokens_per_sec > 0
        assert r.total_tokens > 0
        # Every completed record carries a full lifecycle.
        for rec in r.records:
            if rec.completed:
                assert rec.arrival <= rec.admitted <= rec.first_token \
                    <= rec.end

    def test_first_admissions_in_fifo_order(self, base_result):
        """No out-of-admission-order service: the first admission of
        each request happens in arrival (req_id) order."""
        seen = set()
        firsts = []
        for req_id in base_result.admission_log:
            if req_id not in seen:
                seen.add(req_id)
                firsts.append(req_id)
        assert firsts == sorted(firsts)

    def test_kv_bytes_conserved_without_pressure(self, base_result):
        kv = base_result.kv
        assert kv["conserved"]
        assert kv["oom_events"] == 0
        assert kv["evictions"] == 0
        # Everything granted was eventually released (all requests
        # either completed or the horizon truncated them mid-flight).
        assert kv["granted_bytes"] == \
            kv["released_bytes"] + kv["in_use_bytes"]

    def test_ttft_measured_from_arrival(self, base_result):
        for rec in base_result.records:
            if rec.first_token is not None:
                assert rec.ttft == rec.first_token - rec.arrival
                assert rec.ttft > 0


class TestKvPressure:
    """The tight-budget scenario drives the soft-OOM/retry machinery."""

    def test_cache_pressure_triggers_soft_oom(self, tight_result):
        kv = tight_result.kv
        assert kv["oom_events"] > 0
        assert kv["evictions"] > 0

    def test_bytes_exactly_conserved_across_evictions(self, tight_result):
        kv = tight_result.kv
        assert kv["conserved"]
        assert kv["granted_bytes"] == \
            kv["released_bytes"] + kv["in_use_bytes"]

    def test_evicted_requests_requeue_in_order(self, tight_result):
        # Re-admissions may interleave, but first admissions stay FIFO.
        seen = set()
        firsts = []
        for req_id in tight_result.admission_log:
            if req_id not in seen:
                seen.add(req_id)
                firsts.append(req_id)
        assert firsts == sorted(firsts)
        assert any(rec.evictions > 0 for rec in tight_result.records)

    def test_service_still_makes_progress(self, tight_result):
        assert tight_result.requests_completed > 0

    def test_block_policy_blocks_admission_instead(self):
        r = _llm(**{**TIGHT, "cache_policy": "block"})
        kv = r.kv
        # Full reservation at admission: decode growth never faults,
        # pressure shows up at the admission boundary.
        assert kv["evictions"] == 0
        assert kv["admission_blocks"] > 0
        assert kv["conserved"]


# ----------------------------------------------------------------------
# Orion phase hints
# ----------------------------------------------------------------------
class TestPrefillProtection:
    def test_prefill_deferrals_counted(self):
        r = _llm(seed=0, duration=0.1, request_rate=60.0, be_clients=1)
        assert r.backend_stats["protect_prefill"] is True
        assert r.backend_stats["prefill_deferrals"] > 0
        assert r.backend_stats["be_kernels_launched"] > 0

    def test_protection_can_be_disabled(self):
        r = _llm(seed=0, duration=0.1, request_rate=60.0, be_clients=1,
                 protect_prefill=False)
        assert r.backend_stats["protect_prefill"] is False
        assert r.backend_stats["prefill_deferrals"] == 0


# ----------------------------------------------------------------------
# Scenario-API contract
# ----------------------------------------------------------------------
class TestScenarioContract:
    def test_same_seed_byte_identical_json(self):
        params = dict(seed=7, duration=0.1, request_rate=60.0,
                      be_clients=1)
        first = run(Scenario(kind="llm", params=params)).to_json()
        second = run(Scenario(kind="llm", params=params)).to_json()
        assert first == second

    def test_different_seed_differs(self):
        a = run(Scenario(kind="llm",
                         params=dict(seed=0, duration=0.1))).to_json()
        b = run(Scenario(kind="llm",
                         params=dict(seed=1, duration=0.1))).to_json()
        assert a != b

    def test_canonical_shape(self):
        res = run(Scenario(kind="llm", params=dict(seed=0, duration=0.08)))
        decoded = json.loads(res.to_json())
        assert decoded["kind"] == "llm"
        body = decoded["result"]
        assert {"model", "backend", "requests", "ttft", "tpot",
                "ttft_slo", "decode_tokens_per_sec", "records",
                "admission_log", "kv", "backend_stats",
                "ledger"} <= set(body)

    def test_catalog_has_llm_entries(self):
        from repro.experiments.registry import (
            make_scenario,
            scenario_catalog,
            scenario_names,
        )

        names = scenario_names()
        assert "llm" in names
        assert "llm_ref" in names
        scenario = make_scenario("llm", seed=5)
        assert scenario.kind == "llm"
        assert scenario.seed == 5
        catalog = scenario_catalog()
        assert catalog["llm_ref"]["kind"] == "llm"


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_non_llm_workload_rejected(self):
        with pytest.raises(ValueError, match="not an LLM workload"):
            _run_llm_scenario(model="resnet50", duration=0.01)

    def test_bad_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="backend"):
            Scenario(kind="llm", params={"backend": "mps"})

    def test_bad_cache_policy_rejected_at_construction(self):
        with pytest.raises(ValueError, match="cache_policy"):
            Scenario(kind="llm", params={"cache_policy": "drop"})

    def test_unknown_param_rejected_at_construction(self):
        with pytest.raises(ValueError, match="kv_budget"):
            Scenario(kind="llm", params={"kv_budget": 64})

    def test_temporal_backend_runs(self):
        r = _llm(seed=0, duration=0.1, backend="temporal",
                 request_rate=40.0, be_clients=1)
        assert r.backend == "temporal"
        assert r.requests_arrived > 0
