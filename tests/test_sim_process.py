"""Unit tests for generator-based processes."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.process import AllOf, AnyOf, Interrupted, Signal, Timeout, spawn


def run_process(gen, until=None):
    sim = Simulator()
    proc = spawn(sim, gen(sim) if callable(gen) else gen)
    sim.run(until=until)
    return sim, proc


def test_timeout_advances_clock():
    def proc(sim):
        yield Timeout(2.5)
        assert sim.now == 2.5

    sim, p = run_process(proc)
    assert p.triggered


def test_sequential_timeouts_accumulate():
    def proc(sim):
        yield Timeout(1.0)
        yield Timeout(2.0)
        return sim.now

    sim, p = run_process(proc)
    assert p.value == 3.0


def test_zero_timeout_is_allowed():
    def proc(sim):
        yield Timeout(0.0)
        return "done"

    _, p = run_process(proc)
    assert p.value == "done"


def test_negative_timeout_raises():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_signal_carries_value():
    sim = Simulator()
    sig = Signal(sim)
    results = []

    def waiter():
        value = yield sig
        results.append(value)

    spawn(sim, waiter())
    sim.call_at(1.0, lambda: sig.trigger("payload"))
    sim.run()
    assert results == ["payload"]


def test_yield_already_triggered_signal_resumes():
    sim = Simulator()
    sig = Signal(sim)
    sig.trigger(42)
    results = []

    def waiter():
        value = yield sig
        results.append(value)

    spawn(sim, waiter())
    sim.run()
    assert results == [42]


def test_many_triggered_yields_do_not_overflow_stack():
    sim = Simulator()

    def proc():
        for _ in range(5000):
            sig = Signal(sim)
            sig.trigger()
            yield sig
        return "survived"

    p = spawn(sim, proc())
    sim.run()
    assert p.value == "survived"


def test_process_return_value():
    def proc(sim):
        yield Timeout(1.0)
        return 99

    _, p = run_process(proc)
    assert p.value == 99


def test_waiting_on_process_returns_its_value():
    sim = Simulator()

    def child():
        yield Timeout(1.0)
        return "child-result"

    def parent():
        result = yield spawn(sim, child())
        return result

    p = spawn(sim, parent())
    sim.run()
    assert p.value == "child-result"


def test_allof_waits_for_every_child():
    sim = Simulator()

    def proc():
        values = yield AllOf([Timeout(1.0), Timeout(3.0), Timeout(2.0)])
        return (sim.now, values)

    p = spawn(sim, proc())
    sim.run()
    assert p.value[0] == 3.0


def test_allof_empty_completes_immediately():
    sim = Simulator()

    def proc():
        values = yield AllOf([])
        return values

    p = spawn(sim, proc())
    sim.run()
    assert p.value == []


def test_anyof_returns_first_value():
    sim = Simulator()
    fast = Signal(sim)
    slow = Signal(sim)

    def proc():
        value = yield AnyOf([slow, fast])
        return value

    p = spawn(sim, proc())
    sim.call_at(1.0, lambda: fast.trigger("fast"))
    sim.call_at(2.0, lambda: slow.trigger("slow"))
    sim.run()
    assert p.value == "fast"


def test_anyof_requires_children():
    with pytest.raises(SimulationError):
        AnyOf([])


def test_interrupt_raises_inside_process():
    sim = Simulator()
    caught = []

    def proc():
        try:
            yield Timeout(100.0)
        except Interrupted as exc:
            caught.append(exc.cause)
            return "interrupted"

    p = spawn(sim, proc())
    sim.call_at(1.0, lambda: p.interrupt("reason"))
    sim.run()
    assert caught == ["reason"]
    assert p.value == "interrupted"


def test_unhandled_interrupt_kills_process_quietly():
    sim = Simulator()

    def proc():
        yield Timeout(100.0)

    p = spawn(sim, proc())
    sim.call_at(1.0, lambda: p.interrupt())
    sim.run()
    assert p.triggered
    assert p.value is None


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)
        return "ok"

    p = spawn(sim, proc())
    sim.run()
    p.interrupt()
    assert p.value == "ok"


def test_yielding_non_awaitable_raises():
    sim = Simulator()

    def proc():
        yield 42

    spawn(sim, proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_stale_wakeup_after_interrupt_is_ignored():
    sim = Simulator()
    sig = Signal(sim)
    states = []

    def proc():
        try:
            yield sig
            states.append("signal")
        except Interrupted:
            states.append("interrupted")
            yield Timeout(5.0)
            states.append("after")

    p = spawn(sim, proc())
    sim.call_at(1.0, lambda: p.interrupt())
    sim.call_at(2.0, lambda: sig.trigger())  # stale: no longer waited on
    sim.run()
    assert states == ["interrupted", "after"]


def test_alive_reflects_process_state():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)

    p = spawn(sim, proc())
    assert p.alive
    sim.run()
    assert not p.alive


def test_signal_trigger_is_one_shot():
    sim = Simulator()
    sig = Signal(sim)
    sig.trigger("first")
    sig.trigger("second")
    assert sig.value == "first"


def test_two_processes_interleave():
    sim = Simulator()
    log = []

    def a():
        yield Timeout(1.0)
        log.append(("a", sim.now))
        yield Timeout(2.0)
        log.append(("a", sim.now))

    def b():
        yield Timeout(2.0)
        log.append(("b", sim.now))

    spawn(sim, a())
    spawn(sim, b())
    sim.run()
    assert log == [("a", 1.0), ("b", 2.0), ("a", 3.0)]
