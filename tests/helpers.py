"""Shared test fixtures: synthetic kernels and mini-workload builders."""

from __future__ import annotations

from repro.gpu.specs import V100_16GB, DeviceSpec
from repro.kernels.costmodel import instantiate_kernel
from repro.kernels.kernel import KernelOp, KernelSpec
from repro.kernels.launch import LaunchConfig

__all__ = [
    "compute_spec",
    "memory_spec",
    "tiny_spec",
    "make_kernel",
    "CONV_LIKE",
    "BN_LIKE",
]


def compute_spec(name: str = "compute-k", duration: float = 1e-3,
                 util: float = 0.85, sms: int = 640,
                 device: DeviceSpec = V100_16GB) -> KernelSpec:
    """A compute-bound kernel with ~``duration`` solo time on ``device``."""
    flops = device.peak_flops * util * duration
    return KernelSpec(
        name=name,
        flops=flops,
        bytes_moved=device.memory_bandwidth * 0.1 * duration,
        launch=LaunchConfig(num_blocks=sms, threads_per_block=256),
        compute_efficiency=min(1.0, util),
        memory_efficiency=1.0,
    )


def memory_spec(name: str = "memory-k", duration: float = 1e-3,
                util: float = 0.8, blocks: int = 128,
                device: DeviceSpec = V100_16GB) -> KernelSpec:
    """A memory-bound kernel with ~``duration`` solo time on ``device``."""
    nbytes = device.memory_bandwidth * util * duration
    return KernelSpec(
        name=name,
        flops=device.peak_flops * 0.05 * duration,
        bytes_moved=nbytes,
        launch=LaunchConfig(num_blocks=blocks, threads_per_block=512),
        compute_efficiency=1.0,
        memory_efficiency=min(1.0, util),
    )


def tiny_spec(name: str = "tiny-k") -> KernelSpec:
    """A kernel below the roofline-analysis duration (unknown profile)."""
    return KernelSpec(
        name=name,
        flops=1e5,
        bytes_moved=1e4,
        launch=LaunchConfig(num_blocks=2, threads_per_block=128),
    )


def make_kernel(spec: KernelSpec, device: DeviceSpec = V100_16GB,
                client_id: str = "test") -> KernelOp:
    return instantiate_kernel(spec, device, client_id=client_id)


# The Table 2 toy kernels (paper-quoted utilizations and solo times).
CONV_LIKE = KernelSpec(
    "table2-conv2d",
    flops=V100_16GB.peak_flops * 0.89 * 1.347e-3,
    bytes_moved=V100_16GB.memory_bandwidth * 0.20 * 1.347e-3,
    launch=LaunchConfig(num_blocks=640, threads_per_block=256),
    compute_efficiency=0.89,
    memory_efficiency=1.0,
)
BN_LIKE = KernelSpec(
    "table2-bn2d",
    flops=V100_16GB.peak_flops * 0.14 * 0.927e-3,
    bytes_moved=V100_16GB.memory_bandwidth * 0.80 * 0.927e-3,
    launch=LaunchConfig(num_blocks=128, threads_per_block=512),
    compute_efficiency=1.0,
    memory_efficiency=0.80,
)
