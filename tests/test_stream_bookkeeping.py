"""Additional coverage: stream bookkeeping, dispatch counters, REEF
round-robin over several best-effort clients, op timestamps."""

import pytest

from repro.baselines.reef import ReefBackend
from repro.gpu.device import GpuDevice
from repro.gpu.specs import V100_16GB
from repro.runtime.client import ClientContext
from repro.runtime.host import HostThread
from repro.sim.engine import Simulator
from repro.sim.process import Timeout, spawn

from helpers import compute_spec, make_kernel, memory_spec


def test_stream_counters_track_submissions_and_completions():
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    stream = device.create_stream()

    def run():
        done = None
        for i in range(5):
            done = stream.submit(make_kernel(compute_spec(f"k{i}",
                                                          duration=1e-4)))
        yield done

    spawn(sim, run())
    sim.run()
    assert stream.ops_submitted == 5
    assert stream.ops_completed == 5
    assert not stream.busy


def test_stream_op_timestamps_ordered():
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    stream = device.create_stream()
    captured = {}

    def run():
        op = make_kernel(compute_spec("k", duration=1e-3))
        done = stream.submit(op)
        captured["stream_op"] = stream.queue[0] if stream.queue else None
        yield done

    spawn(sim, run())
    # Grab the StreamOp before dispatch consumes it.
    sim.step()  # resume process -> submit happens
    stream_op = stream.queue[0]
    sim.run()
    assert stream_op.enqueued_at <= stream_op.started_at <= stream_op.finished_at
    assert stream_op.finished_at == pytest.approx(
        stream_op.started_at + 1e-3, rel=0.01
    )


def test_device_busy_time_not_double_counted_with_two_streams():
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    s1, s2 = device.create_stream(), device.create_stream()

    def run():
        d1 = s1.submit(make_kernel(compute_spec("a", duration=1e-3, sms=100)))
        d2 = s2.submit(make_kernel(memory_spec("b", duration=1e-3)))
        yield d1
        yield d2

    spawn(sim, run())
    sim.run()
    # Wall-clock busy time, not per-kernel sums: two concurrent 1 ms
    # kernels (slowed a bit by contention) take < 2 ms of device time.
    assert device.kernel_busy_time < 1.9e-3


def test_reef_round_robin_serves_all_be_clients():
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = ReefBackend(sim, device)
    ClientContext(backend, "hp", HostThread(sim), high_priority=True)
    ctxs = [ClientContext(backend, f"be{i}", HostThread(sim)) for i in range(3)]
    backend.start()
    finished = {}

    def client(index, ctx):
        for k in range(4):
            yield from ctx.launch_kernel(
                make_kernel(memory_spec(f"be{index}-{k}", duration=1e-4),
                            client_id=ctx.client_id)
            )
        yield from ctx.synchronize()
        finished[index] = sim.now

    for i, ctx in enumerate(ctxs):
        spawn(sim, client(i, ctx))
    sim.run()
    assert set(finished) == {0, 1, 2}
    # No client finishes wildly later than the others (fair service).
    assert max(finished.values()) < 3 * min(finished.values()) + 1e-3


def test_concurrent_streams_respect_max_kernel_cap():
    sim = Simulator()
    spec = V100_16GB.with_overrides(max_concurrent_kernels=4)
    device = GpuDevice(sim, spec)
    streams = [device.create_stream() for _ in range(10)]
    peak = {"n": 0}

    def run():
        signals = [
            s.submit(make_kernel(memory_spec(f"m{i}", duration=5e-4, blocks=8)))
            for i, s in enumerate(streams)
        ]
        for signal in signals:
            yield signal

    def monitor():
        for _ in range(200):
            peak["n"] = max(peak["n"], len(device.running))
            yield Timeout(1e-5)

    spawn(sim, run())
    spawn(sim, monitor())
    sim.run()
    assert peak["n"] <= 4
    assert device.kernels_completed == 10


def test_experiment_result_accessors():
    from repro.experiments.config import ExperimentConfig, JobSpec
    from repro.experiments.scenario import Scenario, run as run_scenario

    hp = JobSpec(model="mobilenet_v2", kind="inference", high_priority=True,
                 arrivals="uniform", rps=30)
    be = JobSpec(model="mobilenet_v2", kind="training")
    config = ExperimentConfig(jobs=[hp, be], backend="mps", duration=1.0,
                              warmup=0.2)
    result = run_scenario(
        Scenario(kind="experiment", experiment=config)).result
    assert result.hp_job.name == hp.name
    assert [j.name for j in result.be_jobs()] == [be.name]
    assert result.aggregate_throughput == pytest.approx(
        sum(j.throughput for j in result.jobs.values())
    )
