"""Tests for inference/training client processes driving real model plans."""

import pytest

from repro.gpu.device import GpuDevice
from repro.gpu.specs import V100_16GB
from repro.runtime.client import ClientContext
from repro.runtime.direct import DedicatedBackend
from repro.runtime.host import HostThread
from repro.sim.engine import Simulator
from repro.workloads.arrivals import ClosedLoop, UniformArrivals
from repro.workloads.clients import InferenceClient, TrainingClient
from repro.workloads.models import get_plan


def setup(sim):
    backend = DedicatedBackend(sim, lambda: GpuDevice(sim, V100_16GB))
    return backend


def test_inference_client_serves_uniform_arrivals():
    sim = Simulator()
    backend = setup(sim)
    ctx = ClientContext(backend, "inf", HostThread(sim), high_priority=True)
    plan = get_plan("mobilenet_v2", "inference")
    client = InferenceClient(sim, ctx, plan, V100_16GB,
                             UniformArrivals(50.0), "inf", horizon=0.5)
    client.start()
    sim.run(until=0.6)
    records = client.stats.records
    assert len(records) >= 20
    for r in records:
        assert r.end > r.start >= r.arrival
        assert r.latency > 0


def test_inference_latency_includes_queueing():
    sim = Simulator()
    backend = setup(sim)
    ctx = ClientContext(backend, "inf", HostThread(sim), high_priority=True)
    plan = get_plan("resnet50", "inference")  # ~5.4 ms service
    # 400 rps >> capacity: queue builds, latency >> service time.
    client = InferenceClient(sim, ctx, plan, V100_16GB,
                             UniformArrivals(400.0), "inf", horizon=0.3)
    client.start()
    sim.run(until=0.3)
    records = client.stats.records
    assert records
    assert records[-1].latency > 5 * records[0].latency


def test_closed_loop_inference_client():
    sim = Simulator()
    backend = setup(sim)
    ctx = ClientContext(backend, "inf", HostThread(sim))
    plan = get_plan("mobilenet_v2", "inference")
    client = InferenceClient(sim, ctx, plan, V100_16GB, ClosedLoop(),
                             "inf", horizon=0.2)
    client.start()
    sim.run(until=0.3)
    records = client.stats.records
    assert len(records) >= 50  # ~1.5 ms per request back to back
    for r in records:
        assert r.arrival == r.start


def test_training_client_iterates():
    sim = Simulator()
    backend = setup(sim)
    ctx = ClientContext(backend, "train", HostThread(sim), kind="training")
    plan = get_plan("mobilenet_v2", "training")
    client = TrainingClient(sim, ctx, plan, V100_16GB, "train", horizon=0.5)
    client.start()
    sim.run(until=0.6)
    records = client.stats.records
    assert len(records) >= 8
    durations = [r.service_time for r in records[1:]]
    mean = sum(durations) / len(durations)
    assert 0.02 < mean < 0.10  # ~45 ms per iteration solo


def test_training_client_rejects_inference_plan():
    sim = Simulator()
    backend = setup(sim)
    ctx = ClientContext(backend, "t", HostThread(sim), kind="training")
    with pytest.raises(ValueError):
        TrainingClient(sim, ctx, get_plan("resnet50", "inference"),
                       V100_16GB, "t", horizon=1.0)


def test_client_allocates_model_state():
    sim = Simulator()
    backend = setup(sim)
    ctx = ClientContext(backend, "train", HostThread(sim), kind="training")
    plan = get_plan("mobilenet_v2", "training")
    client = TrainingClient(sim, ctx, plan, V100_16GB, "train", horizon=0.05)
    client.start()
    sim.run(until=0.1)
    device = backend.device_for("train")
    assert device.memory.used >= plan.state_bytes
