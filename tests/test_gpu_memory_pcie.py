"""Unit tests for device memory accounting and the PCIe engine."""

import pytest

from repro.gpu.memory import DeviceMemory, GpuOutOfMemoryError
from repro.gpu.pcie import PcieEngine
from repro.sim.engine import Simulator
from repro.sim.process import spawn


# ----------------------------------------------------------------------
# DeviceMemory
# ----------------------------------------------------------------------
def test_malloc_and_free_roundtrip():
    mem = DeviceMemory(1000)
    alloc = mem.malloc(400, "client-a")
    assert mem.used == 400
    assert mem.free == 600
    mem.free_allocation(alloc)
    assert mem.used == 0


def test_out_of_memory_raises():
    mem = DeviceMemory(1000)
    mem.malloc(800)
    with pytest.raises(GpuOutOfMemoryError):
        mem.malloc(300)


def test_oom_leaves_state_unchanged():
    mem = DeviceMemory(1000)
    mem.malloc(800)
    try:
        mem.malloc(300)
    except GpuOutOfMemoryError:
        pass
    assert mem.used == 800


def test_double_free_raises():
    mem = DeviceMemory(1000)
    alloc = mem.malloc(100)
    mem.free_allocation(alloc)
    with pytest.raises(ValueError):
        mem.free_allocation(alloc)


def test_negative_malloc_raises():
    with pytest.raises(ValueError):
        DeviceMemory(1000).malloc(-5)


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        DeviceMemory(0)


def test_peak_tracking():
    mem = DeviceMemory(1000)
    a = mem.malloc(600)
    mem.free_allocation(a)
    mem.malloc(100)
    assert mem.peak_used == 600


def test_per_client_accounting():
    mem = DeviceMemory(1000)
    mem.malloc(300, "a")
    mem.malloc(200, "b")
    assert mem.client_usage("a") == 300
    assert mem.client_usage("b") == 200
    assert mem.client_usage("missing") == 0


def test_release_client_frees_everything():
    mem = DeviceMemory(1000)
    mem.malloc(300, "a")
    mem.malloc(100, "a")
    mem.malloc(200, "b")
    freed = mem.release_client("a")
    assert freed == 400
    assert mem.used == 200
    assert mem.client_usage("a") == 0


def test_utilization_fraction():
    mem = DeviceMemory(1000)
    mem.malloc(250)
    assert mem.utilization() == pytest.approx(0.25)


# ----------------------------------------------------------------------
# PCIe engine
# ----------------------------------------------------------------------
def transfer_time(engine, sim, nbytes, direction="h2d"):
    record = {}

    def run():
        done = engine.start_transfer(nbytes, direction)
        yield done
        record["t"] = sim.now

    spawn(sim, run())
    sim.run()
    return record["t"]


def test_single_transfer_duration():
    sim = Simulator()
    engine = PcieEngine(sim, bandwidth=16e9, latency=10e-6)
    t = transfer_time(engine, sim, int(16e9 * 1e-3))  # 1 ms of data
    assert t == pytest.approx(1e-3 + 10e-6, rel=0.01)


def test_zero_byte_transfer_costs_latency_only():
    sim = Simulator()
    engine = PcieEngine(sim, bandwidth=16e9, latency=10e-6)
    assert transfer_time(engine, sim, 0) == pytest.approx(10e-6)


def test_concurrent_transfers_share_bandwidth():
    sim = Simulator()
    engine = PcieEngine(sim, bandwidth=16e9, latency=0.0)
    nbytes = int(16e9 * 1e-3)
    ends = []

    def run():
        d1 = engine.start_transfer(nbytes)
        d2 = engine.start_transfer(nbytes)
        yield d1
        ends.append(sim.now)
        yield d2
        ends.append(sim.now)

    spawn(sim, run())
    sim.run()
    # Two equal transfers sharing the bus finish together at ~2x solo.
    assert ends[1] == pytest.approx(2e-3, rel=0.01)


def test_directions_are_independent():
    sim = Simulator()
    engine = PcieEngine(sim, bandwidth=16e9, latency=0.0)
    nbytes = int(16e9 * 1e-3)
    ends = {}

    def run():
        d1 = engine.start_transfer(nbytes, "h2d")
        d2 = engine.start_transfer(nbytes, "d2h")
        yield d1
        ends["h2d"] = sim.now
        yield d2
        ends["d2h"] = sim.now

    spawn(sim, run())
    sim.run()
    assert ends["h2d"] == pytest.approx(1e-3, rel=0.01)
    assert ends["d2h"] == pytest.approx(1e-3, rel=0.01)


def test_unknown_direction_rejected():
    sim = Simulator()
    engine = PcieEngine(sim, bandwidth=16e9)
    with pytest.raises(ValueError):
        engine.start_transfer(100, "sideways")


def test_negative_size_rejected():
    sim = Simulator()
    engine = PcieEngine(sim, bandwidth=16e9)
    with pytest.raises(ValueError):
        engine.start_transfer(-1)


def test_bytes_moved_accounting():
    sim = Simulator()
    engine = PcieEngine(sim, bandwidth=16e9, latency=0.0)
    transfer_time(engine, sim, 10**7)
    assert engine.bytes_moved("h2d") == pytest.approx(10**7, rel=0.01)


def test_many_small_transfers_terminate():
    # Regression: float residue in the drain computation must not spin.
    sim = Simulator()
    engine = PcieEngine(sim, bandwidth=16e9, latency=1e-6)
    done_count = []

    def run():
        for i in range(200):
            done = engine.start_transfer(12345 + i)
            done.add_callback(lambda _s: done_count.append(1))
        yield done

    spawn(sim, run())
    sim.run()
    assert len(done_count) == 200


def test_invalid_engine_params():
    with pytest.raises(ValueError):
        PcieEngine(Simulator(), bandwidth=0)
    with pytest.raises(ValueError):
        PcieEngine(Simulator(), bandwidth=1e9, latency=-1)
