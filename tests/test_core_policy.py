"""Unit tests for Orion's policy decision functions (Listing 1)."""

import pytest

from repro.core.policy import (
    DEFAULT_DUR_THRESHOLD_FRAC,
    PolicyConfig,
    duration_throttled,
    have_different_profiles,
    schedule_be,
)
from repro.kernels.kernel import ResourceProfile
from repro.profiler.profiles import KernelProfile

C = ResourceProfile.COMPUTE
M = ResourceProfile.MEMORY
U = ResourceProfile.UNKNOWN


def be_kernel(profile=M, sm=10, duration=1e-4):
    return KernelProfile("be-k", duration, 0.5, 0.5, sm, profile)


# ----------------------------------------------------------------------
# have_different_profiles
# ----------------------------------------------------------------------
@pytest.mark.parametrize("hp,be,expected", [
    (C, C, False),
    (M, M, False),
    (C, M, True),
    (M, C, True),
    (U, C, True),
    (U, M, True),
    (C, U, True),
    (M, U, True),
    (U, U, True),
])
def test_profile_compatibility_table(hp, be, expected):
    assert have_different_profiles(hp, be) is expected


# ----------------------------------------------------------------------
# schedule_be
# ----------------------------------------------------------------------
def test_be_allowed_when_hp_idle_regardless_of_profile():
    config = PolicyConfig()
    assert schedule_be(False, C, be_kernel(C, sm=1000), 80, config)


def test_be_blocked_same_profile_while_hp_running():
    config = PolicyConfig()
    assert not schedule_be(True, C, be_kernel(C, sm=10), 80, config)


def test_be_allowed_opposite_profile_small_kernel():
    config = PolicyConfig()
    assert schedule_be(True, C, be_kernel(M, sm=10), 80, config)


def test_be_blocked_by_sm_threshold():
    config = PolicyConfig()
    assert not schedule_be(True, C, be_kernel(M, sm=80), 80, config)


def test_sm_threshold_is_strict_inequality():
    config = PolicyConfig()
    assert schedule_be(True, C, be_kernel(M, sm=79), 80, config)
    assert not schedule_be(True, C, be_kernel(M, sm=80), 80, config)


def test_unknown_be_profile_is_optimistically_allowed():
    config = PolicyConfig()
    assert schedule_be(True, C, be_kernel(U, sm=10), 80, config)
    assert schedule_be(True, M, be_kernel(U, sm=10), 80, config)


def test_unknown_hp_profile_allows_any_be():
    config = PolicyConfig()
    assert schedule_be(True, None, be_kernel(C, sm=10), 80, config)


def test_ablation_disable_profiles():
    config = PolicyConfig(use_profiles=False)
    assert schedule_be(True, C, be_kernel(C, sm=10), 80, config)


def test_ablation_disable_sm_limit():
    config = PolicyConfig(use_sm_limit=False)
    assert schedule_be(True, C, be_kernel(M, sm=500), 80, config)


def test_ablation_disable_both_admits_everything():
    config = PolicyConfig(use_profiles=False, use_sm_limit=False)
    assert schedule_be(True, C, be_kernel(C, sm=500), 80, config)


# ----------------------------------------------------------------------
# duration_throttled
# ----------------------------------------------------------------------
def test_default_threshold_is_paper_value():
    assert DEFAULT_DUR_THRESHOLD_FRAC == 0.025


def test_throttled_above_budget():
    config = PolicyConfig()
    hp_latency = 10e-3  # budget = 250 us
    assert duration_throttled(300e-6, hp_latency, config)
    assert not duration_throttled(200e-6, hp_latency, config)


def test_budget_scales_with_hp_latency():
    config = PolicyConfig()
    assert not duration_throttled(1e-3, 100e-3, config)
    assert duration_throttled(1e-3, 10e-3, config)


def test_custom_threshold_fraction():
    config = PolicyConfig(dur_threshold_frac=0.2)
    assert not duration_throttled(1.9e-3, 10e-3, config)
    assert duration_throttled(2.1e-3, 10e-3, config)


def test_ablation_disable_throttle():
    config = PolicyConfig(use_dur_throttle=False)
    assert not duration_throttled(1e6, 1e-3, config)


def test_config_validation():
    with pytest.raises(ValueError):
        PolicyConfig(sm_threshold=-1)
    with pytest.raises(ValueError):
        PolicyConfig(dur_threshold_frac=0.0)
    with pytest.raises(ValueError):
        PolicyConfig(dur_threshold_frac=1.5)
