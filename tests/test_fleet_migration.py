"""Tests for live migration & rebalancing (repro.cluster.migration)."""

import pytest

from repro.cluster.fleet import FleetJob, run_fleet_scenario
from repro.cluster.migration import (
    InterferenceTracker,
    MigrationController,
    MigrationCostModel,
    MigrationPolicy,
)
from repro.experiments.scenario import Scenario, run
from repro.faults import FaultPlan, GpuCrash, GpuDegrade

NO_FAULTS = FaultPlan(())

# Two GPUs, hp + one BE tenant packed adversarially onto gpu0, light
# load so the first re-plan tick proposes the obvious spread move.
SMALL = dict(seed=0, duration=0.1, num_gpus=2, be_tenants=1,
             plan=NO_FAULTS, placement="adversarial", rebalance=True,
             rebalance_interval=0.02, migration_min_gain=0.01,
             migration_cost_weight=0.1, hp_load=0.15, be_load=0.15)


def accounted(result):
    return sum(len(s.records) + s.shed + s.failed + s.dropped
               for s in result.jobs.values())


# ---------------------------------------------------------------------------
# Policy / cost model / tracker units


def test_migration_policy_validation():
    with pytest.raises(ValueError):
        MigrationPolicy(interval=0.0)
    with pytest.raises(ValueError):
        MigrationPolicy(cooldown=-1.0)
    with pytest.raises(ValueError):
        MigrationPolicy(max_inflight=0)
    with pytest.raises(ValueError):
        MigrationPolicy(min_gain=-0.1)
    with pytest.raises(ValueError):
        MigrationPolicy(measure_window=0)


def test_cost_model_components():
    model = MigrationCostModel(rewarm_bandwidth=1e9)
    assert model.drain_seconds(4, 0.002) == pytest.approx(0.008)
    assert model.rewarm_seconds(2_000_000_000) == pytest.approx(2.0)
    assert model.cost_seconds(4, 0.002, 1_000_000_000) == pytest.approx(1.008)


def test_interference_tracker_symmetry_and_min_samples():
    tracker = InterferenceTracker(window=8, min_samples=3)
    tracker.observe("a", "b", 0.5)
    tracker.observe("b", "a", 0.7)  # same unordered pair
    assert tracker.sample_count("a", "b") == 2
    assert tracker.measured("a", "b") is None  # below min_samples
    tracker.observe("a", "b", 0.3)
    assert tracker.measured("a", "b") == pytest.approx(0.5)
    assert tracker.measured("b", "a") == pytest.approx(0.5)  # symmetric


def test_interference_tracker_window_and_clamping():
    tracker = InterferenceTracker(window=2, min_samples=1)
    tracker.observe("a", "b", -1.0)  # negative excess clamps to zero
    assert tracker.measured("a", "b") == 0.0
    tracker.observe("a", "b", 1.0)
    tracker.observe("a", "b", 3.0)  # rolls the first sample out
    assert tracker.measured("a", "b") == pytest.approx(2.0)


def test_controller_requires_single_home_fleet():
    result = run_fleet_scenario(seed=0, duration=0.02, num_gpus=2,
                                plan=NO_FAULTS)
    assert result.migration == {}
    with pytest.raises(ValueError):
        run_fleet_scenario(seed=0, duration=0.02, num_gpus=2,
                           plan=NO_FAULTS, rebalance=True)  # placement="all"


def test_unknown_placement_rejected():
    with pytest.raises(ValueError):
        run_fleet_scenario(seed=0, duration=0.02, num_gpus=2,
                           plan=NO_FAULTS, placement="bogus")


# ---------------------------------------------------------------------------
# Happy path: an adversarial packing is unwound online


def test_adversarial_packing_is_unwound():
    result = run_fleet_scenario(**SMALL)
    mig = result.migration
    assert mig["started"] >= 1
    assert mig["completed"] >= 1
    assert mig["net_predicted_gain"] > 0
    record = mig["records"][0]
    assert record["outcome"] == "completed"
    assert record["src"] != record["dst"]
    # Full state-machine trajectory, in order.
    states = [s for _, s in record["transitions"]]
    assert states == ["planned", "cordoned", "draining", "moving",
                      "rewarming", "completed"]
    # At-most-once accounting through the move.
    assert accounted(result) == result.routing["submitted"]


def test_migration_decisions_fold_into_routing_digest():
    with_migration = run_fleet_scenario(**SMALL)
    without = run_fleet_scenario(**{**SMALL, "rebalance": False})
    assert with_migration.routing["migrations"] > 0
    assert without.routing["migrations"] == 0
    assert with_migration.routing["digest"] != without.routing["digest"]


def test_same_seed_rebalance_replay_byte_identical():
    params = dict(SMALL)
    a = run(Scenario(kind="fleet", params=params)).to_json()
    b = run(Scenario(kind="fleet", params=params)).to_json()
    assert a == b


def test_fleet_rebalance_named_scenario():
    from repro.experiments.registry import make_scenario

    scenario = make_scenario("fleet_rebalance", seed=3, duration=0.05)
    assert scenario.params["rebalance"] is True
    assert scenario.params["placement"] == "adversarial"


# ---------------------------------------------------------------------------
# Rollback / re-route under faults mid-migration


def test_destination_degrade_mid_rewarm_rolls_back():
    # The no-fault run migrates be-0 from gpu0 to gpu1 at t=0.02 and
    # re-warms for ~14 us; degrading the destination inside that window
    # must unwind the move back to the (still healthy) source.
    plan = FaultPlan((GpuDegrade(gpu=1, at_time=0.02001, slowdown=3.0),))
    result = run_fleet_scenario(**{**SMALL, "plan": plan})
    mig = result.migration
    assert mig["rolled_back"] >= 1
    record = next(r for r in mig["records"] if r["outcome"] == "rolled-back")
    assert record["final_gpu"] == record["src"]
    assert accounted(result) == result.routing["submitted"]


def test_destination_crash_mid_rewarm_recovers_safely():
    plan = FaultPlan((GpuCrash(gpu=1, at_time=0.02001),))
    result = run_fleet_scenario(**{**SMALL, "plan": plan})
    mig = result.migration
    # The destination died mid-move: the move must not complete onto
    # it, and no job may be lost or duplicated in the confusion.
    assert mig["rolled_back"] + mig["rerouted"] >= 1
    for record in mig["records"]:
        assert record["final_gpu"] != 1 or record["outcome"] == "failed"
    assert accounted(result) == result.routing["submitted"]


def test_source_crash_rehomes_tenants():
    # No rebalancing: crash the only home of the packed tenants and
    # check the fleet re-homes them instead of starving their backlog.
    plan = FaultPlan((GpuCrash(gpu=0, at_time=0.03),))
    result = run_fleet_scenario(**{**SMALL, "plan": plan,
                                   "rebalance": False})
    assert result.report["failover"]["re_homed"] >= 1
    # Tenants keep getting served after the crash (on the new home).
    served_after = sum(1 for s in result.jobs.values()
                       for r in s.records if r.end > 0.03)
    assert served_after > 0
    assert accounted(result) == result.routing["submitted"]


# ---------------------------------------------------------------------------
# Hysteresis


def test_cooldown_and_max_inflight_bound_migrations():
    # An aggressive tick interval with a long cooldown must not thrash:
    # each tenant moves at most once per cooldown window.
    params = {**SMALL, "duration": 0.2, "rebalance_interval": 0.005,
              "migration_cooldown": 1.0, "max_inflight_migrations": 1}
    result = run_fleet_scenario(**params)
    mig = result.migration
    per_tenant = {}
    for record in mig["records"]:
        per_tenant[record["tenant"]] = \
            per_tenant.get(record["tenant"], 0) + 1
    # Cooldown longer than the horizon: one move per tenant, ever.
    assert all(count <= 1 for count in per_tenant.values())
    assert mig["ticks"] > mig["started"]


def test_min_gain_threshold_suppresses_marginal_moves():
    result = run_fleet_scenario(**{**SMALL, "migration_min_gain": 1e9})
    assert result.migration["started"] == 0


# ---------------------------------------------------------------------------
# Router drain APIs (satellite: no private _backlog poking)


def test_router_drain_backlog_public_api():
    from repro.cluster.fleet import (Fleet, TenantSpec)
    from repro.gpu.specs import get_device
    from repro.profiler.profiles import ProfileStore
    from repro.experiments.runner import get_profile
    from repro.sim.engine import Simulator

    sim = Simulator()
    device = get_device("V100-16GB")
    store = ProfileStore()
    store.add(get_profile("mobilenet_v2", "inference", device))
    fleet = Fleet(sim, 1, [TenantSpec("t", rps=10.0)], device, store)
    router = fleet.router
    # No workers booted: submissions pile up in the backlog.
    for seq in range(3):
        router.submit(FleetJob("t", seq, 0.0))
    assert router.backlog_size() == 3
    jobs = router.drain_backlog()
    assert [j.seq for j in jobs] == [0, 1, 2]
    assert router.backlog_size() == 0
    assert router.drain_backlog() == []
    assert router.drain_backoff() == []


def test_cordon_uncordon_roundtrip():
    from repro.cluster.fleet import Fleet, TenantSpec
    from repro.gpu.specs import get_device
    from repro.profiler.profiles import ProfileStore
    from repro.experiments.runner import get_profile
    from repro.sim.engine import Simulator

    sim = Simulator()
    device = get_device("V100-16GB")
    store = ProfileStore()
    store.add(get_profile("mobilenet_v2", "inference", device))
    fleet = Fleet(sim, 2, [TenantSpec("t", rps=10.0)], device, store)
    router = fleet.router
    assert not router.is_cordoned("t", 0)
    router.cordon("t", 0)
    assert router.is_cordoned("t", 0)
    assert not router.is_cordoned("t", 1)
    router.uncordon("t", 0)
    assert not router.is_cordoned("t", 0)


def test_assignment_validation():
    from repro.cluster.fleet import Fleet, TenantSpec
    from repro.gpu.specs import get_device
    from repro.profiler.profiles import ProfileStore
    from repro.experiments.runner import get_profile
    from repro.sim.engine import Simulator

    sim = Simulator()
    device = get_device("V100-16GB")
    store = ProfileStore()
    store.add(get_profile("mobilenet_v2", "inference", device))
    tenants = [TenantSpec("t", rps=10.0)]
    with pytest.raises(ValueError):
        Fleet(sim, 2, tenants, device, store, assignment={})  # missing t
    with pytest.raises(ValueError):
        Fleet(sim, 2, tenants, device, store,
              assignment={"t": 5})  # out of range
    with pytest.raises(ValueError):
        Fleet(sim, 2, tenants, device, store,
              assignment={"t": 0, "ghost": 1})  # unknown tenant
    with pytest.raises(ValueError):
        Fleet(sim, 2, tenants, device, store, assignment={"t": 0},
              max_tenants_per_gpu=0)


def test_single_home_boot_spawns_only_assigned_workers():
    result = run_fleet_scenario(seed=0, duration=0.02, num_gpus=2,
                                be_tenants=1, plan=NO_FAULTS,
                                placement="adversarial")
    # Adversarial packing puts both tenants on gpu0; gpu1 serves nothing.
    assert result.report["gpus"]["gpu1"]["jobs_completed"] == 0
    assert result.report["gpus"]["gpu0"]["jobs_completed"] > 0


def test_controller_rejects_all_resident_fleet():
    from repro.cluster.fleet import Fleet, TenantSpec
    from repro.gpu.specs import get_device
    from repro.profiler.profiles import ProfileStore
    from repro.experiments.runner import get_profile
    from repro.sim.engine import Simulator

    sim = Simulator()
    device = get_device("V100-16GB")
    store = ProfileStore()
    store.add(get_profile("mobilenet_v2", "inference", device))
    fleet = Fleet(sim, 2, [TenantSpec("t", rps=10.0)], device, store)
    with pytest.raises(ValueError):
        MigrationController(fleet)
