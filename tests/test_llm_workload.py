"""Tests for the §7 LLM token-generation workload extension."""

import pytest

from repro.frameworks.lowering import instantiate_plan
from repro.gpu.specs import V100_16GB
from repro.kernels.kernel import ResourceProfile
from repro.workloads.models.llm import LLM_SMALL, LlmConfig, llm_generation_plan


@pytest.fixture(scope="module")
def plan():
    return llm_generation_plan(LLM_SMALL, batch=1, prompt_len=128,
                               gen_tokens=16)


@pytest.fixture(scope="module")
def kernels(plan):
    return [o for o in instantiate_plan(plan, V100_16GB) if o.is_kernel]


def test_config_validation():
    with pytest.raises(ValueError):
        LlmConfig(hidden=100, heads=7)
    with pytest.raises(ValueError):
        LlmConfig(layers=0)
    with pytest.raises(ValueError):
        llm_generation_plan(gen_tokens=-1)
    with pytest.raises(ValueError):
        llm_generation_plan(batch=0)
    with pytest.raises(ValueError):
        llm_generation_plan(prompt_len=0)


def test_prefill_only_plan():
    """gen_tokens=0 is valid: prefill with no decode steps (the
    continuous-batching engine issues prefill and decode separately)."""
    plan = llm_generation_plan(LLM_SMALL, batch=1, prompt_len=64,
                               gen_tokens=0)
    phases = {op.phase for op in plan.ops}
    assert "forward" in phases
    assert "decode" not in phases
    assert plan.kernel_count > 0


def test_batch_one_decode_plan():
    plan = llm_generation_plan(LLM_SMALL, batch=1, prompt_len=1,
                               gen_tokens=1)
    assert any(op.phase == "decode" for op in plan.ops)


def test_single_layer_config_plans():
    tiny = LlmConfig(layers=1, hidden=64, heads=2, ffn=128, vocab=256)
    plan = llm_generation_plan(tiny, batch=1, prompt_len=8, gen_tokens=2)
    assert plan.kernel_count > 0
    assert plan.state_bytes > 4 * tiny.params


def test_kv_cache_bytes_scaling():
    """kv_cache_bytes is linear in batch and tokens, and counts both
    K and V across every layer."""
    c = LLM_SMALL
    one = c.kv_cache_bytes(1, 1)
    assert one == 4 * 2 * c.layers * c.hidden  # K+V, fp32, per token
    assert c.kv_cache_bytes(4, 16) == 4 * 16 * one
    assert c.kv_cache_bytes(1, 0) == 0


def test_param_count_formula():
    config = LlmConfig(layers=2, hidden=4, heads=2, ffn=8, vocab=10)
    assert config.params == 2 * (4 * 16 + 2 * 4 * 8) + 40


def test_plan_has_prefill_and_decode_phases(plan):
    phases = {op.phase for op in plan.ops}
    assert {"copy", "forward", "decode", "output"} <= phases


def test_decode_steps_scale_with_tokens():
    short = llm_generation_plan(LLM_SMALL, gen_tokens=4)
    long = llm_generation_plan(LLM_SMALL, gen_tokens=32)
    assert long.kernel_count > short.kernel_count


def test_decode_is_memory_bound(kernels):
    """The §7 claim: token generation underutilizes compute."""
    decode = [k for k in kernels if k.tag == "decode"]
    assert decode
    total = sum(k.duration for k in decode)
    compute = sum(k.compute_util * k.duration for k in decode) / total
    memory = sum(k.memory_util * k.duration for k in decode) / total
    assert memory > 0.5
    assert compute < 0.15
    classes = [k.profile for k in decode if k.duration > 10e-6]
    assert all(p is ResourceProfile.MEMORY for p in classes)


def test_prefill_is_compute_leaning(kernels):
    prefill = [k for k in kernels if k.tag == "forward"]
    total = sum(k.duration for k in prefill)
    compute = sum(k.compute_util * k.duration for k in prefill) / total
    memory = sum(k.memory_util * k.duration for k in prefill) / total
    assert compute > memory


def test_kv_cache_grows_state():
    short = llm_generation_plan(LLM_SMALL, gen_tokens=1)
    long = llm_generation_plan(LLM_SMALL, gen_tokens=256)
    assert long.state_bytes > short.state_bytes
    assert short.state_bytes > 4 * LLM_SMALL.params  # weights dominate


def test_decode_kernel_ids_bucketed_for_profiling(plan):
    """Decode kernels reuse ids per cache bucket so profiles stay small."""
    decode_ids = {op.spec.name for op in plan.ops
                  if op.phase == "decode" and op.spec is not None}
    decode_ops = [op for op in plan.ops if op.phase == "decode"]
    assert len(decode_ids) < len(decode_ops) / 2


def test_batched_decode_raises_intensity():
    """Larger batches amortize weight reads — less memory-bound."""
    def decode_compute_util(batch):
        plan = llm_generation_plan(LLM_SMALL, batch=batch, gen_tokens=4)
        ops = [o for o in instantiate_plan(plan, V100_16GB)
               if o.is_kernel and o.tag == "decode"]
        total = sum(k.duration for k in ops)
        return sum(k.compute_util * k.duration for k in ops) / total

    assert decode_compute_util(16) > decode_compute_util(1)
