"""Tests for the SM_THRESHOLD binary-search autotuner (§5.1.1)."""

import pytest

from repro.core.autotune import SmThresholdTuner, TunerConfig
from repro.core.scheduler import OrionBackend, OrionConfig
from repro.gpu.device import GpuDevice
from repro.gpu.specs import V100_16GB
from repro.profiler.profiles import ProfileStore
from repro.runtime.client import ClientContext
from repro.runtime.host import HostThread
from repro.sim.engine import Simulator
from repro.sim.process import Timeout, spawn



def make_backend(sim):
    device = GpuDevice(sim, V100_16GB)
    backend = OrionBackend(sim, device, ProfileStore(),
                           OrionConfig(hp_request_latency=10e-3))
    ClientContext(backend, "hp", HostThread(sim), high_priority=True)
    backend.start()
    return backend


def test_tuner_config_validation():
    with pytest.raises(ValueError):
        TunerConfig(tolerance=0.0)
    with pytest.raises(ValueError):
        TunerConfig(tolerance=1.0)
    with pytest.raises(ValueError):
        TunerConfig(window=0.0)


def test_tuner_rejects_bad_dedicated_throughput():
    sim = Simulator()
    backend = make_backend(sim)
    with pytest.raises(ValueError):
        SmThresholdTuner(sim, backend, dedicated_hp_throughput=0.0)


def test_tuner_search_range_includes_largest_kernel():
    sim = Simulator()
    backend = make_backend(sim)
    tuner = SmThresholdTuner(sim, backend, 10.0, be_max_sm=80)
    # Strict-inequality policy: search must reach max + 1.
    assert tuner.be_max_sm == 81


def test_tuner_converges_up_when_hp_unaffected():
    """If HP throughput always meets the target, the search maxes out."""
    sim = Simulator()
    backend = make_backend(sim)
    tuner = SmThresholdTuner(sim, backend, dedicated_hp_throughput=10.0,
                             be_max_sm=40,
                             config=TunerConfig(tolerance=0.2, window=0.1))

    def hp_traffic():
        # Complete HP "requests" fast enough to always meet the target.
        while sim.now < 2.0:
            backend.begin_request("hp")
            yield Timeout(0.05)
            backend.end_request("hp")

    spawn(sim, hp_traffic())
    tuner.start()
    sim.run(until=2.0)
    assert tuner.final_threshold == 41
    assert backend.config.sm_threshold == 41
    assert all(step.accepted for step in tuner.history)


def test_tuner_converges_down_when_hp_always_degraded():
    """If HP throughput never meets the target, the search bottoms out."""
    sim = Simulator()
    backend = make_backend(sim)
    tuner = SmThresholdTuner(sim, backend, dedicated_hp_throughput=1000.0,
                             be_max_sm=40,
                             config=TunerConfig(tolerance=0.1, window=0.1))
    tuner.start()
    sim.run(until=2.0)
    assert tuner.final_threshold == 0
    assert backend.config.sm_threshold == 1  # clamped floor
    assert not any(step.accepted for step in tuner.history)


def test_tuner_history_records_every_probe():
    sim = Simulator()
    backend = make_backend(sim)
    tuner = SmThresholdTuner(sim, backend, dedicated_hp_throughput=1000.0,
                             be_max_sm=16,
                             config=TunerConfig(tolerance=0.1, window=0.05))
    tuner.start()
    sim.run(until=1.0)
    # Binary search over [0, 17] takes ~5 probes.
    assert 3 <= len(tuner.history) <= 6
    probed = [step.threshold for step in tuner.history]
    assert len(set(probed)) == len(probed)  # no repeated probes
