"""Behavioural tests for the Orion scheduler backend on synthetic kernels."""

import pytest

from repro.core.scheduler import OrionBackend, OrionConfig
from repro.gpu.device import GpuDevice
from repro.gpu.specs import V100_16GB
from repro.kernels.kernel import MemoryOpKind
from repro.profiler.profiles import KernelProfile, ProfileStore
from repro.runtime.client import ClientContext
from repro.runtime.host import HostThread
from repro.sim.engine import Simulator
from repro.sim.process import Timeout, spawn

from helpers import compute_spec, make_kernel, memory_spec


def store_for(*ops):
    store = ProfileStore()
    from repro.profiler.profiles import ModelProfile

    profile = ModelProfile("synthetic", "inference", "V100-16GB", 10e-3)
    for op in ops:
        profile.kernels[op.spec.name] = KernelProfile(
            op.spec.name, op.duration, op.compute_util, op.memory_util,
            op.sm_needed, op.profile,
        )
    store.add(profile)
    return store


def setup_backend(sim, config=None, ops=()):
    device = GpuDevice(sim, V100_16GB)
    backend = OrionBackend(sim, device, store_for(*ops),
                           config or OrionConfig(hp_request_latency=10e-3))
    hp_ctx = ClientContext(backend, "hp", HostThread(sim), high_priority=True)
    be_ctx = ClientContext(backend, "be", HostThread(sim))
    backend.start()
    return backend, device, hp_ctx, be_ctx


def test_single_hp_client_enforced():
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = OrionBackend(sim, device, ProfileStore())
    ClientContext(backend, "hp1", HostThread(sim), high_priority=True)
    with pytest.raises(ValueError):
        ClientContext(backend, "hp2", HostThread(sim), high_priority=True)


def test_hp_kernels_forwarded_immediately():
    sim = Simulator()
    op = make_kernel(compute_spec("hp-k", duration=1e-3))
    backend, device, hp_ctx, _ = setup_backend(sim, ops=[op])
    record = {}

    def run():
        yield from hp_ctx.launch_kernel(op)
        yield from hp_ctx.synchronize()
        record["t"] = sim.now

    spawn(sim, run())
    sim.run()
    assert record["t"] == pytest.approx(1e-3, rel=0.05)


def test_be_kernel_runs_when_hp_idle():
    sim = Simulator()
    op = make_kernel(memory_spec("be-k", duration=1e-3))
    backend, device, _, be_ctx = setup_backend(sim, ops=[op])
    record = {}

    def run():
        yield from be_ctx.launch_kernel(op)
        yield from be_ctx.synchronize()
        record["t"] = sim.now

    spawn(sim, run())
    sim.run()
    assert record["t"] == pytest.approx(1e-3, rel=0.05)
    assert backend.be_kernels_launched == 1


def test_same_profile_be_deferred_until_hp_done():
    sim = Simulator()
    hp_op = make_kernel(compute_spec("hp-k", duration=2e-3, sms=160))
    be_op = make_kernel(compute_spec("be-k", duration=1e-4, sms=160))
    backend, device, hp_ctx, be_ctx = setup_backend(sim, ops=[hp_op, be_op])
    record = {}

    def hp():
        yield from hp_ctx.launch_kernel(hp_op)
        yield from hp_ctx.synchronize()
        record["hp_end"] = sim.now

    def be():
        yield Timeout(1e-4)  # arrive while HP is running
        yield from be_ctx.launch_kernel(be_op)
        yield from be_ctx.synchronize()
        record["be_end"] = sim.now

    spawn(sim, hp())
    spawn(sim, be())
    sim.run()
    # BE (compute) could not collocate with HP (compute): it waited.
    assert record["be_end"] >= record["hp_end"]
    assert backend.be_kernels_deferred > 0


def test_opposite_profile_be_collocates():
    sim = Simulator()
    hp_op = make_kernel(compute_spec("hp-k", duration=2e-3, sms=160))
    be_op = make_kernel(memory_spec("be-k", duration=1e-4, blocks=64))
    backend, device, hp_ctx, be_ctx = setup_backend(sim, ops=[hp_op, be_op])
    record = {}

    def hp():
        yield from hp_ctx.launch_kernel(hp_op)
        yield from hp_ctx.synchronize()
        record["hp_end"] = sim.now

    def be():
        yield Timeout(1e-4)
        yield from be_ctx.launch_kernel(be_op)
        yield from be_ctx.synchronize()
        record["be_end"] = sim.now

    spawn(sim, hp())
    spawn(sim, be())
    sim.run()
    # Memory-bound BE ran inside the HP window instead of after it.
    assert record["be_end"] < record["hp_end"]


def test_sm_threshold_blocks_large_be():
    sim = Simulator()
    hp_op = make_kernel(compute_spec("hp-k", duration=2e-3, sms=160))
    be_op = make_kernel(memory_spec("be-k", duration=1e-4, blocks=4096))
    assert be_op.sm_needed >= 80
    backend, device, hp_ctx, be_ctx = setup_backend(sim, ops=[hp_op, be_op])
    record = {}

    def hp():
        yield from hp_ctx.launch_kernel(hp_op)
        yield from hp_ctx.synchronize()
        record["hp_end"] = sim.now

    def be():
        yield Timeout(1e-4)
        yield from be_ctx.launch_kernel(be_op)
        yield from be_ctx.synchronize()
        record["be_end"] = sim.now

    spawn(sim, hp())
    spawn(sim, be())
    sim.run()
    assert record["be_end"] >= record["hp_end"]


def test_duration_throttle_limits_outstanding_be():
    sim = Simulator()
    # Budget = 2.5% x 10 ms = 250 us; kernels of 200 us each.
    ops = [make_kernel(memory_spec(f"be-{i}", duration=2e-4, blocks=64))
           for i in range(10)]
    backend, device, _, be_ctx = setup_backend(sim, ops=ops)
    max_resident = {"n": 0}

    def be():
        for op in ops:
            yield from be_ctx.launch_kernel(op)
        yield from be_ctx.synchronize()

    def monitor():
        for _ in range(500):
            max_resident["n"] = max(max_resident["n"], len(device.running))
            yield Timeout(1e-5)

    spawn(sim, be())
    spawn(sim, monitor())
    sim.run()
    # The throttle drains the pipeline every ~2 kernels; the whole batch
    # must never be committed at once (stream serializes anyway, but the
    # *outstanding* count stays near the budget).
    assert backend.be_kernels_launched == 10
    assert backend.be_kernels_deferred > 0


def test_memory_ops_bypass_policy():
    sim = Simulator()
    hp_op = make_kernel(compute_spec("hp-k", duration=5e-3, sms=160))
    backend, device, hp_ctx, be_ctx = setup_backend(sim, ops=[hp_op])
    record = {}

    def hp():
        yield from hp_ctx.launch_kernel(hp_op)
        yield from hp_ctx.synchronize()

    def be():
        yield Timeout(1e-4)
        yield from be_ctx.memcpy(1000, MemoryOpKind.MEMCPY_H2D, blocking=True)
        record["copy_done"] = sim.now

    spawn(sim, hp())
    spawn(sim, be())
    sim.run()
    # The copy completed long before the HP kernel finished.
    assert record["copy_done"] < 5e-3


def test_round_robin_across_be_clients():
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    ops = {name: make_kernel(memory_spec(f"{name}-k", duration=1e-4, blocks=64),
                             client_id=name)
           for name in ("be1", "be2", "be3")}
    backend = OrionBackend(sim, device, store_for(*ops.values()),
                           OrionConfig(hp_request_latency=1.0))
    ClientContext(backend, "hp", HostThread(sim), high_priority=True)
    ctxs = {name: ClientContext(backend, name, HostThread(sim))
            for name in ops}
    backend.start()
    finish = {}

    def client(name):
        yield from ctxs[name].launch_kernel(ops[name])
        yield from ctxs[name].synchronize()
        finish[name] = sim.now

    for name in ops:
        spawn(sim, client(name))
    sim.run()
    assert set(finish) == {"be1", "be2", "be3"}


def test_hp_latency_ewma_fallback():
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = OrionBackend(sim, device, ProfileStore(), OrionConfig())
    ctx = ClientContext(backend, "hp", HostThread(sim), high_priority=True)
    backend.start()
    op = make_kernel(compute_spec("k", duration=2e-3))

    def run():
        yield from ctx.begin_request()
        yield from ctx.launch_kernel(op)
        yield from ctx.synchronize()
        ctx.end_request()

    spawn(sim, run())
    sim.run()
    assert backend.hp_requests_completed == 1
    assert backend.hp_request_latency == pytest.approx(2e-3, rel=0.1)


def test_unprofiled_kernel_counts_miss_and_treated_unknown():
    sim = Simulator()
    backend, device, _, be_ctx = setup_backend(sim, ops=[])
    op = make_kernel(memory_spec("never-profiled", duration=1e-4, blocks=64))

    def run():
        yield from be_ctx.launch_kernel(op)
        yield from be_ctx.synchronize()

    spawn(sim, run())
    sim.run()
    assert backend.profile_misses >= 1
    assert backend.be_kernels_launched == 1


def test_interception_overhead_positive():
    sim = Simulator()
    backend, *_ = setup_backend(sim)
    assert 0 < backend.interception_overhead() < 2e-6
