"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_starts_at_custom_time():
    assert Simulator(start_time=5.0).now == 5.0


def test_call_at_runs_callback_at_time():
    sim = Simulator()
    seen = []
    sim.call_at(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]


def test_call_in_is_relative():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, lambda: sim.call_in(0.5, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [1.5]


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.call_at(2.0, lambda: order.append("b"))
    sim.call_at(1.0, lambda: order.append("a"))
    sim.call_at(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.call_at(1.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == ["first", "second", "third"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    handle = sim.call_at(1.0, lambda: seen.append("x"))
    handle.cancel()
    sim.run()
    assert seen == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.call_at(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert not handle.active


def test_scheduling_in_past_raises():
    sim = Simulator()
    sim.call_at(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(0.5, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(SimulationError):
        Simulator().call_in(-1.0, lambda: None)


def test_nan_time_raises():
    with pytest.raises(SimulationError):
        Simulator().call_at(float("nan"), lambda: None)


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    assert sim.run(until=3.0) == 3.0
    assert sim.now == 3.0


def test_run_until_leaves_future_events_pending():
    sim = Simulator()
    seen = []
    sim.call_at(5.0, lambda: seen.append("late"))
    sim.run(until=1.0)
    assert seen == []
    sim.run()
    assert seen == ["late"]


def test_run_max_events():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.call_at(float(i + 1), lambda i=i: seen.append(i))
    sim.run(max_events=3)
    assert seen == [0, 1, 2]


def test_stop_halts_run():
    sim = Simulator()
    seen = []

    def first():
        seen.append(1)
        sim.stop()

    sim.call_at(1.0, first)
    sim.call_at(2.0, lambda: seen.append(2))
    sim.run()
    assert seen == [1]


def test_run_is_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.call_at(1.0, reenter)
    sim.run()


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            sim.call_in(1.0, lambda: chain(n + 1))

    sim.call_at(0.0, lambda: chain(0))
    sim.run()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_peek_skips_cancelled_events():
    sim = Simulator()
    h1 = sim.call_at(1.0, lambda: None)
    sim.call_at(2.0, lambda: None)
    h1.cancel()
    assert sim.peek() == 2.0


def test_peek_empty_returns_none():
    assert Simulator().peek() is None


def test_step_returns_false_when_drained():
    sim = Simulator()
    sim.call_at(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.call_at(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_zero_delay_event_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.call_at(1.0, lambda: sim.call_in(0.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [1.0]


def test_clock_monotonic_across_many_events():
    sim = Simulator()
    times = []
    import random

    rng = random.Random(7)
    for _ in range(200):
        sim.call_at(rng.uniform(0, 10), lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert len(times) == 200
