"""Unit tests for the GPU device: streams, dispatch, priorities,
non-preemption, memory semantics, events, telemetry."""

import pytest

from repro.gpu.cuda_events import CudaEvent
from repro.gpu.device import GpuDevice
from repro.gpu.specs import V100_16GB
from repro.kernels.kernel import MemoryOp, MemoryOpKind
from repro.sim.engine import Simulator
from repro.sim.process import Timeout, spawn

from helpers import compute_spec, memory_spec, make_kernel, tiny_spec


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def device(sim):
    return GpuDevice(sim, V100_16GB)


def drive(sim, gen):
    p = spawn(sim, gen)
    sim.run()
    return p


def test_stream_executes_kernel(sim, device):
    stream = device.create_stream()
    op = make_kernel(compute_spec())
    times = {}

    def run():
        done = stream.submit(op)
        yield done
        times["end"] = sim.now

    drive(sim, run())
    assert times["end"] == pytest.approx(op.duration)
    assert device.kernels_completed == 1


def test_stream_is_fifo(sim, device):
    stream = device.create_stream()
    finish_order = []

    def run():
        first = stream.submit(make_kernel(compute_spec("long", duration=2e-3)))
        second = stream.submit(make_kernel(compute_spec("short", duration=1e-4)))
        first.add_callback(lambda _s: finish_order.append("long"))
        second.add_callback(lambda _s: finish_order.append("short"))
        yield second

    drive(sim, run())
    assert finish_order == ["long", "short"]


def test_one_in_flight_op_per_stream(sim, device):
    stream = device.create_stream()

    def run():
        stream.submit(make_kernel(compute_spec("a")))
        stream.submit(make_kernel(compute_spec("b")))
        yield Timeout(1e-4)
        assert len(device.running) == 1
        yield stream.synchronize_signal()

    drive(sim, run())


def test_two_streams_run_concurrently(sim, device):
    s1, s2 = device.create_stream(), device.create_stream()

    def run():
        s1.submit(make_kernel(compute_spec("a", sms=100)))
        s2.submit(make_kernel(memory_spec("b")))
        yield Timeout(1e-4)
        assert len(device.running) == 2
        yield s1.synchronize_signal()
        yield s2.synchronize_signal()

    drive(sim, run())


def test_collocation_of_opposite_profiles_overlaps(sim, device):
    s1, s2 = device.create_stream(), device.create_stream()
    c = make_kernel(compute_spec("c", duration=1e-3))
    m = make_kernel(memory_spec("m", duration=1e-3))
    end = {}

    def run():
        d1, d2 = s1.submit(c), s2.submit(m)
        yield d1
        yield d2
        end["t"] = sim.now

    drive(sim, run())
    sequential = c.duration + m.duration
    assert end["t"] < sequential * 0.9


def test_sm_admission_cap_blocks_third_big_kernel(sim, device):
    streams = [device.create_stream() for _ in range(3)]
    big = compute_spec("big", duration=1e-3, sms=640)  # 80 SMs each

    def run():
        for s in streams:
            s.submit(make_kernel(big))
        yield Timeout(1e-5)
        # Cap = 2.0 x 80 SMs: two resident, third waits.
        assert len(device.running) == 2
        for s in streams:
            yield s.synchronize_signal()

    drive(sim, run())


def test_priority_stream_dispatches_first(sim, device):
    hp = device.create_stream(priority=1)
    be = device.create_stream(priority=0)
    big = compute_spec("big", duration=1e-3, sms=640)
    blocker = device.create_stream()
    order = []

    def run():
        # Fill the device so both arrivals must queue.
        b1 = blocker.submit(make_kernel(big))
        b2 = blocker.submit(make_kernel(big))
        yield Timeout(1e-5)
        done_be = be.submit(make_kernel(big))
        done_hp = hp.submit(make_kernel(big))
        done_be.add_callback(lambda _s: order.append("be"))
        done_hp.add_callback(lambda _s: order.append("hp"))
        yield done_be
        yield done_hp

    drive(sim, run())
    assert order == ["hp", "be"]


def test_running_kernel_is_not_preempted(sim, device):
    hp = device.create_stream(priority=1)
    be = device.create_stream(priority=0)
    big = compute_spec("big", duration=2e-3, sms=640)
    record = {}

    def run():
        be_done = be.submit(make_kernel(big))
        be2_done = be.submit(make_kernel(big))
        yield Timeout(1e-5)
        hp_done = hp.submit(make_kernel(big))
        yield be_done
        record["be1"] = sim.now
        yield hp_done
        record["hp"] = sim.now
        yield be2_done
        record["be2"] = sim.now

    drive(sim, run())
    # HP arrived while two BE kernels were committed.  The in-flight BE
    # kernel was never preempted: HP had to timeshare with it, finishing
    # no earlier than BE1 and far later than its 2 ms solo time.
    assert record["be1"] <= record["hp"]
    assert record["hp"] > 3e-3
    # The second committed BE kernel ran after HP completed.
    assert record["be2"] > record["hp"]


def test_malloc_synchronizes_device(sim, device):
    stream = device.create_stream()
    other = device.create_stream()
    record = {}

    def run():
        other.submit(make_kernel(compute_spec("busy", duration=1e-3)))
        yield Timeout(1e-5)
        malloc_done = stream.submit(
            MemoryOp(kind=MemoryOpKind.MALLOC, nbytes=1024)
        )
        yield malloc_done
        record["malloc"] = sim.now

    drive(sim, run())
    # Malloc waited for the running kernel plus the sync latency.
    assert record["malloc"] >= 1e-3 + V100_16GB.device_sync_latency * 0.9


def test_malloc_blocks_subsequent_dispatch(sim, device):
    s1, s2 = device.create_stream(), device.create_stream()
    record = {}

    def run():
        s1.submit(MemoryOp(kind=MemoryOpKind.MALLOC, nbytes=1024))
        done = s2.submit(make_kernel(compute_spec("after", duration=1e-4)))
        yield done
        record["k"] = sim.now

    drive(sim, run())
    assert record["k"] >= V100_16GB.device_sync_latency


def test_blocking_h2d_copy_stalls_kernel_dispatch(sim, device):
    s1, s2 = device.create_stream(), device.create_stream()
    copy_bytes = int(16e9 * 1e-3)  # ~1 ms on a 16 GB/s bus
    record = {}

    def run():
        s1.submit(MemoryOp(kind=MemoryOpKind.MEMCPY_H2D, nbytes=copy_bytes,
                           blocking=True))
        yield Timeout(1e-5)
        done = s2.submit(make_kernel(compute_spec("k", duration=1e-4)))
        yield done
        record["k"] = sim.now

    drive(sim, run())
    assert record["k"] > 1e-3  # waited out the copy


def test_async_copy_does_not_stall_dispatch(sim, device):
    s1, s2 = device.create_stream(), device.create_stream()
    copy_bytes = int(16e9 * 1e-3)
    record = {}

    def run():
        s1.submit(MemoryOp(kind=MemoryOpKind.MEMCPY_H2D, nbytes=copy_bytes,
                           blocking=False))
        yield Timeout(1e-5)
        done = s2.submit(make_kernel(compute_spec("k", duration=1e-4)))
        yield done
        record["k"] = sim.now

    drive(sim, run())
    assert record["k"] < 5e-4


def test_memset_completes(sim, device):
    stream = device.create_stream()

    def run():
        done = stream.submit(MemoryOp(kind=MemoryOpKind.MEMSET, nbytes=10**6))
        yield done

    p = drive(sim, run())
    assert p.triggered


def test_cuda_event_tracks_stream_progress(sim, device):
    stream = device.create_stream()
    event = CudaEvent("probe")
    checks = {}

    def run():
        stream.submit(make_kernel(compute_spec("k", duration=1e-3)))
        event.record(stream)
        checks["immediately"] = event.query()
        yield Timeout(2e-3)
        checks["after"] = event.query()

    drive(sim, run())
    assert checks["immediately"] is False
    assert checks["after"] is True
    assert event.completed_at == pytest.approx(1e-3, rel=0.01)


def test_unrecorded_event_queries_true():
    assert CudaEvent().query() is True


def test_event_rerecord_supersedes(sim, device):
    stream = device.create_stream()
    event = CudaEvent()

    def run():
        stream.submit(make_kernel(compute_spec("k1", duration=1e-3)))
        event.record(stream)
        yield Timeout(2e-3)
        stream.submit(make_kernel(compute_spec("k2", duration=1e-3)))
        event.record(stream)
        assert event.query() is False
        yield Timeout(2e-3)
        assert event.query() is True

    p = drive(sim, run())
    assert p.triggered


def test_utilization_segments_recorded(sim):
    device = GpuDevice(sim, V100_16GB, record_utilization=True)
    stream = device.create_stream()

    def run():
        done = stream.submit(make_kernel(compute_spec("k", duration=1e-3)))
        yield done

    drive(sim, run())
    assert device.utilization_segments
    busy = [s for s in device.utilization_segments if s[2] > 0]
    assert busy
    total_busy = sum(s[1] - s[0] for s in busy)
    assert total_busy == pytest.approx(1e-3, rel=0.05)


def test_kernel_busy_time_accumulates(sim, device):
    stream = device.create_stream()

    def run():
        done = stream.submit(make_kernel(compute_spec("k", duration=2e-3)))
        yield done

    drive(sim, run())
    assert device.kernel_busy_time == pytest.approx(2e-3, rel=0.01)


def test_synchronize_signal_waits_for_all_streams(sim, device):
    s1, s2 = device.create_stream(), device.create_stream()
    record = {}

    def run():
        s1.submit(make_kernel(compute_spec("a", duration=1e-3)))
        s2.submit(make_kernel(memory_spec("b", duration=2e-3)))
        yield device.synchronize_signal()
        record["t"] = sim.now

    drive(sim, run())
    assert record["t"] >= 2e-3


def test_tiny_kernels_complete(sim, device):
    stream = device.create_stream()

    def run():
        for i in range(50):
            done = stream.submit(make_kernel(tiny_spec(f"t{i}")))
        yield done

    p = drive(sim, run())
    assert p.triggered
    assert device.kernels_completed == 50
