"""Unit tests for the write-ahead job journal and startup recovery.

Everything here is in-process and deterministic: journals are written
through the :class:`JobJournal` API (or hand-corrupted on disk) and
replayed, and recovery semantics are exercised by starting a real
:class:`ServeServer` on a pre-seeded journal.  The kill-9 chaos harness
that crashes a live daemon lives in tests/test_serve_chaos.py.
"""

import json
import os
import threading
import time
from contextlib import contextmanager

import pytest

from repro.experiments.registry import make_scenario
from repro.experiments.scenario import run
from repro.serve import (
    COMPLETED,
    FAILED,
    INTERRUPTED,
    QUEUED,
    JobJournal,
    JournalError,
    ServeClient,
    ServeConfig,
    ServeServer,
    atomic_write_json,
)


@contextmanager
def serve_daemon(**kwargs):
    kwargs.setdefault("address", "tcp:127.0.0.1:0")
    kwargs.setdefault("telemetry_interval", 0)
    server = ServeServer(ServeConfig(**kwargs))
    address = server.start()
    try:
        yield server, address
    finally:
        server.shutdown()


def _read_lines(path):
    with open(path, "rb") as fh:
        return [json.loads(line) for line in fh.read().splitlines()
                if line.strip()]


# ---------------------------------------------------------------------------
# Append / load mechanics


class TestJournalAppendLoad:
    def test_round_trip_preserves_records_and_seq(self, tmp_path):
        path = str(tmp_path / "wal.ndjson")
        journal = JobJournal(path)
        journal.append({"type": "submit", "job": "job-0001"}, durable=True)
        journal.append({"type": "transition", "job": "job-0001",
                        "state": "DISPATCHED"})
        journal.close()
        snapshot, records, last_seq = JobJournal.load(path)
        assert snapshot is None
        assert [r["type"] for r in records] == ["submit", "transition"]
        assert [r["seq"] for r in records] == [1, 2]
        assert last_seq == 2

    def test_fsync_batching_defers_then_flushes(self, tmp_path):
        path = str(tmp_path / "wal.ndjson")
        journal = JobJournal(path, fsync_batch=4)
        for index in range(3):
            journal.append({"type": "reject", "n": index})
        # Buffered in the file object: not necessarily on disk yet, but
        # the 4th append crosses the batch and must flush everything.
        journal.append({"type": "reject", "n": 3})
        assert len(_read_lines(path)) == 4
        journal.close()

    def test_durable_append_is_immediately_readable(self, tmp_path):
        path = str(tmp_path / "wal.ndjson")
        journal = JobJournal(path, fsync_batch=1000)
        journal.append({"type": "submit", "job": "job-0001"}, durable=True)
        assert len(_read_lines(path)) == 1
        journal.close()

    def test_torn_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "wal.ndjson")
        journal = JobJournal(path)
        journal.append({"type": "submit", "job": "job-0001"}, durable=True)
        journal.append({"type": "submit", "job": "job-0002"}, durable=True)
        journal.close()
        with open(path, "ab") as fh:  # simulate a crash mid-append
            fh.write(b'{"type":"transition","job":"job-00')
        snapshot, records, last_seq = JobJournal.load(path)
        assert [r["job"] for r in records] == ["job-0001", "job-0002"]
        assert last_seq == 2

    def test_complete_tail_missing_newline_is_kept(self, tmp_path):
        path = str(tmp_path / "wal.ndjson")
        with open(path, "wb") as fh:
            fh.write(b'{"type":"submit","job":"job-0001","seq":1}\n')
            fh.write(b'{"type":"reject","seq":2}')  # no trailing newline
        _, records, last_seq = JobJournal.load(path)
        assert [r["seq"] for r in records] == [1, 2]
        assert last_seq == 2

    def test_interior_corruption_raises(self, tmp_path):
        path = str(tmp_path / "wal.ndjson")
        with open(path, "wb") as fh:
            fh.write(b'{"type":"submit","job":"job-0001","seq":1}\n')
            fh.write(b"garbage not json\n")
            fh.write(b'{"type":"reject","seq":3}\n')
        with pytest.raises(JournalError):
            JobJournal.load(path)

    def test_corrupt_snapshot_raises(self, tmp_path):
        path = str(tmp_path / "wal.ndjson")
        with open(path + ".snapshot", "w", encoding="utf-8") as fh:
            fh.write("{truncated")
        with pytest.raises(JournalError):
            JobJournal.load(path)

    def test_non_ascii_payloads_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.ndjson")
        journal = JobJournal(path)
        spec = {"name": "faults", "note": "snabb körning 🚀 – проверка"}
        journal.append({"type": "submit", "job": "job-0001", "spec": spec,
                        "key": "clé-η-鍵"}, durable=True)
        journal.close()
        _, records, _ = JobJournal.load(path)
        assert records[0]["spec"] == spec
        assert records[0]["key"] == "clé-η-鍵"


class TestSnapshotCompaction:
    def test_snapshot_truncates_log_and_replay_resumes(self, tmp_path):
        path = str(tmp_path / "wal.ndjson")
        journal = JobJournal(path, snapshot_every=2)
        journal.append({"type": "reject"})
        journal.append({"type": "reject"})
        assert journal.should_snapshot
        journal.write_snapshot({"jobs": [], "history": [],
                                "idempotency": {}, "counters": {"rejected": 2},
                                "next_job": 0})
        assert os.path.getsize(path) == 0  # log truncated
        journal.append({"type": "reject"}, durable=True)
        journal.close()
        snapshot, records, last_seq = JobJournal.load(path)
        assert snapshot["last_seq"] == 2
        assert snapshot["counters"] == {"rejected": 2}
        assert [r["seq"] for r in records] == [3]
        assert last_seq == 3

    def test_replay_skips_records_at_or_below_snapshot_floor(self, tmp_path):
        # A crash between the snapshot os.replace and the log
        # truncation leaves stale pre-snapshot records in the log;
        # their seq <= last_seq makes them no-ops.
        path = str(tmp_path / "wal.ndjson")
        with open(path, "wb") as fh:
            fh.write(b'{"type":"reject","seq":1}\n')
            fh.write(b'{"type":"reject","seq":2}\n')
            fh.write(b'{"type":"reject","seq":3}\n')
        atomic_write_json(path + ".snapshot",
                          {"version": 1, "last_seq": 2, "jobs": [],
                           "history": [], "idempotency": {},
                           "counters": {"rejected": 2}, "next_job": 0})
        snapshot, records, last_seq = JobJournal.load(path)
        assert [r["seq"] for r in records] == [3]
        state = JobJournal.replay(snapshot, records)
        assert state["counters"]["rejected"] == 3  # 2 from snapshot + 1

    def test_snapshot_preserves_records_appended_past_floor(self, tmp_path):
        # The server reads the seq floor, then builds the state
        # payload; a record appended in between is absent from the
        # payload and must survive compaction in the rewritten log —
        # truncating it would permanently lose a durably-acked job.
        path = str(tmp_path / "wal.ndjson")
        journal = JobJournal(path)
        journal.append(_submit_record("job-0001"), durable=True)
        floor = journal.last_seq
        journal.append(_submit_record("job-0002"), durable=True)
        journal.write_snapshot(
            {"jobs": [], "history": [], "idempotency": {},
             "counters": {"submitted": 1}, "next_job": 1}, floor=floor)
        journal.append({"type": "reject"}, durable=True)
        journal.close()
        snapshot, records, last_seq = JobJournal.load(path)
        assert snapshot["last_seq"] == floor == 1
        assert [r.get("job") for r in records] == ["job-0002", None]
        assert last_seq == 3
        state = JobJournal.replay(snapshot, records)
        assert "job-0002" in state["jobs"]
        assert state["counters"]["submitted"] == 2
        assert state["counters"]["rejected"] == 1

    def test_atomic_write_preserves_original_until_replace(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text('{"old": true}')
        atomic_write_json(str(target), {"new": True})
        assert json.loads(target.read_text()) == {"new": True}
        assert not (tmp_path / "out.json.tmp").exists()


# ---------------------------------------------------------------------------
# Replay semantics


def _submit_record(job_id, key=None, priority=0, spec=None):
    return {"type": "submit", "job": job_id, "priority": priority,
            "key": key, "clock": 0.0,
            "spec": spec or {"name": "faults", "seed": 0,
                             "duration": 0.05, "overrides": {}}}


class TestReplay:
    def test_submit_then_terminal_builds_history(self):
        records = [
            dict(_submit_record("job-0001"), seq=1),
            {"type": "transition", "job": "job-0001", "state": "DISPATCHED",
             "clock": 0.1, "error": None, "attempt": 1, "seq": 2},
            {"type": "transition", "job": "job-0001", "state": "RUNNING",
             "clock": 0.2, "error": None, "attempt": 1, "seq": 3},
            {"type": "result", "job": "job-0001", "result_json": '{"a":1}',
             "events_processed": 7, "sim_time": 0.05, "seq": 4},
            {"type": "transition", "job": "job-0001", "state": "COMPLETED",
             "clock": 0.3, "error": None, "attempt": 1, "seq": 5},
        ]
        state = JobJournal.replay(None, records)
        job = state["jobs"]["job-0001"]
        assert job["state"] == COMPLETED
        assert job["result_json"] == '{"a":1}'
        assert state["history"] == ["job-0001"]
        assert state["counters"]["completed"] == 1
        assert state["counters"]["dispatched"] == 1
        assert state["next_job"] == 1

    def test_result_without_completed_transition_is_discarded(self):
        # The result record hit disk but the COMPLETED transition did
        # not (crash in between): the job must re-run, not serve a
        # result it never durably finished.
        records = [
            dict(_submit_record("job-0001"), seq=1),
            {"type": "transition", "job": "job-0001", "state": "RUNNING",
             "clock": 0.2, "error": None, "attempt": 1, "seq": 2},
            {"type": "result", "job": "job-0001", "result_json": '{"a":1}',
             "events_processed": 7, "sim_time": 0.05, "seq": 3},
        ]
        state = JobJournal.replay(None, records)
        job = state["jobs"]["job-0001"]
        assert job["state"] == "RUNNING"
        assert job["result_json"] is None

    def test_submit_already_in_snapshot_not_reapplied(self):
        # A submit record preserved past compaction (appended while the
        # snapshot payload was being built): re-applying it would put
        # the job in ``order`` twice and run it twice.
        snapshot = {"version": 1, "last_seq": 0, "next_job": 1,
                    "history": [], "idempotency": {"k1": "job-0001"},
                    "counters": {"submitted": 1},
                    "jobs": [{"id": "job-0001", "state": QUEUED,
                              "spec": {"name": "faults", "seed": 0,
                                       "duration": 0.05, "overrides": {}},
                              "priority": 0, "key": "k1", "attempt": 1,
                              "error": None, "result_json": None,
                              "events_processed": None, "sim_time": None,
                              "transitions": [[QUEUED, 0.5]]}]}
        records = [dict(_submit_record("job-0001", key="k1"), seq=1)]
        state = JobJournal.replay(snapshot, records)
        assert state["order"] == ["job-0001"]
        assert state["counters"]["submitted"] == 1
        assert state["jobs"]["job-0001"]["transitions"] == [[QUEUED, 0.5]]

    def test_transition_already_in_snapshot_not_reapplied(self):
        snapshot = {"version": 1, "last_seq": 0, "next_job": 1,
                    "history": [], "idempotency": {},
                    "counters": {"submitted": 1, "dispatched": 1},
                    "jobs": [{"id": "job-0001", "state": "DISPATCHED",
                              "spec": {"name": "faults", "seed": 0,
                                       "duration": 0.05, "overrides": {}},
                              "priority": 0, "key": None, "attempt": 1,
                              "error": None, "result_json": None,
                              "events_processed": None, "sim_time": None,
                              "transitions": [[QUEUED, 0.0],
                                              ["DISPATCHED", 0.1]]}]}
        records = [{"type": "transition", "job": "job-0001",
                    "state": "DISPATCHED", "clock": 0.1, "error": None,
                    "attempt": 1, "seq": 3}]
        state = JobJournal.replay(snapshot, records)
        job = state["jobs"]["job-0001"]
        assert job["transitions"] == [[QUEUED, 0.0], ["DISPATCHED", 0.1]]
        assert state["counters"]["dispatched"] == 1

    def test_idempotency_and_next_job_survive_replay(self):
        records = [
            dict(_submit_record("job-0007", key="k1"), seq=1),
            dict(_submit_record("job-0008", key="k2"), seq=2),
        ]
        state = JobJournal.replay(None, records)
        assert state["idempotency"] == {"k1": "job-0007", "k2": "job-0008"}
        assert state["next_job"] == 8
        assert state["order"] == ["job-0007", "job-0008"]


# ---------------------------------------------------------------------------
# End-to-end recovery: a daemon restarted on a pre-existing journal


def _seed_journal(path, records):
    journal = JobJournal(str(path))
    for record in records:
        journal.append(record, durable=True)
    journal.close()


class TestDaemonRecovery:
    def test_queued_jobs_readmitted_in_priority_order(self, tmp_path):
        path = tmp_path / "wal.ndjson"
        _seed_journal(path, [
            _submit_record("job-0001", priority=0),
            _submit_record("job-0002", priority=5),
            _submit_record("job-0003", priority=5),
        ])
        with serve_daemon(workers=0,
                          journal_path=str(path)) as (server, address):
            assert len(server._queue) == 3
            order = [server._queue.pop(timeout=0).job_id for _ in range(3)]
            assert order == ["job-0002", "job-0003", "job-0001"]
            with ServeClient(address) as client:
                assert client.status("job-0001")["recovered"]

    def test_running_at_crash_requeued_and_rerun(self, tmp_path):
        path = tmp_path / "wal.ndjson"
        _seed_journal(path, [
            _submit_record("job-0001"),
            {"type": "transition", "job": "job-0001", "state": "DISPATCHED",
             "clock": 0.1, "error": None, "attempt": 1},
            {"type": "transition", "job": "job-0001", "state": "RUNNING",
             "clock": 0.2, "error": None, "attempt": 1},
        ])
        with serve_daemon(workers=1, journal_path=str(path),
                          recover="requeue") as (server, address):
            with ServeClient(address) as client:
                record = client.wait("job-0001", timeout=60)
                assert record["state"] == COMPLETED
                assert record["attempt"] == 2
                assert record["recovered"]
                direct = run(make_scenario("faults", seed=0,
                                           duration=0.05)).to_json()
                assert client.result_json("job-0001") == direct

    def test_recover_fail_marks_interrupted(self, tmp_path):
        path = tmp_path / "wal.ndjson"
        _seed_journal(path, [
            _submit_record("job-0001"),
            {"type": "transition", "job": "job-0001", "state": "RUNNING",
             "clock": 0.2, "error": None, "attempt": 1},
            _submit_record("job-0002"),
        ])
        with serve_daemon(workers=0, journal_path=str(path),
                          recover="fail") as (server, address):
            with ServeClient(address) as client:
                record = client.status("job-0001")
                assert record["state"] == INTERRUPTED
                reason = json.loads(record["error"])
                assert reason["reason"] == "daemon_crash"
                assert reason["state_at_crash"] == "RUNNING"
                # The merely-queued job is untouched by the policy.
                assert client.status("job-0002")["state"] == QUEUED
                snapshot = client.telemetry()["snapshot"]
                assert snapshot["counters"]["interrupted"] == 1

    def test_completed_results_restored_byte_for_byte(self, tmp_path):
        path = tmp_path / "wal.ndjson"
        with serve_daemon(workers=1,
                          journal_path=str(path)) as (server, address):
            with ServeClient(address) as client:
                job = client.submit(name="faults", duration=0.05)
                client.wait(job, timeout=60)
                first = client.result_json(job)
        with serve_daemon(workers=0,
                          journal_path=str(path)) as (server, address):
            with ServeClient(address) as client:
                assert client.result_json(job) == first
                assert client.status(job)["state"] == COMPLETED

    def test_idempotency_keys_survive_restart(self, tmp_path):
        path = tmp_path / "wal.ndjson"
        with serve_daemon(workers=0,
                          journal_path=str(path)) as (server, address):
            with ServeClient(address) as client:
                original = client.submit(**{"name": "faults",
                                            "duration": 0.05},
                                         idempotency_key="restart-safe")
        with serve_daemon(workers=0,
                          journal_path=str(path)) as (server, address):
            with ServeClient(address) as client:
                again = client.submit(**{"name": "faults", "duration": 0.05},
                                      idempotency_key="restart-safe")
                assert again == original
                fresh = client.submit(name="faults", duration=0.05)
                assert fresh != original  # id sequence continued, no reuse

    def test_attempts_exhausted_at_recovery_fail_structured(self, tmp_path):
        path = tmp_path / "wal.ndjson"
        _seed_journal(path, [
            _submit_record("job-0001"),
            {"type": "transition", "job": "job-0001", "state": "RUNNING",
             "clock": 0.1, "error": None, "attempt": 9},
        ])
        with serve_daemon(workers=0, journal_path=str(path), max_retries=2,
                          recover="requeue") as (server, address):
            with ServeClient(address) as client:
                record = client.status("job-0001")
                assert record["state"] == FAILED
                reason = json.loads(record["error"])
                assert reason["reason"] == "retries_exhausted_at_recovery"

    def test_reject_only_journal_restores_counters(self, tmp_path):
        # No jobs to re-admit, but the rejected count (and the boot
        # compaction) must still happen.
        path = tmp_path / "wal.ndjson"
        _seed_journal(path, [{"type": "reject"}, {"type": "reject"}])
        with serve_daemon(workers=0,
                          journal_path=str(path)) as (server, address):
            assert server._counters["rejected"] == 2
            assert os.path.exists(str(path) + ".snapshot")
            assert os.path.getsize(str(path)) == 0  # boot compaction ran
        snapshot, _, _ = JobJournal.load(str(path))
        assert snapshot["counters"]["rejected"] == 2

    def test_recovery_terminalized_jobs_land_in_history(self, tmp_path):
        # Jobs terminalized *during* recovery (unrecoverable spec,
        # --recover=fail) must appear in the history verb on top of the
        # replayed history, with history totals matching the counters.
        path = tmp_path / "wal.ndjson"
        _seed_journal(path, [
            _submit_record("job-0001",
                           spec={"name": "no-such-scenario", "seed": 0,
                                 "duration": 0.05, "overrides": {}}),
            _submit_record("job-0002"),
            {"type": "transition", "job": "job-0002", "state": "RUNNING",
             "clock": 0.2, "error": None, "attempt": 1},
        ])
        with serve_daemon(workers=0, journal_path=str(path),
                          recover="fail") as (server, address):
            assert server._history == ["job-0001", "job-0002"]
            with ServeClient(address) as client:
                history = client.history()
                states = {r["id"]: r["state"] for r in history}
                assert states == {"job-0001": FAILED,
                                  "job-0002": INTERRUPTED}
                snapshot = client.telemetry()["snapshot"]
                assert snapshot["counters"]["failed"] == 1
                assert snapshot["counters"]["interrupted"] == 1
        # The boot compaction persisted the history, so a second
        # restart still serves it.
        with serve_daemon(workers=0, journal_path=str(path),
                          recover="fail") as (server, address):
            assert server._history == ["job-0001", "job-0002"]

    def test_recovery_compacts_into_snapshot(self, tmp_path):
        path = tmp_path / "wal.ndjson"
        _seed_journal(path, [_submit_record("job-0001")])
        with serve_daemon(workers=0, journal_path=str(path)) as (server, _):
            assert os.path.exists(str(path) + ".snapshot")
            assert os.path.getsize(str(path)) == 0  # folded into snapshot
            snapshot, _, _ = JobJournal.load(str(path))
            assert [j["id"] for j in snapshot["jobs"]] == ["job-0001"]

    def test_shutdown_writes_final_snapshot(self, tmp_path):
        path = tmp_path / "wal.ndjson"
        with serve_daemon(workers=1,
                          journal_path=str(path)) as (server, address):
            with ServeClient(address) as client:
                job = client.submit(name="faults", duration=0.05)
                client.wait(job, timeout=60)
        snapshot, records, _ = JobJournal.load(str(path))
        assert records == []  # everything compacted at shutdown
        jobs = {j["id"]: j for j in snapshot["jobs"]}
        assert jobs[job]["state"] == COMPLETED
        assert snapshot["counters"]["completed"] == 1


# ---------------------------------------------------------------------------
# Watchdog: hang detection, bounded retries, structured failure


def _hang_then_finish(hang_for):
    """A fake run_scenario: wedge without polling the abort hook for
    ``hang_for`` seconds, then resume polling (and abort)."""
    from repro.sim.engine import RunAborted, get_abort_check

    def fake(scenario):
        check = get_abort_check()
        time.sleep(hang_for)  # no heartbeat: the watchdog sees a hang
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if check is not None and check():
                raise RunAborted("hung run aborted")
            time.sleep(0.01)
        raise AssertionError("abort never requested")

    return fake


class TestWatchdog:
    def test_hung_job_is_aborted_requeued_and_completes(self, tmp_path,
                                                        monkeypatch):
        import repro.serve.server as server_mod

        real_run = server_mod.run_scenario
        calls = {"n": 0}

        def flaky(scenario):
            calls["n"] += 1
            if calls["n"] == 1:
                return _hang_then_finish(0.5)(scenario)
            return real_run(scenario)

        monkeypatch.setattr(server_mod, "run_scenario", flaky)
        with serve_daemon(workers=1, hang_timeout=0.2, abort_grace=5.0,
                          max_retries=2,
                          retry_backoff=0.01) as (server, address):
            with ServeClient(address) as client:
                job = client.submit(name="faults", duration=0.05)
                record = client.wait(job, timeout=60)
                assert record["state"] == COMPLETED
                assert record["attempt"] == 2
                direct = run(make_scenario("faults", seed=0,
                                           duration=0.05)).to_json()
                assert client.result_json(job) == direct
                snapshot = client.telemetry()["snapshot"]
                assert snapshot["counters"]["hangs"] >= 1
                assert snapshot["counters"]["requeued"] == 1
                assert snapshot["watchdog"]["hangs_detected"] >= 1

    def test_always_hanging_job_fails_structured(self, monkeypatch):
        import repro.serve.server as server_mod

        monkeypatch.setattr(server_mod, "run_scenario",
                            lambda scenario: _hang_then_finish(0.3)(scenario))
        with serve_daemon(workers=1, hang_timeout=0.1, abort_grace=5.0,
                          max_retries=1,
                          retry_backoff=0.01) as (server, address):
            with ServeClient(address) as client:
                job = client.submit(name="faults", duration=0.05)
                record = client.wait(job, timeout=60)
                assert record["state"] == FAILED
                reason = json.loads(record["error"])
                assert reason["reason"] == "watchdog_hang"
                assert reason["attempts"] == 2  # 1 + max_retries
                assert reason["max_retries"] == 1

    def test_forced_requeue_discards_stale_worker_outcome(self, monkeypatch):
        import repro.serve.server as server_mod

        release = threading.Event()
        real_run = server_mod.run_scenario
        calls = {"n": 0}

        def wedged_then_fine(scenario):
            calls["n"] += 1
            if calls["n"] == 1:
                # Wedge past hang_timeout + abort_grace WITHOUT ever
                # polling the hook: only the forceful path can requeue.
                release.wait(30)
                return real_run(scenario)
            return real_run(scenario)

        monkeypatch.setattr(server_mod, "run_scenario", wedged_then_fine)
        try:
            with serve_daemon(workers=1, hang_timeout=0.15, abort_grace=0.15,
                              max_retries=2, retry_backoff=0.01,
                              drain_timeout=10.0) as (server, address):
                with ServeClient(address) as client:
                    job = client.submit(name="faults", duration=0.05)
                    record = client.wait(job, timeout=60)
                    assert record["state"] == COMPLETED
                    assert record["attempt"] == 2
                    direct = run(make_scenario("faults", seed=0,
                                               duration=0.05)).to_json()
                    assert client.result_json(job) == direct
                    snapshot = client.telemetry()["snapshot"]
                    assert snapshot["watchdog"]["forced_requeues"] >= 1
                    # The wedged worker's late outcome must not have
                    # overwritten the replacement's COMPLETED state.
                    release.set()
                    time.sleep(0.2)
                    assert client.status(job)["state"] == COMPLETED
        finally:
            release.set()
