"""Unit tests for the torchsim mini-framework: layers, modules, lowering."""


import pytest

from repro.frameworks.layers.nlp import (
    Embedding,
    FeedForward,
    Gelu,
    LayerNorm,
    MultiHeadSelfAttention,
    TransformerEncoderLayer,
)
from repro.frameworks.layers.vision import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.frameworks.lowering import (
    instantiate_plan,
    lower_inference,
    lower_training,
)
from repro.frameworks.module import Namer, Residual, Sequential
from repro.frameworks.specbuild import conv2d_spec, elementwise_spec, gemm_spec
from repro.gpu.specs import V100_16GB
from repro.kernels.kernel import KernelOp, MemoryOp


def build(module, shape):
    return module.build(shape, Namer("test"))


# ----------------------------------------------------------------------
# Spec builders
# ----------------------------------------------------------------------
def test_gemm_flops_formula():
    spec = gemm_spec("g", m=64, n=128, k=256)
    assert spec.flops == 2 * 64 * 128 * 256


def test_gemm_batched_scales_flops():
    single = gemm_spec("g1", 64, 64, 64)
    batched = gemm_spec("g8", 64, 64, 64, batch=8)
    assert batched.flops == 8 * single.flops


def test_gemm_rejects_degenerate_dims():
    with pytest.raises(ValueError):
        gemm_spec("bad", 0, 1, 1)


def test_conv_flops_match_implicit_gemm():
    spec = conv2d_spec("c", batch=2, c_in=16, c_out=32, h_out=8, w_out=8,
                       kernel_size=3)
    assert spec.flops == 2 * (2 * 8 * 8) * 32 * (16 * 9)


def test_elementwise_bytes_scale_with_access_count():
    one = elementwise_spec("e1", 1000, reads=1, writes=1)
    three = elementwise_spec("e3", 1000, reads=2, writes=1)
    assert three.bytes_moved == 1.5 * one.bytes_moved


def test_elementwise_rejects_empty():
    with pytest.raises(ValueError):
        elementwise_spec("e", 0)


# ----------------------------------------------------------------------
# Vision layers
# ----------------------------------------------------------------------
def test_conv2d_output_shape():
    built = build(Conv2d(3, 64, 7, stride=2, padding=3), (1, 3, 224, 224))
    assert built.out_shape == (1, 64, 112, 112)
    assert built.params == 3 * 64 * 49


def test_conv2d_backward_has_dgrad_and_wgrad():
    built = build(Conv2d(16, 32, 3, padding=1), (1, 16, 8, 8))
    assert len(built.forward) == 1
    assert len(built.backward) == 2


def test_conv2d_channel_mismatch_raises():
    with pytest.raises(ValueError):
        build(Conv2d(3, 8, 3), (1, 4, 8, 8))


def test_conv2d_collapsed_output_raises():
    with pytest.raises(ValueError):
        build(Conv2d(3, 8, 9), (1, 3, 4, 4))


def test_depthwise_conv_shape_and_params():
    built = build(DepthwiseConv2d(32, 3, stride=2, padding=1), (1, 32, 16, 16))
    assert built.out_shape == (1, 32, 8, 8)
    assert built.params == 32 * 9


def test_batchnorm_preserves_shape():
    built = build(BatchNorm2d(16), (2, 16, 8, 8))
    assert built.out_shape == (2, 16, 8, 8)
    assert built.params == 32


def test_relu_is_parameter_free():
    built = build(ReLU(), (2, 16, 8, 8))
    assert built.params == 0
    assert built.out_shape == (2, 16, 8, 8)


def test_maxpool_shape():
    built = build(MaxPool2d(3, stride=2, padding=1), (1, 64, 112, 112))
    assert built.out_shape == (1, 64, 56, 56)


def test_global_avgpool_to_1x1():
    built = build(GlobalAvgPool2d(), (4, 2048, 7, 7))
    assert built.out_shape == (4, 2048, 1, 1)


def test_flatten_emits_no_kernels():
    built = build(Flatten(), (4, 2048, 1, 1))
    assert built.out_shape == (4, 2048)
    assert built.forward == []


def test_linear_shape_and_params():
    built = build(Linear(2048, 1000), (4, 2048))
    assert built.out_shape == (4, 1000)
    assert built.params == 2048 * 1000 + 1000


def test_linear_dim_mismatch_raises():
    with pytest.raises(ValueError):
        build(Linear(100, 10), (4, 99))


# ----------------------------------------------------------------------
# NLP layers
# ----------------------------------------------------------------------
def test_embedding_shape():
    built = build(Embedding(30000, 768), (2, 128))
    assert built.out_shape == (2, 128, 768)
    assert built.params == 30000 * 768


def test_layernorm_preserves_shape():
    built = build(LayerNorm(768), (2, 128, 768))
    assert built.out_shape == (2, 128, 768)


def test_attention_kernel_decomposition():
    built = build(MultiHeadSelfAttention(768, 12), (2, 128, 768))
    names = [s.name for s in built.forward]
    for piece in ("qkv", "scores", "softmax", "context", "attn_out"):
        assert any(piece in n for n in names), f"missing {piece}"
    assert built.out_shape == (2, 128, 768)


def test_attention_rejects_bad_heads():
    with pytest.raises(ValueError):
        MultiHeadSelfAttention(768, 7)


def test_feedforward_params():
    built = build(FeedForward(768, 3072), (2, 128, 768))
    assert built.params == 2 * 768 * 3072 + 768 + 3072


def test_encoder_layer_shape_roundtrip():
    built = build(TransformerEncoderLayer(512, 8, 2048), (2, 64, 512))
    assert built.out_shape == (2, 64, 512)
    assert len(built.forward) > 8


def test_gelu_costs_more_flops_than_relu():
    g = build(Gelu(), (2, 64, 512)).forward[0]
    r = build(ReLU(), (2, 64, 512)).forward[0]
    assert g.flops > r.flops


# ----------------------------------------------------------------------
# Containers
# ----------------------------------------------------------------------
def test_sequential_chains_shapes():
    model = Sequential(Conv2d(3, 8, 3, padding=1), BatchNorm2d(8), ReLU())
    built = build(model, (1, 3, 8, 8))
    assert built.out_shape == (1, 8, 8, 8)
    assert len(built.forward) == 3


def test_sequential_requires_children():
    with pytest.raises(ValueError):
        Sequential()


def test_residual_adds_add_kernel():
    body = Sequential(Conv2d(8, 8, 3, padding=1), BatchNorm2d(8))
    built = build(Residual(body), (1, 8, 8, 8))
    assert any("residual_add" in s.name for s in built.forward)
    assert built.out_shape == (1, 8, 8, 8)


def test_residual_projection_shape_mismatch_raises():
    body = Conv2d(8, 16, 3, padding=1)
    projection = Conv2d(8, 8, 1)  # wrong channel count
    with pytest.raises(ValueError):
        build(Residual(body, projection), (1, 8, 8, 8))


def test_namer_generates_unique_names():
    namer = Namer("m")
    assert namer.name("conv") == "m/conv_0"
    assert namer.name("conv") == "m/conv_1"
    assert namer.name("bn") == "m/bn_0"


# ----------------------------------------------------------------------
# Lowering
# ----------------------------------------------------------------------
def small_model():
    return Sequential(
        Conv2d(3, 8, 3, padding=1), BatchNorm2d(8), ReLU(),
        GlobalAvgPool2d(), Flatten(), Linear(8, 10),
    )


def test_inference_plan_structure():
    plan = lower_inference(small_model(), (2, 3, 16, 16), "tiny")
    phases = [op.phase for op in plan.ops]
    assert phases[0] == "copy"
    assert phases[-1] == "output"
    assert all(p == "forward" for p in phases[1:-1])
    assert plan.kind == "inference"
    assert plan.batch_size == 2


def test_training_plan_has_all_phases():
    plan = lower_training(small_model(), (2, 3, 16, 16), "tiny")
    phases = {op.phase for op in plan.ops}
    assert phases == {"copy", "forward", "backward", "update"}


def test_training_backward_reversed():
    plan = lower_training(small_model(), (2, 3, 16, 16), "tiny")
    backward = [op.spec.name for op in plan.ops if op.phase == "backward"]
    # First backward kernel is the loss; last ones belong to the first layer.
    assert "loss" in backward[0]
    assert "conv2d" in backward[-1]


def test_training_costs_more_than_inference():
    inf = lower_inference(small_model(), (2, 3, 16, 16), "tiny-i")
    train = lower_training(small_model(), (2, 3, 16, 16), "tiny-t")
    inf_flops = sum(s.flops for s in inf.kernel_specs())
    train_flops = sum(s.flops for s in train.kernel_specs())
    assert train_flops > 2 * inf_flops


def test_update_kernels_cover_params():
    plan = lower_training(small_model(), (2, 3, 16, 16), "tiny")
    updates = [op for op in plan.ops if op.phase == "update"]
    assert updates
    covered = sum(s.spec.bytes_moved for s in updates) / (7 * 4)
    assert covered == pytest.approx(plan.params, rel=0.01)


def test_instantiate_plan_materializes_ops():
    plan = lower_inference(small_model(), (2, 3, 16, 16), "tiny")
    ops = instantiate_plan(plan, V100_16GB, client_id="c")
    assert len(ops) == len(plan.ops)
    assert isinstance(ops[0], MemoryOp)
    assert all(isinstance(o, (KernelOp, MemoryOp)) for o in ops)
    kernel = next(o for o in ops if isinstance(o, KernelOp))
    assert kernel.client_id == "c"


def test_instantiate_plan_async_copies_flag():
    plan = lower_inference(small_model(), (2, 3, 16, 16), "tiny")
    sync_ops = instantiate_plan(plan, V100_16GB)
    async_ops = instantiate_plan(plan, V100_16GB, async_copies=True)
    assert sync_ops[0].blocking is True
    assert async_ops[0].blocking is False


def test_plan_input_bytes():
    plan = lower_inference(small_model(), (2, 3, 16, 16), "tiny")
    assert plan.input_bytes == 4 * 2 * 3 * 16 * 16


def test_state_bytes_larger_for_training():
    inf = lower_inference(small_model(), (2, 3, 16, 16), "tiny-i")
    train = lower_training(small_model(), (2, 3, 16, 16), "tiny-t")
    assert train.state_bytes > inf.state_bytes
