"""Kill-9 chaos harness for the durable serve daemon.

Each test starts a *real* daemon subprocess (``python -m repro serve
--journal ...``) with ``REPRO_SERVE_KILL_AT`` naming one injection
point, drives it over a Unix socket until the daemon SIGKILLs itself
at that point (asserted via ``returncode == -SIGKILL`` — no
sleep-and-hope timing), then restarts a daemon on the same journal
with the chaos env cleared and asserts the recovery invariants:

* **no job lost** — every journaled submit is present after restart;
* **none duplicated** — re-submitting the same idempotency key returns
  the original job id instead of enqueueing a second copy;
* **results byte-identical** — a recovered/re-run job's
  ``result_json`` equals a direct in-process ``run(scenario)`` at the
  same seed, byte for byte.

The in-process recovery-policy unit tests live in
tests/test_serve_journal.py; this file is only the full-process
crash loop.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.registry import make_scenario
from repro.experiments.scenario import run
from repro.serve import ServeClient

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

#: The canonical result every chaos job must recover to, byte for byte.
DIRECT_RESULT = run(make_scenario("faults", seed=0, duration=0.05)).to_json()


def _spawn(tmp_path, *extra, kill_at=None, workers=1):
    """Start a daemon subprocess on a tmp unix socket + journal."""
    sock = tmp_path / "serve.sock"
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_SERVE_KILL_AT", None)
    if kill_at is not None:
        env["REPRO_SERVE_KILL_AT"] = kill_at
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", str(sock), "--journal", str(tmp_path / "wal.ndjson"),
         "--workers", str(workers), "--telemetry-interval", "0",
         *extra],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    return proc, f"unix:{sock}"


def _reap(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=30)


def _wait_sigkilled(proc, timeout=60.0):
    """The daemon must die by its own SIGKILL within ``timeout``."""
    assert proc.wait(timeout=timeout) == -signal.SIGKILL


def _all_job_ids(client):
    summary = client.status()
    active = {record["id"] for record in summary["jobs"]}
    finished = {record["id"] for record in client.history(limit=1000)}
    return active | finished


@pytest.mark.parametrize("kill_at", ["mid_enqueue", "mid_run",
                                     "mid_result_write"])
def test_crash_then_recover_none_lost_none_duplicated(tmp_path, kill_at):
    proc, address = _spawn(tmp_path, kill_at=kill_at, workers=1)
    try:
        client = ServeClient.connect_retry(address, timeout=30)
        try:
            client.submit(name="faults", duration=0.05,
                          idempotency_key="chaos-1")
        except (ConnectionError, OSError):
            pass  # mid_enqueue: the daemon dies before the ack
        finally:
            client.close()
        _wait_sigkilled(proc)
    finally:
        _reap(proc)

    proc, address = _spawn(tmp_path, workers=1)
    try:
        client = ServeClient.connect_retry(address, timeout=30)
        with client:
            # No job lost: the journaled submit survived the crash...
            assert _all_job_ids(client) == {"job-0001"}
            # ...and none duplicated: the key maps to the original id.
            assert client.submit(name="faults", duration=0.05,
                                 idempotency_key="chaos-1") == "job-0001"
            assert _all_job_ids(client) == {"job-0001"}
            record = client.wait("job-0001", timeout=120)
            assert record["state"] == "COMPLETED"
            # Byte-identical to a direct same-seed run: the recovered
            # (or re-run) daemon result is the canonical result.
            assert client.result_json("job-0001") == DIRECT_RESULT
    finally:
        _reap(proc)


def test_crash_mid_compaction_replays_idempotently(tmp_path):
    # --snapshot-every 3: the third submit triggers compaction, and the
    # daemon dies after the snapshot os.replace but before the log
    # truncation — the worst spot, where every record exists in BOTH
    # the snapshot and the log.  seq floors must de-duplicate them.
    proc, address = _spawn(tmp_path, "--snapshot-every", "3",
                           kill_at="mid_compaction", workers=0)
    try:
        client = ServeClient.connect_retry(address, timeout=30)
        submitted = []
        try:
            for index in range(5):
                submitted.append(client.submit(
                    name="faults", duration=0.05,
                    idempotency_key=f"compact-{index}"))
        except (ConnectionError, OSError):
            pass  # died inside the compacting submit
        finally:
            client.close()
        _wait_sigkilled(proc)
        assert len(submitted) >= 2  # at least the pre-compaction acks
    finally:
        _reap(proc)

    proc, address = _spawn(tmp_path, workers=0)
    try:
        client = ServeClient.connect_retry(address, timeout=30)
        with client:
            assert _all_job_ids(client) == {"job-0001", "job-0002",
                                            "job-0003"}
            snapshot = client.telemetry()["snapshot"]
            assert snapshot["queue_depth"] == 3  # each exactly once
            for index in range(3):
                assert client.submit(
                    name="faults", duration=0.05,
                    idempotency_key=f"compact-{index}") == \
                    f"job-{index + 1:04d}"
    finally:
        _reap(proc)


def test_crash_mid_run_with_recover_fail_marks_interrupted(tmp_path):
    proc, address = _spawn(tmp_path, kill_at="mid_run", workers=1)
    try:
        client = ServeClient.connect_retry(address, timeout=30)
        with client:
            job = client.submit(name="faults", duration=0.05)
        _wait_sigkilled(proc)
    finally:
        _reap(proc)

    proc, address = _spawn(tmp_path, "--recover", "fail", workers=0)
    try:
        client = ServeClient.connect_retry(address, timeout=30)
        with client:
            record = client.status(job)
            assert record["state"] == "INTERRUPTED"
            reason = json.loads(record["error"])
            assert reason["reason"] == "daemon_crash"
            assert reason["recover"] == "fail"
    finally:
        _reap(proc)


def test_repeated_crashes_converge(tmp_path):
    # Crash the daemon twice at different points over one journal, then
    # verify the job still completes exactly once with the canonical
    # bytes — recovery must compose with itself.
    for kill_at in ("mid_run", "mid_result_write"):
        proc, address = _spawn(tmp_path, "--max-retries", "5",
                               kill_at=kill_at, workers=1)
        try:
            client = ServeClient.connect_retry(address, timeout=30)
            try:
                client.submit(name="faults", duration=0.05,
                              idempotency_key="converge")
            except (ConnectionError, OSError):
                pass
            finally:
                client.close()
            _wait_sigkilled(proc)
        finally:
            _reap(proc)

    proc, address = _spawn(tmp_path, "--max-retries", "5", workers=1)
    try:
        client = ServeClient.connect_retry(address, timeout=30)
        with client:
            assert _all_job_ids(client) == {"job-0001"}
            record = client.wait("job-0001", timeout=120)
            assert record["state"] == "COMPLETED"
            assert client.result_json("job-0001") == DIRECT_RESULT
    finally:
        _reap(proc)


def test_client_submit_reconnects_across_restart(tmp_path):
    # ServeClient.submit with an idempotency key + retries survives the
    # daemon being hard-killed and restarted between attempts.
    proc, address = _spawn(tmp_path, workers=0)
    try:
        client = ServeClient.connect_retry(address, timeout=30)
        job = client.submit(name="faults", duration=0.05,
                            idempotency_key="resilient")
        proc.kill()
        proc.wait(timeout=30)
        proc, address = _spawn(tmp_path, workers=0)
        deadline = time.monotonic() + 60
        while True:  # retry across the restart window
            try:
                again = client.submit(name="faults", duration=0.05,
                                      idempotency_key="resilient",
                                      retries=3)
                break
            except (ConnectionError, OSError):
                assert time.monotonic() < deadline
                time.sleep(0.1)
        assert again == job
        client.close()
    finally:
        _reap(proc)
