"""Unit tests for the interference model."""

import pytest

from repro.gpu.contention import ContentionModel, ContentionParams, profile_similarity
from repro.gpu.specs import V100_16GB

from helpers import BN_LIKE, CONV_LIKE, compute_spec, memory_spec, make_kernel


def model(**kwargs):
    return ContentionModel(V100_16GB.num_sms, ContentionParams(**kwargs))


def rates_of(kernels, priorities=None):
    priorities = priorities or {}
    return model().rates(kernels, priorities)


def test_empty_set_has_no_rates():
    assert rates_of([]) == {}


def test_solo_kernel_runs_at_full_rate():
    k = make_kernel(compute_spec())
    assert rates_of([k])[k.seq] == pytest.approx(1.0)


def test_rates_in_unit_interval():
    kernels = [make_kernel(compute_spec(f"c{i}")) for i in range(4)]
    for rate in rates_of(kernels).values():
        assert 0 < rate <= 1.0


def test_same_profile_compute_kernels_slow_each_other():
    a = make_kernel(compute_spec("a"))
    b = make_kernel(compute_spec("b"))
    rates = rates_of([a, b])
    assert rates[a.seq] < 0.75
    assert rates[b.seq] < 0.75


def test_opposite_profiles_interfere_less_than_same():
    c1 = make_kernel(compute_spec("c1"))
    c2 = make_kernel(compute_spec("c2"))
    m1 = make_kernel(memory_spec("m1"))
    same = rates_of([c1, c2])[c1.seq]
    opposite = rates_of([c1, m1])[c1.seq]
    assert opposite > same


def test_more_co_runners_never_speed_you_up():
    base = make_kernel(compute_spec("base"))
    others = [make_kernel(memory_spec(f"m{i}", blocks=32)) for i in range(3)]
    previous = 1.0
    for n in range(len(others) + 1):
        rate = rates_of([base] + others[:n])[base.seq]
        assert rate <= previous + 1e-12
        previous = rate


def test_priority_discounts_interference_for_high_priority():
    # Small SM footprints so warp-issue arbitration (priority-aware)
    # dominates over block-slot timesharing (priority-blind).
    hp = make_kernel(compute_spec("hp", sms=160))
    be = make_kernel(compute_spec("be", sms=160))
    equal = rates_of([hp, be])[hp.seq]
    prioritized = rates_of([hp, be], {hp.seq: 1, be.seq: 0})[hp.seq]
    assert prioritized > equal


def test_priority_amplifies_interference_for_low_priority():
    hp = make_kernel(compute_spec("hp", sms=160))
    be = make_kernel(compute_spec("be", sms=160))
    equal = rates_of([hp, be])[be.seq]
    deprioritized = rates_of([hp, be], {hp.seq: 1, be.seq: 0})[be.seq]
    assert deprioritized < equal


def test_priority_does_not_discount_sm_slot_competition():
    # Two machine-filling compute kernels timeshare regardless of
    # stream priority (block slots are not preemptible).
    hp = make_kernel(compute_spec("hp", sms=640))
    be = make_kernel(compute_spec("be", sms=640))
    rates = rates_of([hp, be], {hp.seq: 1, be.seq: 0})
    assert rates[hp.seq] <= 0.55


def test_profile_similarity_identical_is_one():
    k = make_kernel(compute_spec())
    assert profile_similarity(k, k) == pytest.approx(1.0)


def test_profile_similarity_opposite_is_low():
    c = make_kernel(CONV_LIKE)
    m = make_kernel(BN_LIKE)
    assert profile_similarity(c, m) < 0.5


def test_profile_similarity_symmetric():
    a = make_kernel(compute_spec("a"))
    b = make_kernel(memory_spec("b"))
    assert profile_similarity(a, b) == pytest.approx(profile_similarity(b, a))


def test_device_utilization_caps_at_one():
    kernels = [make_kernel(compute_spec(f"k{i}")) for i in range(5)]
    rates = {k.seq: 1.0 for k in kernels}
    c, m, s = model().device_utilization(kernels, rates)
    assert c <= 1.0 and m <= 1.0 and s <= 1.0


def test_device_utilization_scales_with_rate():
    k = make_kernel(compute_spec())
    full, _, _ = model().device_utilization([k], {k.seq: 1.0})
    half, _, _ = model().device_utilization([k], {k.seq: 0.5})
    assert half == pytest.approx(full / 2)


def test_params_validation():
    with pytest.raises(ValueError):
        ContentionParams(alpha_compute=0.5)
    with pytest.raises(ValueError):
        ContentionParams(gamma_sm=-1)
    with pytest.raises(ValueError):
        ContentionParams(beta_coresidency=-0.1)
    with pytest.raises(ValueError):
        ContentionParams(priority_weight_base=0.5)
    with pytest.raises(ValueError):
        ContentionModel(0)


def test_beta_zero_disables_residency_penalty():
    params_off = ContentionParams(beta_coresidency=0.0)
    params_on = ContentionParams(beta_coresidency=0.3)
    a = make_kernel(memory_spec("a", util=0.3, blocks=32))
    b = make_kernel(memory_spec("b", util=0.3, blocks=32))
    off = ContentionModel(80, params_off).rates([a, b], {})[a.seq]
    on = ContentionModel(80, params_on).rates([a, b], {})[a.seq]
    assert on < off
