"""Pins the interference-model calibration to the paper's Table 2.

These tests are the anchor of the whole reproduction: the contention
constants (DESIGN.md §3) must keep producing the paper's measured
collocation speedups for the Conv2d/BN2d toy experiment.  If a model
change breaks these, every downstream figure loses its grounding.
"""

import pytest

from repro.gpu.device import GpuDevice
from repro.gpu.specs import V100_16GB
from repro.kernels.costmodel import instantiate_kernel
from repro.kernels.kernel import ResourceProfile
from repro.sim.engine import Simulator
from repro.sim.process import spawn

from helpers import BN_LIKE, CONV_LIKE


def run_pair(spec_a, spec_b, collocated):
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    record = {}
    if collocated:
        sa, sb = device.create_stream(), device.create_stream()

        def run():
            da = sa.submit(instantiate_kernel(spec_a, V100_16GB))
            db = sb.submit(instantiate_kernel(spec_b, V100_16GB))
            yield da
            yield db
            record["t"] = sim.now
    else:
        stream = device.create_stream()

        def run():
            stream.submit(instantiate_kernel(spec_a, V100_16GB))
            done = stream.submit(instantiate_kernel(spec_b, V100_16GB))
            yield done
            record["t"] = sim.now

    spawn(sim, run())
    sim.run()
    return record["t"]


def speedup(spec_a, spec_b):
    return run_pair(spec_a, spec_b, False) / run_pair(spec_a, spec_b, True)


def test_toy_kernels_match_paper_characterization():
    conv = instantiate_kernel(CONV_LIKE, V100_16GB)
    bn = instantiate_kernel(BN_LIKE, V100_16GB)
    # Paper §3.2: Conv2d 1.35 ms / 89% compute / 20% membw / 100% SMs;
    # BN2d 0.93 ms / 14% compute / 80% membw / 40% SMs.
    assert conv.duration == pytest.approx(1.35e-3, rel=0.02)
    assert bn.duration == pytest.approx(0.93e-3, rel=0.02)
    assert conv.compute_util == pytest.approx(0.89, abs=0.02)
    assert conv.memory_util == pytest.approx(0.20, abs=0.02)
    assert bn.compute_util == pytest.approx(0.14, abs=0.02)
    assert bn.memory_util == pytest.approx(0.80, abs=0.02)
    assert conv.sm_needed == V100_16GB.num_sms
    assert bn.sm_needed == pytest.approx(0.4 * V100_16GB.num_sms, abs=2)
    assert conv.profile is ResourceProfile.COMPUTE
    assert bn.profile is ResourceProfile.MEMORY


def test_conv_conv_collocation_gains_nothing():
    # Paper Table 2: 0.98x — two machine-filling compute kernels
    # effectively serialize.
    assert speedup(CONV_LIKE, CONV_LIKE) == pytest.approx(0.98, abs=0.10)


def test_bn_bn_collocation_small_gain():
    # Paper Table 2: 1.08x — same-profile memory kernels interfere.
    assert speedup(BN_LIKE, BN_LIKE) == pytest.approx(1.08, abs=0.10)


def test_conv_bn_collocation_large_gain():
    # Paper Table 2: 1.41x — opposite profiles collocate well.  The
    # simulator lands slightly high; the pinned band keeps the ordering
    # and the magnitude class.
    assert speedup(CONV_LIKE, BN_LIKE) == pytest.approx(1.45, abs=0.15)


def test_collocation_ordering_matches_paper():
    conv_conv = speedup(CONV_LIKE, CONV_LIKE)
    bn_bn = speedup(BN_LIKE, BN_LIKE)
    conv_bn = speedup(CONV_LIKE, BN_LIKE)
    assert conv_conv < bn_bn < conv_bn
