"""Unit tests for the model zoo, arrival processes, and trace generators."""

import numpy as np
import pytest

from repro.workloads.apollo import apollo_trace
from repro.workloads.arrivals import (
    ClosedLoop,
    PoissonArrivals,
    TraceArrivals,
    UniformArrivals,
    make_arrivals,
)
from repro.workloads.models import (
    DEFAULT_BATCH_SIZES,
    MODEL_NAMES,
    batch_size_for,
    get_plan,
)
from repro.workloads.rates import TABLE3_RPS, rps_for


# ----------------------------------------------------------------------
# Model zoo
# ----------------------------------------------------------------------
def test_all_models_have_inference_and_training_plans():
    for model in MODEL_NAMES:
        for kind in ("inference", "training"):
            plan = get_plan(model, kind)
            assert plan.kernel_count > 50
            assert plan.kind == kind


def test_plans_are_cached():
    assert get_plan("resnet50", "inference") is get_plan("resnet50", "inference")


def test_table1_batch_sizes():
    assert batch_size_for("resnet50", "inference") == 4
    assert batch_size_for("bert", "inference") == 2
    assert batch_size_for("mobilenet_v2", "training") == 64
    assert batch_size_for("bert", "training") == 8
    assert len(DEFAULT_BATCH_SIZES) == 10


def test_unknown_model_rejected():
    with pytest.raises(KeyError):
        get_plan("alexnet", "inference")


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        get_plan("resnet50", "finetuning")


def test_resnet101_deeper_than_resnet50():
    p50 = get_plan("resnet50", "inference")
    p101 = get_plan("resnet101", "inference")
    assert p101.kernel_count > p50.kernel_count


def test_custom_batch_size_scales_work():
    small = get_plan("resnet50", "inference", batch_size=1)
    large = get_plan("resnet50", "inference", batch_size=8)
    small_flops = sum(s.flops for s in small.kernel_specs())
    large_flops = sum(s.flops for s in large.kernel_specs())
    assert large_flops == pytest.approx(8 * small_flops, rel=0.05)


def test_kernel_names_unique_within_plan():
    for model in MODEL_NAMES:
        names = [s.name for s in get_plan(model, "training").kernel_specs()]
        assert len(names) == len(set(names)), f"duplicate kernel ids in {model}"


def test_training_plan_params_positive():
    for model in MODEL_NAMES:
        assert get_plan(model, "training").params > 1e6


# ----------------------------------------------------------------------
# Table 3 rates
# ----------------------------------------------------------------------
def test_table3_verbatim_values():
    assert rps_for("resnet50", "inf_inf_uniform") == 80
    assert rps_for("mobilenet_v2", "inf_inf_poisson") == 65
    assert rps_for("resnet101", "inf_train_poisson") == 9
    assert rps_for("bert", "inf_inf_uniform") == 8
    assert rps_for("transformer", "inf_train_poisson") == 8


def test_table3_covers_all_models():
    assert set(TABLE3_RPS) == set(MODEL_NAMES)


def test_table3_unknown_lookup_raises():
    with pytest.raises(KeyError):
        rps_for("resnet50", "nonexistent")


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
def test_uniform_arrivals_are_periodic():
    times = list(UniformArrivals(10.0).arrival_times(1.0))
    assert len(times) == 10  # t=0.0 through t=0.9
    assert times[0] == 0.0
    gaps = np.diff(times)
    assert np.allclose(gaps, 0.1)


def test_uniform_offset():
    times = list(UniformArrivals(10.0, offset=0.05).arrival_times(0.3))
    assert times[0] == pytest.approx(0.05)


def test_poisson_mean_rate():
    rng = np.random.default_rng(0)
    times = list(PoissonArrivals(100.0, rng).arrival_times(50.0))
    assert len(times) == pytest.approx(5000, rel=0.05)


def test_poisson_is_reproducible():
    a = list(PoissonArrivals(50.0, np.random.default_rng(1)).arrival_times(5.0))
    b = list(PoissonArrivals(50.0, np.random.default_rng(1)).arrival_times(5.0))
    assert a == b


def test_poisson_interarrival_cv_near_one():
    rng = np.random.default_rng(2)
    times = np.array(list(PoissonArrivals(200.0, rng).arrival_times(50.0)))
    gaps = np.diff(times)
    cv = gaps.std() / gaps.mean()
    assert 0.9 < cv < 1.1


def test_trace_arrivals_replay_sorted():
    trace = TraceArrivals([0.3, 0.1, 0.2])
    assert list(trace.arrival_times(1.0)) == [0.1, 0.2, 0.3]


def test_trace_arrivals_respect_horizon():
    trace = TraceArrivals([0.1, 0.5, 0.9])
    assert list(trace.arrival_times(0.6)) == [0.1, 0.5]


def test_trace_rejects_negative_timestamps():
    with pytest.raises(ValueError):
        TraceArrivals([-0.1, 0.2])


def test_closed_loop_emits_nothing():
    assert list(ClosedLoop().arrival_times(10.0)) == []
    assert ClosedLoop().closed_loop


def test_make_arrivals_factory():
    assert isinstance(make_arrivals("uniform", rps=10), UniformArrivals)
    assert isinstance(make_arrivals("poisson", rps=10), PoissonArrivals)
    assert isinstance(make_arrivals("trace", timestamps=[0.1]), TraceArrivals)
    assert isinstance(make_arrivals("closed"), ClosedLoop)
    with pytest.raises(ValueError):
        make_arrivals("burst")
    with pytest.raises(ValueError):
        make_arrivals("trace")


def test_rate_validation():
    with pytest.raises(ValueError):
        UniformArrivals(0)
    with pytest.raises(ValueError):
        PoissonArrivals(-1)


# ----------------------------------------------------------------------
# Apollo trace
# ----------------------------------------------------------------------
def test_apollo_trace_reproducible():
    assert apollo_trace(10.0, seed=3) == apollo_trace(10.0, seed=3)


def test_apollo_trace_seed_sensitivity():
    assert apollo_trace(10.0, seed=3) != apollo_trace(10.0, seed=4)


def test_apollo_trace_within_horizon():
    trace = apollo_trace(5.0, seed=0)
    assert all(0 <= t < 5.0 for t in trace)


def test_apollo_trace_monotone():
    trace = apollo_trace(10.0, seed=1)
    assert trace == sorted(trace)


def test_apollo_mean_rate_near_base():
    trace = apollo_trace(120.0, seed=5)
    rate = len(trace) / 120.0
    assert 12 < rate < 50  # base 25 modulated by phases


def test_apollo_trace_is_bursty():
    # Phase modulation should produce clearly non-uniform local rates.
    trace = np.array(apollo_trace(120.0, seed=6))
    counts, _ = np.histogram(trace, bins=120)
    assert counts.max() > 2 * max(counts.min(), 1)


def test_apollo_validation():
    with pytest.raises(ValueError):
        apollo_trace(0.0)
    with pytest.raises(ValueError):
        apollo_trace(1.0, base_rps=0)
