"""Tests for the multi-GPU resilience fleet (repro.cluster.fleet)."""

import pytest

from repro.cluster.fleet import (
    GpuHealth,
    TenantPolicy,
    TenantSpec,
    run_fleet_scenario,
)
from repro.experiments.registry import make_scenario
from repro.experiments.scenario import SCENARIO_KINDS, Scenario, run
from repro.faults import (
    FaultInjector,
    FaultPlan,
    GpuCrash,
    GpuDegrade,
    GpuRecover,
    KillClient,
)
from repro.sim.engine import Simulator


def run_fleet(**params):
    return run(Scenario(kind="fleet", params=params)).result


# ---------------------------------------------------------------------------
# Plumbing: specs, policies, health


def test_tenant_policy_validation():
    with pytest.raises(ValueError):
        TenantPolicy(max_concurrency=0)
    with pytest.raises(ValueError):
        TenantPolicy(max_queued=-1)
    with pytest.raises(ValueError):
        TenantPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        TenantPolicy(backoff_base=0.0)
    with pytest.raises(ValueError):
        TenantSpec("t", rps=0.0)
    with pytest.raises(ValueError):
        TenantSpec("")


def test_gpu_health_score():
    health = GpuHealth(window=4, latency_tolerance=2.0)
    assert health.score() == 1.0  # no observations yet
    health.observe(True, 1.0)
    assert health.score() == 1.0
    health.observe(False)
    assert health.score() == pytest.approx(0.5)
    # Latency past tolerance scales the score down.
    fast = GpuHealth(window=4, latency_tolerance=2.0)
    for _ in range(4):
        fast.observe(True, 4.0)
    assert fast.score() == pytest.approx(0.5)
    # The window forgets old failures.
    for _ in range(4):
        health.observe(True, 1.0)
    assert health.score() == 1.0


def test_gpu_health_window_of_one():
    health = GpuHealth(window=1, latency_tolerance=2.0)
    health.observe(False)
    assert health.score() == 0.0
    # A single new observation fully replaces the window.
    health.observe(True, 1.0)
    assert health.score() == 1.0
    with pytest.raises(ValueError):
        GpuHealth(window=0)
    with pytest.raises(ValueError):
        GpuHealth(latency_tolerance=0.0)


def test_gpu_health_mean_exactly_at_tolerance():
    # The latency penalty is strict: a mean exactly at the tolerance
    # does not scale the score down.
    health = GpuHealth(window=4, latency_tolerance=2.0)
    for _ in range(4):
        health.observe(True, 2.0)
    assert health.score() == 1.0
    health.observe(True, 2.0 + 4e-9)  # nudge the mean past tolerance
    assert health.score() < 1.0


def test_gpu_health_reset_clears_window():
    health = GpuHealth(window=8, latency_tolerance=2.0)
    for _ in range(8):
        health.observe(False, 10.0)
    assert health.score() == 0.0
    health.reset()
    assert health.score() == 1.0  # clean slate, no observations


def test_degraded_recover_resets_health_window():
    # Degrade a GPU hard, then recover it: the stale inflated-latency
    # samples must not keep the recovered GPU demoted in routing.
    result = run_fleet(
        seed=0, duration=0.15, num_gpus=2,
        plan=FaultPlan((GpuDegrade(0, at_time=0.03, slowdown=8.0),
                        GpuRecover(0, at_time=0.1))))
    gpu0 = result.report["gpus"]["gpu0"]
    assert gpu0["state"] == "up"
    assert gpu0["recoveries"] == 1
    # Post-recovery the health score reflects only fresh samples; with
    # the slowdown gone it must sit near perfect, not at the degraded
    # floor the old window would pin it to.
    assert gpu0["health"] > 0.9


def test_fleet_fault_events_validate():
    with pytest.raises(ValueError):
        GpuCrash(-1, at_time=0.1)
    with pytest.raises(ValueError):
        GpuDegrade(0, at_time=0.1, slowdown=1.0)
    with pytest.raises(ValueError):
        GpuRecover(0, at_time=-1.0)


def test_sample_fleet_plan_deterministic_and_bounded():
    plan = FaultPlan.sample_fleet(3, 8, horizon=1.0, crashes=2, degrades=1,
                                  recover_after=0.2)
    again = FaultPlan.sample_fleet(3, 8, horizon=1.0, crashes=2, degrades=1,
                                   recover_after=0.2)
    assert plan == again
    crashes = [e for e in plan if isinstance(e, GpuCrash)]
    degrades = [e for e in plan if isinstance(e, GpuDegrade)]
    recovers = [e for e in plan if isinstance(e, GpuRecover)]
    assert (len(crashes), len(degrades), len(recovers)) == (2, 1, 3)
    assert plan.max_gpu_index() < 8
    for event in crashes + degrades:
        assert 0.3 <= event.at_time <= 0.7
    for event in recovers:
        assert event.at_time <= 1.0
    # Victims are distinct.
    victims = [e.gpu for e in crashes + degrades]
    assert len(set(victims)) == len(victims)


def test_injector_requires_fleet_target_for_gpu_events():
    sim = Simulator()
    plan = FaultPlan((GpuCrash(0, at_time=0.1),))
    with pytest.raises(ValueError, match="no fleet target"):
        FaultInjector(sim, plan).start()


# ---------------------------------------------------------------------------
# Scenario-level behaviour


def test_fleet_rejects_bad_plans():
    with pytest.raises(ValueError, match="only GPU-level"):
        run_fleet(seed=0, duration=0.02, num_gpus=2,
                  plan=FaultPlan((KillClient("hp", at_time=0.01),)))
    with pytest.raises(ValueError, match="has only 2 GPUs"):
        run_fleet(seed=0, duration=0.02, num_gpus=2,
                  plan=FaultPlan((GpuCrash(5, at_time=0.01),)))
    with pytest.raises(ValueError, match="high-priority"):
        run_fleet(seed=0, duration=0.02, num_gpus=2, plan=FaultPlan(()),
                  tenants=[
                      TenantSpec("a", rps=50.0, high_priority=True),
                      TenantSpec("b", rps=50.0, high_priority=True),
                  ])


def test_fleet_fault_free_run_serves_everyone():
    result = run_fleet(seed=0, duration=0.05, num_gpus=2, plan=FaultPlan(()))
    report = result.report
    assert report["faults"] == {"crashes": 0, "degrades": 0, "recoveries": 0}
    assert report["failover"]["orphaned"] == 0
    assert report["fleet_uptime_fraction"] == 1.0
    assert result.hp_latency.count > 0
    for name in ("hp", "be-0", "be-1"):
        assert result.jobs[name].failed == 0
    # Every decision targets a valid GPU index.
    assert result.routing["decisions"] == len(result.decisions)
    assert all(0 <= gpu < 2 for _, _, gpu in result.decisions)


def test_fleet_crash_fails_over_and_recovers():
    duration = 0.08
    plan = FaultPlan((GpuCrash(0, at_time=0.03),
                      GpuRecover(0, at_time=0.06)))
    result = run_fleet(seed=1, duration=duration, num_gpus=2, plan=plan)
    report = result.report
    assert report["faults"] == {"crashes": 1, "degrades": 0, "recoveries": 1}
    gpu0 = report["gpus"]["gpu0"]
    assert gpu0["state"] == "up"  # recovered
    assert gpu0["crashes"] == 1 and gpu0["recoveries"] == 1
    assert gpu0["uptime_fraction"] == pytest.approx(1 - 0.03 / duration,
                                                    abs=1e-6)
    assert report["mean_time_to_recover"] == pytest.approx(0.03, abs=1e-6)
    # No routing decision targets gpu0 while it was down.
    for t, _seq, gpu in result.decisions:
        assert not (gpu == 0 and 0.03 < t < 0.06)
    # The fleet kept serving on gpu1 and resumed on gpu0 after recovery.
    assert any(gpu == 0 and t >= 0.06 for t, _seq, gpu in result.decisions)
    assert report["failover"]["orphaned"] >= 0
    # The gpu ledger entry carries the uptime/recovery fields.
    entry = result.ledger.client("gpu0").to_dict()
    assert entry["uptime_fraction"] == pytest.approx(1 - 0.03 / duration,
                                                     abs=1e-6)
    assert entry["time_to_recover"] == pytest.approx(0.03, abs=1e-6)


def test_fleet_degrade_demotes_gpu_in_routing():
    plan = FaultPlan((GpuDegrade(0, at_time=0.01, slowdown=6.0),))
    result = run_fleet(seed=2, duration=0.08, num_gpus=2, plan=plan)
    report = result.report
    gpu0, gpu1 = report["gpus"]["gpu0"], report["gpus"]["gpu1"]
    assert gpu0["state"] == "degraded"
    assert gpu0["health"] < 1.0, "health tracker never observed the slowdown"
    assert gpu1["health"] == 1.0
    # The degraded GPU stays *routable* but receives less work.
    assert gpu0["jobs_completed"] > 0
    assert gpu0["jobs_completed"] < gpu1["jobs_completed"]
    # Degradation is not downtime.
    assert gpu0["uptime_fraction"] == 1.0


def test_fleet_crash_orphans_readmitted_elsewhere():
    # High load so the crashed GPU holds queued jobs at crash time.
    result = run_fleet(seed=3, duration=0.06, num_gpus=3,
                       plan=FaultPlan((GpuCrash(1, at_time=0.03),)),
                       hp_load=0.4, be_load=0.8)
    fo = result.report["failover"]
    assert fo["orphaned"] > 0
    assert fo["failovers"] + fo["retry_exhausted"] == fo["orphaned"]
    assert fo["readmitted"] > 0
    # Re-admitted work lands on surviving GPUs only.
    for t, _seq, gpu in result.decisions:
        assert not (gpu == 1 and t > 0.03)


def test_fleet_tenant_policy_max_queued_sheds():
    tenants = [
        TenantSpec("hp", rps=200.0, high_priority=True),
        TenantSpec("be", rps=2000.0,
                   policy=TenantPolicy(max_concurrency=1, max_queued=2)),
    ]
    result = run_fleet(seed=4, duration=0.05, num_gpus=2,
                       plan=FaultPlan(()), tenants=tenants)
    be = result.report["tenants"]["be"]
    assert be["shed"] > 0, "max_queued never shed despite 2000 rps"
    assert result.jobs["be"].shed == be["shed"]
    # max_concurrency=1: never more than one be job dispatched at once,
    # so at most one decision per completion — served stays well below
    # what an uncapped tenant would reach at this rate.
    assert be["served"] > 0


def test_fleet_priority_boost_orders_backlog():
    # Both tenants compete for a single GPU slot; the boosted one wins.
    tenants = [
        TenantSpec("a", rps=400.0,
                   policy=TenantPolicy(priority_boost=1.0)),
        TenantSpec("b", rps=400.0),
    ]
    result = run_fleet(seed=5, duration=0.04, num_gpus=1,
                       plan=FaultPlan(()), tenants=tenants)
    served = result.report["tenants"]
    assert served["a"]["served"] > served["b"]["served"]


def test_fleet_deterministic_byte_identical():
    params = dict(seed=6, duration=0.05, num_gpus=3, crashes=1, degrades=1,
                  recover_after=0.02)
    first = run(Scenario(kind="fleet", params=dict(params)))
    replay = run(Scenario(kind="fleet", params=dict(params)))
    assert first.to_json() == replay.to_json()
    # The digest covers timing, job identity, and target of every
    # routing decision.
    assert first.result.routing["digest"] == replay.result.routing["digest"]


def test_fleet_scenario_api_integration():
    assert "fleet" in SCENARIO_KINDS
    scenario = make_scenario("fleet", seed=1, duration=0.02, num_gpus=2)
    assert scenario.kind == "fleet" and scenario.seed == 1
    ref = make_scenario("fleet_ref")
    assert ref.params["num_gpus"] == 8
    wrapped = run(scenario)
    assert wrapped.result.num_gpus == 2
    canonical = wrapped.canonical()
    assert canonical["kind"] == "fleet"
    assert set(canonical["result"]) == {
        "num_gpus", "backend", "plan", "hp_latency", "jobs", "report",
        "routing", "migration", "ledger"}


def test_run_fleet_scenario_wrapper():
    result = run_fleet_scenario(seed=0, duration=0.02, num_gpus=2,
                                plan=FaultPlan(()))
    assert result.num_gpus == 2
    assert result.report["num_gpus"] == 2
