"""Overload protection: bounded queues, deadlines, shedding, SLO guard."""

import json

import numpy as np
import pytest

from repro.core.scheduler import OrionBackend, OrionConfig
from repro.core.sloguard import SloGuard, SloGuardConfig
from repro.gpu.device import GpuDevice
from repro.gpu.errors import CudaError, CudaErrorCode
from repro.gpu.specs import V100_16GB
from repro.metrics.availability import ErrorLedger
from repro.profiler.profiles import KernelProfile, ModelProfile, ProfileStore
from repro.runtime.backend import SoftwareQueue
from repro.runtime.client import ClientContext
from repro.runtime.host import HostThread
from repro.sim.engine import Simulator
from repro.sim.process import Timeout, spawn
from repro.workloads.arrivals import (
    BurstArrivals,
    RampArrivals,
    make_arrivals,
)

from helpers import compute_spec, make_kernel


def store_for(*ops):
    store = ProfileStore()
    profile = ModelProfile("synthetic", "inference", "V100-16GB", 10e-3)
    for op in ops:
        profile.kernels[op.spec.name] = KernelProfile(
            op.spec.name, op.duration, op.compute_util, op.memory_util,
            op.sm_needed, op.profile,
        )
    store.add(profile)
    return store


def setup_backend(sim, config=None, ops=()):
    device = GpuDevice(sim, V100_16GB)
    backend = OrionBackend(sim, device, store_for(*ops),
                           config or OrionConfig(hp_request_latency=10e-3))
    hp_ctx = ClientContext(backend, "hp", HostThread(sim), high_priority=True)
    be_ctx = ClientContext(backend, "be", HostThread(sim))
    backend.start()
    return backend, device, hp_ctx, be_ctx


# ----------------------------------------------------------------------
# SoftwareQueue bounds and hysteresis
# ----------------------------------------------------------------------
def test_queue_depth_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        SoftwareQueue(sim, "c", max_depth=0)
    with pytest.raises(ValueError):
        SoftwareQueue(sim, "c", max_depth=4, high_water=0)
    with pytest.raises(ValueError):
        SoftwareQueue(sim, "c", max_depth=4, high_water=5)


def test_queue_high_water_defaults_to_half():
    sim = Simulator()
    queue = SoftwareQueue(sim, "c", max_depth=8)
    assert queue.high_water == 4
    assert SoftwareQueue(sim, "c", max_depth=1).high_water == 1


def test_unbounded_queue_never_full():
    sim = Simulator()
    queue = SoftwareQueue(sim, "c")
    for _ in range(100):
        queue.push(make_kernel(compute_spec()))
    assert not queue.full
    assert queue.max_depth is None
    assert queue.wait_for_room().triggered


def test_queue_full_and_snapshot_counters():
    sim = Simulator()
    queue = SoftwareQueue(sim, "c", max_depth=2)
    queue.push(make_kernel(compute_spec()))
    assert not queue.full
    queue.push(make_kernel(compute_spec()))
    assert queue.full
    queue.rejected_total += 1
    snap = queue.snapshot()
    assert snap == {"depth": 2, "enqueued_total": 2, "max_depth_seen": 2,
                    "rejected_total": 1, "max_depth": 2}
    queue.pop()
    assert queue.snapshot()["depth"] == 1
    assert queue.snapshot()["max_depth_seen"] == 2


def test_wait_for_room_hysteresis():
    """A blocked waiter is released at the high-water mark, not on the
    first pop — the anti-thrash hysteresis."""
    sim = Simulator()
    queue = SoftwareQueue(sim, "c", max_depth=4, high_water=2)
    for _ in range(4):
        queue.push(make_kernel(compute_spec()))
    waiter = queue.wait_for_room()
    assert not waiter.triggered
    queue.pop()          # depth 3 > high_water
    assert not waiter.triggered
    queue.pop()          # depth 2 == high_water
    assert waiter.triggered


def test_drain_releases_waiters_unconditionally():
    sim = Simulator()
    queue = SoftwareQueue(sim, "c", max_depth=2)
    queue.push(make_kernel(compute_spec()))
    queue.push(make_kernel(compute_spec()))
    waiter = queue.wait_for_room()
    assert not waiter.triggered
    drained = queue.drain()
    assert len(drained) == 2
    assert waiter.triggered


# ----------------------------------------------------------------------
# Orion reject policy (load shedding at the queue)
# ----------------------------------------------------------------------
def test_queue_full_error_is_not_sticky():
    err = CudaError(CudaErrorCode.QUEUE_FULL, "full", client_id="be")
    assert not err.sticky


def test_reject_policy_sheds_with_queue_full():
    sim = Simulator()
    op = make_kernel(compute_spec("be-k", duration=1e-3))
    config = OrionConfig(hp_request_latency=10e-3, be_queue_depth=2,
                         overload_policy="reject")
    backend, _device, _hp, be_ctx = setup_backend(sim, config, ops=[op])
    backend.suspend_be_admission()  # keep the queue from draining
    record = {}

    def run():
        signals = []
        for i in range(5):
            done = yield from be_ctx.launch_kernel(
                make_kernel(compute_spec("be-k", duration=1e-3)))
            signals.append(done)
        record["rejected"] = [s for s in signals
                              if s.error is not None
                              and s.error.code is CudaErrorCode.QUEUE_FULL]

    spawn(sim, run())
    sim.run(until=0.1)
    assert len(record["rejected"]) == 3  # depth 2 admitted, rest shed
    snap = backend.queue_telemetry()["be"]
    assert snap["rejected_total"] == 3
    assert snap["depth"] == 2
    # Non-sticky: the context stays healthy and the errors are logged.
    assert not be_ctx.poisoned
    assert len(be_ctx.errors) == 3


def test_block_policy_bounds_depth_and_wakes_on_drain():
    sim = Simulator()
    op = make_kernel(compute_spec("be-k", duration=1e-4))
    config = OrionConfig(hp_request_latency=10e-3, be_queue_depth=2,
                         overload_policy="block")
    backend, _device, _hp, be_ctx = setup_backend(sim, config, ops=[op])
    backend.suspend_be_admission()
    progress = []

    def run():
        for i in range(6):
            yield from be_ctx.launch_kernel(
                make_kernel(compute_spec("be-k", duration=1e-4)))
            progress.append((i, sim.now))

    spawn(sim, run())
    sim.run(until=5e-3)
    # The client stalls at the gate once the queue holds 2 ops.
    assert len(progress) == 2
    assert backend.queue_telemetry()["be"]["max_depth_seen"] == 2
    assert backend.queue_telemetry()["be"]["rejected_total"] == 0
    backend.resume_be_admission()
    sim.run(until=0.1)
    assert len(progress) == 6
    assert backend.queue_telemetry()["be"]["enqueued_total"] == 6


def test_blocked_client_rejected_if_closed_while_waiting():
    sim = Simulator()
    op = make_kernel(compute_spec("be-k", duration=1e-4))
    config = OrionConfig(hp_request_latency=10e-3, be_queue_depth=1,
                         overload_policy="block")
    backend, _device, _hp, be_ctx = setup_backend(sim, config, ops=[op])
    backend.suspend_be_admission()
    record = {}

    def run():
        yield from be_ctx.launch_kernel(
            make_kernel(compute_spec("be-k", duration=1e-4)))
        done = yield from be_ctx.launch_kernel(
            make_kernel(compute_spec("be-k", duration=1e-4)))
        record["second"] = done

    def killer():
        yield Timeout(1e-3)
        be_ctx.close()

    spawn(sim, run())
    spawn(sim, killer())
    sim.run(until=0.1)
    # close() drained the queue, waking the blocked client, which must
    # observe the dead context instead of submitting.
    assert record["second"].error is not None
    assert record["second"].error.code is CudaErrorCode.CONTEXT_POISONED


def test_set_overload_policy_per_client():
    sim = Simulator()
    config = OrionConfig(hp_request_latency=10e-3, be_queue_depth=1)
    backend, _device, _hp, _be = setup_backend(sim, config)
    assert backend._be_state("be").policy == "block"
    backend.set_overload_policy("be", "reject")
    assert backend._be_state("be").policy == "reject"
    with pytest.raises(ValueError):
        backend.set_overload_policy("be", "panic")


def test_overload_config_validation():
    with pytest.raises(ValueError):
        OrionConfig(be_queue_depth=0)
    with pytest.raises(ValueError):
        OrionConfig(overload_policy="drop-newest")
    with pytest.raises(ValueError):
        OrionConfig(hp_window=0)
    with pytest.raises(ValueError):
        OrionConfig(fallback_hp_latency=0.0)


def test_fallback_hp_latency_routed_through_config():
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = OrionBackend(sim, device, ProfileStore(),
                           OrionConfig(fallback_hp_latency=42e-3))
    assert backend.hp_request_latency == pytest.approx(42e-3)


# ----------------------------------------------------------------------
# Deadlines: backend accounting and client-side shedding
# ----------------------------------------------------------------------
def test_hp_deadline_miss_counted():
    sim = Simulator()
    op = make_kernel(compute_spec("hp-k", duration=2e-3))
    backend, _device, hp_ctx, _be = setup_backend(sim, ops=[op])
    record = {}

    def run():
        yield from hp_ctx.begin_request(deadline=sim.now + 1e-4)
        yield from hp_ctx.launch_kernel(op)
        yield from hp_ctx.synchronize()
        hp_ctx.end_request()
        record["done"] = sim.now

    spawn(sim, run())
    sim.run()
    assert record["done"] > 1e-4
    assert backend.hp_deadline_misses == 1
    assert len(backend.hp_latency_window) == 1


def test_hp_latency_window_bounded_and_cleared_on_deregister():
    sim = Simulator()
    config = OrionConfig(hp_request_latency=10e-3, hp_window=4)
    backend, _device, hp_ctx, _be = setup_backend(sim, config)
    for _ in range(10):
        backend.begin_request("hp")
        backend.end_request("hp")
    assert len(backend.hp_latency_window) == 4
    hp_ctx.close()
    assert len(backend.hp_latency_window) == 0


# ----------------------------------------------------------------------
# Adaptive SLO guard
# ----------------------------------------------------------------------
def guard_config(**overrides):
    base = dict(slo=5e-3, check_interval=1e-3, min_samples=2,
                recover_checks=2, reset_window_on_action=False)
    base.update(overrides)
    return SloGuardConfig(**base)


def feed(backend, latency, n=4):
    for _ in range(n):
        backend.hp_latency_window.append(latency)


def test_guard_config_validation():
    with pytest.raises(ValueError):
        SloGuardConfig(slo=0)
    with pytest.raises(ValueError):
        SloGuardConfig(slo=1e-3, tighten_factor=1.0)
    with pytest.raises(ValueError):
        SloGuardConfig(slo=1e-3, relax_factor=1.0)
    with pytest.raises(ValueError):
        SloGuardConfig(slo=1e-3, recover_margin=0.0)


def test_guard_tightens_then_suspends_on_sustained_breach():
    sim = Simulator()
    config = OrionConfig(hp_request_latency=10e-3, dur_threshold_frac=0.1)
    backend, _device, _hp, _be = setup_backend(sim, config)
    guard = SloGuard(sim, backend, guard_config(min_dur_frac=0.03)).start()
    feed(backend, 20e-3)
    sim.run(until=5.5e-3)
    # 0.1 -> 0.05 -> 0.03 (floor) -> suspend; further checks no-op.
    assert backend.config.dur_threshold_frac == pytest.approx(0.03)
    assert backend.be_admission_suspended
    assert backend.be_suspensions == 1
    actions = [a["action"] for a in guard.actions]
    assert actions == ["tighten", "tighten", "suspend"]
    assert guard.breaches >= 3


def test_guard_recovery_hysteresis_and_relax_cap():
    sim = Simulator()
    config = OrionConfig(hp_request_latency=10e-3, dur_threshold_frac=0.1)
    backend, _device, _hp, _be = setup_backend(sim, config)
    backend.config.dur_threshold_frac = 0.025  # as if tightened earlier
    backend.suspend_be_admission()
    guard = SloGuard(sim, backend, guard_config()).start()
    guard.baseline_dur_frac = 0.1
    feed(backend, 1e-3)  # comfortably under recover_margin * slo
    sim.run(until=20.5e-3)
    # Sequence: resume first, then relax steps of x2 capped at baseline,
    # each costing a full recover_checks streak (hysteresis).
    actions = [a["action"] for a in guard.actions]
    assert actions == ["resume", "relax", "relax"]
    assert not backend.be_admission_suspended
    assert backend.config.dur_threshold_frac == pytest.approx(0.1)


def test_guard_dead_band_holds_state():
    sim = Simulator()
    config = OrionConfig(hp_request_latency=10e-3, dur_threshold_frac=0.05)
    backend, _device, _hp, _be = setup_backend(sim, config)
    guard = SloGuard(sim, backend, guard_config()).start()
    # Between recover_margin*slo (4.25ms) and slo (5ms): the dead band.
    feed(backend, 4.6e-3)
    sim.run(until=10.5e-3)
    assert guard.actions == []
    assert backend.config.dur_threshold_frac == pytest.approx(0.05)


def test_guard_needs_min_samples():
    sim = Simulator()
    backend, _device, _hp, _be = setup_backend(sim)
    guard = SloGuard(sim, backend, guard_config(min_samples=8)).start()
    feed(backend, 50e-3, n=3)
    sim.run(until=5.5e-3)
    assert guard.actions == []
    assert guard.windowed_quantile() is None


def test_guard_resets_window_on_action():
    sim = Simulator()
    config = OrionConfig(hp_request_latency=10e-3, dur_threshold_frac=0.1)
    backend, _device, _hp, _be = setup_backend(sim, config)
    SloGuard(sim, backend, guard_config(reset_window_on_action=True)).start()
    feed(backend, 20e-3)
    sim.run(until=1.5e-3)
    # One tighten, then the stale breach samples are gone: the next
    # decision waits for fresh measurements at the new operating point.
    assert backend.config.dur_threshold_frac == pytest.approx(0.05)
    assert len(backend.hp_latency_window) == 0
    sim.run(until=5.5e-3)
    assert backend.config.dur_threshold_frac == pytest.approx(0.05)


def test_guard_actions_canonical():
    sim = Simulator()
    config = OrionConfig(hp_request_latency=10e-3, dur_threshold_frac=0.1)
    backend, _device, _hp, _be = setup_backend(sim, config)
    guard = SloGuard(sim, backend, guard_config()).start()
    feed(backend, 20e-3)
    sim.run(until=1.5e-3)
    entry = guard.actions[0]
    assert set(entry) == {"time", "action", "observed", "slo",
                          "dur_threshold_frac", "suspended"}
    json.dumps(guard.actions)  # must be serializable as-is
    assert guard.summary()["actions"] == {"tighten": 1}


# ----------------------------------------------------------------------
# Ledger: shed accounting round-trips canonically
# ----------------------------------------------------------------------
def test_ledger_records_shed_and_serializes():
    ledger = ErrorLedger()
    ledger.record_served("be-0")
    ledger.record_shed("be-0")
    ledger.record_shed("be-0")
    entry = ledger.client("be-0")
    assert entry.shed == 2
    payload = json.loads(ledger.to_json())
    assert payload["clients"]["be-0"]["shed"] == 2
    assert payload["clients"]["be-0"]["served"] == 1
    # Canonical: same recordings, byte-identical serialization.
    other = ErrorLedger()
    other.record_served("be-0")
    other.record_shed("be-0")
    other.record_shed("be-0")
    assert other.to_json() == ledger.to_json()
    assert "shed" in ledger.format_table()


# ----------------------------------------------------------------------
# Overload arrival processes
# ----------------------------------------------------------------------
def test_burst_arrivals_rates_and_determinism():
    rng = np.random.default_rng(3)
    burst = BurstArrivals(100.0, 1000.0, burst_every=0.1,
                          burst_duration=0.02, rng=rng)
    times = list(burst.arrival_times(1.0))
    assert times == sorted(times)
    assert all(0 <= t < 1.0 for t in times)
    in_burst = sum(1 for t in times if (t % 0.1) < 0.02)
    # 20% of the time at 10x the rate -> bursts dominate the count.
    assert in_burst > len(times) / 2
    again = BurstArrivals(100.0, 1000.0, burst_every=0.1,
                          burst_duration=0.02,
                          rng=np.random.default_rng(3))
    assert list(again.arrival_times(1.0)) == times
    assert burst.rate_at(0.01) == 1000.0
    assert burst.rate_at(0.05) == 100.0


def test_burst_arrivals_validation():
    with pytest.raises(ValueError):
        BurstArrivals(0.0, 10.0, 0.1, 0.02)
    with pytest.raises(ValueError):
        BurstArrivals(10.0, 10.0, 0.1, 0.2)  # burst longer than period


def test_ramp_arrivals_rate_climbs():
    rng = np.random.default_rng(5)
    ramp = RampArrivals(50.0, 500.0, rng=rng)
    times = list(ramp.arrival_times(2.0))
    assert times == sorted(times)
    first_half = sum(1 for t in times if t < 1.0)
    second_half = len(times) - first_half
    assert second_half > 1.5 * first_half
    assert ramp.rate_at(0.0, horizon=2.0) == pytest.approx(50.0)
    assert ramp.rate_at(1.0, horizon=2.0) == pytest.approx(275.0)
    assert ramp.rate_at(5.0, horizon=2.0) == pytest.approx(500.0)
    # Explicit ramp_duration holds the end rate afterwards.
    capped = RampArrivals(50.0, 500.0, ramp_duration=0.5)
    assert capped.rate_at(0.75) == 500.0


def test_make_arrivals_overload_kinds():
    burst = make_arrivals("burst", rps=100.0, burst_rps=500.0)
    assert isinstance(burst, BurstArrivals)
    ramp = make_arrivals("ramp", rps=50.0, end_rps=200.0)
    assert isinstance(ramp, RampArrivals)
    with pytest.raises(ValueError):
        make_arrivals("burst", rps=100.0)  # burst_rps required
    with pytest.raises(ValueError):
        make_arrivals("ramp", rps=100.0)  # end_rps required


# ----------------------------------------------------------------------
# Telemetry uniformity across backends
# ----------------------------------------------------------------------
TELEMETRY_KEYS = {"depth", "enqueued_total", "max_depth_seen",
                  "rejected_total", "max_depth"}


def test_queue_telemetry_uniform_across_backends():
    from repro.baselines.reef import ReefBackend
    from repro.baselines.temporal import TemporalBackend
    from repro.baselines.ticktock import TickTockBackend

    sim = Simulator()
    backends = {
        "orion": OrionBackend(sim, GpuDevice(sim, V100_16GB), ProfileStore(),
                              OrionConfig(hp_request_latency=10e-3)),
        "reef": ReefBackend(sim, GpuDevice(sim, V100_16GB)),
        "temporal": TemporalBackend(sim, GpuDevice(sim, V100_16GB)),
        "ticktock": TickTockBackend(sim, GpuDevice(sim, V100_16GB)),
    }
    for name, backend in backends.items():
        kind = "training" if name == "ticktock" else "inference"
        backend.register_client("hp", True, kind)
        backend.register_client("be", False, "training")
        if name == "temporal":
            backend.begin_request("hp")
            backend.begin_request("be")
        if name == "ticktock":
            backend.phase_marker("hp", "forward")
        snapshot = backend.queue_telemetry()
        assert snapshot, name
        for client_id, snap in snapshot.items():
            assert set(snap) == TELEMETRY_KEYS, (name, client_id)
    # Temporal: the waiting BE client reports depth 1, the holder 0.
    temporal = backends["temporal"].queue_telemetry()
    assert temporal["hp"]["depth"] == 0
    assert temporal["be"]["depth"] == 1
    # Tick-Tock: the client held at the barrier reports depth 1.
    assert backends["ticktock"].queue_telemetry()["hp"]["depth"] == 1


def test_reef_bounded_be_queue_rejects():
    from repro.baselines.reef import ReefBackend

    sim = Simulator()
    backend = ReefBackend(sim, GpuDevice(sim, V100_16GB), be_queue_depth=2)
    backend.register_client("be", False, "training")
    # Don't start the scheduler: pushes accumulate.
    rejected = []
    for _ in range(4):
        done = backend.submit("be", make_kernel(compute_spec()))
        if done.error is not None:
            rejected.append(done.error.code)
    assert rejected == [CudaErrorCode.QUEUE_FULL, CudaErrorCode.QUEUE_FULL]
    assert backend.queue_telemetry()["be"]["rejected_total"] == 2
    with pytest.raises(ValueError):
        ReefBackend(sim, GpuDevice(sim, V100_16GB), be_queue_depth=0)
