"""Tests for Orion's PCIe bandwidth management extension (§5.1.3)."""

import pytest

from repro.core.scheduler import OrionBackend, OrionConfig
from repro.gpu.device import GpuDevice
from repro.gpu.specs import V100_16GB
from repro.kernels.kernel import MemoryOpKind
from repro.profiler.profiles import ProfileStore
from repro.runtime.client import ClientContext
from repro.runtime.host import HostThread
from repro.sim.engine import Simulator
from repro.sim.process import Timeout, spawn

COPY_BYTES = int(16e9 * 2e-3)  # ~2 ms on the V100's 16 GB/s bus


def setup(manage_pcie: bool):
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = OrionBackend(sim, device, ProfileStore(),
                           OrionConfig(hp_request_latency=10e-3,
                                       manage_pcie=manage_pcie))
    hp = ClientContext(backend, "hp", HostThread(sim), high_priority=True)
    be = ClientContext(backend, "be", HostThread(sim))
    backend.start()
    return sim, backend, hp, be


def run_contended_copies(manage_pcie: bool):
    sim, backend, hp, be = setup(manage_pcie)
    record = {}

    def hp_copy():
        yield from hp.memcpy(COPY_BYTES, MemoryOpKind.MEMCPY_H2D,
                             blocking=True)
        record["hp"] = sim.now

    def be_copy():
        yield Timeout(1e-4)  # arrive while the HP copy is in flight
        yield from be.memcpy(COPY_BYTES, MemoryOpKind.MEMCPY_H2D,
                             blocking=True)
        record["be"] = sim.now

    spawn(sim, hp_copy())
    spawn(sim, be_copy())
    sim.run()
    return record


def test_unmanaged_copies_share_the_bus():
    record = run_contended_copies(manage_pcie=False)
    # Equal sharing stretches the HP copy well past its 2 ms solo time.
    assert record["hp"] > 3e-3


def test_managed_bus_protects_hp_copy():
    record = run_contended_copies(manage_pcie=True)
    assert record["hp"] == pytest.approx(2e-3, rel=0.05)
    # The BE copy still completes afterwards.
    assert record["be"] > record["hp"]


def test_managed_be_copy_runs_when_bus_free():
    sim, backend, hp, be = setup(manage_pcie=True)
    record = {}

    def be_copy():
        yield from be.memcpy(COPY_BYTES, MemoryOpKind.MEMCPY_H2D,
                             blocking=True)
        record["be"] = sim.now

    spawn(sim, be_copy())
    sim.run()
    assert record["be"] == pytest.approx(2e-3, rel=0.05)


def test_managed_malloc_still_bypasses():
    sim, backend, hp, be = setup(manage_pcie=True)
    record = {}

    def be_malloc():
        yield from be.malloc(1024)
        record["malloc"] = sim.now

    spawn(sim, be_malloc())
    sim.run()
    assert "malloc" in record


def test_manage_pcie_off_by_default():
    assert OrionConfig().manage_pcie is False
