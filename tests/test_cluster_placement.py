"""Tests for interference-aware cluster placement (§7 extension)."""

import pytest

from repro.cluster.placement import (
    JobSignature,
    pair_interference,
    plan_placement,
    placement_summary,
    signature_of,
)
from repro.experiments.runner import get_profile
from repro.gpu.specs import V100_16GB


def sig(name, compute, memory, busy=1.0):
    return JobSignature(name, compute, memory, busy)


# ----------------------------------------------------------------------
# Signatures
# ----------------------------------------------------------------------
def test_signature_from_real_profile():
    profile = get_profile("resnet50", "training", V100_16GB)
    signature = signature_of(profile)
    assert signature.name == "resnet50-train-b32:training"
    assert 0 < signature.compute < 1
    assert 0 < signature.memory < 1
    assert signature.busy_time > 0


def test_signature_rejects_empty_profile():
    from repro.profiler.profiles import ModelProfile

    empty = ModelProfile("x", "inference", "V100-16GB", 1e-3)
    with pytest.raises(ValueError):
        signature_of(empty)


# ----------------------------------------------------------------------
# Pair interference
# ----------------------------------------------------------------------
def test_identical_heavy_jobs_interfere_most():
    a = sig("a", 0.8, 0.1)
    b = sig("b", 0.8, 0.1)
    c = sig("c", 0.1, 0.8)
    assert pair_interference(a, b) > pair_interference(a, c)


def test_interference_bounded():
    heavy = sig("h", 1.0, 1.0)
    assert 0 <= pair_interference(heavy, heavy) <= 1.0


def test_light_jobs_interfere_little():
    light_a = sig("a", 0.05, 0.02)
    light_b = sig("b", 0.05, 0.02)
    assert pair_interference(light_a, light_b) < 0.2


def test_zero_demand_is_free():
    idle = sig("idle", 0.0, 0.0)
    busy = sig("busy", 0.9, 0.3)
    assert pair_interference(idle, busy) == 0.0


def test_interference_symmetric():
    a = sig("a", 0.7, 0.2)
    b = sig("b", 0.3, 0.6)
    assert pair_interference(a, b) == pytest.approx(pair_interference(b, a))


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
def test_placement_pairs_complementary_profiles():
    jobs = [
        sig("compute-1", 0.8, 0.1),
        sig("compute-2", 0.7, 0.15),
        sig("memory-1", 0.1, 0.8),
        sig("memory-2", 0.15, 0.7),
    ]
    placements = plan_placement(jobs, num_gpus=2)
    for p in placements:
        kinds = {j.name.split("-")[0] for j in p.jobs}
        assert kinds == {"compute", "memory"}, placement_summary(placements)


def test_placement_uses_empty_gpus_before_packing():
    jobs = [sig("a", 0.8, 0.1), sig("b", 0.8, 0.1)]
    placements = plan_placement(jobs, num_gpus=2)
    assert len(placements) == 2
    assert all(len(p.jobs) == 1 for p in placements)
    assert all(p.interference == 0.0 for p in placements)


def test_placement_packs_when_forced():
    jobs = [sig("a", 0.8, 0.1), sig("b", 0.8, 0.1)]
    placements = plan_placement(jobs, num_gpus=1)
    assert len(placements) == 1
    assert len(placements[0].jobs) == 2
    assert placements[0].interference > 0.5


def test_placement_rejects_overflow():
    jobs = [sig(f"j{i}", 0.5, 0.5) for i in range(5)]
    with pytest.raises(ValueError):
        plan_placement(jobs, num_gpus=2, max_per_gpu=2)


def test_placement_validation():
    with pytest.raises(ValueError):
        plan_placement([], num_gpus=0)


def test_placement_with_real_zoo_profiles():
    """Pack the paper's workloads: trainers pair with opposite profiles."""
    names = [("resnet50", "training"), ("mobilenet_v2", "training"),
             ("bert", "inference"), ("mobilenet_v2", "inference")]
    jobs = [signature_of(get_profile(m, k, V100_16GB), name=f"{m}:{k}")
            for m, k in names]
    placements = plan_placement(jobs, num_gpus=2)
    assert sum(len(p.jobs) for p in placements) == 4
    # Every GPU's predicted interference beats the worst-case pairing.
    worst = max(pair_interference(a, b)
                for i, a in enumerate(jobs) for b in jobs[i + 1:])
    for p in placements:
        assert p.interference <= worst


# ----------------------------------------------------------------------
# Degenerate inputs
# ----------------------------------------------------------------------
def test_empty_job_list_places_nothing():
    assert plan_placement([], num_gpus=4) == []
    assert placement_summary([]) == []


def test_single_job_gets_its_own_gpu():
    placements = plan_placement([sig("only", 0.5, 0.5)], num_gpus=4)
    assert len(placements) == 1
    assert placements[0].gpu == 0
    assert [j.name for j in placements[0].jobs] == ["only"]
    assert placements[0].interference == 0.0


def test_more_gpus_than_jobs_spreads_jobs_out():
    jobs = [sig(f"j{i}", 0.6, 0.3) for i in range(3)]
    placements = plan_placement(jobs, num_gpus=8)
    # With spare GPUs available, nothing is packed: one job per GPU.
    assert len(placements) == 3
    for p in placements:
        assert len(p.jobs) == 1
        assert p.interference == 0.0


def test_identical_signatures_pack_without_crashing():
    jobs = [sig(f"twin{i}", 0.7, 0.7) for i in range(4)]
    placements = plan_placement(jobs, num_gpus=2)
    placed = sorted(j.name for p in placements for j in p.jobs)
    assert placed == sorted(j.name for j in jobs)
    assert all(len(p.jobs) == 2 for p in placements)
    # Identical heavy twins: every pair carries the same interference.
    expected = pair_interference(jobs[0], jobs[1])
    for p in placements:
        assert p.interference == pytest.approx(expected)


def test_zero_magnitude_jobs_place_cleanly():
    jobs = [sig(f"idle{i}", 0.0, 0.0, busy=0.0) for i in range(3)]
    placements = plan_placement(jobs, num_gpus=2)
    assert sum(len(p.jobs) for p in placements) == 3
    assert all(p.interference == 0.0 for p in placements)


def test_invalid_gpu_counts_raise():
    with pytest.raises(ValueError):
        plan_placement([sig("a", 0.5, 0.5)], num_gpus=0)
    with pytest.raises(ValueError):
        plan_placement([sig("a", 0.5, 0.5)], num_gpus=1, max_per_gpu=0)


def test_placement_summary_rows():
    jobs = [sig("a", 0.8, 0.1), sig("b", 0.1, 0.8)]
    placements = plan_placement(jobs, num_gpus=1)
    rows = placement_summary(placements)
    assert rows[0][0] == 0
    assert "a" in rows[0][1] and "b" in rows[0][1]


# ----------------------------------------------------------------------
# End-to-end: predicted interference matches measured collocation cost
# ----------------------------------------------------------------------
def test_prediction_matches_measured_collocation():
    """The placement score's ordering agrees with the simulator: the
    pair predicted to interfere more loses more high-priority training
    throughput when actually collocated."""
    from repro.experiments.registry import train_train_config
    from repro.experiments.runner import solo_throughput
    from repro.experiments.scenario import Scenario, run as run_scenario

    hp = "resnet50"
    partners = ("resnet101", "mobilenet_v2")  # compute-ish vs memory-ish
    hp_sig = signature_of(get_profile(hp, "training", V100_16GB))
    predicted = {}
    measured = {}
    for be in partners:
        be_sig = signature_of(get_profile(be, "training", V100_16GB))
        predicted[be] = pair_interference(hp_sig, be_sig)
        config = train_train_config(hp, be, "mps", duration=2.5)
        config.warmup = 0.4
        result = run_scenario(
            Scenario(kind="experiment", experiment=config)).result
        measured[be] = 1.0 - result.hp_job.throughput / solo_throughput(
            hp, "training")
    ranked_by_prediction = sorted(partners, key=predicted.get)
    ranked_by_measurement = sorted(partners, key=measured.get)
    assert ranked_by_prediction == ranked_by_measurement


# ----------------------------------------------------------------------
# Incremental re-planning (live migration)
# ----------------------------------------------------------------------
def test_replan_proposes_obvious_spread_move():
    from repro.cluster.placement import replan_placement

    # Two identical tenants share gpu0 while gpu1 sits empty: the one
    # best move is to spread them, gaining the full pair interference.
    def interference(a, b):
        return 0.8

    proposals = replan_placement({"a": 0, "b": 0}, 2, interference)
    assert len(proposals) == 1
    move = proposals[0]
    assert move.src == 0 and move.dst == 1
    assert move.gain == pytest.approx(0.8)
    assert move.tenant == "a"  # deterministic tie-break on name


def test_replan_respects_pins_capacity_and_destinations():
    from repro.cluster.placement import replan_placement

    def interference(a, b):
        return 0.5

    # Pinned tenants never move.
    assert replan_placement({"a": 0, "b": 0}, 2, interference,
                            pinned={"a", "b"}) == []
    # A full destination is skipped.
    assert replan_placement({"a": 0, "b": 0, "c": 1, "d": 1}, 2,
                            interference) == []
    # allowed_gpus restricts destinations.
    assert replan_placement({"a": 0, "b": 0}, 3, interference,
                            allowed_gpus={0}) == []
    moves = replan_placement({"a": 0, "b": 0}, 3, interference,
                             allowed_gpus={2})
    assert [m.dst for m in moves] == [2]


def test_replan_min_gain_and_max_moves():
    from repro.cluster.placement import replan_placement

    def interference(a, b):
        return 0.1

    assert replan_placement({"a": 0, "b": 0}, 2, interference,
                            min_gain=0.5) == []
    many = {name: 0 for name in "abcdef"}
    moves = replan_placement(many, 6, interference, max_per_gpu=6,
                             max_moves=2)
    assert len(moves) == 2


def test_replan_validates_inputs():
    from repro.cluster.placement import replan_placement

    with pytest.raises(ValueError):
        replan_placement({"a": 0}, 0, lambda a, b: 0.0)
    with pytest.raises(ValueError):
        replan_placement({"a": 5}, 2, lambda a, b: 0.0)


def test_adversarial_assignment_packs_worst_pairs():
    from repro.cluster.placement import adversarial_assignment

    compute_a = sig("ca", 0.9, 0.1)
    compute_b = sig("cb", 0.85, 0.1)
    memory_a = sig("ma", 0.1, 0.9)
    memory_b = sig("mb", 0.1, 0.85)
    sigs = {s.name: s for s in (compute_a, compute_b, memory_a, memory_b)}
    assignment = adversarial_assignment(sigs, 4)
    # Like pairs together (worst interference), even with GPUs to spare.
    assert assignment["ca"] == assignment["cb"]
    assert assignment["ma"] == assignment["mb"]
    assert assignment["ca"] != assignment["ma"]
    # And it is strictly worse than the planner's complementary packing.
    plan = plan_placement(list(sigs.values()), 2)
    adversarial_worst = max(
        pair_interference(sigs[a], sigs[b])
        for a in sigs for b in sigs
        if a < b and assignment[a] == assignment[b])
    planned_worst = max(p.interference for p in plan)
    assert adversarial_worst > planned_worst


def test_adversarial_assignment_validates():
    from repro.cluster.placement import adversarial_assignment

    sigs = {"a": sig("a", 0.5, 0.5)}
    with pytest.raises(ValueError):
        adversarial_assignment(sigs, 0)
    three = {n: sig(n, 0.5, 0.5) for n in "abc"}
    with pytest.raises(ValueError):
        adversarial_assignment(three, 1, max_per_gpu=2)
