"""Deregistration lifecycle audit: every backend raises
UnknownClientError consistently for unknown/double deregistration."""

import pytest

from repro.baselines import (
    MpsBackend,
    PriorityStreamsBackend,
    ReefBackend,
    StreamsBackend,
    TemporalBackend,
    TickTockBackend,
)
from repro.core import OrionBackend, OrionConfig
from repro.gpu.device import GpuDevice
from repro.gpu.specs import get_device
from repro.profiler.profiles import ProfileStore
from repro.runtime import UnknownClientError
from repro.runtime.direct import DedicatedBackend
from repro.sim.engine import Simulator

BACKEND_NAMES = ("orion", "reef", "streams", "priority-streams", "mps",
                 "temporal", "ticktock", "dedicated")


def make_backend(name: str):
    sim = Simulator()
    spec = get_device("V100-16GB")

    def device() -> GpuDevice:
        return GpuDevice(sim, spec)

    if name == "orion":
        return OrionBackend(sim, device(), ProfileStore(),
                            OrionConfig(hp_request_latency=1e-3))
    if name == "reef":
        return ReefBackend(sim, device())
    if name == "streams":
        return StreamsBackend(sim, device())
    if name == "priority-streams":
        return PriorityStreamsBackend(sim, device())
    if name == "mps":
        return MpsBackend(sim, device())
    if name == "temporal":
        return TemporalBackend(sim, device())
    if name == "ticktock":
        return TickTockBackend(sim, device())
    if name == "dedicated":
        return DedicatedBackend(sim, device)
    raise AssertionError(name)


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_deregister_unknown_client_raises(name):
    backend = make_backend(name)
    with pytest.raises(UnknownClientError):
        backend.deregister_client("nobody")
    # UnknownClientError subclasses KeyError, so legacy callers that
    # catch KeyError keep working.
    with pytest.raises(KeyError):
        backend.deregister_client("nobody")


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_deregister_is_not_idempotent(name):
    backend = make_backend(name)
    kind = "training" if name == "ticktock" else "inference"
    backend.register_client("job", high_priority=False, kind=kind)
    assert "job" in backend.clients
    backend.deregister_client("job")
    assert "job" not in backend.clients
    with pytest.raises(UnknownClientError):
        backend.deregister_client("job")
    with pytest.raises(UnknownClientError):
        backend.client_info("job")


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_reregister_after_deregister(name):
    backend = make_backend(name)
    kind = "training" if name == "ticktock" else "inference"
    backend.register_client("job", high_priority=False, kind=kind)
    backend.deregister_client("job")
    info = backend.register_client("job", high_priority=False, kind=kind)
    assert info.client_id == "job"
    backend.deregister_client("job")
