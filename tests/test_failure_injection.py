"""Failure-injection tests: CUDA-style error semantics, client lifecycle
management, scheduler self-healing, and property tests over random deaths."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import OrionBackend, OrionConfig
from repro.gpu.device import GpuDevice
from repro.gpu.errors import CudaErrorCode
from repro.gpu.specs import V100_16GB
from repro.profiler.profiles import KernelProfile, ModelProfile, ProfileStore
from repro.runtime.backend import UnknownClientError
from repro.runtime.client import ClientContext
from repro.runtime.direct import DirectStreamBackend
from repro.runtime.host import HostThread
from repro.sim.engine import Simulator
from repro.sim.process import Timeout, spawn

from helpers import compute_spec, make_kernel, memory_spec


def store_for(*ops):
    store = ProfileStore()
    profile = ModelProfile("synthetic", "inference", "V100-16GB", 10e-3)
    for op in ops:
        profile.kernels[op.spec.name] = KernelProfile(
            op.spec.name, op.duration, op.compute_util, op.memory_util,
            op.sm_needed, op.profile,
        )
    store.add(profile)
    return store


def setup_orion(sim, config=None, ops=(), be_names=("be",)):
    device = GpuDevice(sim, V100_16GB)
    backend = OrionBackend(sim, device, store_for(*ops),
                           config or OrionConfig(hp_request_latency=10e-3))
    hp_ctx = ClientContext(backend, "hp", HostThread(sim), high_priority=True)
    be_ctxs = [ClientContext(backend, name, HostThread(sim))
               for name in be_names]
    backend.start()
    return backend, device, hp_ctx, be_ctxs


# ---------------------------------------------------------------------------
# CUDA-style error semantics
# ---------------------------------------------------------------------------

def test_oom_surfaces_as_explicit_error():
    """An impossible allocation completes with a non-sticky OUT_OF_MEMORY
    status — the client observes the failure, the simulation survives."""
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = DirectStreamBackend(sim, device)
    ctx = ClientContext(backend, "greedy", HostThread(sim))
    record = {}

    def hog():
        done = yield from ctx.malloc(V100_16GB.memory_capacity + 1)
        record["error"] = done.error

    spawn(sim, hog())
    sim.run()
    assert record["error"] is not None
    assert record["error"].code is CudaErrorCode.OUT_OF_MEMORY
    assert not record["error"].sticky
    assert not ctx.poisoned  # OOM is retryable, not context-corrupting
    assert device.oom_failures == 1


def test_two_jobs_overflowing_capacity_fail_on_second_malloc():
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = DirectStreamBackend(sim, device)
    a = ClientContext(backend, "a", HostThread(sim))
    b = ClientContext(backend, "b", HostThread(sim))
    two_thirds = int(V100_16GB.memory_capacity * 2 / 3)
    errors = {}

    def job(name, ctx):
        done = yield from ctx.malloc(two_thirds)
        errors[name] = done.error

    spawn(sim, job("a", a))
    spawn(sim, job("b", b))
    sim.run()
    failed = [e for e in errors.values() if e is not None]
    assert len(failed) == 1
    assert failed[0].code is CudaErrorCode.OUT_OF_MEMORY
    assert device.memory.used == two_thirds  # first job's state intact


def test_kernel_fault_poisons_context_and_reset_recovers():
    """A faulting kernel is a sticky error: subsequent ops complete
    immediately with CONTEXT_POISONED until reset() (cudaDeviceReset)."""
    sim = Simulator()
    bad = make_kernel(compute_spec("hp-bad", duration=1e-3))
    backend, device, hp_ctx, _ = setup_orion(sim, ops=[bad])
    device.arm_kernel_fault("hp-bad", client_id="hp")
    record = {}

    def run():
        done = yield from hp_ctx.launch_kernel(bad)
        yield done
        record["fault"] = done.error
        rejected = yield from hp_ctx.launch_kernel(
            make_kernel(compute_spec("hp-after", duration=1e-4)))
        record["rejected"] = rejected.error
        hp_ctx.reset()
        ok = yield from hp_ctx.launch_kernel(
            make_kernel(compute_spec("hp-retry", duration=1e-4)))
        yield ok
        record["after_reset"] = ok.error

    spawn(sim, run())
    sim.run()
    assert record["fault"].code is CudaErrorCode.LAUNCH_FAILURE
    assert record["fault"].sticky
    assert record["rejected"].code is CudaErrorCode.CONTEXT_POISONED
    assert record["after_reset"] is None
    assert device.kernels_faulted == 1
    assert hp_ctx.errors  # history survives reset()


def test_transfer_fault_is_sticky():
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = DirectStreamBackend(sim, device)
    ctx = ClientContext(backend, "c", HostThread(sim))
    device.arm_transfer_fault()
    record = {}

    def run():
        from repro.kernels.kernel import MemoryOpKind

        done = yield from ctx.memcpy(1 << 20, MemoryOpKind.MEMCPY_H2D)
        record["error"] = done.error

    spawn(sim, run())
    sim.run()
    assert record["error"].code is CudaErrorCode.TRANSFER_FAILURE
    assert ctx.poisoned
    assert device.transfers_faulted == 1


# ---------------------------------------------------------------------------
# Client lifecycle: deregistration and self-healing
# ---------------------------------------------------------------------------

def test_orion_deregister_drains_queue_and_errors_signals():
    """Killing a BE client errors its pending ops with CLIENT_KILLED,
    frees its state, and the scheduler keeps serving the HP client."""
    sim = Simulator()
    kernels = [make_kernel(memory_spec(f"be{i}", duration=5e-4))
               for i in range(40)]
    backend, device, hp_ctx, (be_ctx,) = setup_orion(sim, ops=kernels)
    signals = []
    record = {}

    def be_job():
        for op in kernels:
            done = yield from be_ctx.launch_kernel(op)
            signals.append(done)

    def hp_job():
        yield Timeout(4e-3)
        done = yield from hp_ctx.launch_kernel(
            make_kernel(compute_spec("hp-k", duration=1e-3)))
        yield done
        record["hp_error"] = done.error

    spawn(sim, be_job())
    spawn(sim, hp_job())
    sim.call_at(2e-3, lambda: be_ctx.close())
    sim.run()
    assert record["hp_error"] is None
    assert backend.clients_deregistered == 1
    killed = [s for s in signals
              if s.error is not None
              and s.error.code is CudaErrorCode.CLIENT_KILLED]
    assert killed  # queued ops did not vanish silently
    assert be_ctx.poisoned and be_ctx.closed
    # The dead client's allocations were released.
    assert device.memory.client_usage("be") == 0
    with pytest.raises(UnknownClientError):
        backend.deregister_client("be")


def test_hp_kill_vacates_slot_for_successor():
    """Killing the HP client mid-run lets a successor register as HP and
    serve on the re-acquired priority stream."""
    sim = Simulator()
    backend, device, hp_ctx, (be_ctx,) = setup_orion(sim)
    record = {}

    def first_hp():
        for i in range(20):
            done = yield from hp_ctx.launch_kernel(
                make_kernel(compute_spec(f"hp1-{i}", duration=5e-4)))
            yield Timeout(2e-4)

    def successor():
        yield Timeout(3e-3)  # after the kill
        hp2 = ClientContext(backend, "hp2", HostThread(sim),
                            high_priority=True)
        done = yield from hp2.launch_kernel(
            make_kernel(compute_spec("hp2-k", duration=1e-3)))
        yield done
        record["hp2_error"] = done.error
        record["hp2_done"] = sim.now

    spawn(sim, first_hp())
    spawn(sim, successor())
    sim.call_at(2e-3, lambda: hp_ctx.close())
    sim.run()
    assert record["hp2_error"] is None
    assert "hp2_done" in record
    assert backend.clients_deregistered == 1


def test_unknown_client_error_from_submit():
    sim = Simulator()
    backend, _device, _hp, _ = setup_orion(sim)
    op = make_kernel(compute_spec("ghost-k", duration=1e-4))
    with pytest.raises(UnknownClientError) as excinfo:
        backend.submit("ghost", op)
    assert "ghost" in str(excinfo.value)
    assert "orion" in str(excinfo.value)
    assert isinstance(excinfo.value, KeyError)  # backward compatible


def test_watchdog_flags_overdue_be_kernels():
    """With a corrupted (under-reported) profile the watchdog flags BE
    kernels running far beyond their expected duration."""
    sim = Simulator()
    slow = make_kernel(memory_spec("be-slow", duration=4e-3))
    config = OrionConfig(hp_request_latency=10e-3,
                         watchdog_multiple=3.0, watchdog_interval=1e-4)
    device = GpuDevice(sim, V100_16GB)
    store = store_for(slow)
    # Profile now claims the kernel is 100x faster than it is.
    assert store.corrupt("be-slow", factor=0.01)
    backend = OrionBackend(sim, device, store, config)
    ClientContext(backend, "hp", HostThread(sim), high_priority=True)
    be_ctx = ClientContext(backend, "be", HostThread(sim))
    backend.start()

    def be_job():
        done = yield from be_ctx.launch_kernel(slow)
        yield done

    spawn(sim, be_job())
    sim.run()
    assert backend.watchdog_flags
    flag = backend.watchdog_flags[0]
    assert flag["client"] == "be"
    assert flag["kernel"] == "be-slow"
    assert flag["overdue_by"] > 0


def test_temporal_lock_released_when_holder_dies():
    """Temporal sharing: a dead slice holder must not wedge survivors."""
    from repro.baselines.temporal import TemporalBackend

    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = TemporalBackend(sim, device)
    victim = ClientContext(backend, "victim", HostThread(sim))
    survivor = ClientContext(backend, "survivor", HostThread(sim))
    record = {}

    def victim_job():
        yield from victim.begin_request()
        yield Timeout(1.0)  # would hold the GPU forever

    def survivor_job():
        yield Timeout(1e-4)
        yield from survivor.begin_request()
        done = yield from survivor.launch_kernel(
            make_kernel(compute_spec("s-k", duration=1e-4)))
        yield done
        survivor.end_request()
        record["done"] = sim.now

    spawn(sim, victim_job())
    spawn(sim, survivor_job())
    sim.call_at(1e-3, lambda: victim.close())
    sim.run(until=0.1)
    assert record["done"] < 2e-3


def test_temporal_waiter_death_is_cancelled():
    from repro.baselines.temporal import TemporalBackend

    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = TemporalBackend(sim, device)
    holder = ClientContext(backend, "holder", HostThread(sim))
    waiter = ClientContext(backend, "waiter", HostThread(sim))

    def holder_job():
        yield from holder.begin_request()
        yield Timeout(5e-3)
        holder.end_request()

    def waiter_job():
        yield Timeout(1e-4)
        yield from waiter.begin_request()

    spawn(sim, holder_job())
    spawn(sim, waiter_job())
    # The waiter dies while queued for the lock.
    sim.call_at(1e-3, lambda: waiter.close())
    sim.run(until=0.1)
    assert not backend._gpu_lock.locked  # released cleanly, no dead grant


def test_ticktock_barrier_released_when_partner_dies():
    from repro.baselines.ticktock import TickTockBackend

    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = TickTockBackend(sim, device)
    a = ClientContext(backend, "a", HostThread(sim), kind="training")
    b = ClientContext(backend, "b", HostThread(sim), kind="training")
    record = {}

    def job_a():
        yield from a.phase("forward")  # blocks: b never arrives
        record["a_released"] = sim.now

    def job_b():
        yield Timeout(1.0)

    spawn(sim, job_a())
    spawn(sim, job_b())
    sim.call_at(1e-3, lambda: b.close())
    sim.run(until=0.1)
    assert "a_released" in record
    assert record["a_released"] < 2e-3


# ---------------------------------------------------------------------------
# Pre-existing survivability tests
# ---------------------------------------------------------------------------

def test_interrupted_client_does_not_wedge_the_device():
    """Killing a client mid-request leaves its committed kernels to
    finish but the device keeps serving other clients."""
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = DirectStreamBackend(sim, device)
    victim = ClientContext(backend, "victim", HostThread(sim))
    survivor = ClientContext(backend, "survivor", HostThread(sim))
    record = {}

    def victim_job():
        for i in range(100):
            yield from victim.launch_kernel(
                make_kernel(memory_spec(f"v{i}", duration=1e-4))
            )
            yield Timeout(5e-5)

    def survivor_job():
        yield Timeout(2e-3)  # after the victim dies
        yield from survivor.launch_kernel(
            make_kernel(compute_spec("s", duration=1e-3))
        )
        yield from survivor.synchronize()
        record["done"] = sim.now

    victim_proc = spawn(sim, victim_job())
    spawn(sim, survivor_job())
    sim.call_at(1e-3, lambda: victim_proc.interrupt("client crashed"))
    sim.run()
    assert not victim_proc.alive
    assert "done" in record


def test_interrupted_be_client_does_not_wedge_orion():
    """Orion keeps scheduling the HP job after a BE client dies with
    ops still in its software queue."""
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = OrionBackend(sim, device, ProfileStore(),
                           OrionConfig(hp_request_latency=10e-3))
    hp = ClientContext(backend, "hp", HostThread(sim), high_priority=True)
    be = ClientContext(backend, "be", HostThread(sim))
    backend.start()
    record = {}

    def be_job():
        for i in range(50):
            yield from be.launch_kernel(
                make_kernel(memory_spec(f"be{i}", duration=2e-4))
            )

    def hp_job():
        yield Timeout(2e-3)
        yield from hp.launch_kernel(
            make_kernel(compute_spec("hp-k", duration=1e-3))
        )
        yield from hp.synchronize()
        record["hp_done"] = sim.now

    be_proc = spawn(sim, be_job())
    spawn(sim, hp_job())
    sim.call_at(1e-3, lambda: be_proc.interrupt())
    sim.run()
    assert "hp_done" in record
    # Orphaned BE kernels already in the queue drained harmlessly.
    assert backend.be_kernels_launched > 0


def test_device_survives_burst_of_many_streams():
    """128 streams each firing a kernel exercises the concurrency cap."""
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    streams = [device.create_stream() for _ in range(128)]
    done = []

    def run():
        signals = []
        for i, stream in enumerate(streams):
            signals.append(stream.submit(
                make_kernel(memory_spec(f"m{i}", duration=1e-4, blocks=8))
            ))
        for signal in signals:
            yield signal
        done.append(sim.now)

    spawn(sim, run())
    sim.run()
    assert done
    assert device.kernels_completed == 128


# ---------------------------------------------------------------------------
# Property test: random client deaths
# ---------------------------------------------------------------------------

class _RecordingOrion(OrionBackend):
    """Orion backend that logs every successful BE launch."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.launch_log = []

    def _try_launch_be(self, client_id):
        launched = super()._try_launch_be(client_id)
        if launched:
            self.launch_log.append((self.sim.now, client_id))
        return launched


@settings(max_examples=15, deadline=None)
@given(kills=st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),
              st.floats(min_value=5e-4, max_value=8e-3)),
    min_size=1, max_size=3, unique_by=lambda kv: kv[0]))
def test_random_client_deaths_never_launch_dead_be_work(kills):
    """Whatever subset of BE clients dies, whenever: the scheduler never
    launches a dead client's kernel afterwards, and the launch/defer
    counters stay consistent with the observed launches."""
    sim = Simulator()
    be_names = [f"be{i}" for i in range(3)]
    kernels = {
        name: [make_kernel(memory_spec(f"{name}-k{j}", duration=3e-4),
                           client_id=name)
               for j in range(25)]
        for name in be_names
    }
    all_ops = [op for ops in kernels.values() for op in ops]
    device = GpuDevice(sim, V100_16GB)
    backend = _RecordingOrion(sim, device, store_for(*all_ops),
                              OrionConfig(hp_request_latency=10e-3))
    hp_ctx = ClientContext(backend, "hp", HostThread(sim), high_priority=True)
    be_ctxs = {name: ClientContext(backend, name, HostThread(sim))
               for name in be_names}
    backend.start()

    def be_job(name):
        for op in kernels[name]:
            yield from be_ctxs[name].launch_kernel(op)
            yield Timeout(1e-4)

    def hp_job():
        for i in range(5):
            yield from hp_ctx.launch_kernel(
                make_kernel(compute_spec(f"hp{i}", duration=2e-4),
                            client_id="hp"))
            yield Timeout(1.5e-3)

    for name in be_names:
        spawn(sim, be_job(name))
    spawn(sim, hp_job())
    kill_times = {}
    for index, at in kills:
        name = be_names[index]
        kill_times[name] = at
        sim.call_at(at, lambda n=name: be_ctxs[n].close())
    sim.run()

    for name, at in kill_times.items():
        late = [t for t, client in backend.launch_log
                if client == name and t > at]
        assert not late, f"dead client {name} launched at {late}"
    assert backend.be_kernels_launched == len(backend.launch_log)
    assert backend.be_kernels_deferred >= 0
    assert backend.clients_deregistered == len(kill_times)
    total_issued = sum(ctx.ops_issued for ctx in be_ctxs.values())
    assert backend.be_kernels_launched <= total_issued
