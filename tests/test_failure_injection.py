"""Failure-injection tests: aborted clients, OOM, device survivability."""

import pytest

from repro.core.scheduler import OrionBackend, OrionConfig
from repro.gpu.device import GpuDevice
from repro.gpu.memory import GpuOutOfMemoryError
from repro.gpu.specs import V100_16GB
from repro.profiler.profiles import ProfileStore
from repro.runtime.client import ClientContext
from repro.runtime.direct import DirectStreamBackend
from repro.runtime.host import HostThread
from repro.sim.engine import Simulator
from repro.sim.process import Timeout, spawn

from helpers import compute_spec, make_kernel, memory_spec


def test_oom_surfaces_as_explicit_error():
    """Collocating jobs that do not fit in GPU memory is a hard error
    (the paper assumes the cluster manager prevents this; the simulator
    makes the violation loud rather than silent)."""
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = DirectStreamBackend(sim, device)
    ctx = ClientContext(backend, "greedy", HostThread(sim))

    def hog():
        yield from ctx.malloc(V100_16GB.memory_capacity + 1)

    spawn(sim, hog())
    with pytest.raises(GpuOutOfMemoryError):
        sim.run()


def test_two_jobs_overflowing_capacity_fail_on_second_malloc():
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = DirectStreamBackend(sim, device)
    a = ClientContext(backend, "a", HostThread(sim))
    b = ClientContext(backend, "b", HostThread(sim))
    two_thirds = int(V100_16GB.memory_capacity * 2 / 3)

    def job(ctx):
        yield from ctx.malloc(two_thirds)

    spawn(sim, job(a))
    spawn(sim, job(b))
    with pytest.raises(GpuOutOfMemoryError):
        sim.run()
    assert device.memory.used == two_thirds  # first job's state intact


def test_interrupted_client_does_not_wedge_the_device():
    """Killing a client mid-request leaves its committed kernels to
    finish but the device keeps serving other clients."""
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = DirectStreamBackend(sim, device)
    victim = ClientContext(backend, "victim", HostThread(sim))
    survivor = ClientContext(backend, "survivor", HostThread(sim))
    record = {}

    def victim_job():
        for i in range(100):
            yield from victim.launch_kernel(
                make_kernel(memory_spec(f"v{i}", duration=1e-4))
            )
            yield Timeout(5e-5)

    def survivor_job():
        yield Timeout(2e-3)  # after the victim dies
        yield from survivor.launch_kernel(
            make_kernel(compute_spec("s", duration=1e-3))
        )
        yield from survivor.synchronize()
        record["done"] = sim.now

    victim_proc = spawn(sim, victim_job())
    spawn(sim, survivor_job())
    sim.call_at(1e-3, lambda: victim_proc.interrupt("client crashed"))
    sim.run()
    assert not victim_proc.alive
    assert "done" in record


def test_interrupted_be_client_does_not_wedge_orion():
    """Orion keeps scheduling the HP job after a BE client dies with
    ops still in its software queue."""
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    backend = OrionBackend(sim, device, ProfileStore(),
                           OrionConfig(hp_request_latency=10e-3))
    hp = ClientContext(backend, "hp", HostThread(sim), high_priority=True)
    be = ClientContext(backend, "be", HostThread(sim))
    backend.start()
    record = {}

    def be_job():
        for i in range(50):
            yield from be.launch_kernel(
                make_kernel(memory_spec(f"be{i}", duration=2e-4))
            )

    def hp_job():
        yield Timeout(2e-3)
        yield from hp.launch_kernel(
            make_kernel(compute_spec("hp-k", duration=1e-3))
        )
        yield from hp.synchronize()
        record["hp_done"] = sim.now

    be_proc = spawn(sim, be_job())
    spawn(sim, hp_job())
    sim.call_at(1e-3, lambda: be_proc.interrupt())
    sim.run()
    assert "hp_done" in record
    # Orphaned BE kernels already in the queue drained harmlessly.
    assert backend.be_kernels_launched > 0


def test_device_survives_burst_of_many_streams():
    """128 streams each firing a kernel exercises the concurrency cap."""
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    streams = [device.create_stream() for _ in range(128)]
    done = []

    def run():
        signals = []
        for i, stream in enumerate(streams):
            signals.append(stream.submit(
                make_kernel(memory_spec(f"m{i}", duration=1e-4, blocks=8))
            ))
        for signal in signals:
            yield signal
        done.append(sim.now)

    spawn(sim, run())
    sim.run()
    assert done
    assert device.kernels_completed == 128
