"""Tests for the named workload registry (WorkloadSpec/build_plan)
and the typed per-kind scenario parameter surfaces."""

import pytest

from repro.experiments.params import (
    PARAM_TYPES,
    FleetParams,
    LlmParams,
    OverloadParams,
    validate_params,
)
from repro.experiments.scenario import Scenario
from repro.workloads.models import MODEL_NAMES
from repro.workloads.models.llm import LLM_SMALL
from repro.workloads.models.zoo import get_plan
from repro.workloads.registry import (
    WORKLOADS,
    LlmWorkload,
    WorkloadSpec,
    ZooWorkload,
    build_plan,
    get_workload,
    register_workload,
    workload_names,
)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_every_zoo_model_registered(self):
        names = workload_names()
        for model in MODEL_NAMES:
            assert model in names
        assert "llm-small" in names
        assert "llm" in names

    def test_specs_satisfy_protocol(self):
        for spec in WORKLOADS.values():
            assert isinstance(spec, WorkloadSpec)
            assert spec.kinds
            description = spec.describe()
            assert "kinds" in description

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="unknown workload"):
            get_workload("gpt5")

    def test_build_plan_matches_zoo(self):
        via_registry = build_plan("resnet50", "inference")
        via_zoo = get_plan("resnet50", "inference")
        assert via_registry.kernel_count == via_zoo.kernel_count
        assert via_registry.state_bytes == via_zoo.state_bytes

    def test_build_plan_batch_override(self):
        small = build_plan("resnet50", "inference", batch_size=1)
        big = build_plan("resnet50", "inference", batch_size=16)
        assert big.state_bytes >= small.state_bytes

    def test_llm_plan_through_registry(self):
        plan = build_plan("llm", "inference", prompt_len=32, gen_tokens=4)
        assert plan.kernel_count > 0
        assert get_workload("llm").config is LLM_SMALL

    def test_zoo_workload_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ZooWorkload("not_a_model")
        with pytest.raises(ValueError):
            ZooWorkload("resnet50").plan("serving")
        with pytest.raises(ValueError):
            ZooWorkload("resnet50").plan("inference", batch_size=-1)

    def test_llm_workload_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            LlmWorkload("x").plan("training")

    def test_unknown_kwarg_is_typeerror(self):
        with pytest.raises(TypeError):
            build_plan("resnet50", "inference", sequence_len=128)

    def test_register_requires_name(self):
        with pytest.raises(ValueError):
            register_workload(LlmWorkload(""))


# ----------------------------------------------------------------------
# Typed params
# ----------------------------------------------------------------------
class TestTypedParams:
    def test_to_params_is_sparse(self):
        assert OverloadParams().to_params() == {}
        assert OverloadParams(be_clients=4).to_params() == {"be_clients": 4}
        assert LlmParams(seed=2, max_batch=16).to_params() == \
            {"seed": 2, "max_batch": 16}

    def test_every_params_kind_covered(self):
        assert set(PARAM_TYPES) == {"overload", "faults", "fleet", "llm"}

    def test_validate_unknown_key_names_surface(self):
        with pytest.raises(ValueError, match="be_client\\b"):
            validate_params("overload", {"be_client": 3})

    def test_validate_range(self):
        with pytest.raises(ValueError, match="request_rate"):
            validate_params("llm", {"request_rate": -1.0})
        with pytest.raises(ValueError, match="num_gpus"):
            validate_params("fleet", {"num_gpus": 0})

    def test_validate_choices(self):
        with pytest.raises(ValueError, match="policy"):
            validate_params("overload", {"policy": "drop"})
        with pytest.raises(ValueError, match="arrivals"):
            validate_params("overload", {"arrivals": "bursty"})

    def test_llm_mean_cap_relations(self):
        with pytest.raises(ValueError, match="prompt_mean"):
            LlmParams(prompt_mean=300.0, prompt_cap=256)
        with pytest.raises(ValueError, match="output_mean"):
            LlmParams(output_mean=100.0, output_cap=64)

    def test_scenario_construction_validates(self):
        with pytest.raises(ValueError, match="unknown llm scenario"):
            Scenario(kind="llm", params={"reqest_rate": 80.0})
        with pytest.raises(ValueError, match="slowdown"):
            Scenario(kind="fleet", params={"slowdown": 0})
        # Valid sparse params construct fine and stay sparse.
        scenario = Scenario(kind="llm", params={"max_batch": 16})
        assert scenario.params == {"max_batch": 16}

    def test_fleet_surface_matches_implementation(self):
        import inspect

        from repro.cluster.fleet import _run_fleet_scenario

        impl = set(inspect.signature(_run_fleet_scenario).parameters)
        typed = {f.name for f in
                 __import__("dataclasses").fields(FleetParams)}
        assert typed == impl

    def test_llm_surface_matches_implementation(self):
        import inspect

        from repro.workloads.llmserve import _run_llm_scenario

        impl = set(inspect.signature(_run_llm_scenario).parameters)
        typed = {f.name for f in
                 __import__("dataclasses").fields(LlmParams)}
        assert typed == impl
