"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


ALL_SUBCOMMANDS = ("inf-train", "train-train", "inf-inf", "faults",
                   "fleet", "overload", "trace", "sweep", "bench", "profile",
                   "scenarios", "serve", "submit", "status", "cancel")


def test_help_lists_every_subcommand(capsys):
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for command in ALL_SUBCOMMANDS:
        assert command in out, f"{command} missing from top-level --help"


@pytest.mark.parametrize("command", ALL_SUBCOMMANDS)
def test_subcommand_help_smoke(command, capsys):
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args([command, "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert command in out or "usage" in out


def test_parser_rejects_unknown_model():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["inf-train", "--hp", "alexnet",
                                   "--be", "resnet50"])


def test_inf_train_cli_runs(capsys):
    rc = main(["inf-train", "--hp", "mobilenet_v2", "--be", "mobilenet_v2",
               "--backend", "orion", "--duration", "1.0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "hp-mobilenet_v2-inference" in out
    assert "scheduler" in out


def test_inf_inf_cli_json_output(capsys):
    rc = main(["inf-inf", "--hp", "mobilenet_v2", "--be", "mobilenet_v2",
               "--backend", "mps", "--duration", "1.0", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    jobs = [k for k in payload if k != "backend_stats"]
    assert len(jobs) == 2
    assert all("p99_ms" in payload[j] for j in jobs)


def test_train_train_cli_with_sm_threshold(capsys):
    rc = main(["train-train", "--hp", "mobilenet_v2", "--be", "mobilenet_v2",
               "--backend", "orion", "--duration", "1.0",
               "--sm-threshold", "160"])
    assert rc == 0
    assert "BE" in capsys.readouterr().out


def test_faults_cli_runs(capsys):
    rc = main(["faults", "--duration", "0.06", "--seed", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "fault plan" in out
    assert "kill client 'be-0'" in out
    assert "restarts" in out


def test_faults_cli_json_ledger(capsys):
    rc = main(["faults", "--duration", "0.06", "--seed", "1", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert "clients" in payload and "injections" in payload
    assert payload["injections"][0]["type"] == "KillClient"
    assert "be-0" in payload["clients"]


def test_fleet_cli_runs(capsys):
    rc = main(["fleet", "--num-gpus", "2", "--duration", "0.04",
               "--seed", "1", "--crashes", "1", "--degrades", "0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "fault plan" in out
    assert "crash gpu" in out
    assert "fleet uptime" in out
    assert "failover" in out


def test_fleet_cli_json_report(capsys, tmp_path):
    report_path = tmp_path / "report.json"
    rc = main(["fleet", "--num-gpus", "2", "--duration", "0.04",
               "--seed", "1", "--crashes", "1", "--degrades", "0",
               "--json", "--report-out", str(report_path)])
    assert rc == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{"):])
    assert payload["num_gpus"] == 2
    assert payload["faults"]["crashes"] == 1
    assert "gpu0" in payload["gpus"] and "gpu1" in payload["gpus"]
    on_disk = json.loads(report_path.read_text())
    assert on_disk == payload


def test_fleet_cli_rebalance_runs(capsys, tmp_path):
    mig_path = tmp_path / "migrations.json"
    rc = main(["fleet", "--num-gpus", "2", "--duration", "0.1",
               "--seed", "0", "--crashes", "0", "--degrades", "0",
               "--be-tenants", "1", "--hp-load", "0.15",
               "--be-load", "0.15", "--placement", "adversarial",
               "--rebalance", "--rebalance-interval", "0.02",
               "--min-gain", "0.01",
               "--migration-report-out", str(mig_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "migrations:" in out
    report = json.loads(mig_path.read_text())
    assert report["started"] >= 1
    assert report["records"][0]["transitions"][0][1] == "planned"


def test_fleet_cli_rejects_rebalance_without_placement():
    with pytest.raises(ValueError):
        main(["fleet", "--num-gpus", "2", "--duration", "0.02",
              "--crashes", "0", "--degrades", "0", "--rebalance"])


def test_fleet_cli_rebalance_help_lists_flags(capsys):
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["fleet", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for flag in ("--rebalance", "--placement", "--rebalance-interval",
                 "--migration-cooldown", "--max-inflight-migrations",
                 "--min-gain", "--migration-report-out"):
        assert flag in out, f"{flag} missing from fleet --help"


def test_scenarios_cli_lists_catalog(capsys):
    rc = main(["scenarios"])
    assert rc == 0
    out = capsys.readouterr().out
    for name in ("fleet_ref", "overload_ref", "inf_train_ref",
                 "fleet_rebalance"):
        assert name in out, f"{name} missing from the catalog table"
    assert "experiment" in out and "fleet" in out


def test_scenarios_cli_json_matches_registry(capsys):
    from repro.experiments.registry import scenario_catalog, scenario_names

    rc = main(["scenarios", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert tuple(sorted(payload)) == scenario_names()
    assert payload == scenario_catalog()
    assert payload["fleet_ref"]["kind"] == "fleet"
    assert payload["fleet_ref"]["params"]["num_gpus"] == 8
    assert payload["inf_train_ref"]["kind"] == "experiment"
    assert payload["inf_train_ref"]["params"]["backend"] == "orion"


def test_submit_status_cancel_cli_roundtrip(capsys):
    from repro.serve import ServeConfig, ServeServer

    server = ServeServer(ServeConfig(address="tcp:127.0.0.1:0", workers=1,
                                     telemetry_interval=0))
    address = server.start()
    try:
        rc = main(["submit", "faults", "--address", address,
                   "--duration", "0.05", "--seed", "2", "--wait", "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert payload["state"] == "COMPLETED"
        assert payload["result"]["seed"] == 2
        job = payload["id"]

        rc = main(["status", job, "--address", address])
        assert rc == 0
        assert "COMPLETED" in capsys.readouterr().out

        rc = main(["status", "--address", address])
        assert rc == 0
        assert "daemon:" in capsys.readouterr().out

        rc = main(["cancel", job, "--address", address])
        assert rc == 0
        assert "already COMPLETED" in capsys.readouterr().out

        rc = main(["status", "job-9999", "--address", address])
        assert rc == 1
    finally:
        server.shutdown()


def test_submit_cli_reports_queue_full(capsys):
    from repro.serve import ServeConfig, ServeServer

    server = ServeServer(ServeConfig(address="tcp:127.0.0.1:0", workers=0,
                                     max_pending=1, telemetry_interval=0))
    address = server.start()
    try:
        assert main(["submit", "faults", "--address", address,
                     "--duration", "0.05"]) == 0
        rc = main(["submit", "faults", "--address", address,
                   "--duration", "0.05"])
        assert rc == 1
        assert "queue_full" in capsys.readouterr().err
    finally:
        server.shutdown()


def test_profile_cli(capsys, tmp_path):
    out_path = tmp_path / "prof.json"
    rc = main(["profile", "--model", "mobilenet_v2", "--kind", "inference",
               "--out", str(out_path)])
    assert rc == 0
    assert out_path.exists()
    data = json.loads(out_path.read_text())
    assert data["model_name"].startswith("mobilenet_v2")
