"""End-to-end integration tests pinning the paper's qualitative claims.

Each test runs a short (1-3 s simulated) collocation and asserts the
*ordering* the paper's evaluation establishes — not absolute numbers.
These are the repo's regression net for the headline results.
"""

import pytest

from repro.experiments.registry import (
    inf_inf_config,
    inf_train_config,
    train_train_config,
)
from repro.experiments.runner import solo_throughput
from repro.experiments.scenario import Scenario, run as run_scenario
from repro.metrics.cost import cost_savings

HP, BE = "resnet50", "resnet101"


def run(cfg):
    cfg.warmup = 0.3
    return run_scenario(Scenario(kind="experiment", experiment=cfg)).result


@pytest.fixture(scope="module")
def inf_train_results():
    return {
        backend: run(inf_train_config(HP, BE, backend, duration=2.0))
        for backend in ("ideal", "mps", "reef", "orion", "temporal")
    }


def test_orion_inf_train_tail_near_ideal(inf_train_results):
    """C1 (§A.4): Orion keeps HP inference p99 close to ideal."""
    ideal = inf_train_results["ideal"].hp_job.latency.p99
    orion = inf_train_results["orion"].hp_job.latency.p99
    assert orion <= ideal * 1.25


def test_reef_and_mps_inflate_inf_train_tail(inf_train_results):
    ideal = inf_train_results["ideal"].hp_job.latency.p99
    assert inf_train_results["reef"].hp_job.latency.p99 > ideal * 1.2
    assert inf_train_results["mps"].hp_job.latency.p99 > ideal * 1.2


def test_orion_beats_reef_tail(inf_train_results):
    assert (inf_train_results["orion"].hp_job.latency.p99
            < inf_train_results["reef"].hp_job.latency.p99)


def test_temporal_suffers_head_of_line_blocking(inf_train_results):
    """Incoming inference waits for whole BE training iterations."""
    ideal = inf_train_results["ideal"].hp_job.latency.p99
    temporal = inf_train_results["temporal"].hp_job.latency.p99
    assert temporal > 3 * ideal


def test_orion_preserves_be_training_progress(inf_train_results):
    dedicated = solo_throughput(BE, "training")
    be = inf_train_results["orion"].be_jobs()[0].throughput
    assert be > 0.5 * dedicated


def test_orion_inf_train_cost_savings(inf_train_results):
    dedicated = solo_throughput(BE, "training")
    collocated = inf_train_results["orion"].be_jobs()[0].throughput
    assert cost_savings(dedicated, collocated) > 1.2


@pytest.fixture(scope="module")
def train_train_results():
    results = {}
    for backend in ("mps", "ticktock", "reef"):
        results[backend] = run(
            train_train_config(HP, "mobilenet_v2", backend, duration=3.0)
        )
    results["orion"] = run(
        train_train_config(HP, "mobilenet_v2", "orion", duration=3.0,
                           orion={"sm_threshold": 160})
    )
    return results


def test_reef_protects_hp_but_starves_be_training(train_train_results):
    """Paper §6.2.2: REEF keeps HP within ~8% of ideal but BE barely runs."""
    dedicated_hp = solo_throughput(HP, "training")
    reef = train_train_results["reef"]
    assert reef.hp_job.throughput > 0.85 * dedicated_hp
    assert reef.be_jobs()[0].throughput < 0.15 * solo_throughput(
        "mobilenet_v2", "training")


def test_orion_balances_train_train(train_train_results):
    """Orion keeps HP throughput high while BE makes real progress."""
    dedicated_hp = solo_throughput(HP, "training")
    orion = train_train_results["orion"]
    assert orion.hp_job.throughput > 0.75 * dedicated_hp
    assert orion.be_jobs()[0].throughput > 0.25 * solo_throughput(
        "mobilenet_v2", "training")


def test_orion_hp_training_beats_mps(train_train_results):
    assert (train_train_results["orion"].hp_job.throughput
            >= train_train_results["mps"].hp_job.throughput)


def test_ticktock_locksteps_to_slowest(train_train_results):
    """Phase barriers force both jobs to the same iteration rate."""
    ticktock = train_train_results["ticktock"]
    hp = ticktock.hp_job.throughput
    be = ticktock.be_jobs()[0].throughput
    assert hp == pytest.approx(be, rel=0.25)


@pytest.fixture(scope="module")
def inf_inf_results():
    return {
        backend: run(inf_inf_config("resnet101", "resnet50", backend,
                                    arrivals="poisson", duration=3.0))
        for backend in ("ideal", "mps", "reef", "orion")
    }


def test_orion_inf_inf_tail_near_ideal(inf_inf_results):
    ideal = inf_inf_results["ideal"].hp_job.latency.p99
    orion = inf_inf_results["orion"].hp_job.latency.p99
    assert orion <= ideal * 1.25


def test_inf_inf_backend_ordering(inf_inf_results):
    """Paper Figure 12 ordering: Orion < REEF <= MPS tails."""
    orion = inf_inf_results["orion"].hp_job.latency.p99
    reef = inf_inf_results["reef"].hp_job.latency.p99
    mps = inf_inf_results["mps"].hp_job.latency.p99
    assert orion < reef
    assert orion < mps


def test_inf_inf_aggregate_throughput_exceeds_single_gpu(inf_inf_results):
    """Collocation serves both request streams on one GPU."""
    orion = inf_inf_results["orion"]
    hp_only = orion.hp_job.throughput
    assert orion.aggregate_throughput > 1.3 * hp_only
