"""The parallel sweep engine: grid determinism across worker counts,
failing-cell isolation, and the merged canonical report."""

import json

import pytest

from repro.experiments.registry import SCENARIOS
from repro.experiments.scenario import Scenario
from repro.experiments.sweep import run_cell, run_sweep, sweep_to_json
from repro.faults.plan import FaultPlan, KillClient

# Small, fast grid cells for the determinism tests.
_FAST_OVERLOAD = dict(duration=0.05, be_clients=1)
_FAST_FAULTS = dict(duration=0.08, be_clients=1)


def _register(name, kind, defaults):
    def build(seed=0, duration=None, **overrides):
        params = dict(defaults)
        params.update(overrides)
        params["seed"] = seed
        if duration is not None:
            params["duration"] = duration
        return Scenario(kind=kind, name=name, params=params)

    SCENARIOS[name] = build


@pytest.fixture
def fast_scenarios():
    """Register small test-only cells; fork workers inherit the entry."""
    _register("_test_overload", "overload", _FAST_OVERLOAD)
    _register("_test_faults", "faults", _FAST_FAULTS)
    # A deterministically failing cell: the fault plan kills a client
    # the scenario does not have, which the faults scenario rejects.
    _register("_test_bad_faults", "faults", dict(
        _FAST_FAULTS, plan=FaultPlan((KillClient("be-7", at_time=0.02),))))
    yield
    for name in ("_test_overload", "_test_faults", "_test_bad_faults"):
        SCENARIOS.pop(name, None)


class TestGridShape:
    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            run_sweep([], [0])
        with pytest.raises(ValueError, match="at least one"):
            run_sweep(["overload"], [])

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_sweep(["overload"], [0], workers=0)

    def test_report_shape(self, fast_scenarios):
        report = run_sweep(["_test_overload"], [0, 1])
        assert report["grid"] == {"scenarios": ["_test_overload"],
                                  "seeds": [0, 1], "cells": 2, "failed": 0}
        assert sorted(report["cells"]) == ["_test_overload@seed=0",
                                          "_test_overload@seed=1"]
        for payload in report["cells"].values():
            assert payload["status"] == "ok"
            assert payload["result"]["events_processed"] > 0

    def test_seeds_differentiate_cells(self, fast_scenarios):
        report = run_sweep(["_test_overload"], [0, 1])
        a = report["cells"]["_test_overload@seed=0"]["result"]
        b = report["cells"]["_test_overload@seed=1"]["result"]
        assert a != b


class TestDeterminism:
    def test_workers_do_not_change_bytes(self, fast_scenarios):
        grid = (["_test_overload", "_test_faults"], [0, 1, 2])
        serial = sweep_to_json(run_sweep(*grid, workers=1))
        parallel = sweep_to_json(run_sweep(*grid, workers=2))
        assert serial == parallel

    def test_repeat_runs_are_byte_identical(self, fast_scenarios):
        grid = (["_test_faults"], [0, 1])
        assert sweep_to_json(run_sweep(*grid)) == \
            sweep_to_json(run_sweep(*grid))

    def test_canonical_json_is_sorted_and_wallclock_free(self, fast_scenarios):
        payload = sweep_to_json(run_sweep(["_test_overload"], [0]))
        assert "wall" not in payload
        decoded = json.loads(payload)
        assert list(decoded["cells"]) == sorted(decoded["cells"])


class TestCrashIsolation:
    def test_failing_cell_does_not_sink_the_grid(self, fast_scenarios):
        report = run_sweep(["_test_faults", "_test_bad_faults"], [0],
                           workers=1)
        good = report["cells"]["_test_faults@seed=0"]
        bad = report["cells"]["_test_bad_faults@seed=0"]
        assert good["status"] == "ok"
        assert bad["status"] == "failed"
        assert "be-7" in bad["error"]
        assert report["grid"]["failed"] == 1

    def test_failing_cell_isolated_across_workers(self, fast_scenarios):
        report = run_sweep(["_test_faults", "_test_bad_faults"], [0, 1],
                           workers=2)
        statuses = {key: payload["status"]
                    for key, payload in report["cells"].items()}
        assert statuses == {
            "_test_faults@seed=0": "ok",
            "_test_faults@seed=1": "ok",
            "_test_bad_faults@seed=0": "failed",
            "_test_bad_faults@seed=1": "failed",
        }

    def test_run_cell_never_raises(self):
        payload = run_cell("definitely-not-a-scenario", 0)
        assert payload["status"] == "failed"
        assert "unknown scenario" in payload["error"]
