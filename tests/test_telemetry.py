"""Tests for repro.telemetry: tracer, metrics registry, Chrome-trace
export, latency attribution, and the determinism contract."""

import json

import pytest

from repro.cli import main as cli_main
from repro.experiments.scenario import Scenario, run as run_scenario
from repro.metrics.utilization import average_utilization, binned_trace
from repro.runtime.backend import SoftwareQueue
from repro.sim.engine import Simulator
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_TRACER,
    MetricsRegistry,
    TelemetryConfig,
    Tracer,
    attribute_requests,
    attribution_report,
    build_chrome_trace,
    export_chrome_trace,
    format_attribution_table,
)


def _overload(**params):
    return run_scenario(Scenario(kind="overload", params=params)).result


def _traced_overload(seed=0, duration=0.08, **kwargs):
    return _overload(seed=seed, duration=duration,
                     telemetry=TelemetryConfig(tracing=True), **kwargs)


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_ring_buffer_drops_oldest_and_counts(self):
        sim = Simulator()
        tracer = Tracer(sim, capacity=4)
        for i in range(10):
            tracer.sim_event(f"e{i}")
        assert len(tracer) == 4
        assert tracer.dropped == 6
        labels = [e[2] for e in tracer.iter_events()]
        assert labels == ["e6", "e7", "e8", "e9"]

    def test_iter_events_filters_by_kind(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.op_submit("c", 1, "k", True)
        tracer.instant("scheduler", "be_admit", client="c")
        assert len(list(tracer.iter_events("submit"))) == 1
        assert len(list(tracer.iter_events("instant"))) == 1

    def test_timestamps_are_sim_time(self):
        sim = Simulator()
        tracer = Tracer(sim)
        sim.call_at(1.5, lambda: tracer.sim_event("later"))
        sim.run()
        (event,) = tracer.iter_events()
        assert event[1] == 1.5

    def test_null_tracer_is_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.op_submit("c", 1, "k", True)
        NULL_TRACER.instant("t", "n", a=1)
        NULL_TRACER.request("c", 0.0, 0.0)
        assert len(NULL_TRACER) == 0
        assert list(NULL_TRACER.iter_events()) == []

    def test_config_builds_null_by_default(self):
        sim = Simulator()
        assert TelemetryConfig().build_tracer(sim) is NULL_TRACER
        built = TelemetryConfig(tracing=True, capacity=8).build_tracer(sim)
        assert built.enabled and built.capacity == 8

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(Simulator(), capacity=0)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("ops_total", client="c0")
        b = reg.counter("ops_total", client="c0")
        assert a is b
        assert reg.counter("ops_total", client="c1") is not a

    def test_counter_gauge_semantics(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc()
        c.value += 2
        assert c.value == 3
        g = reg.gauge("depth")
        g.set(5)
        g.set(2)
        assert g.value == 2 and g.max_seen == 5

    def test_histogram_buckets_are_schema_not_data(self):
        h = MetricsRegistry().histogram("latency")
        assert h.bounds == DEFAULT_LATENCY_BUCKETS
        h.observe(1e-6)   # first bucket boundary, inclusive
        h.observe(3e-3)   # interior
        h.observe(100.0)  # overflow
        assert h.count == 3
        assert h.counts[0] == 1
        assert h.counts[-1] == 1
        assert h.quantile(0.0) == pytest.approx(1e-6)
        assert h.quantile(1.0) == float("inf")
        assert MetricsRegistry().histogram("x").quantile(0.5) is None

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("x", bounds=(1.0, 1.0))

    def test_snapshot_is_canonical(self):
        reg = MetricsRegistry()
        reg.counter("b", client="z").inc()
        reg.counter("a", client="y").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"a{client=y}": 2, "b{client=z}": 1}
        assert snap["gauges"]["g"] == {"value": 1.5, "max": 1.5}
        assert snap["histograms"]["h"]["counts"] == [0, 1, 0]
        # Byte-identical re-serialization.
        assert reg.to_json() == reg.to_json()
        assert json.loads(reg.to_json()) == snap


# ----------------------------------------------------------------------
# Queue-telemetry migration (back-compat shim)
# ----------------------------------------------------------------------
class TestQueueTelemetryShim:
    def test_software_queue_attrs_still_read_write(self):
        sim = Simulator()
        queue = SoftwareQueue(sim, "c0", max_depth=4)

        class FakeOp:
            seq = 0

        queue.push(FakeOp())
        queue.rejected_total += 1  # legacy += call sites must keep working
        assert queue.enqueued_total == 1
        assert queue.rejected_total == 1
        assert queue.max_depth_seen == 1
        queue.pop()
        snap = queue.snapshot()
        assert snap == {"depth": 0, "enqueued_total": 1, "max_depth_seen": 1,
                        "rejected_total": 1, "max_depth": 4}

    def test_queue_instruments_live_on_shared_registry(self):
        sim = Simulator()
        reg = MetricsRegistry()
        queue = SoftwareQueue(sim, "c0", registry=reg)

        class FakeOp:
            seq = 0

        queue.push(FakeOp())
        snap = reg.snapshot()
        assert snap["counters"]["queue_enqueued_total{client=c0}"] == 1
        assert snap["gauges"]["queue_depth{client=c0}"]["max"] == 1

    def test_backend_queue_telemetry_keys_unchanged(self):
        result = _overload(seed=0, duration=0.05)
        for snap in result.queue_telemetry.values():
            assert set(snap) == {"depth", "enqueued_total", "max_depth_seen",
                                 "rejected_total", "max_depth"}
        assert result.metrics is not None
        counters = result.metrics.snapshot()["counters"]
        assert any(k.startswith("queue_enqueued_total") for k in counters)

    def test_temporal_and_ticktock_wait_stats_schema(self):
        import dataclasses

        from repro.experiments.registry import train_train_config

        for backend in ("temporal", "ticktock"):
            config = dataclasses.replace(
                train_train_config("mobilenet_v2", "mobilenet_v2", backend,
                                   seed=0),
                duration=0.05, warmup=0.0)
            result = run_scenario(
                Scenario(kind="experiment", experiment=config)).result
            telemetry = result.metrics.snapshot()["counters"]
            wait_key = ("slice_wait_total" if backend == "temporal"
                        else "barrier_wait_total")
            assert any(k.startswith(wait_key) for k in telemetry)


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
class TestChromeTrace:
    @pytest.fixture(scope="class")
    def traced(self):
        return _traced_overload()

    def test_schema(self, traced):
        payload = json.loads(export_chrome_trace(
            traced.tracer, utilization_segments=traced.utilization_segments))
        assert payload["displayTimeUnit"] == "ms"
        assert payload["metadata"]["tool"] == "repro.telemetry"
        assert isinstance(payload["metadata"]["dropped_events"], int)
        events = payload["traceEvents"]
        assert events, "trace must not be empty"
        for event in events:
            assert event["ph"] in ("M", "X", "i", "C")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert "ts" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_one_track_per_client(self, traced):
        payload = build_chrome_trace(traced.tracer)
        thread_names = {e["args"]["name"] for e in payload["traceEvents"]
                        if e["ph"] == "M" and e["name"] == "thread_name"
                        and e["pid"] == 1}
        for client in ("hp", "be-0", "be-1"):
            assert client in thread_names
            assert f"{client} queue" in thread_names
            assert f"{client} requests" in thread_names
        # Distinct clients get distinct execution tracks.
        exec_tids = {e["tid"]: e["args"]["name"]
                     for e in payload["traceEvents"]
                     if e["ph"] == "M" and e["name"] == "thread_name"
                     and e["pid"] == 1}
        assert len(exec_tids) == len(set(exec_tids))

    def test_lifecycle_spans_present(self, traced):
        payload = build_chrome_trace(traced.tracer)
        cats = {e.get("cat") for e in payload["traceEvents"]
                if e["ph"] == "X"}
        assert "kernel" in cats
        assert "queue" in cats
        assert "request" in cats

    def test_scheduler_instants_present(self, traced):
        payload = build_chrome_trace(traced.tracer)
        instant_cats = {e["cat"] for e in payload["traceEvents"]
                        if e["ph"] == "i"}
        assert "scheduler" in instant_cats

    def test_null_tracer_exports_empty_trace(self):
        payload = build_chrome_trace(NULL_TRACER)
        assert [e for e in payload["traceEvents"] if e["ph"] != "M"] == []


# ----------------------------------------------------------------------
# Latency attribution
# ----------------------------------------------------------------------
class TestAttribution:
    @pytest.fixture(scope="class")
    def traced(self):
        return _traced_overload()

    def test_components_sum_to_latency(self, traced):
        attrs = attribute_requests(traced.tracer)
        assert attrs, "scenario must complete requests"
        for a in attrs:
            total = a.queue + a.dispatch + a.execution + a.interference
            assert total == pytest.approx(a.latency, abs=1e-9)
            assert a.queue >= -1e-12
            assert a.dispatch >= 0
            assert a.execution >= 0

    def test_serialized_components_sum_exactly(self, traced):
        report = attribution_report(traced.tracer)
        for req in report["requests"]:
            total = (req["queue"] + req["dispatch"] + req["execution"]
                     + req["interference"])
            assert total == pytest.approx(req["latency"], abs=1e-9)

    def test_per_client_filter_and_aggregates(self, traced):
        hp_only = attribute_requests(traced.tracer, client="hp")
        assert hp_only and all(a.client == "hp" for a in hp_only)
        report = attribution_report(traced.tracer)
        assert report["clients"]["hp"]["requests"] == len(hp_only)

    def test_table_renders_all_clients(self, traced):
        table = format_attribution_table(traced.tracer)
        for client in ("hp", "be-0", "be-1"):
            assert client in table

    def test_empty_tracer_attributes_nothing(self):
        assert attribute_requests(NULL_TRACER) == []
        assert attribution_report(NULL_TRACER)["requests"] == []


# ----------------------------------------------------------------------
# Determinism contract
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_same_seed_byte_identical_different_seed_differs(self):
        first = _traced_overload(seed=0)
        second = _traced_overload(seed=0)
        other = _traced_overload(seed=1)
        t1 = export_chrome_trace(first.tracer, first.utilization_segments)
        t2 = export_chrome_trace(second.tracer, second.utilization_segments)
        t3 = export_chrome_trace(other.tracer, other.utilization_segments)
        assert t1 == t2
        assert t1 != t3
        m1 = first.metrics.to_json()
        m2 = second.metrics.to_json()
        m3 = other.metrics.to_json()
        assert m1 == m2
        assert m1 != m3
        a1 = json.dumps(attribution_report(first.tracer), sort_keys=True)
        a2 = json.dumps(attribution_report(second.tracer), sort_keys=True)
        assert a1 == a2

    def test_tracing_does_not_perturb_results(self):
        plain = _overload(seed=0, duration=0.08)
        traced = _traced_overload(seed=0)
        assert plain.hp_latency.count == traced.hp_latency.count
        assert plain.hp_latency.p99 == traced.hp_latency.p99
        assert plain.queue_telemetry == traced.queue_telemetry
        assert plain.backend_stats == traced.backend_stats


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestTraceCli:
    def test_trace_overload_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        metrics_out = tmp_path / "metrics.json"
        code = cli_main(["trace", "overload", "--out", str(out),
                         "--metrics-out", str(metrics_out),
                         "--duration", "0.05"])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        assert {"pid", "tid", "ph", "ts"} <= set(payload["traceEvents"][-1])
        snap = json.loads(metrics_out.read_text())
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert "latency attribution" in capsys.readouterr().out

    def test_trace_experiment_scenario(self, tmp_path):
        out = tmp_path / "trace.json"
        code = cli_main(["trace", "inf-train", "--out", str(out),
                         "--duration", "0.05", "--hp", "mobilenet_v2",
                         "--be", "mobilenet_v2"])
        assert code == 0
        payload = json.loads(out.read_text())
        util_counters = [e for e in payload["traceEvents"]
                        if e["ph"] == "C" and e["name"] == "util.compute"]
        assert util_counters


# ----------------------------------------------------------------------
# Utilization metric edge cases (satellite)
# ----------------------------------------------------------------------
class TestUtilizationEdges:
    def test_empty_segments_average_is_zero(self):
        avg = average_utilization([], 0.0, 1.0)
        assert avg.compute == 0.0 and avg.memory_bw == 0.0 \
            and avg.sm_busy == 0.0
        assert avg.window == 1.0

    def test_empty_segments_binned_trace_is_zero(self):
        times, compute, memory, sm = binned_trace([], 0.0, 0.01,
                                                  bin_width=1e-3)
        assert len(times) == 10
        assert not compute.any() and not memory.any() and not sm.any()

    def test_segment_straddling_window_edges_is_clipped(self):
        segments = [(-0.5, 0.5, 1.0, 0.8, 0.6)]
        avg = average_utilization(segments, 0.0, 1.0)
        assert avg.compute == pytest.approx(0.5)
        assert avg.memory_bw == pytest.approx(0.4)
        assert avg.sm_busy == pytest.approx(0.3)
        # And past the right edge.
        avg = average_utilization([(0.5, 2.0, 1.0, 1.0, 1.0)], 0.0, 1.0)
        assert avg.compute == pytest.approx(0.5)

    def test_segment_outside_window_ignored(self):
        avg = average_utilization([(2.0, 3.0, 1.0, 1.0, 1.0)], 0.0, 1.0)
        assert avg.compute == 0.0
        times, compute, _, _ = binned_trace([(2.0, 3.0, 1.0, 1.0, 1.0)],
                                            0.0, 1.0, bin_width=0.5)
        assert not compute.any()

    def test_zero_utilization_gaps_count_in_denominator(self):
        # Busy 0-0.25 and 0.75-1.0; idle gap in between counts as zero.
        segments = [(0.0, 0.25, 1.0, 1.0, 1.0), (0.75, 1.0, 1.0, 1.0, 1.0)]
        avg = average_utilization(segments, 0.0, 1.0)
        assert avg.compute == pytest.approx(0.5)
        times, compute, _, _ = binned_trace(segments, 0.0, 1.0,
                                            bin_width=0.25)
        assert compute == pytest.approx([1.0, 0.0, 0.0, 1.0])

    def test_binned_trace_segment_straddling_bin_boundary(self):
        segments = [(0.1, 0.3, 1.0, 1.0, 1.0)]
        times, compute, _, _ = binned_trace(segments, 0.0, 0.4,
                                            bin_width=0.2)
        assert compute == pytest.approx([0.5, 0.5])

    def test_window_validation(self):
        with pytest.raises(ValueError):
            average_utilization([], 1.0, 1.0)
        with pytest.raises(ValueError):
            binned_trace([], 0.0, 1.0, bin_width=0.0)
