"""Tests for the serve daemon: protocol, jobs, and the live round trip.

The end-to-end tests start a real :class:`ServeServer` on an ephemeral
TCP port (or a tmp-dir Unix socket) inside the test process and drive
it with :class:`ServeClient` — the same path the CLI and CI smoke use.
Queue/cancel/reject semantics are tested deterministically on an
admission-only daemon (``workers=0``: jobs queue but never dispatch).
"""

import json
import socket
import threading
import time
from contextlib import contextmanager

import pytest

from repro.experiments.registry import make_scenario, scenario_catalog
from repro.experiments.scenario import Scenario, run
from repro.serve import (
    CANCELED,
    COMPLETED,
    DISPATCHED,
    FAILED,
    INTERRUPTED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    Job,
    LifecycleError,
    PendingQueue,
    QueueFull,
    ServeClient,
    ServeConfig,
    ServeError,
    ServeServer,
)
from repro.serve.protocol import (
    LineReader,
    ProtocolError,
    decode_request,
    encode,
    parse_address,
)
from repro.sim.engine import RunAborted, Simulator, set_abort_check


@contextmanager
def serve_daemon(**kwargs):
    kwargs.setdefault("address", "tcp:127.0.0.1:0")
    kwargs.setdefault("telemetry_interval", 0)
    server = ServeServer(ServeConfig(**kwargs))
    address = server.start()
    try:
        yield server, address
    finally:
        server.shutdown()


def _scenario(**overrides):
    """A fast submittable job: the faults registry scenario."""
    spec = {"name": "faults", "duration": 0.05}
    spec.update(overrides)
    return spec


# ---------------------------------------------------------------------------
# Protocol


class TestProtocol:
    def test_parse_address_unix(self):
        assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")

    def test_parse_address_tcp(self):
        assert parse_address("tcp:localhost:80") == ("tcp", ("localhost", 80))
        assert parse_address("127.0.0.1:9000") == ("tcp", ("127.0.0.1", 9000))

    @pytest.mark.parametrize("bad", ["unix:", "justahost", "tcp:host:nan"])
    def test_parse_address_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_decode_request_malformed_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(b"{not json")
        assert excinfo.value.code == "bad_request"

    def test_decode_request_non_object(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(b"[1,2,3]")
        assert excinfo.value.code == "bad_request"

    def test_decode_request_missing_verb(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(b'{"job": "job-0001"}')
        assert excinfo.value.code == "bad_request"

    def test_decode_request_unknown_verb(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(b'{"verb": "explode"}')
        assert excinfo.value.code == "unknown_verb"

    def test_encode_is_compact_sorted_ndjson(self):
        frame = encode({"b": 1, "a": 2})
        assert frame == b'{"a":2,"b":1}\n'

    def test_line_reader_splits_and_bounds(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b'{"verb":"ping"}\n{"verb":"status"}\n')
            reader = LineReader(right, max_line=64)
            assert reader.readline() == b'{"verb":"ping"}'
            assert reader.readline() == b'{"verb":"status"}'
            left.sendall(b"x" * 200)
            with pytest.raises(ProtocolError) as excinfo:
                reader.readline()
            assert excinfo.value.code == "oversized"
        finally:
            left.close()
            right.close()

    def test_line_reader_exactly_at_limit(self):
        # The bound is exclusive of the newline: an N-byte line passes,
        # N+1 bytes without a newline is oversized.
        left, right = socket.socketpair()
        try:
            reader = LineReader(right, max_line=64)
            left.sendall(b"y" * 64 + b"\n")
            assert reader.readline() == b"y" * 64
            left.sendall(b"z" * 65)  # no newline yet: already doomed
            with pytest.raises(ProtocolError) as excinfo:
                reader.readline()
            assert excinfo.value.code == "oversized"
        finally:
            left.close()
            right.close()


# ---------------------------------------------------------------------------
# Jobs and the bounded queue


def _job(job_id="job-0001", priority=0):
    return Job(job_id, make_scenario("faults", duration=0.05),
               {"name": "faults"}, priority=priority)


class TestJobLifecycle:
    def test_happy_path(self):
        job = _job()
        assert job.state == QUEUED
        job.transition(DISPATCHED)
        job.transition(RUNNING)
        job.transition(COMPLETED)
        assert job.terminal
        assert [s for s, _ in job.transitions] == [
            QUEUED, DISPATCHED, RUNNING, COMPLETED]

    @pytest.mark.parametrize("path,bad", [
        ((), RUNNING),                      # QUEUED -> RUNNING skips dispatch
        ((DISPATCHED, RUNNING, COMPLETED), RUNNING),  # terminal is final
        ((DISPATCHED, CANCELED), RUNNING),  # canceled is final
        ((), QUEUED),                       # no self-loop
    ])
    def test_illegal_transitions_raise(self, path, bad):
        job = _job()
        for state in path:
            job.transition(state)
        with pytest.raises(LifecycleError):
            job.transition(bad)

    def test_try_transition_reports_instead_of_raising(self):
        job = _job()
        assert job.try_transition(DISPATCHED)
        assert not job.try_transition(COMPLETED)  # DISPATCHED -/-> COMPLETED
        assert job.state == DISPATCHED

    def test_failure_records_error(self):
        job = _job()
        job.transition(DISPATCHED)
        job.transition(RUNNING)
        job.transition(FAILED, error="ValueError: boom")
        assert job.describe()["error"] == "ValueError: boom"

    # The full edge table, including the PR-9 recovery edges: requeue
    # (DISPATCHED/RUNNING -> QUEUED), INTERRUPTED, and admission-time
    # failure (QUEUED -> FAILED for a spec that can no longer be
    # rebuilt at recovery).  Every pair NOT listed here must raise —
    # the exhaustive sweep below proves the state machine admits
    # exactly these moves and nothing else.
    EXPECTED_EDGES = {
        QUEUED: {DISPATCHED, CANCELED, FAILED},
        DISPATCHED: {RUNNING, CANCELED, QUEUED, INTERRUPTED},
        RUNNING: {COMPLETED, FAILED, CANCELED, QUEUED, INTERRUPTED},
        COMPLETED: set(),
        FAILED: set(),
        CANCELED: set(),
        INTERRUPTED: set(),
    }

    @pytest.mark.parametrize("source", JOB_STATES)
    @pytest.mark.parametrize("target", JOB_STATES)
    def test_transition_matrix_is_exact(self, source, target):
        job = _job()
        job.state = source  # place the job without walking a path
        if target in self.EXPECTED_EDGES[source]:
            job.transition(target)
            assert job.state == target
        else:
            with pytest.raises(LifecycleError):
                job.transition(target)
            assert job.state == source
            assert not job.try_transition(target)

    def test_restore_round_trips_describe(self):
        job = _job()
        job.transition(DISPATCHED, clock=0.5)
        job.transition(RUNNING, clock=0.6)
        job.transition(COMPLETED, clock=0.9)
        job.result_json = '{"x":1}'
        record = job.describe()
        record["result_json"] = job.result_json
        restored = Job.restore(record, job.scenario)
        assert restored.state == COMPLETED
        assert restored.result_json == '{"x":1}'
        assert restored.recovered
        assert [list(t) for t in restored.transitions] == \
            [list(t) for t in job.transitions]


class TestPendingQueue:
    def test_priority_then_fifo_order(self):
        queue = PendingQueue(max_pending=8)
        low = _job("job-1", priority=0)
        mid1 = _job("job-2", priority=5)
        mid2 = _job("job-3", priority=5)
        high = _job("job-4", priority=9)
        for job in (low, mid1, mid2, high):
            queue.push(job)
        order = [queue.pop(timeout=0).job_id for _ in range(4)]
        assert order == ["job-4", "job-2", "job-3", "job-1"]

    def test_reject_when_full(self):
        queue = PendingQueue(max_pending=2)
        queue.push(_job("job-1"))
        queue.push(_job("job-2"))
        with pytest.raises(QueueFull):
            queue.push(_job("job-3"))
        # popping frees a slot
        queue.pop(timeout=0)
        queue.push(_job("job-3"))

    def test_remove_and_len(self):
        queue = PendingQueue(max_pending=4)
        queue.push(_job("job-1"))
        queue.push(_job("job-2"))
        assert len(queue) == 2
        assert queue.remove("job-1").job_id == "job-1"
        assert len(queue) == 1
        assert queue.remove("job-1") is None
        assert queue.pop(timeout=0).job_id == "job-2"
        assert queue.pop(timeout=0) is None

    def test_drain_returns_dequeue_order(self):
        queue = PendingQueue(max_pending=4)
        queue.push(_job("job-1", priority=1))
        queue.push(_job("job-2", priority=3))
        assert [j.job_id for j in queue.drain()] == ["job-2", "job-1"]
        assert len(queue) == 0

    def test_force_push_bypasses_bound(self):
        queue = PendingQueue(max_pending=1)
        queue.push(_job("job-1"))
        with pytest.raises(QueueFull):
            queue.push(_job("job-2"))
        queue.push(_job("job-2"), force=True)  # requeue/recovery path
        assert len(queue) == 2

    def test_heap_stays_bounded_under_cancel_churn(self):
        # Lazy cancels leave stale heap entries; the compaction
        # threshold must keep the raw heap O(live), not O(history).
        queue = PendingQueue(max_pending=10_000)
        live = [_job(f"keep-{i}") for i in range(4)]
        for job in live:
            queue.push(job)
        max_heap = 0
        for round_no in range(200):
            victim = _job(f"churn-{round_no}")
            queue.push(victim)
            assert queue.remove(victim.job_id) is victim
            max_heap = max(max_heap, queue.heap_size)
        bound = len(live) + 2 * max(PendingQueue.COMPACT_MIN_STALE,
                                    len(live))
        assert max_heap <= bound, \
            f"heap grew to {max_heap} under churn (bound {bound})"
        assert len(queue) == len(live)
        assert {queue.pop(timeout=0).job_id for _ in live} == \
            {job.job_id for job in live}


# ---------------------------------------------------------------------------
# Engine abort hook


class TestEngineAbort:
    def teardown_method(self):
        set_abort_check(None)

    def _busy_sim(self):
        sim = Simulator()

        def tick():
            sim.call_in(0.001, tick)

        sim.call_in(0.0, tick)
        return sim

    def test_abort_check_fires_mid_run(self):
        set_abort_check(lambda: sim.events_processed > 1500)
        sim = self._busy_sim()
        with pytest.raises(RunAborted):
            sim.run(until=100.0)
        assert 1500 < sim.events_processed <= 1500 + 1024

    def test_abort_check_fires_before_first_event(self):
        set_abort_check(lambda: True)
        sim = self._busy_sim()
        with pytest.raises(RunAborted):
            sim.run(until=1.0)
        assert sim.events_processed == 0

    def test_no_check_means_no_overhead_path(self):
        set_abort_check(None)
        sim = self._busy_sim()
        sim.run(until=0.01)
        assert sim.events_processed > 0

    def test_set_abort_check_returns_previous(self):
        first = lambda: False  # noqa: E731
        assert set_abort_check(first) is None
        assert set_abort_check(None) is first


# ---------------------------------------------------------------------------
# End-to-end round trips


class TestEndToEnd:
    def test_submit_status_result_history_roundtrip(self):
        with serve_daemon(workers=1) as (_, address):
            with ServeClient(address) as client:
                job = client.submit(seed=3, **_scenario())
                final = client.wait(job, timeout=120)
                assert final["state"] == COMPLETED
                assert final["error"] is None
                states = [s for s, _ in final["transitions"]]
                assert states == [QUEUED, DISPATCHED, RUNNING, COMPLETED]
                # determinism contract: byte-identical to a direct run
                direct = run(make_scenario("faults", seed=3,
                                           duration=0.05)).to_json()
                assert client.result_json(job) == direct
                parsed = client.result(job)
                assert parsed["seed"] == 3
                assert parsed["events_processed"] > 0
                history = client.history()
                assert [j["id"] for j in history] == [job]
                assert history[0]["state"] == COMPLETED

    def test_same_seed_resubmit_is_identical_and_seeds_differ(self):
        with serve_daemon(workers=1) as (_, address):
            with ServeClient(address) as client:
                first = client.submit(seed=7, **_scenario())
                second = client.submit(seed=7, **_scenario())
                other = client.submit(seed=8, **_scenario())
                for job in (first, second, other):
                    assert client.wait(job, timeout=120)["state"] == COMPLETED
                assert client.result_json(first) == client.result_json(second)
                assert client.result_json(first) != client.result_json(other)

    def test_inline_scenario_submit(self):
        inline = {"kind": "faults", "params": {"duration": 0.05,
                                               "be_clients": 1}}
        with serve_daemon(workers=1) as (_, address):
            with ServeClient(address) as client:
                job = client.submit(scenario=inline, seed=2)
                assert client.wait(job, timeout=120)["state"] == COMPLETED
                direct = run(Scenario(kind="faults", params={
                    "duration": 0.05, "be_clients": 1, "seed": 2})).to_json()
                assert client.result_json(job) == direct

    def test_unix_socket_roundtrip(self, tmp_path):
        address = f"unix:{tmp_path / 'serve.sock'}"
        with serve_daemon(address=address, workers=1) as (_, resolved):
            assert resolved == address
            with ServeClient(resolved) as client:
                assert client.ping()["ok"]
                job = client.submit(**_scenario())
                assert client.wait(job, timeout=120)["state"] == COMPLETED

    def test_scenarios_verb_matches_registry_catalog(self):
        with serve_daemon(workers=0) as (_, address):
            with ServeClient(address) as client:
                assert client.scenarios() == scenario_catalog()

    def test_failed_job_records_error(self):
        # A kind="llm" scenario pointed at a non-LLM workload passes
        # construction-time validation but raises when it runs, which
        # surfaces through the daemon as a FAILED job.
        with serve_daemon(workers=1) as (_, address):
            with ServeClient(address) as client:
                job = client.submit(scenario={
                    "kind": "llm",
                    "params": {"duration": 0.05, "model": "resnet50"}})
                final = client.wait(job, timeout=120)
                assert final["state"] == FAILED
                assert "not an LLM workload" in final["error"]
                with pytest.raises(ServeError) as excinfo:
                    client.result_json(job)
                assert excinfo.value.code == "no_result"

    def test_submit_validation_errors(self):
        with serve_daemon(workers=0) as (_, address):
            with ServeClient(address) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.submit(name="no_such_scenario")
                assert excinfo.value.code == "bad_scenario"
                with pytest.raises(ServeError) as excinfo:
                    client.submit(scenario={"kind": "experiment"})
                assert excinfo.value.code == "bad_scenario"
                # Typed-params validation runs at submit: unknown
                # scenario params are rejected before a job exists.
                with pytest.raises(ServeError) as excinfo:
                    client.submit(scenario={
                        "kind": "faults",
                        "params": {"duration": 0.05, "nonsense_param": 1}})
                assert excinfo.value.code == "bad_scenario"
                assert "nonsense_param" in str(excinfo.value)
                with pytest.raises(ServeError) as excinfo:
                    client.request("submit")
                assert excinfo.value.code == "bad_request"
                with pytest.raises(ServeError) as excinfo:
                    client.status("job-9999")
                assert excinfo.value.code == "unknown_job"


# ---------------------------------------------------------------------------
# Queue semantics through the API (admission-only daemon: workers=0)


class TestQueueSemanticsOverAPI:
    def test_reject_when_full_observable(self):
        with serve_daemon(workers=0, max_pending=2) as (_, address):
            with ServeClient(address) as client:
                client.submit(**_scenario())
                client.submit(**_scenario())
                with pytest.raises(ServeError) as excinfo:
                    client.submit(**_scenario())
                assert excinfo.value.code == "queue_full"
                snapshot = client.telemetry()["snapshot"]
                assert snapshot["queue_depth"] == 2
                assert snapshot["counters"]["rejected"] == 1
                assert snapshot["counters"]["submitted"] == 2

    def test_queue_full_carries_depth_and_retry_hint(self):
        with serve_daemon(workers=0, max_pending=2) as (_, address):
            with ServeClient(address) as client:
                client.submit(**_scenario())
                client.submit(**_scenario())
                with pytest.raises(ServeError) as excinfo:
                    client.submit(**_scenario())
                details = excinfo.value.details
                assert details["queue_depth"] == 2
                assert details["max_pending"] == 2
                assert details["retry_after_hint"] > 0

    def test_submit_retries_honor_hint_until_space(self):
        with serve_daemon(workers=0, max_pending=1) as (server, address):
            with ServeClient(address) as client:
                blocker = client.submit(**_scenario())

                def free_slot():
                    time.sleep(0.15)
                    client2 = ServeClient(address)
                    client2.cancel(blocker)
                    client2.close()

                helper = threading.Thread(target=free_slot)
                helper.start()
                try:
                    job = client.submit(**_scenario(), retries=50,
                                        max_retry_wait=0.05)
                finally:
                    helper.join()
                assert client.status(job)["state"] == QUEUED

    def test_idempotency_key_dedups_submits(self):
        with serve_daemon(workers=0, max_pending=4) as (_, address):
            with ServeClient(address) as client:
                first = client.submit(**_scenario(),
                                      idempotency_key="run-42")
                again = client.submit(**_scenario(),
                                      idempotency_key="run-42")
                other = client.submit(**_scenario(),
                                      idempotency_key="run-43")
                assert again == first
                assert other != first
                snapshot = client.telemetry()["snapshot"]
                assert snapshot["counters"]["submitted"] == 2
                assert snapshot["counters"]["deduplicated"] == 1
                assert snapshot["queue_depth"] == 2
                assert snapshot["idempotency_keys"] == 2

    def test_cancel_queued_job(self):
        with serve_daemon(workers=0) as (_, address):
            with ServeClient(address) as client:
                job = client.submit(**_scenario())
                response = client.cancel(job)
                assert response["canceled"] is True
                assert response["state"] == CANCELED
                record = client.status(job)
                assert record["state"] == CANCELED
                assert [j["id"] for j in client.history()] == [job]
                # canceled jobs have no result
                with pytest.raises(ServeError) as excinfo:
                    client.result_json(job)
                assert excinfo.value.code == "no_result"

    def test_result_before_completion_is_not_ready(self):
        with serve_daemon(workers=0) as (_, address):
            with ServeClient(address) as client:
                job = client.submit(**_scenario())
                with pytest.raises(ServeError) as excinfo:
                    client.request("result", job=job)
                assert excinfo.value.code == "not_ready"

    def test_daemon_summary_lists_active_jobs(self):
        with serve_daemon(workers=0, max_pending=8) as (_, address):
            with ServeClient(address) as client:
                ids = [client.submit(**_scenario()) for _ in range(3)]
                summary = client.status()
                assert [j["id"] for j in summary["jobs"]] == sorted(ids)
                assert summary["daemon"]["admission"] == "open"
                assert summary["daemon"]["jobs"][QUEUED] == 3


class TestCancelRunning:
    def test_cancel_running_job_aborts_via_engine_hook(self):
        with serve_daemon(workers=1) as (_, address):
            with ServeClient(address) as client:
                # Long horizon: would take tens of wall seconds uncanceled.
                job = client.submit(name="overload", duration=5.0)
                deadline = time.monotonic() + 30
                while client.status(job)["state"] != RUNNING:
                    assert time.monotonic() < deadline, "job never ran"
                    time.sleep(0.01)
                response = client.cancel(job)
                assert response["cancel_requested"] is True
                final = client.wait(job, timeout=30)
                assert final["state"] == CANCELED
                assert "canceled while running" in final["error"]

    def test_cancel_before_dispatch_wins_the_race(self):
        # Queue two jobs behind one worker; cancel the queued one.
        with serve_daemon(workers=1) as (_, address):
            with ServeClient(address) as client:
                first = client.submit(name="overload", duration=0.15)
                second = client.submit(**_scenario())
                response = client.cancel(second)
                assert response["state"] in (CANCELED, QUEUED, DISPATCHED)
                final = client.wait(second, timeout=60)
                assert final["state"] == CANCELED
                # the occupier is unaffected
                client.cancel(first)
                assert client.wait(first, timeout=60)["state"] in (
                    COMPLETED, CANCELED)


# ---------------------------------------------------------------------------
# Protocol robustness against a live daemon (raw sockets)


class TestDaemonRobustness:
    def _raw(self, address):
        from repro.serve.protocol import connect

        return connect(address, timeout=10.0)

    def _roundtrip(self, sock, payload: bytes):
        sock.sendall(payload)
        return json.loads(LineReader(sock).readline())

    def test_malformed_json_keeps_connection_alive(self):
        with serve_daemon(workers=0) as (_, address):
            sock = self._raw(address)
            try:
                response = self._roundtrip(sock, b"{oops\n")
                assert response["ok"] is False
                assert response["error"]["code"] == "bad_request"
                # same connection still serves valid requests
                response = self._roundtrip(sock, b'{"verb":"ping"}\n')
                assert response["ok"] is True
            finally:
                sock.close()

    def test_unknown_verb_structured_error(self):
        with serve_daemon(workers=0) as (_, address):
            sock = self._raw(address)
            try:
                response = self._roundtrip(sock, b'{"verb":"frobnicate"}\n')
                assert response["ok"] is False
                assert response["error"]["code"] == "unknown_verb"
            finally:
                sock.close()

    def test_oversized_payload_rejected(self):
        with serve_daemon(workers=0) as (_, address):
            sock = self._raw(address)
            try:
                sock.sendall(b"x" * ((1 << 20) + 2))
                reader = LineReader(sock)
                response = json.loads(reader.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == "oversized"
                assert reader.readline() is None  # daemon closed it
            finally:
                sock.close()
            # the daemon survived and serves new connections
            with ServeClient(address) as client:
                assert client.ping()["ok"]

    def test_mid_request_disconnect_does_not_kill_daemon(self):
        with serve_daemon(workers=0) as (_, address):
            sock = self._raw(address)
            sock.sendall(b'{"verb":"pi')  # partial request
            sock.close()
            time.sleep(0.05)
            with ServeClient(address) as client:
                assert client.ping()["ok"]
                job = client.submit(**_scenario())
                assert client.status(job)["state"] == QUEUED


# ---------------------------------------------------------------------------
# Telemetry


class TestTelemetry:
    def test_stream_yields_monotonic_snapshots(self):
        with serve_daemon(workers=0) as (_, address):
            with ServeClient(address) as client:
                snapshots = list(client.telemetry_stream(follow=3,
                                                         interval=0.02))
                assert len(snapshots) == 3
                seqs = [s["seq"] for s in snapshots]
                assert seqs == sorted(seqs)
                assert all(s["admission"] == "open" for s in snapshots)

    def test_ticker_fills_the_ring(self):
        with serve_daemon(workers=0, telemetry_interval=0.02) as (_, address):
            time.sleep(0.1)
            with ServeClient(address) as client:
                response = client.telemetry(ring=True)
                assert len(response["ring"]) >= 1
                assert response["snapshot"]["seq"] > response["ring"][-1]["seq"]


# ---------------------------------------------------------------------------
# Graceful shutdown


class TestShutdown:
    def test_drain_cancels_queued_completes_running_writes_history(
            self, tmp_path):
        history_path = tmp_path / "history.json"
        server = ServeServer(ServeConfig(
            address="tcp:127.0.0.1:0", workers=1, telemetry_interval=0,
            history_path=str(history_path)))
        address = server.start()
        client = ServeClient(address)
        running = client.submit(name="faults", duration=0.3)
        deadline = time.monotonic() + 30
        while client.status(running)["state"] != RUNNING:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        queued = [client.submit(**_scenario()) for _ in range(2)]
        client.close()
        server.shutdown()

        assert server._stopped.is_set()
        history = json.loads(history_path.read_text())
        by_id = {j["id"]: j for j in history["jobs"]}
        assert by_id[running]["state"] == COMPLETED  # drained, not killed
        for job_id in queued:
            assert by_id[job_id]["state"] == CANCELED
            assert by_id[job_id]["error"] == "daemon shutdown"
        assert history["counters"]["completed"] == 1
        assert history["counters"]["canceled"] == 2
        assert history["daemon"]["workers"] == 1
        # the socket is released
        with pytest.raises(OSError):
            ServeClient(address)

    def test_shutdown_verb_stops_the_daemon(self):
        server = ServeServer(ServeConfig(address="tcp:127.0.0.1:0",
                                         workers=0, telemetry_interval=0))
        address = server.start()
        with ServeClient(address) as client:
            response = client.shutdown()
            assert response["stopping"] is True
        assert server._stopped.wait(10)

    def test_signal_handler_triggers_drain(self):
        import signal as signal_module

        server = ServeServer(ServeConfig(address="tcp:127.0.0.1:0",
                                         workers=0, telemetry_interval=0))
        server.start()
        server._on_signal(signal_module.SIGTERM, None)
        assert server._stopped.wait(10)

    def test_submit_after_shutdown_starts_is_rejected(self):
        server = ServeServer(ServeConfig(address="tcp:127.0.0.1:0",
                                         workers=0, telemetry_interval=0))
        address = server.start()
        client = ServeClient(address)
        job = client.submit(**_scenario())
        assert client.status(job)["state"] == QUEUED
        # flip admission without tearing the socket down yet
        with server._lock:
            server._shutting_down = True
        with pytest.raises(ServeError) as excinfo:
            client.submit(**_scenario())
        assert excinfo.value.code == "shutting_down"
        client.close()
        with server._lock:
            server._shutting_down = False
        server.shutdown()

    def test_shutdown_is_idempotent(self):
        server = ServeServer(ServeConfig(address="tcp:127.0.0.1:0",
                                         workers=0, telemetry_interval=0))
        server.start()
        threads = [threading.Thread(target=server.shutdown)
                   for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert server._stopped.is_set()


# ---------------------------------------------------------------------------
# Wall-clock pacing


class TestPacing:
    def test_pace_holds_worker_until_scaled_wall_time(self):
        # pace=1: 0.2 simulated seconds must take >= 0.2 wall seconds.
        with serve_daemon(workers=1, pace=1.0) as (_, address):
            with ServeClient(address) as client:
                start = time.monotonic()
                job = client.submit(name="faults", duration=0.2)
                final = client.wait(job, timeout=60)
                elapsed = time.monotonic() - start
                assert final["state"] == COMPLETED
                assert elapsed >= 0.18
