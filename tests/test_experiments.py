"""Tests for experiment configs, the runner, and table formatting."""

import pytest

from repro.experiments.config import ExperimentConfig, JobSpec
from repro.experiments.registry import (
    inf_inf_config,
    inf_train_config,
    multi_client_config,
    solo_inference_config,
    train_train_config,
)
from repro.experiments.runner import get_profile, solo_throughput
from repro.experiments.scenario import Scenario, run as run_scenario
from repro.experiments.tables import format_series, format_table, ratio
from repro.gpu.specs import V100_16GB


def run_experiment(cfg):
    """Run a collocation config through the Scenario API."""
    return run_scenario(Scenario(kind="experiment", experiment=cfg)).result


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_jobspec_autonames():
    job = JobSpec(model="resnet50", kind="inference", high_priority=True,
                  arrivals="poisson", rps=10)
    assert job.name == "hp-resnet50-inference"


def test_jobspec_validation():
    with pytest.raises(ValueError):
        JobSpec(model="resnet50", kind="serving")
    with pytest.raises(ValueError):
        JobSpec(model="resnet50", kind="inference", arrivals="poisson", rps=0)
    with pytest.raises(ValueError):
        JobSpec(model="resnet50", kind="training", arrivals="poisson", rps=5)


def test_experiment_config_validation():
    hp = JobSpec(model="resnet50", kind="inference", high_priority=True,
                 arrivals="poisson", rps=10)
    with pytest.raises(ValueError):
        ExperimentConfig(jobs=[], backend="orion")
    with pytest.raises(ValueError):
        ExperimentConfig(jobs=[hp], backend="orion", duration=0.1, warmup=0.5)
    # Orion requires exactly one HP job.
    be = JobSpec(model="resnet50", kind="training")
    with pytest.raises(ValueError):
        ExperimentConfig(jobs=[be], backend="orion")
    with pytest.raises(ValueError):
        ExperimentConfig(jobs=[hp, hp], backend="orion")


def test_registry_builders_produce_valid_configs():
    for cfg in (
        inf_train_config("resnet50", "mobilenet_v2", "orion"),
        train_train_config("resnet50", "mobilenet_v2", "ticktock"),
        inf_inf_config("resnet50", "mobilenet_v2", "reef", arrivals="apollo"),
        inf_inf_config("resnet50", "mobilenet_v2", "mps", arrivals="poisson"),
        multi_client_config("resnet50", ["mobilenet_v2", "resnet101"], "orion"),
        solo_inference_config("resnet50", rps=50),
    ):
        assert cfg.jobs


def test_inf_inf_rejects_unknown_arrivals():
    with pytest.raises(ValueError):
        inf_inf_config("resnet50", "mobilenet_v2", "orion", arrivals="burst")


def test_multi_client_uses_a100_by_default():
    cfg = multi_client_config("resnet50", ["mobilenet_v2"], "orion")
    assert cfg.device == "A100-40GB"
    assert len(cfg.jobs) == 2


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def test_profile_cache_reuses_instances():
    a = get_profile("mobilenet_v2", "inference", V100_16GB)
    b = get_profile("mobilenet_v2", "inference", V100_16GB)
    assert a is b


def test_solo_throughput_positive():
    assert solo_throughput("mobilenet_v2", "inference") > 100


def test_run_experiment_end_to_end():
    cfg = inf_train_config("mobilenet_v2", "mobilenet_v2", "orion",
                           duration=1.0)
    cfg.warmup = 0.2
    result = run_experiment(cfg)
    assert result.hp_job.latency.count > 10
    assert result.hp_job.throughput > 0
    assert len(result.be_jobs()) == 1
    assert result.backend_stats["be_kernels_launched"] > 0


def test_run_experiment_unknown_backend():
    cfg = inf_train_config("mobilenet_v2", "mobilenet_v2", "orion",
                           duration=1.0)
    cfg.backend = "magic"
    with pytest.raises(ValueError):
        run_experiment(cfg)


def test_run_experiment_records_utilization():
    cfg = solo_inference_config("mobilenet_v2", rps=50, duration=1.0,
                                record_utilization=True)
    cfg.warmup = 0.2
    result = run_experiment(cfg)
    assert result.utilization is not None
    assert 0 < result.utilization.compute < 1
    assert result.utilization_segments


def test_run_experiment_deterministic():
    def run():
        cfg = inf_inf_config("mobilenet_v2", "mobilenet_v2", "orion",
                             arrivals="poisson", duration=1.0, seed=11)
        cfg.warmup = 0.2
        return run_experiment(cfg)

    a, b = run(), run()
    assert a.hp_job.latency.p99 == pytest.approx(b.hp_job.latency.p99)
    assert a.hp_job.throughput == b.hp_job.throughput


def test_seed_changes_poisson_outcomes():
    def run(seed):
        cfg = inf_inf_config("mobilenet_v2", "mobilenet_v2", "orion",
                             arrivals="poisson", duration=1.0, seed=seed)
        cfg.warmup = 0.2
        return run_experiment(cfg).hp_job.latency.mean

    assert run(1) != run(2)


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------
def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "22.50" in text


def test_format_table_row_width_checked():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_format_series():
    text = format_series("fig", [1, 2], [0.5, 0.25], "x", "y")
    assert "fig" in text
    assert "0.5000" in text


def test_format_series_length_mismatch():
    with pytest.raises(ValueError):
        format_series("fig", [1], [1, 2])


def test_ratio():
    assert ratio(4.0, 2.0) == 2.0
    with pytest.raises(ValueError):
        ratio(1.0, 0.0)
