"""Unit tests for the offline profiler and profile store."""

import numpy as np
import pytest

from repro.frameworks.layers.vision import BatchNorm2d, Conv2d, ReLU
from repro.frameworks.lowering import lower_inference, lower_training
from repro.frameworks.module import Sequential
from repro.gpu.specs import A100_40GB, V100_16GB
from repro.kernels.kernel import ResourceProfile
from repro.profiler.nsight import measure_solo_latency, profile_models, profile_plan
from repro.profiler.profiles import KernelProfile, ModelProfile


def tiny_plan(kind="inference", name="prof-tiny"):
    model = Sequential(Conv2d(3, 8, 3, padding=1), BatchNorm2d(8), ReLU())
    shape = (2, 3, 32, 32)
    if kind == "inference":
        return lower_inference(model, shape, name)
    return lower_training(model, shape, name)


def test_profile_covers_every_kernel():
    plan = tiny_plan()
    profile = profile_plan(plan, V100_16GB)
    for spec in plan.kernel_specs():
        assert profile.lookup(spec.name) is not None


def test_profile_values_match_cost_model():
    from repro.kernels.costmodel import instantiate_kernel

    plan = tiny_plan()
    profile = profile_plan(plan, V100_16GB)
    spec = plan.kernel_specs()[0]
    op = instantiate_kernel(spec, V100_16GB)
    kp = profile.lookup(spec.name)
    assert kp.duration == pytest.approx(op.duration)
    assert kp.sm_needed == op.sm_needed
    assert kp.profile is op.profile


def test_request_latency_exceeds_kernel_sum():
    plan = tiny_plan()
    profile = profile_plan(plan, V100_16GB)
    kernel_sum = sum(k.duration for k in profile.kernels.values())
    # End-to-end latency includes the H2D/D2H copies + launch overheads.
    assert profile.request_latency > kernel_sum


def test_measure_solo_latency_deterministic():
    plan = tiny_plan()
    a = measure_solo_latency(plan, V100_16GB)
    b = measure_solo_latency(plan, V100_16GB)
    assert a == pytest.approx(b)


def test_profile_noise_perturbs_durations():
    plan = tiny_plan()
    clean = profile_plan(plan, V100_16GB)
    noisy = profile_plan(plan, V100_16GB,
                         noise_rng=np.random.default_rng(0), noise=0.2)
    diffs = [
        abs(noisy.kernels[k].duration - clean.kernels[k].duration)
        for k in clean.kernels
    ]
    assert max(diffs) > 0


def test_profile_noise_validation():
    with pytest.raises(ValueError):
        profile_plan(tiny_plan(), V100_16GB, noise=0.9)


def test_profile_json_roundtrip(tmp_path):
    profile = profile_plan(tiny_plan(), V100_16GB)
    path = tmp_path / "profile.json"
    profile.save(path)
    loaded = ModelProfile.load(path)
    assert loaded.model_name == profile.model_name
    assert loaded.request_latency == pytest.approx(profile.request_latency)
    assert set(loaded.kernels) == set(profile.kernels)
    some = next(iter(profile.kernels))
    assert loaded.kernels[some].profile is profile.kernels[some].profile


def test_store_lookup_by_kernel_id():
    store = profile_models([tiny_plan()], V100_16GB)
    plan = tiny_plan()
    spec = plan.kernel_specs()[0]
    assert store.lookup(spec.name) is not None
    assert store.lookup("nonexistent/kernel_0") is None


def test_store_model_lookup():
    store = profile_models([tiny_plan()], V100_16GB)
    profile = store.model("prof-tiny", "inference")
    assert profile.device_name == "V100-16GB"
    with pytest.raises(KeyError):
        store.model("prof-tiny", "training")


def test_store_len_counts_kernels():
    store = profile_models([tiny_plan()], V100_16GB)
    assert len(store) == len(tiny_plan().kernel_specs())


def test_a100_profile_is_faster():
    plan = tiny_plan()
    v100 = profile_plan(plan, V100_16GB)
    a100 = profile_plan(plan, A100_40GB)
    assert a100.request_latency < v100.request_latency


def test_training_profile_includes_update_kernels():
    profile = profile_plan(tiny_plan("training", "prof-train"), V100_16GB)
    assert any("adam_update" in k for k in profile.kernels)


def test_kernel_profile_roundtrip_dict():
    kp = KernelProfile("k", 1e-3, 0.5, 0.3, 10, ResourceProfile.COMPUTE)
    assert KernelProfile.from_dict(kp.to_dict()) == kp
