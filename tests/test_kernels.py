"""Unit tests for kernel descriptors, launch occupancy, and the cost model."""

import pytest

from repro.gpu.specs import A100_40GB, V100_16GB
from repro.kernels.classify import UTILIZATION_THRESHOLD, classify_kernel
from repro.kernels.costmodel import (
    MIN_OCCUPANCY,
    instantiate_kernel,
    occupancy_factor,
    solo_duration,
)
from repro.kernels.kernel import (
    KernelOp,
    KernelSpec,
    MemoryOp,
    MemoryOpKind,
    ResourceProfile,
)
from repro.kernels.launch import LaunchConfig, SmLimits, blocks_per_sm, sm_needed

from helpers import compute_spec, memory_spec, tiny_spec


# ----------------------------------------------------------------------
# Launch geometry / occupancy
# ----------------------------------------------------------------------
def test_blocks_per_sm_limited_by_threads():
    launch = LaunchConfig(num_blocks=100, threads_per_block=1024,
                          registers_per_thread=1)
    assert blocks_per_sm(launch) == 2  # 2048 / 1024


def test_blocks_per_sm_limited_by_registers():
    launch = LaunchConfig(num_blocks=100, threads_per_block=256,
                          registers_per_thread=128)
    # 65536 / (128*256) = 2
    assert blocks_per_sm(launch) == 2


def test_blocks_per_sm_limited_by_shared_memory():
    launch = LaunchConfig(num_blocks=100, threads_per_block=64,
                          registers_per_thread=16,
                          shared_mem_per_block=49152)
    assert blocks_per_sm(launch) == 2  # 98304 / 49152


def test_blocks_per_sm_limited_by_block_slots():
    launch = LaunchConfig(num_blocks=100, threads_per_block=32,
                          registers_per_thread=8)
    assert blocks_per_sm(launch) == 32  # hardware block-slot cap


def test_blocks_per_sm_at_least_one():
    launch = LaunchConfig(num_blocks=1, threads_per_block=1024,
                          registers_per_thread=255,
                          shared_mem_per_block=98304)
    assert blocks_per_sm(launch) >= 1


def test_sm_needed_ceil_formula():
    launch = LaunchConfig(num_blocks=100, threads_per_block=1024,
                          registers_per_thread=1)
    # blocks_per_sm = 2 -> ceil(100/2) = 50
    assert sm_needed(launch) == 50


def test_sm_needed_single_block():
    assert sm_needed(LaunchConfig(num_blocks=1, threads_per_block=256)) == 1


def test_launch_validation():
    with pytest.raises(ValueError):
        LaunchConfig(num_blocks=0, threads_per_block=256)
    with pytest.raises(ValueError):
        LaunchConfig(num_blocks=1, threads_per_block=2048)
    with pytest.raises(ValueError):
        LaunchConfig(num_blocks=1, threads_per_block=256,
                     registers_per_thread=0)
    with pytest.raises(ValueError):
        LaunchConfig(num_blocks=1, threads_per_block=256,
                     shared_mem_per_block=-1)


def test_sm_limits_validation():
    with pytest.raises(ValueError):
        SmLimits(max_threads=0)


def test_occupancy_saturates_at_one_block_per_sm():
    full = compute_spec(sms=V100_16GB.num_sms)
    assert occupancy_factor(full, V100_16GB) == 1.0


def test_occupancy_scales_with_blocks():
    half = compute_spec(sms=V100_16GB.num_sms // 2)
    assert occupancy_factor(half, V100_16GB) == pytest.approx(0.5)


def test_occupancy_floor():
    spec = KernelSpec("one-block", flops=1e9, bytes_moved=1e3,
                      launch=LaunchConfig(num_blocks=1, threads_per_block=32))
    assert occupancy_factor(spec, V100_16GB) == MIN_OCCUPANCY


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------
def test_classify_compute_by_threshold():
    assert classify_kernel(0.7, 0.2) is ResourceProfile.COMPUTE


def test_classify_memory_by_threshold():
    assert classify_kernel(0.2, 0.7) is ResourceProfile.MEMORY


def test_classify_roofline_fallback_when_below_threshold():
    assert classify_kernel(0.5, 0.3) is ResourceProfile.COMPUTE
    assert classify_kernel(0.3, 0.5) is ResourceProfile.MEMORY


def test_classify_unknown_without_roofline():
    assert classify_kernel(0.3, 0.3, roofline_available=False) \
        is ResourceProfile.UNKNOWN


def test_classify_threshold_wins_even_without_roofline():
    assert classify_kernel(0.9, 0.1, roofline_available=False) \
        is ResourceProfile.COMPUTE


def test_classify_rejects_bad_utilization():
    with pytest.raises(ValueError):
        classify_kernel(1.5, 0.0)


def test_threshold_is_paper_sixty_percent():
    assert UTILIZATION_THRESHOLD == 0.60


def test_profile_opposite():
    assert ResourceProfile.COMPUTE.opposite() is ResourceProfile.MEMORY
    assert ResourceProfile.MEMORY.opposite() is ResourceProfile.COMPUTE
    assert ResourceProfile.UNKNOWN.opposite() is ResourceProfile.UNKNOWN


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
def test_solo_duration_has_launch_floor():
    spec = tiny_spec()
    assert solo_duration(spec, V100_16GB) >= V100_16GB.kernel_min_duration


def test_compute_bound_duration_tracks_flops():
    small = compute_spec("a", duration=1e-3)
    large = compute_spec("b", duration=2e-3)
    assert solo_duration(large, V100_16GB) == pytest.approx(
        2 * solo_duration(small, V100_16GB), rel=0.01
    )


def test_instantiate_classifies_compute_kernel():
    op = instantiate_kernel(compute_spec(), V100_16GB)
    assert op.profile is ResourceProfile.COMPUTE
    assert op.compute_util > op.memory_util


def test_instantiate_classifies_memory_kernel():
    op = instantiate_kernel(memory_spec(), V100_16GB)
    assert op.profile is ResourceProfile.MEMORY
    assert op.memory_util > op.compute_util


def test_tiny_kernel_is_unknown():
    op = instantiate_kernel(tiny_spec(), V100_16GB)
    assert op.duration < V100_16GB.roofline_min_duration
    assert op.profile is ResourceProfile.UNKNOWN


def test_utilizations_bounded():
    for spec in (compute_spec(), memory_spec(), tiny_spec()):
        op = instantiate_kernel(spec, V100_16GB)
        assert 0 <= op.compute_util <= 1
        assert 0 <= op.memory_util <= 1


def test_sm_needed_clamped_to_device():
    spec = compute_spec(sms=100000)
    op = instantiate_kernel(spec, V100_16GB)
    assert op.sm_needed <= V100_16GB.num_sms


def test_a100_runs_compute_kernels_faster():
    spec = compute_spec(sms=700)
    assert solo_duration(spec, A100_40GB) < solo_duration(spec, V100_16GB)


def test_kernel_ops_have_unique_seq():
    spec = compute_spec()
    a = instantiate_kernel(spec, V100_16GB)
    b = instantiate_kernel(spec, V100_16GB)
    assert a.seq != b.seq


def test_kernel_spec_validation():
    with pytest.raises(ValueError):
        KernelSpec("bad", flops=-1, bytes_moved=0,
                   launch=LaunchConfig(num_blocks=1, threads_per_block=32))
    with pytest.raises(ValueError):
        KernelSpec("bad", flops=0, bytes_moved=0,
                   launch=LaunchConfig(num_blocks=1, threads_per_block=32),
                   compute_efficiency=0.0)


def test_arithmetic_intensity():
    spec = KernelSpec("ai", flops=100.0, bytes_moved=50.0,
                      launch=LaunchConfig(num_blocks=1, threads_per_block=32))
    assert spec.arithmetic_intensity == 2.0
    spec0 = KernelSpec("ai0", flops=100.0, bytes_moved=0.0,
                       launch=LaunchConfig(num_blocks=1, threads_per_block=32))
    assert spec0.arithmetic_intensity == float("inf")


# ----------------------------------------------------------------------
# Memory ops
# ----------------------------------------------------------------------
def test_memory_op_kinds():
    assert MemoryOpKind.MEMCPY_H2D.is_transfer
    assert MemoryOpKind.MEMCPY_D2H.is_transfer
    assert not MemoryOpKind.MALLOC.is_transfer
    assert MemoryOpKind.MALLOC.synchronizes_device
    assert MemoryOpKind.FREE.synchronizes_device
    assert not MemoryOpKind.MEMSET.synchronizes_device


def test_memory_op_validation():
    with pytest.raises(ValueError):
        MemoryOp(kind=MemoryOpKind.MALLOC, nbytes=-1)


def test_kernel_op_validation():
    spec = compute_spec()
    with pytest.raises(ValueError):
        KernelOp(spec=spec, duration=0.0, compute_util=0.5, memory_util=0.5,
                 sm_needed=1, profile=ResourceProfile.COMPUTE)
    with pytest.raises(ValueError):
        KernelOp(spec=spec, duration=1e-3, compute_util=1.5, memory_util=0.5,
                 sm_needed=1, profile=ResourceProfile.COMPUTE)
    with pytest.raises(ValueError):
        KernelOp(spec=spec, duration=1e-3, compute_util=0.5, memory_util=0.5,
                 sm_needed=0, profile=ResourceProfile.COMPUTE)


def test_is_kernel_flags():
    op = instantiate_kernel(compute_spec(), V100_16GB)
    mem = MemoryOp(kind=MemoryOpKind.MEMCPY_H2D, nbytes=100)
    assert op.is_kernel and not mem.is_kernel


def test_device_spec_overrides():
    from repro.gpu.specs import V100_16GB

    tweaked = V100_16GB.with_overrides(num_sms=40)
    assert tweaked.num_sms == 40
    assert tweaked.peak_flops == V100_16GB.peak_flops
    assert V100_16GB.num_sms == 80  # original untouched


def test_device_spec_validation():
    import pytest as _pytest

    from repro.gpu.specs import V100_16GB, get_device

    with _pytest.raises(ValueError):
        V100_16GB.with_overrides(num_sms=0)
    with _pytest.raises(ValueError):
        V100_16GB.with_overrides(sm_oversubscription=0.5)
    with _pytest.raises(KeyError):
        get_device("H100-80GB")
