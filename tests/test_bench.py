"""The bench harness: report shape, baseline comparison, regression gate."""

import json

from repro.bench import REFERENCE_SCENARIOS, run_bench


class TestBench:
    def test_smoke_run_report_and_gate(self, tmp_path):
        # Synthetic baseline: one scenario impossibly fast (must register
        # as a regression), one impossibly slow (huge speedup), one
        # absent (comparison skipped).
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"scenarios": {
            "overload_ref": {"ops_per_sec": 1e12},
            "inf_train_ref": {"ops_per_sec": 1.0},
        }}))
        out = tmp_path / "BENCH_sim.json"

        report = run_bench(smoke=True, baseline_path=baseline, out_path=out)

        assert set(report["scenarios"]) == set(REFERENCE_SCENARIOS)
        for entry in report["scenarios"].values():
            assert entry["ops_per_sec"] > 0
            assert entry["events"] > 0
        assert report["scenarios"]["overload_ref"]["speedup"] < 0.75
        assert report["scenarios"]["inf_train_ref"]["speedup"] > 1.0
        assert "speedup" not in report["scenarios"]["train_train_ref"]
        assert report["regressions"] == ["overload_ref"]
        assert report["ok"] is False
        assert report["smoke"] is True and report["repeats"] == 1

        written = json.loads(out.read_text())
        assert written["scenarios"].keys() == report["scenarios"].keys()

    def test_update_baseline_pins_current_numbers(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        out = tmp_path / "BENCH_sim.json"
        report = run_bench(smoke=True, baseline_path=baseline, out_path=out,
                           update_baseline=True)
        assert report["baseline_found"] is False
        assert report["ok"] is True  # no baseline -> nothing to regress from
        pinned = json.loads(baseline.read_text())
        assert set(pinned["scenarios"]) == set(REFERENCE_SCENARIOS)
        for name, entry in pinned["scenarios"].items():
            assert entry["ops_per_sec"] == \
                report["scenarios"][name]["ops_per_sec"]
