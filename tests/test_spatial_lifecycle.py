"""Deregister/queue-drain parity on the spatial baselines.

The scheduling backends (Orion, REEF) already promise full teardown on
deregistration — queued ops errored with a client-attributed kill,
stream destroyed, memory freed, survivors untouched.  These tests pin
the same contract on the direct-submission baselines (GPU Streams,
Priority Streams, MPS) and the Ideal/Dedicated backend.
"""

import pytest

from repro.baselines import (
    DedicatedBackend,
    MpsBackend,
    PriorityStreamsBackend,
    StreamsBackend,
)
from repro.gpu.device import GpuDevice
from repro.gpu.errors import CudaErrorCode
from repro.gpu.specs import V100_16GB
from repro.kernels.kernel import MemoryOp, MemoryOpKind
from repro.runtime.backend import UnknownClientError
from repro.sim.engine import Simulator

from helpers import compute_spec, make_kernel

SHARED_SPATIAL = (StreamsBackend, PriorityStreamsBackend, MpsBackend)


def make_spatial(cls, sim):
    return cls(sim, GpuDevice(sim, V100_16GB))


def make_dedicated(sim):
    return DedicatedBackend(sim, lambda: GpuDevice(sim, V100_16GB))


@pytest.mark.parametrize("cls", SHARED_SPATIAL)
def test_deregister_rejects_further_lifecycle_calls(cls):
    sim = Simulator()
    backend = make_spatial(cls, sim)
    backend.register_client("victim", False, "inference")
    backend.deregister_client("victim")
    with pytest.raises(UnknownClientError):
        backend.submit("victim", make_kernel(compute_spec()))
    with pytest.raises(UnknownClientError):
        backend.deregister_client("victim")


@pytest.mark.parametrize("cls", SHARED_SPATIAL)
def test_deregister_drains_queued_ops_with_client_kill(cls):
    sim = Simulator()
    backend = make_spatial(cls, sim)
    backend.register_client("victim", False, "inference")
    device = backend.devices()[0]
    # Two long kernels: the first occupies the stream, the second is
    # still queued (undispatched) when the client dies.
    first = backend.submit("victim", make_kernel(
        compute_spec("long-a", duration=5e-3), client_id="victim"))
    queued = backend.submit("victim", make_kernel(
        compute_spec("long-b", duration=5e-3), client_id="victim"))
    sim.run(until=1e-4)
    assert not queued.triggered
    streams_before = len(device.streams)
    backend.deregister_client("victim")
    assert len(device.streams) == streams_before - 1
    assert queued.triggered
    assert queued.error is not None
    assert queued.error.code is CudaErrorCode.CLIENT_KILLED
    assert queued.error.client_id == "victim"
    # The in-flight kernel is not preemptible: it runs to completion.
    sim.run()
    assert first.triggered


@pytest.mark.parametrize("cls", SHARED_SPATIAL)
def test_deregister_releases_memory(cls):
    sim = Simulator()
    backend = make_spatial(cls, sim)
    backend.register_client("victim", False, "inference")
    device = backend.devices()[0]
    backend.submit("victim", MemoryOp(kind=MemoryOpKind.MALLOC,
                                      nbytes=1 << 30, blocking=True,
                                      client_id="victim"))
    sim.run()
    assert device.memory.client_usage("victim") == 1 << 30
    backend.deregister_client("victim")
    assert device.memory.client_usage("victim") == 0
    assert device.memory.used == 0


@pytest.mark.parametrize("cls", SHARED_SPATIAL)
def test_survivors_unaffected_by_deregistration(cls):
    sim = Simulator()
    backend = make_spatial(cls, sim)
    backend.register_client("victim", False, "inference")
    backend.register_client("survivor", True, "inference")
    backend.submit("victim", make_kernel(
        compute_spec("v-k", duration=5e-3), client_id="victim"))
    alive = backend.submit("survivor", make_kernel(
        compute_spec("s-k", duration=1e-3), client_id="survivor"))
    backend.deregister_client("victim")
    sim.run()
    assert alive.triggered
    assert alive.error is None
    # The survivor's registration and stream are intact.
    assert backend.client_info("survivor") is not None
    again = backend.submit("survivor", make_kernel(
        compute_spec("s-k2", duration=1e-3), client_id="survivor"))
    sim.run()
    assert again.error is None


def test_dedicated_backend_deregister_parity():
    sim = Simulator()
    backend = make_dedicated(sim)
    backend.register_client("victim", False, "inference")
    backend.register_client("survivor", False, "inference")
    victim_device = backend.device_for("victim")
    backend.submit("victim", MemoryOp(kind=MemoryOpKind.MALLOC,
                                      nbytes=1 << 20, blocking=True,
                                      client_id="victim"))
    backend.submit("victim", make_kernel(
        compute_spec("long-a", duration=5e-3), client_id="victim"))
    queued = backend.submit("victim", make_kernel(
        compute_spec("long-b", duration=5e-3), client_id="victim"))
    sim.run(until=1e-4)
    backend.deregister_client("victim")
    assert queued.error is not None
    assert queued.error.code is CudaErrorCode.CLIENT_KILLED
    assert queued.error.client_id == "victim"
    assert victim_device.memory.client_usage("victim") == 0
    assert victim_device not in backend.devices()
    with pytest.raises(UnknownClientError):
        backend.submit("victim", make_kernel(compute_spec()))
    survivor_op = backend.submit("survivor", make_kernel(
        compute_spec("s-k", duration=1e-3), client_id="survivor"))
    sim.run()
    assert survivor_op.error is None
