"""Unit tests for the runtime layer: hosts/GIL, client contexts, backends."""

import pytest

from repro.gpu.device import GpuDevice
from repro.gpu.specs import V100_16GB
from repro.kernels.kernel import MemoryOpKind
from repro.runtime.backend import SoftwareQueue
from repro.runtime.client import ClientContext
from repro.runtime.direct import DedicatedBackend, DirectStreamBackend
from repro.runtime.host import HostGil, HostThread
from repro.sim.engine import Simulator
from repro.sim.process import Timeout, spawn

from helpers import compute_spec, make_kernel


@pytest.fixture
def sim():
    return Simulator()


def drive(sim, gen):
    p = spawn(sim, gen)
    sim.run()
    return p


# ----------------------------------------------------------------------
# Host model
# ----------------------------------------------------------------------
def test_launch_cost_without_gil(sim):
    host = HostThread(sim, launch_overhead=5e-6)
    record = {}

    def run():
        yield from host.launch_cost()
        record["t"] = sim.now

    drive(sim, run())
    assert record["t"] == pytest.approx(5e-6)
    assert host.ops_launched == 1


def test_interception_overhead_adds_to_cost(sim):
    host = HostThread(sim, launch_overhead=5e-6, interception_overhead=1e-6)
    record = {}

    def run():
        yield from host.launch_cost()
        record["t"] = sim.now

    drive(sim, run())
    assert record["t"] == pytest.approx(6e-6)


def test_gil_serializes_threads(sim):
    gil = HostGil(sim)
    hosts = [HostThread(sim, gil=gil, launch_overhead=10e-6) for _ in range(3)]
    ends = []

    def launcher(host):
        yield from host.launch_cost()
        ends.append(sim.now)

    for host in hosts:
        spawn(sim, launcher(host))
    sim.run()
    # Three 10us launches through one GIL take 30us, not 10us.
    assert max(ends) == pytest.approx(30e-6)
    assert gil.contended_acquisitions >= 2


def test_host_time_accounting(sim):
    host = HostThread(sim, launch_overhead=5e-6)

    def run():
        for _ in range(4):
            yield from host.launch_cost()

    drive(sim, run())
    assert host.host_time == pytest.approx(20e-6)


def test_negative_overheads_rejected(sim):
    with pytest.raises(ValueError):
        HostThread(sim, launch_overhead=-1e-6)


# ----------------------------------------------------------------------
# Software queue
# ----------------------------------------------------------------------
def test_software_queue_fifo(sim):
    queue = SoftwareQueue(sim, "c")
    a, b = make_kernel(compute_spec("a")), make_kernel(compute_spec("b"))
    queue.push(a)
    queue.push(b)
    assert queue.peek() is a
    op, _sig = queue.pop()
    assert op is a
    assert queue.peek() is b


def test_software_queue_pop_empty_raises(sim):
    with pytest.raises(IndexError):
        SoftwareQueue(sim, "c").pop()


def test_software_queue_len_and_counter(sim):
    queue = SoftwareQueue(sim, "c")
    for i in range(3):
        queue.push(make_kernel(compute_spec(f"k{i}")))
    assert len(queue) == 3
    assert queue.enqueued_total == 3


# ----------------------------------------------------------------------
# Client context semantics
# ----------------------------------------------------------------------
def make_ctx(sim, backend=None):
    if backend is None:
        device = GpuDevice(sim, V100_16GB)
        backend = DirectStreamBackend(sim, device)
    host = HostThread(sim)
    return ClientContext(backend, "job", host), backend


def test_kernel_launch_is_async(sim):
    ctx, _ = make_ctx(sim)
    op = make_kernel(compute_spec(duration=5e-3))
    record = {}

    def run():
        yield from ctx.launch_kernel(op)
        record["after_launch"] = sim.now
        yield from ctx.synchronize()
        record["after_sync"] = sim.now

    drive(sim, run())
    assert record["after_launch"] < 1e-4  # returned before the kernel ran
    assert record["after_sync"] >= 5e-3


def test_blocking_memcpy_waits(sim):
    ctx, _ = make_ctx(sim)
    nbytes = int(16e9 * 1e-3)
    record = {}

    def run():
        yield from ctx.memcpy(nbytes, MemoryOpKind.MEMCPY_H2D, blocking=True)
        record["t"] = sim.now

    drive(sim, run())
    assert record["t"] >= 1e-3


def test_async_memcpy_returns_immediately(sim):
    ctx, _ = make_ctx(sim)
    nbytes = int(16e9 * 1e-3)
    record = {}

    def run():
        yield from ctx.memcpy(nbytes, MemoryOpKind.MEMCPY_H2D, blocking=False)
        record["t"] = sim.now
        yield from ctx.synchronize()
        record["sync"] = sim.now

    drive(sim, run())
    assert record["t"] < 1e-4
    assert record["sync"] >= 1e-3


def test_memcpy_rejects_non_transfer(sim):
    ctx, _ = make_ctx(sim)

    def run():
        yield from ctx.memcpy(100, MemoryOpKind.MALLOC)

    spawn(sim, run())
    with pytest.raises(ValueError):
        sim.run()


def test_malloc_blocks_until_sync(sim):
    ctx, _ = make_ctx(sim)
    record = {}

    def run():
        yield from ctx.malloc(1024)
        record["t"] = sim.now

    drive(sim, run())
    assert record["t"] >= V100_16GB.device_sync_latency


def test_synchronize_with_nothing_outstanding(sim):
    ctx, _ = make_ctx(sim)

    def run():
        yield from ctx.synchronize()
        yield Timeout(0.0)

    p = drive(sim, run())
    assert p.triggered


# ----------------------------------------------------------------------
# Direct backends
# ----------------------------------------------------------------------
def test_direct_backend_one_stream_per_client(sim):
    device = GpuDevice(sim, V100_16GB)
    backend = DirectStreamBackend(sim, device)
    backend.register_client("a", high_priority=False, kind="inference")
    backend.register_client("b", high_priority=True, kind="training")
    assert len(device.streams) == 2


def test_direct_backend_priority_mapping(sim):
    device = GpuDevice(sim, V100_16GB)
    backend = DirectStreamBackend(sim, device, use_priorities=True)
    backend.register_client("hp", high_priority=True, kind="inference")
    backend.register_client("be", high_priority=False, kind="inference")
    priorities = {s.name: s.priority for s in device.streams}
    assert priorities["hp-stream"] == 1
    assert priorities["be-stream"] == 0


def test_duplicate_client_rejected(sim):
    device = GpuDevice(sim, V100_16GB)
    backend = DirectStreamBackend(sim, device)
    backend.register_client("a", high_priority=False, kind="inference")
    with pytest.raises(ValueError):
        backend.register_client("a", high_priority=False, kind="inference")


def test_bad_job_kind_rejected(sim):
    device = GpuDevice(sim, V100_16GB)
    backend = DirectStreamBackend(sim, device)
    with pytest.raises(ValueError):
        backend.register_client("a", high_priority=False, kind="mystery")


def test_dedicated_backend_one_device_per_client(sim):
    backend = DedicatedBackend(sim, lambda: GpuDevice(sim, V100_16GB))
    backend.register_client("a", high_priority=True, kind="inference")
    backend.register_client("b", high_priority=False, kind="training")
    assert len(backend.devices()) == 2
    assert backend.device_for("a") is not backend.device_for("b")
