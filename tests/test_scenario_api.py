"""The unified Scenario API: dataclass validation, run(), canonical
results, deprecation shims, the named-scenario catalog, and
construction-time BackendOptions."""

import json

import pytest

from repro.core.scheduler import OrionBackend, OrionConfig
from repro.experiments.registry import (
    SCENARIOS,
    inf_train_config,
    make_scenario,
    scenario_names,
)
from repro.experiments.scenario import (
    SCENARIO_KINDS,
    Scenario,
    ScenarioResult,
    run,
)
from repro.gpu.device import GpuDevice
from repro.gpu.specs import V100_16GB
from repro.profiler.profiles import ProfileStore
from repro.runtime.backend import BackendOptions
from repro.sim.engine import Simulator
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer


class TestScenarioDataclass:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            Scenario(kind="bogus")

    def test_experiment_kind_requires_config(self):
        with pytest.raises(ValueError, match="requires an ExperimentConfig"):
            Scenario(kind="experiment")

    def test_params_kinds_reject_experiment_payload(self):
        config = inf_train_config("resnet50", "mobilenet_v2", "orion")
        with pytest.raises(ValueError, match="params"):
            Scenario(kind="overload", experiment=config)

    def test_seed_and_duration_surface_uniformly(self):
        config = inf_train_config("resnet50", "mobilenet_v2", "orion",
                                  duration=0.8, seed=7)
        exp = Scenario(kind="experiment", experiment=config)
        assert exp.seed == 7 and exp.duration == 0.8
        ovl = Scenario(kind="overload", params={"seed": 3, "duration": 0.1})
        assert ovl.seed == 3 and ovl.duration == 0.1
        # Absent params mean "implementation default".
        assert Scenario(kind="faults").duration is None
        assert Scenario(kind="faults").seed == 0

    def test_name_defaults_to_kind(self):
        assert Scenario(kind="overload").name == "overload"

    def test_describe_mentions_seed(self):
        assert "seed=5" in Scenario(kind="overload",
                                    params={"seed": 5}).describe()


class TestRun:
    def test_overload_scenario_runs_and_accounts(self):
        res = run(Scenario(kind="overload",
                           params={"seed": 0, "duration": 0.05}))
        assert isinstance(res, ScenarioResult)
        assert res.events_processed > 0
        assert res.sim_time == pytest.approx(0.05)
        assert res.wall_time > 0
        assert res.ops_per_sec > 0
        assert res.result.hp_latency.count > 0

    def test_faults_scenario_runs(self):
        res = run(Scenario(kind="faults",
                           params={"seed": 2, "duration": 0.1}))
        assert res.result.ledger is not None
        assert res.events_processed > 0

    def test_experiment_scenario_runs(self):
        config = inf_train_config("resnet50", "mobilenet_v2", "orion",
                                  duration=0.55)
        res = run(Scenario(kind="experiment", experiment=config))
        assert res.result.hp_job.stats.records
        assert res.events_processed > 0

    def test_canonical_excludes_wall_clock(self):
        res = run(Scenario(kind="overload",
                           params={"seed": 0, "duration": 0.05}))
        payload = res.to_json()
        assert "wall" not in payload
        # Same seed, same bytes — the sweep merge contract.
        again = run(Scenario(kind="overload",
                             params={"seed": 0, "duration": 0.05}))
        assert again.to_json() == payload

    def test_canonical_round_trips_as_json(self):
        res = run(Scenario(kind="faults",
                           params={"seed": 1, "duration": 0.1}))
        decoded = json.loads(res.to_json())
        assert decoded["kind"] == "faults"
        assert decoded["seed"] == 1
        assert decoded["events_processed"] == res.events_processed


class TestDeprecationShims:
    """The legacy entry points warn and return the new API's results."""

    def test_run_overload_scenario_shim(self):
        from repro.experiments.overload import run_overload_scenario

        with pytest.warns(FutureWarning, match="run_overload_scenario"):
            legacy = run_overload_scenario(seed=4, duration=0.05)
        new = run(Scenario(kind="overload",
                           params={"seed": 4, "duration": 0.05})).result
        assert [(r.arrival, r.start, r.end)
                for r in legacy.jobs["hp"].records] == \
               [(r.arrival, r.start, r.end) for r in new.jobs["hp"].records]
        assert legacy.backend_stats == new.backend_stats
        assert legacy.events_processed == new.events_processed

    def test_run_fault_scenario_shim(self):
        from repro.faults import run_fault_scenario

        with pytest.warns(FutureWarning, match="run_fault_scenario"):
            legacy = run_fault_scenario(seed=2, duration=0.1)
        new = run(Scenario(kind="faults",
                           params={"seed": 2, "duration": 0.1})).result
        assert legacy.ledger.to_json() == new.ledger.to_json()
        assert legacy.backend_stats == new.backend_stats

    def test_run_experiment_shim(self):
        from repro.experiments.runner import run_experiment

        config = inf_train_config("resnet50", "mobilenet_v2", "orion",
                                  duration=0.55)
        with pytest.warns(FutureWarning, match="run_experiment"):
            legacy = run_experiment(config)
        new = run(Scenario(kind="experiment", experiment=config)).result
        for name in legacy.jobs:
            assert [(r.arrival, r.start, r.end)
                    for r in legacy.jobs[name].stats.records] == \
                   [(r.arrival, r.start, r.end)
                    for r in new.jobs[name].stats.records]
        assert legacy.events_processed == new.events_processed


class TestScenarioCatalog:
    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            make_scenario("nope")

    def test_names_cover_cli_and_bench(self):
        names = scenario_names()
        for required in ("inf-train", "train-train", "inf-inf", "overload",
                         "faults", "overload_ref", "inf_train_ref",
                         "train_train_ref"):
            assert required in names

    def test_seed_and_duration_propagate(self):
        exp = make_scenario("inf-train", seed=9, duration=1.5)
        assert exp.experiment.seed == 9
        assert exp.experiment.duration == 1.5
        ovl = make_scenario("overload_ref", seed=3)
        assert ovl.params["seed"] == 3
        assert ovl.params["duration"] == 0.4  # pinned reference horizon

    def test_overrides_reach_the_family_surface(self):
        scenario = make_scenario("overload", seed=0, duration=0.05,
                                 policy="reject", be_clients=1)
        assert scenario.params["policy"] == "reject"
        res = run(scenario)
        assert set(res.result.jobs) == {"hp", "be-0"}

    def test_every_catalog_entry_builds(self):
        for name in SCENARIOS:
            scenario = make_scenario(name, seed=1)
            assert scenario.kind in SCENARIO_KINDS


class TestFaultPlanValidation:
    def test_unknown_kill_target_rejected(self):
        from repro.faults.plan import FaultPlan, KillClient

        plan = FaultPlan((KillClient("be-7", at_time=0.02),))
        with pytest.raises(ValueError, match="unknown client 'be-7'"):
            run(Scenario(kind="faults",
                         params={"duration": 0.05, "be_clients": 1,
                                 "plan": plan}))


class TestBackendOptions:
    """Telemetry/overload hooks consolidated at construction time."""

    def _backend(self, options=None):
        sim = Simulator()
        device = GpuDevice(sim, V100_16GB)
        backend = OrionBackend(sim, device, ProfileStore(),
                               OrionConfig(hp_request_latency=1e-3),
                               options=options)
        return sim, backend

    def test_defaults_match_setter_era(self):
        _sim, backend = self._backend()
        assert isinstance(backend.metrics, MetricsRegistry)
        assert not backend.tracer.enabled

    def test_construction_time_wiring(self):
        sim = Simulator()
        tracer = Tracer(sim, capacity=64)
        metrics = MetricsRegistry()
        options = BackendOptions(tracer=tracer, metrics=metrics,
                                 overload_policies={"be-0": "reject"})
        _sim, backend = self._backend(options)
        assert backend.tracer is tracer
        assert backend.metrics is metrics
        backend.register_client("be-0", high_priority=False, kind="inference")
        backend.register_client("be-1", high_priority=False, kind="inference")
        assert backend._be["be-0"].policy == "reject"
        # Unlisted clients keep the config-wide policy.
        assert backend._be["be-1"].policy == backend.config.overload_policy

    def test_backcompat_setters_still_work(self):
        sim, backend = self._backend()
        tracer = Tracer(sim, capacity=64)
        backend.set_telemetry(tracer=tracer)
        assert backend.tracer is tracer
