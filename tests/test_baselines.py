"""Behavioural tests for the baseline backends."""

import pytest

from repro.baselines.reef import ReefBackend
from repro.baselines.spatial import MpsBackend, PriorityStreamsBackend, StreamsBackend
from repro.baselines.temporal import TemporalBackend
from repro.baselines.ticktock import TickTockBackend
from repro.gpu.device import GpuDevice
from repro.gpu.specs import V100_16GB
from repro.runtime.client import ClientContext
from repro.runtime.host import HostThread
from repro.sim.engine import Simulator
from repro.sim.process import Timeout, spawn

from helpers import compute_spec, make_kernel, memory_spec


def make(sim, backend_cls, **kwargs):
    device = GpuDevice(sim, V100_16GB)
    return backend_cls(sim, device, **kwargs), device


# ----------------------------------------------------------------------
# Temporal sharing
# ----------------------------------------------------------------------
def test_temporal_serializes_requests():
    sim = Simulator()
    backend, device = make(sim, TemporalBackend)
    a = ClientContext(backend, "a", HostThread(sim), high_priority=True)
    b = ClientContext(backend, "b", HostThread(sim))
    overlap = {"max_running": 0}

    def job(ctx, duration):
        for _ in range(3):
            yield from ctx.begin_request()
            yield from ctx.launch_kernel(
                make_kernel(compute_spec(f"{ctx.client_id}-k", duration=duration))
            )
            yield from ctx.synchronize()
            ctx.end_request()

    def monitor():
        for _ in range(200):
            overlap["max_running"] = max(overlap["max_running"],
                                         len(device.running))
            yield Timeout(5e-5)

    spawn(sim, job(a, 1e-3))
    spawn(sim, job(b, 1e-3))
    spawn(sim, monitor())
    sim.run()
    assert overlap["max_running"] <= 1


def test_temporal_priority_requests_jump_queue():
    sim = Simulator()
    backend, _ = make(sim, TemporalBackend)
    hp = ClientContext(backend, "hp", HostThread(sim), high_priority=True)
    be1 = ClientContext(backend, "be1", HostThread(sim))
    be2 = ClientContext(backend, "be2", HostThread(sim))
    order = []

    def request(ctx, delay):
        yield Timeout(delay)
        yield from ctx.begin_request()
        order.append(ctx.client_id)
        yield from ctx.launch_kernel(
            make_kernel(compute_spec(f"{ctx.client_id}-k", duration=1e-3))
        )
        yield from ctx.synchronize()
        ctx.end_request()

    spawn(sim, request(be1, 0.0))
    spawn(sim, request(be2, 1e-4))   # queued behind be1
    spawn(sim, request(hp, 2e-4))    # arrives last, should run second
    sim.run()
    assert order == ["be1", "hp", "be2"]


def test_temporal_kernel_outside_slice_rejected():
    sim = Simulator()
    backend, _ = make(sim, TemporalBackend)
    ctx = ClientContext(backend, "a", HostThread(sim), high_priority=True)

    def rogue():
        yield from ctx.launch_kernel(make_kernel(compute_spec("k")))

    spawn(sim, rogue())
    with pytest.raises(RuntimeError):
        sim.run()


def test_temporal_allows_memory_ops_outside_slice():
    sim = Simulator()
    backend, _ = make(sim, TemporalBackend)
    ctx = ClientContext(backend, "a", HostThread(sim), high_priority=True)

    def startup():
        yield from ctx.malloc(1024)

    p = spawn(sim, startup())
    sim.run()
    assert p.triggered


# ----------------------------------------------------------------------
# Streams / MPS
# ----------------------------------------------------------------------
def test_streams_variants_priority_flags():
    sim = Simulator()
    s, _ = make(sim, StreamsBackend)
    p, _ = make(sim, PriorityStreamsBackend)
    m, _ = make(sim, MpsBackend)
    assert not s.use_priorities and not s.process_per_client
    assert p.use_priorities and not p.process_per_client
    assert not m.use_priorities and m.process_per_client


def test_streams_allow_overlap():
    sim = Simulator()
    backend, device = make(sim, StreamsBackend)
    a = ClientContext(backend, "a", HostThread(sim))
    b = ClientContext(backend, "b", HostThread(sim))
    overlap = {"max_running": 0}

    def job(ctx, spec):
        yield from ctx.launch_kernel(make_kernel(spec))
        yield from ctx.synchronize()

    def monitor():
        for _ in range(100):
            overlap["max_running"] = max(overlap["max_running"],
                                         len(device.running))
            yield Timeout(2e-5)

    spawn(sim, job(a, compute_spec("a-k", duration=1e-3, sms=160)))
    spawn(sim, job(b, memory_spec("b-k", duration=1e-3)))
    spawn(sim, monitor())
    sim.run()
    assert overlap["max_running"] == 2


# ----------------------------------------------------------------------
# REEF-N
# ----------------------------------------------------------------------
def reef_setup(sim, queue_size=12):
    backend, device = make(sim, ReefBackend, queue_size=queue_size)
    hp = ClientContext(backend, "hp", HostThread(sim), high_priority=True)
    be = ClientContext(backend, "be", HostThread(sim))
    backend.start()
    return backend, device, hp, be


def test_reef_queue_size_default():
    sim = Simulator()
    backend, *_ = reef_setup(sim)
    assert backend.queue_size == 12


def test_reef_invalid_queue_size():
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    with pytest.raises(ValueError):
        ReefBackend(sim, device, queue_size=0)


def test_reef_single_hp_client():
    sim = Simulator()
    backend, device, hp, be = reef_setup(sim)
    with pytest.raises(ValueError):
        ClientContext(backend, "hp2", HostThread(sim), high_priority=True)


def test_reef_limits_outstanding_be(monkeypatch):
    sim = Simulator()
    backend, device, hp, be = reef_setup(sim, queue_size=3)
    committed = {"max": 0}
    original = backend._try_launch_be

    def tracked(client_id):
        result = original(client_id)
        committed["max"] = max(committed["max"],
                               backend._be[client_id].outstanding)
        return result

    monkeypatch.setattr(backend, "_try_launch_be", tracked)

    def be_job():
        for i in range(10):
            yield from be.launch_kernel(
                make_kernel(memory_spec(f"be-{i}", duration=1e-4))
            )
        yield from be.synchronize()

    spawn(sim, be_job())
    sim.run()
    assert committed["max"] <= 3


def test_reef_starves_be_while_hp_streams_kernels():
    sim = Simulator()
    backend, device, hp, be = reef_setup(sim)
    record = {}

    def hp_job():
        # Continuous big HP kernels: no idle window, no free SMs.
        for i in range(8):
            yield from hp.launch_kernel(
                make_kernel(compute_spec(f"hp-{i}", duration=5e-4, sms=640))
            )
        yield from hp.synchronize()
        record["hp_end"] = sim.now

    def be_job():
        yield Timeout(1e-4)
        yield from be.launch_kernel(
            make_kernel(compute_spec("be-big", duration=1e-4, sms=640))
        )
        yield from be.synchronize()
        record["be_end"] = sim.now

    spawn(sim, hp_job())
    spawn(sim, be_job())
    sim.run()
    assert record["be_end"] >= record["hp_end"]


def test_reef_pads_small_be_kernels_alongside_hp():
    sim = Simulator()
    backend, device, hp, be = reef_setup(sim)
    record = {}

    def hp_job():
        yield from hp.launch_kernel(
            make_kernel(compute_spec("hp-k", duration=2e-3, sms=160))  # 20 SMs
        )
        yield from hp.synchronize()
        record["hp_end"] = sim.now

    def be_job():
        yield Timeout(1e-4)
        yield from be.launch_kernel(
            make_kernel(memory_spec("be-small", duration=1e-4, blocks=64))
        )
        yield from be.synchronize()
        record["be_end"] = sim.now

    spawn(sim, hp_job())
    spawn(sim, be_job())
    sim.run()
    assert record["be_end"] < record["hp_end"]


# ----------------------------------------------------------------------
# Tick-Tock
# ----------------------------------------------------------------------
def test_ticktock_rejects_inference_clients():
    sim = Simulator()
    backend, _ = make(sim, TickTockBackend)
    with pytest.raises(ValueError):
        ClientContext(backend, "inf", HostThread(sim), kind="inference")


def test_ticktock_phase_barrier_synchronizes_clients():
    sim = Simulator()
    backend, _ = make(sim, TickTockBackend)
    a = ClientContext(backend, "a", HostThread(sim), kind="training",
                      high_priority=True)
    b = ClientContext(backend, "b", HostThread(sim), kind="training")
    log = []

    def job(ctx, work):
        for it in range(2):
            yield from ctx.phase("forward")
            log.append((ctx.client_id, "fwd", sim.now))
            yield from ctx.launch_kernel(
                make_kernel(compute_spec(f"{ctx.client_id}-f{it}",
                                         duration=work, sms=160))
            )
            yield from ctx.synchronize()
            yield from ctx.phase("backward")
            log.append((ctx.client_id, "bwd", sim.now))
            yield from ctx.launch_kernel(
                make_kernel(compute_spec(f"{ctx.client_id}-b{it}",
                                         duration=work, sms=160))
            )
            yield from ctx.synchronize()

    spawn(sim, job(a, 1e-3))
    spawn(sim, job(b, 3e-3))  # slower job gates the faster one
    sim.run()
    assert backend.barriers_released >= 3
    # Paired phase entries happen at identical times (lockstep).
    a_times = [t for c, _p, t in log if c == "a"]
    b_times = [t for c, _p, t in log if c == "b"]
    assert a_times == pytest.approx(b_times)


def test_ticktock_single_client_not_gated():
    sim = Simulator()
    backend, _ = make(sim, TickTockBackend)
    a = ClientContext(backend, "a", HostThread(sim), kind="training")

    def job():
        yield from a.phase("forward")
        yield from a.launch_kernel(make_kernel(compute_spec("k", duration=1e-4)))
        yield from a.synchronize()

    p = spawn(sim, job())
    sim.run()
    assert p.triggered
