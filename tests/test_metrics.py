"""Unit tests for metrics: latency digests, throughput, utilization, cost."""

import numpy as np
import pytest

from repro.metrics.cost import cost_savings, makespan_savings
from repro.metrics.latency import LatencySummary, percentile, summarize_latencies
from repro.metrics.throughput import completed_in_window, throughput
from repro.metrics.utilization import average_utilization, binned_trace
from repro.workloads.clients import RequestRecord


def records_from_latencies(latencies, start=1.0, gap=0.01):
    records = []
    t = start
    for latency in latencies:
        records.append(RequestRecord(arrival=t, start=t, end=t + latency))
        t += gap
    return records


# ----------------------------------------------------------------------
# Latency
# ----------------------------------------------------------------------
def test_percentile_matches_numpy():
    values = [1.0, 5.0, 2.0, 8.0, 3.0]
    assert percentile(values, 50) == pytest.approx(np.percentile(values, 50))
    assert percentile(values, 99) == pytest.approx(np.percentile(values, 99))


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([], 50)


def test_summarize_basic_stats():
    records = records_from_latencies([0.010] * 99 + [0.100])
    summary = summarize_latencies(records)
    assert summary.count == 100
    assert summary.p50 == pytest.approx(0.010)
    assert summary.max == pytest.approx(0.100)
    assert summary.p99 > summary.p50


def test_summarize_respects_warmup_filter():
    records = records_from_latencies([1.0] * 5, start=0.0, gap=0.1) + \
        records_from_latencies([0.01] * 5, start=10.0, gap=0.1)
    summary = summarize_latencies(records, after=5.0)
    assert summary.count == 5
    assert summary.p50 == pytest.approx(0.01)


def test_summarize_empty_returns_nan_summary():
    summary = summarize_latencies([])
    assert summary.count == 0
    assert np.isnan(summary.p99)


def test_latency_ratio_to_reference():
    a = summarize_latencies(records_from_latencies([0.02] * 10))
    b = summarize_latencies(records_from_latencies([0.01] * 10))
    assert a.ratio_to(b) == pytest.approx(2.0)


def test_ratio_to_degenerate_reference_raises():
    a = summarize_latencies(records_from_latencies([0.02] * 10))
    zero = LatencySummary(1, 0, 0, 0, 0.0, 0)
    with pytest.raises(ValueError):
        a.ratio_to(zero)


def test_request_record_properties():
    r = RequestRecord(arrival=1.0, start=1.5, end=2.0)
    assert r.latency == pytest.approx(1.0)
    assert r.service_time == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Throughput
# ----------------------------------------------------------------------
def test_throughput_counts_completions_in_window():
    records = records_from_latencies([0.001] * 100, start=0.0, gap=0.01)
    assert completed_in_window(records, 0.0, 1.01) == 100
    assert throughput(records, 0.0, 1.0) == pytest.approx(100.0, rel=0.02)


def test_throughput_excludes_outside_window():
    records = [RequestRecord(0.0, 0.0, 0.5), RequestRecord(0.0, 0.0, 1.5)]
    assert completed_in_window(records, 1.0, 2.0) == 1


def test_throughput_window_validation():
    with pytest.raises(ValueError):
        throughput([], 1.0, 1.0)


# ----------------------------------------------------------------------
# Utilization
# ----------------------------------------------------------------------
def test_average_utilization_time_weighted():
    segments = [
        (0.0, 1.0, 1.0, 0.5, 1.0),
        (1.0, 2.0, 0.0, 0.0, 0.0),
    ]
    avg = average_utilization(segments, 0.0, 2.0)
    assert avg.compute == pytest.approx(0.5)
    assert avg.memory_bw == pytest.approx(0.25)
    assert avg.sm_busy == pytest.approx(0.5)


def test_average_utilization_counts_gaps_as_idle():
    segments = [(0.0, 1.0, 1.0, 1.0, 1.0)]
    avg = average_utilization(segments, 0.0, 4.0)
    assert avg.compute == pytest.approx(0.25)


def test_average_utilization_clips_to_window():
    segments = [(0.0, 10.0, 1.0, 1.0, 1.0)]
    avg = average_utilization(segments, 4.0, 6.0)
    assert avg.compute == pytest.approx(1.0)


def test_average_utilization_window_validation():
    with pytest.raises(ValueError):
        average_utilization([], 1.0, 1.0)


def test_binned_trace_shape_and_values():
    segments = [(0.0, 0.5, 0.8, 0.2, 0.9)]
    times, compute, memory, sm = binned_trace(segments, 0.0, 1.0,
                                              bin_width=0.25)
    assert len(times) == 4
    assert compute[0] == pytest.approx(0.8)
    assert compute[1] == pytest.approx(0.8)
    assert compute[2] == pytest.approx(0.0)
    assert memory[0] == pytest.approx(0.2)
    assert sm[3] == pytest.approx(0.0)


def test_binned_trace_partial_bin_weighting():
    segments = [(0.0, 0.125, 1.0, 0.0, 0.0)]
    _, compute, _, _ = binned_trace(segments, 0.0, 0.25, bin_width=0.25)
    assert compute[0] == pytest.approx(0.5)


def test_binned_trace_validation():
    with pytest.raises(ValueError):
        binned_trace([], 0.0, 1.0, bin_width=0.0)
    with pytest.raises(ValueError):
        binned_trace([], 1.0, 1.0)


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
def test_cost_savings_table4_example():
    # ResNet50 row of Table 4: dedicated 10.3, collocated 7.45 -> 1.45x.
    assert cost_savings(10.3, 7.45) == pytest.approx(1.45, abs=0.01)


def test_cost_savings_breakeven():
    assert cost_savings(10.0, 5.0) == pytest.approx(1.0)


def test_cost_savings_validation():
    with pytest.raises(ValueError):
        cost_savings(0.0, 1.0)
    with pytest.raises(ValueError):
        cost_savings(1.0, 1.0, dedicated_gpus=0)


def test_makespan_savings():
    assert makespan_savings(10.0, 7.75) == pytest.approx(1.29, abs=0.01)
    with pytest.raises(ValueError):
        makespan_savings(0.0, 1.0)
