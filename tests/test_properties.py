"""Property-based tests (hypothesis) for core invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.contention import ContentionModel, profile_similarity
from repro.gpu.memory import DeviceMemory, GpuOutOfMemoryError
from repro.gpu.specs import V100_16GB
from repro.kernels.classify import classify_kernel
from repro.kernels.costmodel import instantiate_kernel, solo_duration
from repro.kernels.kernel import KernelSpec, ResourceProfile
from repro.kernels.launch import LaunchConfig, blocks_per_sm, sm_needed
from repro.metrics.latency import percentile
from repro.metrics.utilization import average_utilization
from repro.sim.engine import Simulator

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
launch_configs = st.builds(
    LaunchConfig,
    num_blocks=st.integers(1, 100_000),
    threads_per_block=st.integers(1, 1024),
    registers_per_thread=st.integers(1, 255),
    shared_mem_per_block=st.integers(0, 96 * 1024),
)

kernel_specs = st.builds(
    KernelSpec,
    name=st.just("prop-k"),
    flops=st.floats(0, 1e13, allow_nan=False, allow_infinity=False),
    bytes_moved=st.floats(0, 1e11, allow_nan=False, allow_infinity=False),
    launch=launch_configs,
    compute_efficiency=st.floats(0.05, 1.0),
    memory_efficiency=st.floats(0.05, 1.0),
)


@st.composite
def kernel_ops(draw, max_n=5):
    n = draw(st.integers(1, max_n))
    ops = []
    for i in range(n):
        spec = KernelSpec(
            name=f"prop-{i}",
            flops=draw(st.floats(1e6, 1e12)),
            bytes_moved=draw(st.floats(1e4, 1e10)),
            launch=LaunchConfig(
                num_blocks=draw(st.integers(1, 5000)),
                threads_per_block=draw(st.sampled_from([64, 128, 256, 512])),
            ),
            compute_efficiency=draw(st.floats(0.1, 1.0)),
            memory_efficiency=draw(st.floats(0.1, 1.0)),
        )
        ops.append(instantiate_kernel(spec, V100_16GB))
    return ops


# ----------------------------------------------------------------------
# Launch / occupancy invariants
# ----------------------------------------------------------------------
@given(launch_configs)
def test_blocks_per_sm_positive(launch):
    assert blocks_per_sm(launch) >= 1


@given(launch_configs)
def test_sm_needed_bounds(launch):
    needed = sm_needed(launch)
    assert 1 <= needed <= launch.num_blocks


@given(launch_configs)
def test_sm_needed_monotone_in_blocks(launch):
    bigger = LaunchConfig(
        num_blocks=launch.num_blocks * 2,
        threads_per_block=launch.threads_per_block,
        registers_per_thread=launch.registers_per_thread,
        shared_mem_per_block=launch.shared_mem_per_block,
    )
    assert sm_needed(bigger) >= sm_needed(launch)


# ----------------------------------------------------------------------
# Cost model invariants
# ----------------------------------------------------------------------
@given(kernel_specs)
def test_duration_at_least_floor(spec):
    assert solo_duration(spec, V100_16GB) >= V100_16GB.kernel_min_duration


@given(kernel_specs)
def test_instantiated_kernel_invariants(spec):
    op = instantiate_kernel(spec, V100_16GB)
    assert 0 <= op.compute_util <= 1
    assert 0 <= op.memory_util <= 1
    assert 1 <= op.sm_needed <= V100_16GB.num_sms
    assert op.profile in ResourceProfile


@given(st.floats(0, 1), st.floats(0, 1), st.booleans())
def test_classification_total(cu, mu, roofline):
    assert classify_kernel(cu, mu, roofline) in ResourceProfile


# ----------------------------------------------------------------------
# Contention invariants
# ----------------------------------------------------------------------
@settings(max_examples=50)
@given(kernel_ops())
def test_rates_are_valid_probabilities(ops):
    model = ContentionModel(V100_16GB.num_sms)
    rates = model.rates(ops, {})
    assert set(rates) == {op.seq for op in ops}
    for rate in rates.values():
        assert 0 < rate <= 1.0


@settings(max_examples=50)
@given(kernel_ops(max_n=1))
def test_solo_rate_is_one(ops):
    model = ContentionModel(V100_16GB.num_sms)
    assert model.rates(ops, {})[ops[0].seq] == 1.0


@settings(max_examples=50)
@given(kernel_ops(max_n=4))
def test_adding_corunner_never_speeds_up(ops):
    model = ContentionModel(V100_16GB.num_sms)
    first = ops[0]
    rate_with_fewer = model.rates(ops[:-1], {})[first.seq] if len(ops) > 1 \
        else 1.0
    rate_with_more = model.rates(ops, {})[first.seq]
    assert rate_with_more <= rate_with_fewer + 1e-9


@settings(max_examples=50)
@given(kernel_ops(max_n=3))
def test_similarity_symmetric_and_bounded(ops):
    for a in ops:
        for b in ops:
            s = profile_similarity(a, b)
            assert 0.0 <= s <= 1.0
            assert s == profile_similarity(b, a)


@settings(max_examples=50)
@given(kernel_ops(max_n=4))
def test_device_utilization_bounded(ops):
    model = ContentionModel(V100_16GB.num_sms)
    rates = model.rates(ops, {})
    c, m, s = model.device_utilization(ops, rates)
    assert 0 <= c <= 1 and 0 <= m <= 1 and 0 <= s <= 1


# ----------------------------------------------------------------------
# Memory allocator invariants
# ----------------------------------------------------------------------
@settings(max_examples=50)
@given(st.lists(st.integers(1, 400), min_size=1, max_size=30))
def test_allocator_conservation(sizes):
    mem = DeviceMemory(1000)
    live = []
    for size in sizes:
        try:
            live.append(mem.malloc(size))
        except GpuOutOfMemoryError:
            if live:
                mem.free_allocation(live.pop())
    assert mem.used == sum(a.nbytes for a in live)
    assert 0 <= mem.used <= mem.capacity
    for alloc in live:
        mem.free_allocation(alloc)
    assert mem.used == 0


# ----------------------------------------------------------------------
# Metrics invariants
# ----------------------------------------------------------------------
@settings(max_examples=50)
@given(st.lists(st.floats(1e-6, 10.0), min_size=1, max_size=200))
def test_percentiles_ordered(values):
    p50 = percentile(values, 50)
    p95 = percentile(values, 95)
    p99 = percentile(values, 99)
    assert p50 <= p95 <= p99 <= max(values) + 1e-12
    assert min(values) - 1e-12 <= p50


@settings(max_examples=50)
@given(st.lists(
    st.tuples(st.floats(0, 9), st.floats(0.001, 1.0),
              st.floats(0, 1), st.floats(0, 1), st.floats(0, 1)),
    min_size=0, max_size=20,
))
def test_average_utilization_bounded(raw):
    segments = [(t, t + d, c, m, s) for t, d, c, m, s in raw]
    avg = average_utilization(segments, 0.0, 10.0)
    # Segments may overlap in pathological inputs; each individual
    # average is still finite and non-negative.
    assert avg.compute >= 0 and math.isfinite(avg.compute)
    assert avg.memory_bw >= 0 and avg.sm_busy >= 0


# ----------------------------------------------------------------------
# Engine determinism
# ----------------------------------------------------------------------
@settings(max_examples=25)
@given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=50),
       st.integers(0, 2**31))
def test_engine_order_deterministic(times, seed):
    def trace(run_times):
        sim = Simulator()
        order = []
        for i, t in enumerate(run_times):
            sim.call_at(t, lambda i=i: order.append(i))
        sim.run()
        return order

    assert trace(times) == trace(times)
