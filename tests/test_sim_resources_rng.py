"""Unit tests for FIFO locks and seeded RNG substreams."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.process import Timeout, spawn
from repro.sim.resources import FifoLock
from repro.sim.rng import RngFactory, substream_seed


def test_uncontended_acquire_grants_immediately():
    sim = Simulator()
    lock = FifoLock(sim)
    grant = lock.acquire()
    assert grant.triggered
    assert lock.locked


def test_release_unlocks():
    sim = Simulator()
    lock = FifoLock(sim)
    lock.acquire()
    lock.release()
    assert not lock.locked


def test_release_without_hold_raises():
    with pytest.raises(RuntimeError):
        FifoLock(Simulator()).release()


def test_waiters_granted_fifo():
    sim = Simulator()
    lock = FifoLock(sim)
    order = []

    def worker(name, hold):
        grant = lock.acquire(holder=name)
        yield grant
        order.append(name)
        yield Timeout(hold)
        lock.release()

    spawn(sim, worker("a", 1.0))
    spawn(sim, worker("b", 1.0))
    spawn(sim, worker("c", 1.0))
    sim.run()
    assert order == ["a", "b", "c"]


def test_priority_waiters_jump_queue():
    sim = Simulator()
    lock = FifoLock(sim)
    order = []

    def worker(name, priority):
        grant = lock.acquire(priority=priority, holder=name)
        yield grant
        order.append(name)
        yield Timeout(1.0)
        lock.release()

    def launch():
        yield Timeout(0.0)
        spawn(sim, worker("low-1", 0))
        spawn(sim, worker("low-2", 0))
        spawn(sim, worker("high", 1))

    spawn(sim, worker("holder", 0))
    spawn(sim, launch())
    sim.run()
    assert order[0] == "holder"
    assert order[1] == "high"


def test_lock_stays_held_across_handoff():
    sim = Simulator()
    lock = FifoLock(sim)

    def a():
        yield lock.acquire()
        yield Timeout(1.0)
        lock.release()

    def b():
        yield lock.acquire()
        assert lock.locked
        lock.release()

    spawn(sim, a())
    spawn(sim, b())
    sim.run()
    assert not lock.locked


def test_substream_seed_is_deterministic():
    assert substream_seed(42, "alpha") == substream_seed(42, "alpha")


def test_substream_seed_varies_by_name():
    assert substream_seed(42, "alpha") != substream_seed(42, "beta")


def test_substream_seed_varies_by_root():
    assert substream_seed(1, "alpha") != substream_seed(2, "alpha")


def test_substream_seed_is_nonnegative_63bit():
    seed = substream_seed(123456789, "some-very-long-name")
    assert 0 <= seed < 2**63


def test_rng_factory_streams_are_reproducible():
    a = RngFactory(7).stream("arrivals").random(5)
    b = RngFactory(7).stream("arrivals").random(5)
    assert np.allclose(a, b)


def test_rng_factory_streams_are_independent():
    a = RngFactory(7).stream("arrivals").random(5)
    b = RngFactory(7).stream("jitter").random(5)
    assert not np.allclose(a, b)
