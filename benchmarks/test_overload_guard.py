"""Overload protection: the adaptive SLO guard holds the HP tail.

Four seeded runs of the overload scenario (one HP inference client at
30% of solo capacity + two BE inference clients offering 200% between
them — 2.3x total, overload by construction — under Orion with a
deliberately loose DUR_THRESHOLD):

* dedicated reference — the HP client alone on the GPU;
* guarded — bounded BE queues, deadlines, and the SLO guard: the HP
  p99 (after the guard's convergence warmup) must land within 1.1x of
  the dedicated p99 while best-effort goodput stays above zero (BE
  work keeps riding the HP-idle gaps);
* unguarded — the same overload with the guard off: a demonstrable
  breach (p99 beyond the same 1.1x bound);
* replay of the guarded run — the serialized availability ledger must
  be byte-identical (determinism is part of the contract).

A load sweep then checks graceful degradation: as offered BE load
climbs, the guarded HP p99 stays bounded instead of growing with load.
"""

from bench_common import save_result

from repro.experiments.scenario import Scenario, run as run_scenario

DURATION = 1.2
WARMUP = 0.4  # covers the guard's tighten-and-settle transient
SEED = 0
P99_BOUND = 1.1


def scenario(**overrides):
    kwargs = dict(seed=SEED, duration=DURATION, warmup=WARMUP)
    kwargs.update(overrides)
    return run_scenario(Scenario(kind="overload", params=kwargs)).result


def run_overload_guard():
    dedicated = scenario(be_clients=0, guard=False)
    guarded = scenario(guard=True)
    unguarded = scenario(guard=False)
    replay = scenario(guard=True)
    return dedicated, guarded, unguarded, replay


def test_overload_guard(benchmark):
    dedicated, guarded, unguarded, replay = benchmark.pedantic(
        run_overload_guard, rounds=1, iterations=1)

    ref = dedicated.hp_latency.p99
    guarded_ratio = guarded.hp_latency.p99 / ref
    unguarded_ratio = unguarded.hp_latency.p99 / ref
    be_goodput = guarded.be_goodput(DURATION, WARMUP)
    print(f"\nhp p99: dedicated {ref*1e3:.2f} ms   "
          f"guarded {guarded.hp_latency.p99*1e3:.2f} ms "
          f"({guarded_ratio:.2f}x)   "
          f"unguarded {unguarded.hp_latency.p99*1e3:.2f} ms "
          f"({unguarded_ratio:.2f}x)")
    print(f"guarded be goodput: {be_goodput:.1f} req/s   "
          f"shed: {guarded.total_shed()}   "
          f"guard: {guarded.guard_summary}")

    # --- the guard holds the SLO without starving best-effort work ----
    assert guarded_ratio <= P99_BOUND, \
        f"guarded HP p99 {guarded_ratio:.2f}x dedicated (bound {P99_BOUND}x)"
    assert be_goodput > 0, "the guard starved best-effort work entirely"
    assert guarded.guard_summary["actions"], "the guard never acted"

    # --- without the guard the same overload breaches -----------------
    assert unguarded_ratio > P99_BOUND, \
        f"unguarded run did not breach ({unguarded_ratio:.2f}x)"
    assert not unguarded.guard_actions

    # --- deadlines shed stale best-effort work, accounted in the ledger
    assert guarded.total_shed() > 0
    for name, stats in guarded.jobs.items():
        assert guarded.ledger.client(name).shed == stats.shed

    # --- determinism: byte-identical ledger and guard trace -----------
    assert guarded.ledger.to_json() == replay.ledger.to_json()
    assert guarded.guard_actions == replay.guard_actions

    # --- graceful degradation under rising load -----------------------
    sweep = []
    for be_load in (1.0, 2.0, 3.0):
        run = scenario(guard=True, be_load=be_load)
        ratio = run.hp_latency.p99 / ref
        sweep.append({
            "be_load": be_load,
            "hp_p99_ms": run.hp_latency.p99 * 1e3,
            "hp_p99_vs_dedicated": ratio,
            "be_goodput_rps": run.be_goodput(DURATION, WARMUP),
            "shed": run.total_shed(),
        })
        print(f"be_load {be_load:.1f}x: hp p99 {ratio:.2f}x dedicated, "
              f"be goodput {sweep[-1]['be_goodput_rps']:.1f} req/s, "
              f"shed {sweep[-1]['shed']}")
    # Tripling the overload must not translate into the HP tail: the
    # guard sheds/throttles instead (a generous 1.5x headroom bound,
    # vs the unguarded breach which scales with load).
    assert max(entry["hp_p99_vs_dedicated"] for entry in sweep) <= 1.5

    save_result("overload_guard", {
        "capacity_rps": guarded.capacity,
        "solo_latency_ms": guarded.solo_latency * 1e3,
        "slo_ms": guarded.slo * 1e3,
        "hp_p99_dedicated_ms": ref * 1e3,
        "hp_p99_guarded_ms": guarded.hp_latency.p99 * 1e3,
        "hp_p99_unguarded_ms": unguarded.hp_latency.p99 * 1e3,
        "guarded_ratio": guarded_ratio,
        "unguarded_ratio": unguarded_ratio,
        "be_goodput_rps": be_goodput,
        "total_shed": guarded.total_shed(),
        "guard_summary": guarded.guard_summary,
        "guard_actions": guarded.guard_actions,
        "load_sweep": sweep,
        "ledger": guarded.ledger.to_dict(),
        "queue_telemetry": guarded.queue_telemetry,
    })
