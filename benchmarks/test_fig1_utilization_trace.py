"""Figure 1: GPU compute-throughput and memory-bandwidth utilization
over one MobileNetV2 training iteration (batch size 96).

The paper's figure shows bursty utilization, low on average (<40%
compute, <55% memory bandwidth), with compute and memory spikes at
different times.  We run the training job solo with telemetry on and
regenerate the two series at 1 ms bins.
"""

import numpy as np

from bench_common import run_cell, save_result

from repro.experiments.config import ExperimentConfig, JobSpec
from repro.experiments.tables import format_series
from repro.metrics.utilization import average_utilization, binned_trace

BATCH_SIZE = 96  # the paper's Figure 1 setup


def reproduce_fig1():
    job = JobSpec(model="mobilenet_v2", kind="training", high_priority=True,
                  batch_size=BATCH_SIZE)
    config = ExperimentConfig(jobs=[job], backend="ideal", duration=1.5,
                              record_utilization=True)
    result = run_cell(config)
    segments = result.utilization_segments
    # One training iteration starts after warmup; trace a 100 ms window.
    times, compute, memory, _sm = binned_trace(segments, 0.5, 0.6,
                                               bin_width=1e-3)
    averages = average_utilization(segments, 0.5, 1.5)
    return times, compute, memory, averages


def test_fig1(benchmark):
    times, compute, memory, averages = benchmark.pedantic(
        reproduce_fig1, rounds=1, iterations=1
    )
    print()
    print(format_series("fig1a compute-throughput utilization",
                        [f"{t*1e3:.0f}ms" for t in times[:25]],
                        [f"{c:.2f}" for c in compute[:25]]))
    print(format_series("fig1b memory-bandwidth utilization",
                        [f"{t*1e3:.0f}ms" for t in times[:25]],
                        [f"{m:.2f}" for m in memory[:25]]))
    print(f"avg compute={averages.compute:.2f} (paper <0.40), "
          f"avg membw={averages.memory_bw:.2f} (paper <0.55)")
    save_result("fig1", {
        "times": list(times), "compute": list(compute), "memory": list(memory),
        "avg_compute": averages.compute, "avg_memory_bw": averages.memory_bw,
    })
    # Paper's reading: bursty, low on average, anti-correlated spikes.
    assert averages.compute < 0.40
    assert averages.memory_bw < 0.70
    assert compute.max() > 2 * max(averages.compute, 0.01)  # bursty
    # Compute spikes and memory spikes do not coincide.
    correlation = np.corrcoef(compute, memory)[0, 1]
    assert correlation < 0.5
