"""Figure 11: inference-inference collocation, Apollo-trace HP arrivals.

Vision models; the HP job replays the (synthetic) Apollo trace, the BE
job issues uniform arrivals at the Table 3 rate.  Paper reading:
Streams/MPS p99 ~1.9x ideal, REEF 1.86x, Orion within 22% of ideal.
"""

from bench_common import VISION, save_result
from inf_inf_sweep import assert_inf_inf_shape, inf_inf_sweep, print_inf_inf


def test_fig11(benchmark):
    sweep = benchmark.pedantic(
        lambda: inf_inf_sweep(VISION, VISION, "apollo"),
        rounds=1, iterations=1,
    )
    print_inf_inf(sweep, "Figure 11: inf-inf (Apollo trace)")
    save_result("fig11", sweep)
    assert_inf_inf_shape(sweep)
