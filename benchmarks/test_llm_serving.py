"""LLM serving collocation: Orion beats temporal sharing on decode
throughput while holding TTFT.

The paper's §7 proposal made measurable: LLM token generation is
memory-bound, so Orion's resource-aware policy can collocate
compute-heavy best-effort training with the decode phase — and its
phase hints hold best-effort kernels off the compute-bound prefill so
TTFT stays protected.  Three seeded runs of the continuous-batching
serving scenario (one HP engine at 80 req/s + one BE training client):

* orion — collocation with prefill protection: decode token goodput
  must be at least temporal sharing's, TTFT p95 must land within the
  scenario's stated SLO (3x the solo prefill latency of the largest
  admissible prompt), and best-effort training must make progress;
* temporal — strict time slicing, the conservative baseline operators
  use when they fear interference;
* replay of the orion run — the canonical scenario JSON must be
  byte-identical (determinism is part of the contract).
"""

from bench_common import save_result

from repro.experiments.scenario import Scenario, run as run_scenario

DURATION = 0.4
WARMUP = 0.05
SEED = 0


def scenario(backend):
    params = dict(seed=SEED, duration=DURATION, warmup=WARMUP,
                  backend=backend, request_rate=80.0, max_batch=8,
                  be_clients=1)
    return run_scenario(Scenario(kind="llm", params=params))


def run_llm_serving():
    orion = scenario("orion")
    temporal = scenario("temporal")
    replay = scenario("orion")
    return orion, temporal, replay


def test_llm_serving_collocation(benchmark):
    orion_run, temporal_run, replay_run = benchmark.pedantic(
        run_llm_serving, rounds=1, iterations=1)
    orion, temporal = orion_run.result, temporal_run.result

    print(f"\ndecode goodput: orion {orion.decode_tokens_per_sec:.1f} tok/s"
          f"   temporal {temporal.decode_tokens_per_sec:.1f} tok/s")
    print(f"ttft p95: orion {orion.ttft.p95*1e3:.2f} ms   "
          f"temporal {temporal.ttft.p95*1e3:.2f} ms   "
          f"slo {orion.ttft_slo*1e3:.2f} ms")
    print(f"completed: orion {orion.requests_completed}/"
          f"{orion.requests_arrived}   temporal "
          f"{temporal.requests_completed}/{temporal.requests_arrived}")
    print(f"be iterations: orion {orion.be_iterations(WARMUP)}   "
          f"temporal {temporal.be_iterations(WARMUP)}   "
          f"prefill deferrals: "
          f"{orion.backend_stats['prefill_deferrals']}")

    # --- the §7 claim: collocation >= temporal on decode goodput ------
    assert orion.decode_tokens_per_sec >= temporal.decode_tokens_per_sec, \
        (f"orion decode {orion.decode_tokens_per_sec:.1f} tok/s below "
         f"temporal {temporal.decode_tokens_per_sec:.1f} tok/s")
    assert orion.requests_completed >= temporal.requests_completed

    # --- ...while TTFT stays within the stated SLO --------------------
    assert orion.ttft.count > 0
    assert orion.ttft.p95 <= orion.ttft_slo, \
        (f"orion TTFT p95 {orion.ttft.p95*1e3:.2f} ms exceeds SLO "
         f"{orion.ttft_slo*1e3:.2f} ms")

    # --- ...and best-effort work actually rode along ------------------
    assert orion.be_iterations(WARMUP) > 0
    assert orion.backend_stats["be_kernels_launched"] > 0
    assert orion.backend_stats["prefill_deferrals"] > 0

    # --- KV accounting stayed exact -----------------------------------
    assert orion.kv["conserved"]
    assert temporal.kv["conserved"]

    # --- determinism: byte-identical canonical JSON -------------------
    assert orion_run.to_json() == replay_run.to_json()

    save_result("llm_serving", {
        "duration_s": DURATION,
        "orion": {
            "decode_tokens_per_sec": orion.decode_tokens_per_sec,
            "ttft_p50_ms": orion.ttft.p50 * 1e3,
            "ttft_p95_ms": orion.ttft.p95 * 1e3,
            "ttft_slo_ms": orion.ttft_slo * 1e3,
            "tpot_p50_ms": orion.tpot.p50 * 1e3,
            "completed": orion.requests_completed,
            "arrived": orion.requests_arrived,
            "be_iterations": orion.be_iterations(WARMUP),
            "backend_stats": orion.backend_stats,
            "kv": orion.kv,
        },
        "temporal": {
            "decode_tokens_per_sec": temporal.decode_tokens_per_sec,
            "ttft_p95_ms": temporal.ttft.p95 * 1e3,
            "completed": temporal.requests_completed,
            "arrived": temporal.requests_arrived,
            "be_iterations": temporal.be_iterations(WARMUP),
            "kv": temporal.kv,
        },
    })
