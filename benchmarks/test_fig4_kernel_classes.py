"""Figure 4: compute- vs memory-intensive kernels per workload.

The paper classifies each workload's kernels as compute-intensive,
memory-intensive, or unknown, and observes inference kernels run for
10s-100s of us while training kernels run for 100s-1000s of us.  We
regenerate the classification histogram from the profiler.
"""

import numpy as np

from bench_common import save_result

from repro.experiments.runner import get_profile
from repro.experiments.tables import format_table
from repro.gpu.specs import V100_16GB
from repro.kernels.kernel import ResourceProfile
from repro.workloads.models import MODEL_NAMES


def reproduce_fig4():
    rows = []
    payload = {}
    for model in MODEL_NAMES:
        for kind in ("inference", "training"):
            profile = get_profile(model, kind, V100_16GB)
            kernels = list(profile.kernels.values())
            counts = {p: 0 for p in ResourceProfile}
            for k in kernels:
                counts[k.profile] += 1
            durations = np.array([k.duration for k in kernels])
            rows.append([
                model, kind,
                counts[ResourceProfile.COMPUTE],
                counts[ResourceProfile.MEMORY],
                counts[ResourceProfile.UNKNOWN],
                f"{np.median(durations)*1e6:.0f}us",
                f"{durations.max()*1e6:.0f}us",
            ])
            payload[f"{model}:{kind}"] = {
                "compute": counts[ResourceProfile.COMPUTE],
                "memory": counts[ResourceProfile.MEMORY],
                "unknown": counts[ResourceProfile.UNKNOWN],
                "median_duration_us": float(np.median(durations) * 1e6),
                "max_duration_us": float(durations.max() * 1e6),
            }
    return rows, payload


def test_fig4(benchmark):
    rows, payload = benchmark.pedantic(reproduce_fig4, rounds=1, iterations=1)
    print()
    print(format_table(
        ["Model", "Workload", "Compute", "Memory", "Unknown",
         "Median dur", "Max dur"],
        rows,
    ))
    save_result("fig4", payload)
    for key, data in payload.items():
        # Every workload mixes both kernel classes — the premise of
        # opposite-profile collocation.
        assert data["compute"] > 0, key
        assert data["memory"] > 0, key
    for model in MODEL_NAMES:
        inf = payload[f"{model}:inference"]
        train = payload[f"{model}:training"]
        # Training kernels run longer than inference kernels (paper:
        # 100s-1000s of us vs 10s-100s of us).
        assert train["max_duration_us"] > inf["max_duration_us"]
    # MobileNetV2 skews memory-bound (depthwise convolutions).
    mnv2 = payload["mobilenet_v2:training"]
    assert mnv2["memory"] > mnv2["compute"]
