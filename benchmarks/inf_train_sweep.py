"""Shared sweep for the inference-training figures (Figures 6 and 7)."""

from __future__ import annotations

import numpy as np

from bench_common import BACKENDS_MAIN, DURATION, TRAINING_MODELS, run_cell

from repro.experiments.registry import inf_train_config
from repro.experiments.tables import format_table

__all__ = ["inf_train_sweep", "print_sweep", "assert_sweep_shape"]

HP_MODELS = ("resnet50", "mobilenet_v2", "resnet101", "bert", "transformer")


def inf_train_sweep(arrivals: str):
    """Run HP-inference x BE-training x backend; average over BE models.

    Returns {hp_model: {backend: {p99, hp_tput, be_tput, agg_tput}}}.
    """
    sweep = {}
    for hp_model in HP_MODELS:
        sweep[hp_model] = {}
        for backend in BACKENDS_MAIN:
            p99s, hp_tputs, be_tputs = [], [], []
            for be_model in TRAINING_MODELS:
                config = inf_train_config(hp_model, be_model, backend,
                                          arrivals=arrivals,
                                          duration=DURATION)
                result = run_cell(config)
                p99s.append(result.hp_job.latency.p99)
                hp_tputs.append(result.hp_job.throughput)
                be_tputs.append(result.be_jobs()[0].throughput
                                if result.be_jobs() else 0.0)
            sweep[hp_model][backend] = {
                "p99": float(np.mean(p99s)),
                "p99_std": float(np.std(p99s)),
                "hp_tput": float(np.mean(hp_tputs)),
                "be_tput": float(np.mean(be_tputs)),
            }
    return sweep


def print_sweep(sweep, title: str) -> None:
    rows = []
    for hp_model, backends in sweep.items():
        ideal = backends["ideal"]["p99"]
        for backend, cell in backends.items():
            rows.append([
                hp_model, backend,
                f"{cell['p99']*1e3:.2f}ms",
                f"{cell['p99']/ideal:.2f}x",
                f"{cell['hp_tput']:.1f}",
                f"{cell['be_tput']:.2f}",
            ])
    print()
    print(f"== {title} ==")
    print(format_table(
        ["HP model", "Backend", "p99", "p99/ideal", "HP tput", "BE tput (avg)"],
        rows,
    ))


def assert_sweep_shape(sweep, orion_bound: float = 1.35) -> None:
    """The paper's inf-train claims, per HP model."""
    for hp_model, backends in sweep.items():
        ideal = backends["ideal"]["p99"]
        orion = backends["orion"]["p99"]
        reef = backends["reef"]["p99"]
        # Orion keeps p99 near ideal (paper: within 14% on average).
        assert orion <= ideal * orion_bound, hp_model
        # Orion's tail beats REEF's (paper: 2.3-3x lower).
        assert orion <= reef * 1.02, hp_model
        # BE training still makes progress under Orion.
        assert backends["orion"]["be_tput"] > 0, hp_model
