"""Figure 13: generalization to A100 and scaling to 5 clients.

One high-priority inference client collocated with 4 best-effort
inference clients serving the other Table 3 models, all Poisson, on an
A100-40GB.  Paper reading: MPS p99 2.2x ideal, REEF 1.21x, Orion within
9% of ideal for every workload.
"""

import numpy as np

from bench_common import INFERENCE_MODELS, run_cell, save_result

from repro.experiments.registry import multi_client_config
from repro.experiments.tables import format_table

BACKENDS = ("ideal", "mps", "reef", "orion")


def reproduce_fig13():
    payload = {}
    for hp_model in INFERENCE_MODELS:
        be_models = [m for m in INFERENCE_MODELS if m != hp_model]
        payload[hp_model] = {}
        for backend in BACKENDS:
            config = multi_client_config(hp_model, be_models, backend,
                                         device="A100-40GB", duration=2.5)
            result = run_cell(config)
            be_tputs = [j.throughput for j in result.be_jobs()]
            payload[hp_model][backend] = {
                "p99": result.hp_job.latency.p99,
                "hp_tput": result.hp_job.throughput,
                "be_tput_total": float(np.sum(be_tputs)),
            }
    return payload


def test_fig13(benchmark):
    payload = benchmark.pedantic(reproduce_fig13, rounds=1, iterations=1)
    rows = []
    for hp_model, backends in payload.items():
        ideal = backends["ideal"]["p99"]
        for backend, cell in backends.items():
            rows.append([hp_model, backend, f"{cell['p99']*1e3:.2f}ms",
                         f"{cell['p99']/ideal:.2f}x",
                         f"{cell['be_tput_total']:.0f}"])
    print()
    print(format_table(
        ["HP model", "Backend", "p99", "p99/ideal", "BE rps (4 clients)"],
        rows,
    ))
    save_result("fig13", payload)
    for hp_model, backends in payload.items():
        ideal = backends["ideal"]["p99"]
        # Orion's tail never worse than REEF's or MPS's on any workload.
        assert backends["orion"]["p99"] <= backends["mps"]["p99"] * 1.02, hp_model
        assert backends["orion"]["p99"] <= backends["reef"]["p99"] * 1.05, hp_model
        # Near-ideal tails.  Models with multi-ms requests meet the
        # paper's within-9%-style bound; for HP jobs with ~2 ms requests
        # the simulator's best-effort kernels (100s of us,
        # non-preemptible) bound how tight the tail can get, so a looser
        # absolute allowance applies there (see EXPERIMENTS.md).
        if ideal > 4e-3:
            assert backends["orion"]["p99"] <= ideal * 1.35, hp_model
        else:
            assert backends["orion"]["p99"] <= ideal + 2.5e-3, hp_model
        # The BE clients are genuinely served, not starved.
        assert backends["orion"]["be_tput_total"] > \
            0.8 * backends["ideal"]["be_tput_total"], hp_model
