"""Table 1: average GPU utilization of the ten DNN workloads.

For every (model, workload) pair of Table 1 we run the job alone on a
dedicated simulated V100 with telemetry enabled and report the
time-averaged SM / compute-throughput / memory-bandwidth / memory-
capacity utilization next to the paper's measured values.
"""

from bench_common import run_cell, save_result

from repro.experiments.config import ExperimentConfig, JobSpec
from repro.experiments.tables import format_table
from repro.gpu.specs import V100_16GB
from repro.workloads.models import MODEL_NAMES, get_plan

# model, workload -> (SMs busy %, compute %, mem bw %, mem capacity %)
PAPER = {
    ("resnet50", "inference"): (24, 30, 22, 9),
    ("mobilenet_v2", "inference"): (6, 18, 21, 7),
    ("resnet101", "inference"): (29, 24, 37, 9),
    ("bert", "inference"): (95, 72, 28, 14),
    ("transformer", "inference"): (61, 52, 29, 10),
    ("resnet50", "training"): (81, 48, 45, 32),
    ("mobilenet_v2", "training"): (71, 34, 49, 43),
    ("resnet101", "training"): (85, 50, 43, 39),
    ("bert", "training"): (61, 44, 21, 38),
    ("transformer", "training"): (49.5, 29, 30, 53),
}

def measure(model: str, kind: str):
    # The paper profiles each workload executing without stalls, i.e.
    # requests/iterations back to back — a closed loop for both kinds.
    job = JobSpec(model=model, kind=kind, high_priority=True,
                  arrivals="closed")
    config = ExperimentConfig(jobs=[job], backend="ideal", duration=2.0,
                              record_utilization=True)
    result = run_cell(config)
    util = result.utilization
    capacity = get_plan(model, kind).state_bytes / V100_16GB.memory_capacity
    return util.sm_busy, util.compute, util.memory_bw, capacity


def reproduce_table1():
    rows = []
    payload = {}
    for model in MODEL_NAMES:
        for kind in ("inference", "training"):
            sm, compute, membw, capacity = measure(model, kind)
            p_sm, p_c, p_m, p_cap = PAPER[(model, kind)]
            rows.append([
                model, kind,
                f"{sm*100:.0f} ({p_sm})",
                f"{compute*100:.0f} ({p_c})",
                f"{membw*100:.0f} ({p_m})",
                f"{min(capacity, 1)*100:.0f} ({p_cap})",
            ])
            payload[f"{model}:{kind}"] = {
                "sm_busy": sm, "compute": compute, "memory_bw": membw,
                "memory_capacity": capacity,
                "paper": {"sm_busy": p_sm / 100, "compute": p_c / 100,
                          "memory_bw": p_m / 100, "memory_capacity": p_cap / 100},
            }
    return rows, payload


def test_table1(benchmark):
    rows, payload = benchmark.pedantic(reproduce_table1, rounds=1, iterations=1)
    print()
    print(format_table(
        ["Model", "Workload", "SMs busy % (paper)", "Compute % (paper)",
         "Mem BW % (paper)", "Mem cap % (paper)"],
        rows,
    ))
    save_result("table1", payload)
    # Shape assertions on the paper's qualitative reading of Table 1:
    # for vision models, small-batch inference underutilizes compute
    # relative to training (paper: 30->48, 18->34, 24->50), while BERT
    # inference is the most compute-intense inference workload (72%).
    from bench_common import VISION

    for model in VISION:
        inf = payload[f"{model}:inference"]
        train = payload[f"{model}:training"]
        assert train["compute"] >= inf["compute"]
        assert train["memory_capacity"] > inf["memory_capacity"]
    inf_compute = {m: payload[f"{m}:inference"]["compute"] for m in MODEL_NAMES}
    assert max(inf_compute, key=inf_compute.get) == "bert"
    # Everything is far from saturated — the underutilization story.
    for key, row in payload.items():
        assert row["compute"] < 0.8, key
