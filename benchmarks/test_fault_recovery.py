"""Fault recovery: scheduling survives client deaths.

Three seeded runs of the collocation-under-faults scenario (one HP
inference client + two BE training clients under Orion):

* fault-free reference;
* a best-effort client killed mid-run — the HP p99 must stay within
  noise of the reference (the dying BE job's teardown never blocks the
  priority stream);
* the high-priority client killed mid-run — its restart supervisor's
  replacement context must re-acquire the vacated HP slot and serve
  again within one scheduling wakeup (sub-millisecond recovery plus the
  supervisor's first backoff step).

A fourth assertion replays the BE-kill run and requires the serialized
error ledger to be byte-identical — determinism is part of the fault
model's contract.
"""

from bench_common import save_result

from repro.experiments.scenario import Scenario, run as run_scenario
from repro.faults import FaultPlan, KillClient

DURATION = 0.25
SEED = 0
KILL_AT = DURATION * 0.4
# HP p99 noise bound: killing a BE client changes event interleaving
# (fewer BE kernels compete after the kill), so "untouched" means
# within a small factor of the fault-free p99, not bit-equality.
P99_NOISE = 1.25


def _faults(**params):
    return run_scenario(Scenario(kind="faults", params=params)).result


def run_fault_recovery():
    clean = _faults(seed=SEED, duration=DURATION, plan=FaultPlan(()))
    be_kill = _faults(
        seed=SEED, duration=DURATION,
        plan=FaultPlan((KillClient("be-0", at_time=KILL_AT),)))
    hp_kill = _faults(
        seed=SEED, duration=DURATION,
        plan=FaultPlan((KillClient("hp", at_time=KILL_AT),)))
    replay = _faults(
        seed=SEED, duration=DURATION,
        plan=FaultPlan((KillClient("be-0", at_time=KILL_AT),)))
    return clean, be_kill, hp_kill, replay


def test_fault_recovery(benchmark):
    clean, be_kill, hp_kill, replay = benchmark.pedantic(
        run_fault_recovery, rounds=1, iterations=1)

    # --- BE kill leaves the HP client untouched -----------------------
    ratio = be_kill.hp_latency.p99 / clean.hp_latency.p99
    print(f"\nhp p99: fault-free {clean.hp_latency.p99*1e3:.2f} ms   "
          f"BE-kill {be_kill.hp_latency.p99*1e3:.2f} ms   ({ratio:.2f}x)")
    assert ratio < P99_NOISE, \
        f"killing a BE client disturbed HP p99 by {ratio:.2f}x"
    assert be_kill.backend_stats["clients_deregistered"] == 1
    assert be_kill.jobs["hp"].failed == 0
    # The victim restarted and its queue drain produced CLIENT_KILLED
    # errors, all accounted in the ledger.
    victim = be_kill.ledger.client("be-0")
    assert victim.restarts >= 1
    assert victim.errors.get("client_killed", 0) > 0

    # --- HP kill: successor re-acquires the priority stream -----------
    hp_entry = hp_kill.ledger.client("hp")
    assert hp_entry.restarts == 1
    assert hp_entry.recovery_times, "no time-to-recover sample recorded"
    # Recovery = one supervisor backoff step (1 ms) + scheduler wakeup;
    # anything beyond 2 ms means the HP slot was not vacated promptly.
    assert hp_entry.recovery_times[0] <= 2e-3, \
        f"HP recovery took {hp_entry.recovery_times[0]*1e3:.2f} ms"
    served_after_kill = [r for r in hp_kill.jobs["hp"].records
                         if r.end > KILL_AT]
    assert served_after_kill, "successor HP client never served a request"

    # --- Determinism: same seeded plan, byte-identical ledger ---------
    assert be_kill.ledger.to_json() == replay.ledger.to_json()

    save_result("fault_recovery", {
        "hp_p99_clean_ms": clean.hp_latency.p99 * 1e3,
        "hp_p99_be_kill_ms": be_kill.hp_latency.p99 * 1e3,
        "hp_p99_ratio": ratio,
        "hp_time_to_recover_ms": hp_entry.recovery_times[0] * 1e3,
        "be_kill_ledger": be_kill.ledger.to_dict(),
        "hp_kill_ledger": hp_kill.ledger.to_dict(),
    })
