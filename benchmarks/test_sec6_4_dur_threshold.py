"""§6.4: DUR_THRESHOLD sensitivity.

Paper reading (ResNet101 inference + best-effort training): stable HP
latency for thresholds below ~3%; linear increases beyond 3% trade HP
latency for best-effort throughput (23/26/30 ms p99 and 8.7/9.26/9.75
it/s at 10/15/20%).
"""

from bench_common import run_cell, save_result

from repro.experiments.registry import inf_train_config
from repro.experiments.tables import format_table

THRESHOLDS = (0.01, 0.025, 0.10, 0.15, 0.20)
HP_MODEL, BE_MODEL = "resnet101", "mobilenet_v2"


def reproduce_sweep():
    payload = {}
    for frac in THRESHOLDS:
        config = inf_train_config(HP_MODEL, BE_MODEL, "orion",
                                  arrivals="poisson", duration=3.0,
                                  orion={"dur_threshold_frac": frac})
        result = run_cell(config)
        payload[frac] = {
            "hp_p99": result.hp_job.latency.p99,
            "be_tput": result.be_jobs()[0].throughput,
        }
    return payload


def test_sec6_4(benchmark):
    payload = benchmark.pedantic(reproduce_sweep, rounds=1, iterations=1)
    rows = [[f"{frac*100:.1f}%", f"{d['hp_p99']*1e3:.2f}ms",
             f"{d['be_tput']:.2f}"] for frac, d in payload.items()]
    print()
    print(format_table(["DUR_THRESHOLD", "HP p99", "BE it/s"], rows))
    save_result("sec6_4", payload)
    # Larger thresholds never reduce BE throughput (less throttling) ...
    tputs = [payload[f]["be_tput"] for f in THRESHOLDS]
    assert all(b >= a - 0.5 for a, b in zip(tputs, tputs[1:]))
    # ... and HP latency at the most permissive threshold is no better
    # than at the paper's default.
    assert payload[0.20]["hp_p99"] >= payload[0.025]["hp_p99"] * 0.95
