"""Table 2: the Conv2d/BN2d collocation toy experiment.

Paper values (V100): Conv2d+Conv2d 2.59 ms seq / 2.63 ms collocated
(0.98x); BN2d+BN2d 1.78/1.65 (1.08x); Conv2d+BN2d 2.15/1.52 (1.41x).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from bench_common import ms, save_result
from helpers import BN_LIKE, CONV_LIKE

from repro.experiments.tables import format_table
from repro.gpu.device import GpuDevice
from repro.gpu.specs import V100_16GB
from repro.kernels.costmodel import instantiate_kernel
from repro.sim.engine import Simulator
from repro.sim.process import spawn

PAPER = {
    "Conv2d-Conv2d": (2.59, 2.63, 0.98),
    "BN2d-BN2d": (1.78, 1.65, 1.08),
    "Conv2d-BN2d": (2.15, 1.52, 1.41),
}


def run_pair(spec_a, spec_b, collocated):
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    record = {}
    if collocated:
        sa, sb = device.create_stream(), device.create_stream()

        def body():
            da = sa.submit(instantiate_kernel(spec_a, V100_16GB))
            db = sb.submit(instantiate_kernel(spec_b, V100_16GB))
            yield da
            yield db
            record["t"] = sim.now
    else:
        stream = device.create_stream()

        def body():
            stream.submit(instantiate_kernel(spec_a, V100_16GB))
            done = stream.submit(instantiate_kernel(spec_b, V100_16GB))
            yield done
            record["t"] = sim.now

    spawn(sim, body())
    sim.run()
    return record["t"]


def reproduce_table2():
    pairs = {
        "Conv2d-Conv2d": (CONV_LIKE, CONV_LIKE),
        "BN2d-BN2d": (BN_LIKE, BN_LIKE),
        "Conv2d-BN2d": (CONV_LIKE, BN_LIKE),
    }
    rows = []
    payload = {}
    for name, (a, b) in pairs.items():
        seq = run_pair(a, b, False)
        col = run_pair(a, b, True)
        speedup = seq / col
        p_seq, p_col, p_speed = PAPER[name]
        rows.append([name, f"{ms(seq):.2f}", f"{ms(col):.2f}",
                     f"{speedup:.2f}x", f"{p_seq}/{p_col} ({p_speed}x)"])
        payload[name] = {"sequential_ms": ms(seq), "collocated_ms": ms(col),
                         "speedup": speedup, "paper_speedup": p_speed}
    return rows, payload


def test_table2(benchmark):
    rows, payload = benchmark.pedantic(reproduce_table2, rounds=1, iterations=1)
    print()
    print(format_table(
        ["Kernel pair", "Sequential", "Collocated", "Speedup", "Paper (seq/col)"],
        rows,
    ))
    save_result("table2", payload)
    # Shape assertions: same-compute ~1x, opposite-profile the big win.
    assert abs(payload["Conv2d-Conv2d"]["speedup"] - 0.98) < 0.10
    assert abs(payload["BN2d-BN2d"]["speedup"] - 1.08) < 0.12
    assert payload["Conv2d-BN2d"]["speedup"] > 1.3
