"""Figures 8 and 9: utilization of an inference job alone vs collocated
with training under Orion.

Paper setup: ResNet50 inference at 100 uniform rps on a dedicated V100
(8a/9a), then the same job collocated with ResNet50 training under
Orion (8b/9b).  Orion fills the fine-grained idle periods: average
compute-throughput utilization rises 7% -> 36% and memory-bandwidth
utilization 10% -> 47% in the paper.
"""

from bench_common import run_cell, save_result

from repro.experiments.config import ExperimentConfig, JobSpec
from repro.experiments.registry import solo_inference_config
from repro.experiments.tables import format_series
from repro.metrics.utilization import binned_trace

RPS = 100.0


def measure_alone():
    config = solo_inference_config("resnet50", rps=RPS, duration=2.0,
                                   record_utilization=True)
    return run_cell(config)


def measure_collocated():
    hp = JobSpec(model="resnet50", kind="inference", high_priority=True,
                 arrivals="uniform", rps=RPS)
    be = JobSpec(model="resnet50", kind="training")
    config = ExperimentConfig(jobs=[hp, be], backend="orion", duration=2.0,
                              record_utilization=True)
    return run_cell(config)


def reproduce_fig8_9():
    alone = measure_alone()
    collocated = measure_collocated()
    return alone, collocated


def test_fig8_9(benchmark):
    alone, collocated = benchmark.pedantic(reproduce_fig8_9, rounds=1,
                                           iterations=1)
    a, c = alone.utilization, collocated.utilization
    times, compute_alone, mem_alone, _ = binned_trace(
        alone.utilization_segments, 0.5, 0.7, bin_width=2e-3)
    _, compute_col, mem_col, _ = binned_trace(
        collocated.utilization_segments, 0.5, 0.7, bin_width=2e-3)
    print()
    print(format_series("fig8a compute util (alone)",
                        [f"{t*1e3:.0f}ms" for t in times[:20]],
                        [f"{v:.2f}" for v in compute_alone[:20]]))
    print(format_series("fig8b compute util (orion collocated)",
                        [f"{t*1e3:.0f}ms" for t in times[:20]],
                        [f"{v:.2f}" for v in compute_col[:20]]))
    print(f"avg compute: alone={a.compute:.2f} collocated={c.compute:.2f} "
          f"(paper 0.07 -> 0.36)")
    print(f"avg membw:   alone={a.memory_bw:.2f} collocated={c.memory_bw:.2f} "
          f"(paper 0.10 -> 0.47)")
    print(f"avg SM busy: alone={a.sm_busy:.2f} collocated={c.sm_busy:.2f} "
          f"(paper 0.11 -> 0.49)")
    save_result("fig8_9", {
        "alone": {"compute": a.compute, "memory_bw": a.memory_bw,
                  "sm_busy": a.sm_busy},
        "collocated": {"compute": c.compute, "memory_bw": c.memory_bw,
                       "sm_busy": c.sm_busy},
    })
    # Orion fills idle capacity: every utilization axis rises materially.
    assert c.compute > 1.5 * a.compute
    assert c.memory_bw > 1.5 * a.memory_bw
    assert c.sm_busy > 1.5 * a.sm_busy
    # And the HP job is still served (not starved by the BE trainer).
    assert collocated.hp_job.throughput > 0.9 * alone.hp_job.throughput
