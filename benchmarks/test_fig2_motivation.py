"""Figure 2: existing GPU collocation techniques leave performance on
the table.

Three job pairs (each jobs issues one request at a time in a closed
loop) run under every sharing technique; the stacked throughput is
normalized to Ideal (both jobs on dedicated GPUs).  The paper's
reading: temporal/MPS/Streams/Tick-Tock sit far below Ideal, REEF
serves the HP job but barely runs the BE job; Orion closes the gap.
"""

from bench_common import run_cell, save_result

from repro.experiments.config import ExperimentConfig, JobSpec
from repro.experiments.tables import format_table
from repro.experiments.runner import solo_throughput

PAIRS = [
    ("resnet50:inference", "mobilenet_v2:training"),
    ("bert:inference", "resnet50:training"),
    ("resnet50:training", "mobilenet_v2:training"),
]


def job_from(token: str, high_priority: bool) -> JobSpec:
    model, kind = token.split(":")
    return JobSpec(model=model, kind=kind, high_priority=high_priority,
                   arrivals="closed")


def backends_for(pair):
    base = ["temporal", "streams", "mps", "reef", "orion"]
    if all(token.endswith(":training") for token in pair):
        base.insert(3, "ticktock")
    return base


def run_pair(pair, backend):
    hp = job_from(pair[0], True)
    be = job_from(pair[1], False)
    orion_kwargs = {}
    if backend == "orion" and pair[0].endswith(":training"):
        # §5.1.1: throughput-oriented HP jobs raise SM_THRESHOLD.
        orion_kwargs = {"sm_threshold": 160}
    config = ExperimentConfig(jobs=[hp, be], backend=backend, duration=2.5,
                              orion=orion_kwargs)
    result = run_cell(config)
    return result.hp_job.throughput, result.be_jobs()[0].throughput


def reproduce_fig2():
    rows = []
    payload = {}
    for pair in PAIRS:
        hp_model, hp_kind = pair[0].split(":")
        be_model, be_kind = pair[1].split(":")
        ideal_hp = solo_throughput(hp_model, hp_kind)
        ideal_be = solo_throughput(be_model, be_kind)
        ideal_total = ideal_hp + ideal_be
        payload[f"{pair[0]}+{pair[1]}"] = {"ideal_hp": ideal_hp,
                                           "ideal_be": ideal_be}
        for backend in backends_for(pair):
            hp_tput, be_tput = run_pair(pair, backend)
            norm = (hp_tput + be_tput) / ideal_total
            rows.append([f"{pair[0]} + {pair[1]}", backend,
                         f"{hp_tput:.1f}", f"{be_tput:.1f}",
                         f"{norm*100:.0f}%"])
            payload[f"{pair[0]}+{pair[1]}"][backend] = {
                "hp": hp_tput, "be": be_tput, "normalized_total": norm,
            }
    return rows, payload


def test_fig2(benchmark):
    rows, payload = benchmark.pedantic(reproduce_fig2, rounds=1, iterations=1)
    print()
    print(format_table(
        ["Pair (HP + BE)", "Technique", "HP tput", "BE tput", "vs Ideal"],
        rows,
    ))
    save_result("fig2", payload)
    for pair_key, data in payload.items():
        ideal_hp = data["ideal_hp"]
        # REEF favours the HP job but leaves BE mostly unserved.
        assert data["reef"]["hp"] > 0.7 * ideal_hp
        # Orion's aggregate beats temporal sharing's.
        assert data["orion"]["normalized_total"] > \
            data["temporal"]["normalized_total"]
