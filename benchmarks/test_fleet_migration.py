"""Live migration: an adversarial placement is unwound online, safely.

Two seeded scenarios exercise the migration controller end to end:

1. **Rebalance beats no-migration.**  Four GPUs, four tenants packed
   *adversarially* (most-interfering partners together, half the fleet
   idle) under the plain streams backend — no per-GPU priority
   protection, so collocation hits the high-priority tenant's tail
   directly.  With rebalancing on, the controller detects the bad
   pairings, migrates the best-effort tenants to the idle GPUs, and
   post-migration HP p99 must beat the frozen baseline.

2. **Chaos soak.**  Sixteen GPUs, eleven tenants packed adversarially,
   rebalancing on, with crashes and degradations firing while
   migrations are active — including a destination degraded mid-move,
   which must unwind through the rollback path.  At-most-once job
   accounting must hold exactly: every submitted job is served, shed,
   failed, or dropped-at-horizon, never lost or duplicated.

Both scenarios replay byte-identically (migration state transitions
are folded into the sha256 routing digest, so any nondeterminism in
the controller's decisions or timing breaks the assertion).
"""

from bench_common import save_result

from repro.experiments.scenario import Scenario, run
from repro.faults import FaultPlan, GpuDegrade, GpuRecover

# --- scenario 1: adversarial packing, rebalance on vs off -------------
REBALANCE_PARAMS = dict(
    seed=5, duration=0.4, num_gpus=4, be_tenants=3, backend="streams",
    plan=FaultPlan(()), placement="adversarial",
    hp_load=0.12, be_load=0.45, warmup=0.15,
    rebalance=True, rebalance_interval=0.02,
    migration_min_gain=0.02, migration_cost_weight=0.1,
)
BASELINE_PARAMS = {**REBALANCE_PARAMS, "rebalance": False}

# --- scenario 2: 16-GPU chaos soak ------------------------------------
SOAK_GPUS = 16
SOAK_DURATION = 0.25
_SAMPLED = FaultPlan.sample_fleet(11, SOAK_GPUS, horizon=SOAK_DURATION,
                                  crashes=2, degrades=2, slowdown=3.0,
                                  recover_after=0.05)
# The sampled faults land at t in [0.08, 0.15] — well after the first
# wave of migrations — so one extra degrade is pinned *inside* a known
# migration window (the t=0.02 tick's move onto gpu8 re-warms until
# t~0.0216): the destination degrades mid-move and the controller must
# roll the tenant back to its source.
SOAK_PLAN = FaultPlan(tuple(_SAMPLED) + (
    GpuDegrade(gpu=8, at_time=0.0205, slowdown=3.0),
    GpuRecover(gpu=8, at_time=0.06),
))
SOAK_PARAMS = dict(
    seed=11, duration=SOAK_DURATION, num_gpus=SOAK_GPUS, be_tenants=10,
    plan=SOAK_PLAN, placement="adversarial", rebalance=True,
    rebalance_interval=0.01, migration_cooldown=0.02,
    max_inflight_migrations=2, migration_min_gain=0.02,
    migration_cost_weight=0.1, hp_load=0.03, be_load=0.2,
)


def _accounted(result) -> int:
    return sum(len(stats.records) + stats.shed + stats.failed
               + stats.dropped for stats in result.jobs.values())


def run_migration_suite():
    baseline = run(Scenario(kind="fleet", params=dict(BASELINE_PARAMS)))
    rebalanced = run(Scenario(kind="fleet", params=dict(REBALANCE_PARAMS)))
    replay = run(Scenario(kind="fleet", params=dict(REBALANCE_PARAMS)))
    soak = run(Scenario(kind="fleet", params=dict(SOAK_PARAMS)))
    soak_replay = run(Scenario(kind="fleet", params=dict(SOAK_PARAMS)))
    return baseline, rebalanced, replay, soak, soak_replay


def test_fleet_migration(benchmark):
    baseline, rebalanced, replay, soak, soak_replay = benchmark.pedantic(
        run_migration_suite, rounds=1, iterations=1)

    # --- rebalancing unwinds the adversarial placement ----------------
    mig = rebalanced.result.migration
    assert mig["completed"] >= 1, "no migration completed"
    assert mig["net_predicted_gain"] > 0
    for record in mig["records"]:
        if record["outcome"] == "completed":
            assert record["src"] != record["dst"]

    base_p99 = baseline.result.hp_latency.p99
    rebal_p99 = rebalanced.result.hp_latency.p99
    print(f"\nhp p99: baseline {base_p99 * 1e3:.2f} ms, "
          f"rebalanced {rebal_p99 * 1e3:.2f} ms "
          f"({(1 - rebal_p99 / base_p99):.0%} better; "
          f"{mig['completed']} moves, net predicted gain "
          f"{mig['net_predicted_gain']:.2f})")
    assert rebal_p99 < base_p99, (
        f"rebalancing did not improve HP p99: "
        f"{rebal_p99:.6f} vs baseline {base_p99:.6f}")

    # --- at-most-once accounting through every move -------------------
    for wrapped in (baseline, rebalanced, soak):
        result = wrapped.result
        assert _accounted(result) == result.routing["submitted"], \
            "jobs lost or duplicated across migrations"

    # --- chaos soak: faults during active migrations ------------------
    soak_mig = soak.result.migration
    soak_report = soak.result.report
    assert soak_report["faults"]["crashes"] == 2
    assert soak_report["faults"]["degrades"] == 3
    assert soak_mig["started"] >= 3, "soak barely migrated"
    assert soak_mig["rolled_back"] >= 1, \
        "the mid-migration destination degrade did not force a rollback"
    assert soak_mig["in_flight"] == 0, "migration leaked past the horizon"
    print(f"soak: {soak_mig['started']} migrations "
          f"({soak_mig['completed']} completed, "
          f"{soak_mig['rolled_back']} rolled back, "
          f"{soak_mig['rerouted']} rerouted), "
          f"{soak_report['failover']['re_homed']} crash re-homes, "
          f"{soak.result.routing['submitted']} jobs all accounted")

    # --- determinism: byte-identical replays, digest covers moves -----
    assert rebalanced.to_json() == replay.to_json(), \
        "same-seed rebalance runs diverged"
    assert soak.to_json() == soak_replay.to_json(), \
        "same-seed soak runs diverged"
    assert rebalanced.result.routing["migrations"] > 0
    assert rebalanced.result.routing["digest"] != \
        baseline.result.routing["digest"]

    save_result("fleet_migration", {
        "hp_p99_baseline": base_p99,
        "hp_p99_rebalanced": rebal_p99,
        "migrations": {k: v for k, v in mig.items() if k != "records"},
        "soak_migrations": {k: v for k, v in soak_mig.items()
                            if k != "records"},
        "soak_submitted": soak.result.routing["submitted"],
        "routing_digest": rebalanced.result.routing["digest"],
        "soak_digest": soak.result.routing["digest"],
    })
