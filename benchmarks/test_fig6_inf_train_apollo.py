"""Figure 6: inference-training collocation with Apollo-trace arrivals.

High-priority inference driven by the (synthetic) Apollo trace,
collocated with best-effort training; p99 latency (6a) and aggregate
throughput (6b) per backend, averaged across best-effort models.
Paper reading: Orion stays within ~14% of ideal p99 while REEF is
~3.4x ideal on average and MPS/temporal far worse.
"""

from bench_common import save_result
from inf_train_sweep import assert_sweep_shape, inf_train_sweep, print_sweep


def test_fig6(benchmark):
    sweep = benchmark.pedantic(lambda: inf_train_sweep("apollo"),
                               rounds=1, iterations=1)
    print_sweep(sweep, "Figure 6: inf-train (Apollo trace)")
    save_result("fig6", sweep)
    assert_sweep_shape(sweep)
