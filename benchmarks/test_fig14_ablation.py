"""Figure 14: performance analysis breakdown (policy ablation).

inf-train with Poisson arrivals, adding one Orion mechanism at a time:
GPU Streams -> +stream priorities -> +compute/memory profiles ->
+SM limit (full Orion) -> full Orion without stream priorities.
Paper reading: priorities cut p95 by ~25%; profiles cut another ~48%;
the SM rule up to ~54% more; with the full policy in place, stream
priorities themselves become marginal.
"""

import numpy as np

from bench_common import run_cell, save_result

from repro.experiments.registry import inf_train_config
from repro.experiments.tables import format_table

HP_MODEL, BE_MODEL = "resnet50", "resnet101"

LADDER = [
    ("streams", "streams", {}),
    ("stream-priorities", "priority-streams", {}),
    ("+compute/mem profiles", "orion", {"use_sm_limit": False,
                                        "use_dur_throttle": False}),
    ("+SM limit (Orion)", "orion", {}),
    ("orion w/o priorities", "orion", {"use_stream_priorities": False}),
]


def measure(backend, orion_kwargs, seeds=(0, 1)):
    p95s, p99s = [], []
    for seed in seeds:
        config = inf_train_config(HP_MODEL, BE_MODEL, backend,
                                  arrivals="poisson", duration=2.5,
                                  seed=seed, orion=orion_kwargs)
        result = run_cell(config)
        p95s.append(result.hp_job.latency.p95)
        p99s.append(result.hp_job.latency.p99)
    return float(np.mean(p95s)), float(np.mean(p99s))


def reproduce_fig14():
    payload = {}
    for label, backend, orion_kwargs in LADDER:
        p95, p99 = measure(backend, orion_kwargs)
        payload[label] = {"p95": p95, "p99": p99}
    return payload


def test_fig14(benchmark):
    payload = benchmark.pedantic(reproduce_fig14, rounds=1, iterations=1)
    base = payload["streams"]["p95"]
    rows = [[label, f"{data['p95']*1e3:.2f}ms", f"{data['p95']/base:.2f}x"]
            for label, data in payload.items()]
    print()
    print(format_table(["Configuration", "HP p95", "vs Streams"], rows))
    save_result("fig14", payload)
    # Each policy rung improves (or at least never hurts) the tail.
    assert payload["stream-priorities"]["p95"] <= base * 1.02
    assert payload["+compute/mem profiles"]["p95"] \
        <= payload["stream-priorities"]["p95"] * 1.05
    assert payload["+SM limit (Orion)"]["p95"] \
        <= payload["+compute/mem profiles"]["p95"] * 1.02
    # With the full policy, stream priorities are marginal (paper §6.4).
    full = payload["+SM limit (Orion)"]["p95"]
    assert payload["orion w/o priorities"]["p95"] <= full * 1.25
