"""Shared sweep for the inference-inference figures (Figures 11, 12)."""

from __future__ import annotations

import numpy as np

from bench_common import BACKENDS_MAIN, DURATION, run_cell

from repro.experiments.registry import inf_inf_config
from repro.experiments.tables import format_table

__all__ = ["inf_inf_sweep", "print_inf_inf", "assert_inf_inf_shape"]


def inf_inf_sweep(hp_models, be_models, arrivals: str):
    """HP x BE x backend p99 sweep, averaged over BE models per HP."""
    sweep = {}
    for hp_model in hp_models:
        sweep[hp_model] = {}
        partners = [m for m in be_models if m != hp_model]
        for backend in BACKENDS_MAIN:
            p99s, aggs = [], []
            for be_model in partners:
                config = inf_inf_config(hp_model, be_model, backend,
                                        arrivals=arrivals, duration=DURATION)
                result = run_cell(config)
                p99s.append(result.hp_job.latency.p99)
                aggs.append(result.aggregate_throughput)
            sweep[hp_model][backend] = {
                "p99": float(np.mean(p99s)),
                "p99_std": float(np.std(p99s)),
                "aggregate_tput": float(np.mean(aggs)),
            }
    return sweep


def print_inf_inf(sweep, title: str) -> None:
    rows = []
    for hp_model, backends in sweep.items():
        ideal = backends["ideal"]["p99"]
        for backend, cell in backends.items():
            rows.append([
                hp_model, backend,
                f"{cell['p99']*1e3:.2f}ms",
                f"{cell['p99']/ideal:.2f}x",
                f"{cell['aggregate_tput']:.0f}",
            ])
    print()
    print(f"== {title} ==")
    print(format_table(
        ["HP model", "Backend", "p99 (avg)", "p99/ideal", "Agg rps"], rows,
    ))


def assert_inf_inf_shape(sweep, orion_bound: float = 1.35) -> None:
    for hp_model, backends in sweep.items():
        ideal = backends["ideal"]["p99"]
        # Orion near ideal (paper: within 15-22%).
        assert backends["orion"]["p99"] <= ideal * orion_bound, hp_model
        # Orion's tail never worse than MPS's.
        assert backends["orion"]["p99"] <= backends["mps"]["p99"] * 1.02, hp_model
