"""Figure 7: inference-training collocation with Poisson arrivals.

Same sweep as Figure 6 with Poisson arrivals at the Table 3 rates.
Paper reading: Orion within 14% of ideal p99 (2.3-3x lower than REEF),
aggregate throughput up to 2.3x a dedicated GPU's inference throughput.
"""

from bench_common import save_result
from inf_train_sweep import assert_sweep_shape, inf_train_sweep, print_sweep


def test_fig7(benchmark):
    sweep = benchmark.pedantic(lambda: inf_train_sweep("poisson"),
                               rounds=1, iterations=1)
    print_sweep(sweep, "Figure 7: inf-train (Poisson)")
    save_result("fig7", sweep)
    assert_sweep_shape(sweep)
    # Aggregate throughput grows vs inference alone (paper: up to 2.3x).
    for hp_model, backends in sweep.items():
        orion = backends["orion"]
        assert orion["hp_tput"] + orion["be_tput"] > orion["hp_tput"]
