"""Table 4: cost savings from collocating inference with training.

For each model, a best-effort training job is collocated (under Orion)
with a high-priority Poisson-arrival inference job; cost savings follow
the paper's formula  2 x Throughput_collocated / Throughput_dedicated.
Paper values: ResNet50 1.45x, MobileNetV2 1.4x, ResNet101 1.49x,
BERT 1.26x, Transformer 1.3x (savings 1.26-1.49x).
"""

from bench_common import run_cell, save_result

from repro.experiments.registry import inf_train_config
from repro.experiments.runner import solo_throughput
from repro.experiments.tables import format_table
from repro.metrics.cost import cost_savings
from repro.workloads.models import MODEL_NAMES

PAPER = {
    "resnet50": (10.3, 7.45, 1.45),
    "mobilenet_v2": (12.5, 8.78, 1.40),
    "resnet101": (6.3, 4.7, 1.49),
    "bert": (4.91, 3.1, 1.26),
    "transformer": (6.0, 3.9, 1.30),
}

# The high-priority inference job collocated with each trainer (the
# paper pairs each trainer with its Poisson inference workloads; we fix
# ResNet50 inference as the representative HP job).
HP_MODEL = "resnet50"


def reproduce_table4():
    payload = {}
    for be_model in MODEL_NAMES:
        dedicated = solo_throughput(be_model, "training")
        config = inf_train_config(HP_MODEL, be_model, "orion",
                                  arrivals="poisson", duration=3.0)
        result = run_cell(config)
        collocated = result.be_jobs()[0].throughput
        savings = cost_savings(dedicated, collocated)
        payload[be_model] = {
            "dedicated_iters": dedicated,
            "collocated_iters": collocated,
            "cost_savings": savings,
            "hp_p99_ms": result.hp_job.latency.p99 * 1e3,
            "paper": dict(zip(("dedicated", "collocated", "savings"),
                              PAPER[be_model])),
        }
    return payload


def test_table4(benchmark):
    payload = benchmark.pedantic(reproduce_table4, rounds=1, iterations=1)
    rows = []
    for model, data in payload.items():
        p = data["paper"]
        rows.append([
            model,
            f"{data['dedicated_iters']:.2f} ({p['dedicated']})",
            f"{data['collocated_iters']:.2f} ({p['collocated']})",
            f"{data['cost_savings']:.2f}x ({p['savings']}x)",
        ])
    print()
    print(format_table(
        ["Model", "Dedicated it/s (paper)", "Collocated it/s (paper)",
         "Cost savings (paper)"],
        rows,
    ))
    save_result("table4", payload)
    for model, data in payload.items():
        # Collocation always beats dedicating a second GPU (savings > 1)
        # and stays in the paper's band shape (savings well below 2 —
        # the trainer does lose some throughput to the inference job).
        assert 1.1 < data["cost_savings"] <= 2.0, model
        # Collocated throughput is below dedicated (interference is real).
        assert data["collocated_iters"] < data["dedicated_iters"] * 1.02, model
