"""Figure 10: training-training collocation throughput.

High-priority and best-effort training jobs collocated under every
backend.  Paper reading: MPS/Streams cut HP throughput ~1.7x; Tick-Tock
locksteps to the slowest job; REEF keeps HP within 8% of ideal but
starves the best-effort job; Orion keeps HP within 16% of ideal while
the best-effort job makes real progress (up to 1.6x aggregate).
"""

from bench_common import run_cell, save_result

from repro.experiments.registry import train_train_config
from repro.experiments.runner import solo_throughput
from repro.experiments.tables import format_table
from repro.gpu.specs import V100_16GB

HP_MODELS = ("resnet50", "resnet101", "bert")
BE_MODEL = "mobilenet_v2"
BACKENDS = ("mps", "streams", "ticktock", "reef", "orion")


def run_one(hp_model, backend):
    orion_kwargs = {}
    if backend == "orion":
        # §5.1.1: SM_THRESHOLD raised for throughput-oriented HP jobs.
        orion_kwargs = {"sm_threshold": 2 * V100_16GB.num_sms}
    config = train_train_config(hp_model, BE_MODEL, backend, duration=3.0,
                                orion=orion_kwargs)
    result = run_cell(config)
    return result.hp_job.throughput, result.be_jobs()[0].throughput


def reproduce_fig10():
    payload = {}
    for hp_model in HP_MODELS:
        dedicated_hp = solo_throughput(hp_model, "training")
        dedicated_be = solo_throughput(BE_MODEL, "training")
        payload[hp_model] = {"dedicated_hp": dedicated_hp,
                             "dedicated_be": dedicated_be}
        for backend in BACKENDS:
            hp_tput, be_tput = run_one(hp_model, backend)
            payload[hp_model][backend] = {"hp": hp_tput, "be": be_tput}
    return payload


def test_fig10(benchmark):
    payload = benchmark.pedantic(reproduce_fig10, rounds=1, iterations=1)
    rows = []
    for hp_model, data in payload.items():
        for backend in BACKENDS:
            cell = data[backend]
            rows.append([
                hp_model, backend,
                f"{cell['hp']:.2f}",
                f"{cell['hp']/data['dedicated_hp']*100:.0f}%",
                f"{cell['be']:.2f}",
                f"{cell['be']/data['dedicated_be']*100:.0f}%",
            ])
    print()
    print(format_table(
        ["HP model", "Backend", "HP it/s", "HP vs ded", "BE it/s", "BE vs ded"],
        rows,
    ))
    save_result("fig10", payload)
    for hp_model, data in payload.items():
        ded = data["dedicated_hp"]
        # REEF: HP near ideal, BE starved.
        assert data["reef"]["hp"] > 0.8 * ded, hp_model
        assert data["reef"]["be"] < 0.2 * data["dedicated_be"], hp_model
        # Orion: HP strong AND BE progresses (best of both worlds).
        assert data["orion"]["hp"] > 0.7 * ded, hp_model
        assert data["orion"]["be"] > data["reef"]["be"], hp_model
        # MPS hurts the HP job more than Orion does.
        assert data["orion"]["hp"] >= data["mps"]["hp"] * 0.95, hp_model
