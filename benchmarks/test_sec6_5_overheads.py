"""§6.5: overheads of kernel-launch interception and profiling.

Paper reading: running a job through Orion's interception wrappers on a
dedicated GPU costs <1% versus native submission; offline profiling is
out of the execution path entirely.
"""

import time

from bench_common import run_cell, save_result

from repro.experiments.config import ExperimentConfig, JobSpec
from repro.experiments.runner import get_profile
from repro.experiments.tables import format_table
from repro.gpu.specs import V100_16GB
from repro.workloads.models import MODEL_NAMES


def run_solo(model, kind, backend):
    job = JobSpec(model=model, kind=kind, high_priority=True,
                  arrivals="closed")
    config = ExperimentConfig(jobs=[job], backend=backend, duration=1.5)
    result = run_cell(config)
    records = result.hp_job.stats.records
    assert records, f"{model}:{kind} produced no records under {backend}"
    spans = [r.service_time for r in records]
    return sum(spans) / len(spans)


def reproduce_overheads():
    payload = {}
    for model in MODEL_NAMES:
        for kind in ("inference", "training"):
            native = run_solo(model, kind, "ideal")
            orion = run_solo(model, kind, "orion")
            payload[f"{model}:{kind}"] = {
                "native_s": native,
                "orion_s": orion,
                "overhead": orion / native - 1.0,
            }
    # Profiling cost: wall-clock time to profile one model offline.
    start = time.perf_counter()
    get_profile("resnet50", "inference", V100_16GB)
    payload["profiling_wall_seconds"] = time.perf_counter() - start
    return payload


def test_sec6_5(benchmark):
    payload = benchmark.pedantic(reproduce_overheads, rounds=1, iterations=1)
    rows = [[key, f"{d['native_s']*1e3:.2f}ms", f"{d['orion_s']*1e3:.2f}ms",
             f"{d['overhead']*100:+.2f}%"]
            for key, d in payload.items() if isinstance(d, dict)]
    print()
    print(format_table(["Workload", "Native", "Via Orion", "Overhead"], rows))
    save_result("sec6_5", payload)
    for key, data in payload.items():
        if not isinstance(data, dict):
            continue
        # Paper: <1%.  Allow 3% headroom for scheduling-quantum noise.
        assert data["overhead"] < 0.03, key
