"""Figure 12: inference-inference collocation, Poisson arrivals.

Both jobs issue Poisson arrivals at the Table 3 rates.  Paper reading:
Orion keeps HP p99 within 15% of ideal while REEF is 1.25x and
Streams/MPS 1.89x ideal on average; aggregate throughput up to 7.3x a
dedicated GPU serving only the HP stream.
"""

from bench_common import INFERENCE_MODELS, save_result
from inf_inf_sweep import assert_inf_inf_shape, inf_inf_sweep, print_inf_inf

# Pair every HP model with two representative partners to keep the
# sweep minutes-scale (documented in EXPERIMENTS.md).
BE_PARTNERS = ("resnet50", "mobilenet_v2")


def test_fig12(benchmark):
    sweep = benchmark.pedantic(
        lambda: inf_inf_sweep(INFERENCE_MODELS, BE_PARTNERS, "poisson"),
        rounds=1, iterations=1,
    )
    print_inf_inf(sweep, "Figure 12: inf-inf (Poisson)")
    save_result("fig12", sweep)
    assert_inf_inf_shape(sweep)
