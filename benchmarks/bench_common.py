"""Shared infrastructure for the figure/table reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs
the relevant collocation experiments on the simulator, prints the same
rows/series the paper reports (plus the paper's own numbers where they
are quoted), and records the headline measurement via pytest-benchmark.

Absolute values are not expected to match the authors' testbed — the
substrate here is a calibrated simulator — but the *shape* (who wins,
by roughly what factor) is asserted where the paper makes a claim.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict

from repro.experiments.runner import ExperimentResult
from repro.experiments.scenario import Scenario, run as run_scenario

__all__ = [
    "run_cell",
    "save_result",
    "INFERENCE_MODELS",
    "TRAINING_MODELS",
    "VISION",
    "BACKENDS_MAIN",
    "DURATION",
    "WARMUP",
    "ms",
]

# Evaluation matrix used by the figure benchmarks.  The paper sweeps
# all 5x5 model pairs; to keep each benchmark minutes-scale we pair
# every high-priority model with two representative best-effort models
# (one memory-leaning vision model, one compute-leaning NLP model) and
# note the reduction in EXPERIMENTS.md.
INFERENCE_MODELS = ("resnet50", "mobilenet_v2", "resnet101", "bert", "transformer")
VISION = ("resnet50", "mobilenet_v2", "resnet101")
TRAINING_MODELS = ("mobilenet_v2", "bert")
BACKENDS_MAIN = ("ideal", "mps", "reef", "orion")

DURATION = 2.5
WARMUP = 0.4

_RESULTS_DIR = Path(os.environ.get("REPRO_RESULTS_DIR",
                                   Path(__file__).resolve().parent / "results"))


def run_cell(config) -> ExperimentResult:
    """Run one experiment cell with the benchmark-wide warmup."""
    config.warmup = WARMUP
    return run_scenario(Scenario(kind="experiment", experiment=config)).result


def ms(seconds: float) -> float:
    return seconds * 1e3


def save_result(name: str, payload: Dict) -> Path:
    """Persist a benchmark's rows under benchmarks/results/<name>.json."""
    _RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = _RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=1, default=float))
    return path
