"""Fleet failover: a 16-GPU fleet survives two mid-run GPU crashes.

One seeded run of the fleet-resilience scenario with a deterministic
plan crashing 2 of 16 GPUs mid-run, plus a byte-identity replay:

* every job orphaned by the crashes is re-admitted (>= 90% of affected
  jobs, the fleet's failover contract) and lands on a healthy GPU —
  no routing decision ever targets a crashed GPU after its crash;
* fleet-wide high-priority goodput degrades gracefully: losing 2/16
  GPUs must not collapse the post-crash serving rate;
* the availability report's fault and failover counts exactly match
  the injected plan;
* the replay's canonical ScenarioResult JSON — fault timing, routing
  digest, ledger, everything but wall-clock — is byte-identical.
"""

from bench_common import save_result

from repro.experiments.scenario import Scenario, run
from repro.faults import FaultPlan, GpuCrash

NUM_GPUS = 16
DURATION = 0.15
SEED = 7
CRASH_TIMES = {3: DURATION * 0.4, 11: DURATION * 0.5}
PLAN = FaultPlan(tuple(GpuCrash(gpu, at_time=at)
                       for gpu, at in sorted(CRASH_TIMES.items())))
PARAMS = dict(seed=SEED, duration=DURATION, num_gpus=NUM_GPUS, plan=PLAN,
              hp_load=0.3, be_load=0.5)


def run_fleet_failover():
    first = run(Scenario(kind="fleet", params=dict(PARAMS)))
    replay = run(Scenario(kind="fleet", params=dict(PARAMS)))
    return first, replay


def test_fleet_failover(benchmark):
    first, replay = benchmark.pedantic(run_fleet_failover,
                                       rounds=1, iterations=1)
    result = first.result
    report = result.report
    fo = report["failover"]

    # --- report counts exactly match the injected plan ----------------
    assert report["faults"] == {"crashes": 2, "degrades": 0,
                                "recoveries": 0}
    for gpu, at in CRASH_TIMES.items():
        entry = report["gpus"][f"gpu{gpu}"]
        assert entry["state"] == "down"
        assert entry["crashes"] == 1
        # Uptime fraction is exactly the pre-crash share of the horizon.
        assert abs(entry["uptime_fraction"] - at / DURATION) < 1e-6
    assert sum(g["crashes"] for g in report["gpus"].values()) == 2
    assert sum(g["recoveries"] for g in report["gpus"].values()) == 0

    # --- >= 90% of affected jobs re-admitted --------------------------
    assert fo["orphaned"] > 0, "crashes orphaned no jobs — load too low"
    readmit_rate = fo["failovers"] / fo["orphaned"]
    print(f"\norphaned {fo['orphaned']}  re-admitted {fo['failovers']} "
          f"({readmit_rate:.0%})  completed after failover "
          f"{fo['readmitted']}  gave up {fo['retry_exhausted']}")
    assert readmit_rate >= 0.9, \
        f"only {readmit_rate:.0%} of orphaned jobs were re-admitted"
    assert fo["readmitted"] >= 0.9 * fo["failovers"], \
        "re-admitted jobs did not complete on their new GPUs"

    # --- failovers land on healthy GPUs only --------------------------
    for t, _seq, gpu in result.decisions:
        crash_at = CRASH_TIMES.get(gpu)
        assert crash_at is None or t <= crash_at + 1e-12, \
            f"job routed to crashed gpu{gpu} at t={t}"

    # --- HP goodput degrades gracefully -------------------------------
    first_crash = min(CRASH_TIMES.values())
    last_crash = max(CRASH_TIMES.values())
    before = result.goodput("hp", first_crash)
    after = result.goodput("hp", DURATION, after=last_crash)
    print(f"hp goodput: {before:.0f} req/s before crashes, "
          f"{after:.0f} req/s after (14/16 GPUs left)")
    assert after > 0, "HP goodput collapsed to zero after the crashes"
    assert after >= 0.6 * before, \
        f"HP goodput fell {1 - after / before:.0%} after losing 2/16 GPUs"

    # --- determinism: byte-identical canonical JSON -------------------
    assert first.to_json() == replay.to_json(), \
        "same-seed fleet runs diverged (canonical JSON mismatch)"

    save_result("fleet_failover", {
        "num_gpus": NUM_GPUS,
        "orphaned": fo["orphaned"],
        "failovers": fo["failovers"],
        "readmitted": fo["readmitted"],
        "hp_goodput_before": before,
        "hp_goodput_after": after,
        "fleet_uptime_fraction": report["fleet_uptime_fraction"],
        "routing_digest": result.routing["digest"],
        "report": report,
    })
