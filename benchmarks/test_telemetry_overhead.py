"""Telemetry overhead guard.

The tracer is off by default and every instrumentation site guards on
``tracer.enabled`` (one attribute load).  This benchmark holds the
subsystem to that promise:

* the §6.5 interception overhead, re-measured with the instrumented
  stack and telemetry disabled, stays within 2 points of the sec6_5
  bound (<3% there, <5% here);
* enabling the tracer changes *nothing* simulated — traced and
  untraced same-seed runs report identical service times, so the
  disabled tracer adds exactly 0% to any simulated measurement;
* a disabled tracer allocates no per-event objects (tracemalloc).
"""

import gc
import tracemalloc

from bench_common import run_cell, save_result

from repro.experiments.config import ExperimentConfig, JobSpec
from repro.experiments.tables import format_table
from repro.telemetry.tracer import NULL_TRACER, TelemetryConfig

WORKLOADS = (("resnet50", "inference"), ("mobilenet_v2", "training"))


def run_solo(model, kind, backend, tracing=False):
    job = JobSpec(model=model, kind=kind, high_priority=True,
                  arrivals="closed")
    config = ExperimentConfig(jobs=[job], backend=backend, duration=1.5,
                              telemetry=TelemetryConfig(tracing=tracing))
    result = run_cell(config)
    records = result.hp_job.stats.records
    assert records, f"{model}:{kind} produced no records under {backend}"
    spans = [r.service_time for r in records]
    return sum(spans) / len(spans)


def reproduce_telemetry_overhead():
    payload = {}
    for model, kind in WORKLOADS:
        native = run_solo(model, kind, "ideal")
        orion = run_solo(model, kind, "orion")
        traced = run_solo(model, kind, "orion", tracing=True)
        payload[f"{model}:{kind}"] = {
            "native_s": native,
            "orion_s": orion,
            "orion_traced_s": traced,
            "overhead": orion / native - 1.0,
            "tracer_delta": traced / orion - 1.0,
        }
    return payload


def test_telemetry_overhead(benchmark):
    payload = benchmark.pedantic(reproduce_telemetry_overhead,
                                 rounds=1, iterations=1)
    rows = [[key, f"{d['native_s']*1e3:.2f}ms", f"{d['orion_s']*1e3:.2f}ms",
             f"{d['overhead']*100:+.2f}%", f"{d['tracer_delta']*100:+.2f}%"]
            for key, d in payload.items()]
    print()
    print(format_table(
        ["Workload", "Native", "Via Orion", "Overhead", "Tracer delta"],
        rows))
    save_result("telemetry_overhead", payload)
    for key, data in payload.items():
        # sec6_5 allows 3%; the telemetry satellite allows 2 more points.
        assert data["overhead"] < 0.05, key
        # A tracer records simulated time but never spends it: enabling
        # tracing must leave every simulated measurement bit-identical.
        assert data["orion_traced_s"] == data["orion_s"], key


def test_disabled_tracer_allocates_no_event_objects():
    """1000 unguarded calls to every NullTracer record method allocate
    nothing; the guarded ``instant`` pattern never even dispatches."""
    t = NULL_TRACER
    iterations = tuple(range(1000))
    # Warm CPython's method/frame caches outside the measured window.
    t.op_submit("c", 0, "k", True)
    t.counter("device", "util", 0.0)
    gc.collect()
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        for i in iterations:
            t.op_submit("c", i, "k", True)
            t.op_enqueue("c", i, 1)
            t.op_schedule("c", i)
            t.op_dispatch("c", i, "s")
            t.op_complete("c", i, "s", 0.001, True)
            t.counter("device", "util", 0.5)
            t.request("c", 0.0, 0.0)
            t.sim_event("cb")
            if t.enabled:  # the hot-path pattern for kwarg-taking sites
                t.instant("scheduler", "be_block", client="c", reason="x")
        after, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    # 9000 record calls: any per-event object would cost tens of KB.
    # Allow a whisper of interpreter noise, far below one object/call.
    assert after - before < 1024, f"disabled tracer allocated {after - before}B"
