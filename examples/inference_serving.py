#!/usr/bin/env python3
"""Inference serving scenario: a safety-critical detector shares a GPU
with offline batch inference.

Mirrors the paper's inf-inf use case (§6.2.3): the high-priority job
replays an Apollo-style autonomous-driving trace (bursty camera
frames), the best-effort job runs offline ResNet-50 classification at a
uniform rate.  We compare every sharing technique's tail latency.

Run:  python examples/inference_serving.py
"""

from repro.experiments import Scenario, inf_inf_config, run_scenario
from repro.experiments.tables import format_table

BACKENDS = ("ideal", "temporal", "streams", "mps", "reef", "orion")


def main() -> None:
    rows = []
    reference_p99 = None
    for backend in BACKENDS:
        config = inf_inf_config("resnet101", "resnet50", backend,
                                arrivals="apollo", duration=3.0)
        result = run_scenario(
            Scenario(kind="experiment", experiment=config)).result
        hp = result.hp_job
        be = result.be_jobs()[0]
        if backend == "ideal":
            reference_p99 = hp.latency.p99
        rows.append([
            backend,
            f"{hp.latency.p50*1e3:.2f}",
            f"{hp.latency.p99*1e3:.2f}",
            f"{hp.latency.p99/reference_p99:.2f}x",
            f"{hp.throughput:.1f}",
            f"{be.throughput:.1f}",
        ])
        print(f"[{backend}] done")
    print()
    print("HP = ResNet-101 detector (Apollo trace), "
          "BE = offline ResNet-50 (uniform 80 rps)")
    print(format_table(
        ["backend", "HP p50 (ms)", "HP p99 (ms)", "p99 vs ideal",
         "HP rps", "BE rps"],
        rows,
    ))
    print()
    print("Reading: temporal sharing suffers head-of-line blocking; "
          "Streams/MPS lack priority and interference awareness; Orion "
          "keeps the detector's tail near the dedicated-GPU latency "
          "while the offline job rides along.")


if __name__ == "__main__":
    main()
