"""Continuous-batching LLM serving under GPU sharing (paper §7).

What this shows:

1. A continuous-batching serving engine (requests join at prefill
   boundaries, finished sequences retire every decode step) runs as
   the high-priority client, with its KV cache allocated block by
   block through ``cudaMalloc``.
2. A best-effort training job is collocated with it under three
   policies: Orion's interference-aware scheduler (with phase hints
   that hold best-effort work off the compute-bound prefill),
   temporal time slicing, and plain CUDA streams.
3. We print TTFT, per-output-token latency (TPOT), decode token
   goodput, and how much best-effort training rode along — the §7
   claim is that Orion sustains near-solo decode goodput where
   temporal sharing collapses it, without blowing the TTFT SLO.

Everything is driven through the unified Scenario API:
``Scenario(kind="llm", params={...})`` — the same description the
CLI (``python -m repro llm``), the sweep engine, and the serve
daemon accept.

Run:  python examples/llm_serving.py
"""

from repro.experiments import Scenario, run_scenario
from repro.experiments.tables import format_table

DURATION = 0.4
WARMUP = 0.05
BACKENDS = ("orion", "temporal", "streams")


def serve(backend: str):
    return run_scenario(Scenario(kind="llm", params=dict(
        seed=0, duration=DURATION, warmup=WARMUP, backend=backend,
        request_rate=80.0, max_batch=8, be_clients=1,
    ))).result


def main() -> None:
    results = {}
    for backend in BACKENDS:
        print(f"running {backend} ...")
        results[backend] = serve(backend)

    rows = []
    for backend, r in results.items():
        slo = r.ttft_slo
        ttft = f"{r.ttft.p95*1e3:.1f}" if r.ttft.count else "-"
        verdict = ("OK" if r.ttft.count and r.ttft.p95 <= slo else
                   "MISS" if r.ttft.count else "-")
        tpot = f"{r.tpot.p50*1e3:.2f}" if r.tpot.count else "-"
        rows.append([
            backend,
            f"{r.requests_completed}/{r.requests_arrived}",
            ttft, verdict, tpot,
            f"{r.decode_tokens_per_sec:.1f}",
            str(r.be_iterations(WARMUP)),
        ])
    print()
    print(format_table(
        ["backend", "served", "ttft p95 (ms)", "slo", "tpot p50 (ms)",
         "decode tok/s", "BE iters"], rows))
    print(f"\nttft slo: {results['orion'].ttft_slo*1e3:.1f} ms "
          f"(3x the solo prefill latency of the largest admissible prompt)")

    orion, temporal = results["orion"], results["temporal"]
    gain = (orion.decode_tokens_per_sec
            / max(temporal.decode_tokens_per_sec, 1e-9))
    print(f"orion decode goodput is {gain:.1f}x temporal sharing's, "
          f"with {orion.backend_stats['prefill_deferrals']} best-effort "
          f"kernels held off prefill steps.")


if __name__ == "__main__":
    main()
