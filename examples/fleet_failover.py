#!/usr/bin/env python3
"""Fleet failover: crash and degrade GPUs in a multi-GPU fleet and
watch the router re-admit the orphaned work.

Run:  python examples/fleet_failover.py

What happens:

1. Eight simulated GPUs each run their own Orion backend; one
   high-priority tenant and two best-effort tenants share the fleet
   through a router that scores GPUs by queue depth, predicted
   interference (the placement module's pairwise signature score), and
   a windowed health score.
2. A deterministic fault plan crashes one GPU and degrades another
   (3x slowdown) mid-run.  The crash tears every resident worker down
   through the normal deregistration path; its queued and in-flight
   jobs are re-admitted on healthy GPUs with bounded retries and
   exponential backoff.  The degraded GPU is never *told* it is slow —
   the health tracker observes its inflated service times and routes
   around it.
3. The crashed GPU recovers late in the run (fresh device, fresh
   backend, fresh workers) and rejoins the routable set.
4. The run prints the fleet availability report — per-GPU uptime
   fractions, failover and re-admission counts, mean time to recover —
   plus the routing digest that makes same-seed runs byte-comparable.
"""

from repro.experiments.scenario import Scenario, run


def main() -> None:
    duration = 0.15
    scenario = Scenario(kind="fleet", params=dict(
        seed=0, duration=duration, num_gpus=8,
        crashes=1, degrades=1, slowdown=3.0,
        recover_after=duration * 0.3,
    ))
    result = run(scenario).result
    report = result.report

    print("--- fault plan ---")
    for line in result.plan.describe().splitlines():
        print(f"  {line}")

    print("\n--- fleet availability ---")
    print(f"fleet uptime: {report['fleet_uptime_fraction']:.4f}   "
          f"({result.num_gpus} GPUs, backend {result.backend})")
    for name, gpu in report["gpus"].items():
        print(f"  {name}: {gpu['state']:<9} uptime {gpu['uptime_fraction']:.3f}  "
              f"health {gpu['health']:.3f}  served {gpu['jobs_completed']}")

    fo = report["failover"]
    rate = fo["readmission_success_rate"]
    print(f"\nfailover: {fo['orphaned']} jobs orphaned, "
          f"{fo['failovers']} re-admitted, {fo['readmitted']} completed "
          f"elsewhere, {fo['retry_exhausted']} gave up "
          f"(success rate {'n/a' if rate is None else f'{rate:.0%}'})")
    mttr = report["mean_time_to_recover"]
    if mttr is not None:
        print(f"mean time to recover: {mttr*1e3:.2f} ms")
    if result.hp_latency.count:
        print(f"hp latency: p50 {result.hp_latency.p50*1e3:.2f} ms   "
              f"p99 {result.hp_latency.p99*1e3:.2f} ms   "
              f"({result.hp_latency.count} requests)")
    print(f"routing: {result.routing['decisions']} decisions, "
          f"digest {result.routing['digest'][:16]}…")


if __name__ == "__main__":
    main()
