#!/usr/bin/env python3
"""Serve daemon: run the scheduler as an always-on service and drive it
through the submit/status/cancel API.

Run:  python examples/serve_daemon.py

What happens:

1. A :class:`ServeServer` starts in-process on an ephemeral TCP port —
   exactly what ``python -m repro serve`` does, minus the signal
   handlers.  One worker thread executes jobs through the same
   ``run(scenario)`` entry point the CLI and sweep engine use.
2. A :class:`ServeClient` discovers the registry catalog with the
   ``scenarios`` verb, submits a fault-injection job, polls its
   ``QUEUED -> DISPATCHED -> RUNNING -> COMPLETED`` lifecycle, and
   fetches the canonical result — byte-identical to a direct
   ``run(scenario)`` at the same seed (the determinism contract).
3. A long job is submitted and canceled mid-run: the engine's abort
   hook stops the simulation within ~1024 events and the job lands in
   CANCELED.
4. Telemetry snapshots stream to the client, then the daemon drains
   gracefully and prints its job history.
"""

import time

from repro.experiments.registry import make_scenario
from repro.experiments.scenario import run
from repro.serve import ServeClient, ServeConfig, ServeServer


def main() -> None:
    server = ServeServer(ServeConfig(address="tcp:127.0.0.1:0", workers=1,
                                     max_pending=8, telemetry_interval=0.2))
    address = server.start()
    print(f"daemon listening on {address}\n")

    with ServeClient(address) as client:
        catalog = client.scenarios()
        print(f"catalog: {', '.join(sorted(catalog))}\n")

        # -- submit, watch the lifecycle, verify determinism ------------
        job = client.submit(name="faults", seed=3, duration=0.05)
        print(f"submitted {job}")
        final = client.wait(job, timeout=120)
        transitions = " -> ".join(state for state, _ in final["transitions"])
        print(f"lifecycle: {transitions}")
        daemon_json = client.result_json(job)
        direct_json = run(make_scenario("faults", seed=3,
                                        duration=0.05)).to_json()
        print(f"byte-identical to direct run: {daemon_json == direct_json}\n")

        # -- cancel a running job ---------------------------------------
        slow = client.submit(name="overload", duration=5.0)
        while client.status(slow)["state"] != "RUNNING":
            time.sleep(0.01)
        client.cancel(slow)
        final = client.wait(slow, timeout=30)
        print(f"{slow} after cancel: {final['state']} ({final['error']})\n")

        # -- streamed telemetry snapshots -------------------------------
        for snapshot in client.telemetry_stream(follow=3, interval=0.05):
            print(f"telemetry seq={snapshot['seq']} "
                  f"queue={snapshot['queue_depth']} "
                  f"counters={snapshot['counters']}")

        history = client.history()
        print(f"\nhistory: {[(j['id'], j['state']) for j in history]}")
        client.shutdown()

    server._stopped.wait(30)
    print("daemon drained and stopped")


if __name__ == "__main__":
    main()
