#!/usr/bin/env python3
"""Fault tolerance: kill collocated clients mid-run and watch the
scheduler self-heal.

Run:  python examples/fault_tolerance.py

What happens:

1. One high-priority inference client and two best-effort training
   clients share a simulated V100 under the Orion scheduler, each
   running under a restart supervisor.
2. A deterministic fault plan kills a best-effort client mid-run: its
   software queue is drained with errored signals, its stream destroyed,
   its memory freed, and the round-robin order repaired — while the
   high-priority job keeps serving, unaffected.
3. A second run kills the *high-priority* client instead: the priority
   slot is vacated, and the supervisor's replacement context re-acquires
   the high-priority stream and resumes serving within one backoff.
4. Both runs print the error/availability ledger — per-client error
   counts, requests served vs failed, restarts, and time-to-recover.
   The ledger serializes canonically: the same seeded plan always
   yields byte-identical JSON.
"""

from repro.experiments.scenario import Scenario, run
from repro.faults import FaultPlan, KillClient


def run_fault_scenario(**params):
    return run(Scenario(kind="faults", params=params)).result


DURATION = 0.2
SEED = 0


def show(title: str, result) -> None:
    print(f"--- {title} ---")
    for line in result.plan.describe().splitlines():
        print(f"  {line}")
    print(result.ledger.format_table())
    if result.hp_latency.count:
        print(f"hp latency: p50 {result.hp_latency.p50*1e3:.2f} ms   "
              f"p99 {result.hp_latency.p99*1e3:.2f} ms   "
              f"({result.hp_latency.count} requests)")
    print(f"scheduler: {result.backend_stats}")
    print()


def main() -> None:
    print("running: best-effort client killed mid-run ...")
    be_kill = run_fault_scenario(
        seed=SEED, duration=DURATION,
        plan=FaultPlan((KillClient("be-0", at_time=DURATION * 0.4),)),
    )
    print("running: high-priority client killed mid-run ...")
    hp_kill = run_fault_scenario(
        seed=SEED, duration=DURATION,
        plan=FaultPlan((KillClient("hp", at_time=DURATION * 0.4),)),
    )
    print("running: fault-free reference ...")
    clean = run_fault_scenario(seed=SEED, duration=DURATION, plan=FaultPlan(()))
    print()

    show("kill best-effort client", be_kill)
    show("kill high-priority client", hp_kill)
    show("fault-free reference", clean)

    ratio = be_kill.hp_latency.p99 / clean.hp_latency.p99
    print(f"hp p99 with BE kill vs fault-free: {ratio:.2f}x "
          "(a dying best-effort job does not disturb the HP client)")
    hp_entry = hp_kill.ledger.client("hp")
    print(f"hp recovery after kill: {hp_entry.restarts} restart(s), "
          f"time-to-recover {hp_entry.recovery_times} s")
    same = run_fault_scenario(
        seed=SEED, duration=DURATION,
        plan=FaultPlan((KillClient("be-0", at_time=DURATION * 0.4),)),
    )
    print("ledger determinism (same seed, same plan): "
          f"{be_kill.ledger.to_json() == same.ledger.to_json()}")


if __name__ == "__main__":
    main()
