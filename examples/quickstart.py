#!/usr/bin/env python3
"""Quickstart: share one simulated V100 between a latency-critical
inference job and a best-effort training job with Orion.

Run:  python examples/quickstart.py

What happens:

1. The model zoo lowers ResNet-50 inference (batch 4) and MobileNetV2
   training (batch 64) to kernel plans.
2. The offline profiler characterizes every kernel (duration,
   compute/memory class, SM footprint) and the solo request latency —
   the paper's §5.2 phase.
3. Both jobs run for three simulated seconds under the Orion scheduler
   on one GPU, then on dedicated GPUs (the Ideal reference).
4. We print p99 latency, throughput, and the cost saving from
   collocating instead of renting a second GPU.
"""

from repro.experiments import (
    ExperimentConfig,
    JobSpec,
    Scenario,
    run_scenario,
    solo_throughput,
)
from repro.metrics.cost import cost_savings


def run_experiment(config):
    return run_scenario(
        Scenario(kind="experiment", experiment=config)).result


def main() -> None:
    hp = JobSpec(model="resnet50", kind="inference", high_priority=True,
                 arrivals="poisson", rps=15)
    be = JobSpec(model="mobilenet_v2", kind="training")

    print("running Orion collocation (1 GPU) ...")
    orion = run_experiment(
        ExperimentConfig(jobs=[hp, be], backend="orion", duration=3.0)
    )
    print("running Ideal baseline (2 dedicated GPUs) ...")
    ideal = run_experiment(
        ExperimentConfig(jobs=[hp, be], backend="ideal", duration=3.0)
    )

    orion_hp, ideal_hp = orion.hp_job, ideal.hp_job
    orion_be = orion.be_jobs()[0]
    dedicated_be = solo_throughput("mobilenet_v2", "training")

    print()
    print(f"high-priority inference p99:  "
          f"orion {orion_hp.latency.p99*1e3:6.2f} ms   "
          f"ideal {ideal_hp.latency.p99*1e3:6.2f} ms   "
          f"({orion_hp.latency.p99/ideal_hp.latency.p99:.2f}x)")
    print(f"high-priority throughput:     "
          f"orion {orion_hp.throughput:6.1f} rps   "
          f"ideal {ideal_hp.throughput:6.1f} rps")
    print(f"best-effort training:         "
          f"orion {orion_be.throughput:6.2f} it/s  "
          f"dedicated {dedicated_be:6.2f} it/s")
    savings = cost_savings(dedicated_be, orion_be.throughput)
    print(f"cost savings vs 2 GPUs:       {savings:.2f}x")
    print()
    print(f"scheduler stats: {orion.backend_stats}")


if __name__ == "__main__":
    main()
