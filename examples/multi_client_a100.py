#!/usr/bin/env python3
"""Five inference tenants on one A100-40GB (paper §6.3, Figure 13).

One high-priority model serves Poisson traffic next to four best-effort
tenants serving the other zoo models.  Shows Orion scaling to many
best-effort clients (round-robin admission) and generalizing to a
different GPU generation via the device catalog.

Run:  python examples/multi_client_a100.py [hp_model]
"""

import sys

from repro.experiments import Scenario, multi_client_config, run_scenario
from repro.experiments.tables import format_table
from repro.workloads.models import MODEL_NAMES


def main() -> None:
    hp_model = sys.argv[1] if len(sys.argv) > 1 else "resnet50"
    if hp_model not in MODEL_NAMES:
        raise SystemExit(f"unknown model {hp_model!r}; pick from {MODEL_NAMES}")
    be_models = [m for m in MODEL_NAMES if m != hp_model]

    results = {}
    for backend in ("ideal", "mps", "reef", "orion"):
        config = multi_client_config(hp_model, be_models, backend,
                                     device="A100-40GB", duration=3.0)
        results[backend] = run_scenario(
            Scenario(kind="experiment", experiment=config)).result
        print(f"[{backend}] done")

    ideal_p99 = results["ideal"].hp_job.latency.p99
    rows = []
    for backend, result in results.items():
        be_total = sum(j.throughput for j in result.be_jobs())
        rows.append([
            backend,
            f"{result.hp_job.latency.p99*1e3:.2f}",
            f"{result.hp_job.latency.p99/ideal_p99:.2f}x",
            f"{result.hp_job.throughput:.1f}",
            f"{be_total:.1f}",
        ])
    print()
    print(f"HP = {hp_model} + 4 best-effort tenants on A100-40GB (Poisson)")
    print(format_table(
        ["backend", "HP p99 (ms)", "vs ideal", "HP rps", "BE rps (total)"],
        rows,
    ))


if __name__ == "__main__":
    main()
