#!/usr/bin/env python3
"""Training collocation with SM_THRESHOLD autotuning.

Mirrors the paper's train-train use case (§6.2.2): a high-priority
ResNet-50 training job shares a GPU with a best-effort MobileNetV2
trainer.  For throughput-oriented high-priority jobs, Orion raises
SM_THRESHOLD via binary search while monitoring the high-priority
throughput (§5.1.1).  This example runs the tuner live and prints the
search trajectory, then compares against Tick-Tock and REEF.

Run:  python examples/training_collocation.py
"""

from repro.core import OrionBackend, OrionConfig, SmThresholdTuner, TunerConfig
from repro.experiments import (
    Scenario,
    run_scenario,
    solo_throughput,
    train_train_config,
)
from repro.experiments.runner import get_profile
from repro.experiments.tables import format_table
from repro.gpu.device import GpuDevice
from repro.gpu.specs import V100_16GB
from repro.profiler.profiles import ProfileStore
from repro.runtime.client import ClientContext
from repro.runtime.host import HostGil, HostThread
from repro.sim.engine import Simulator
from repro.workloads.clients import TrainingClient
from repro.workloads.models import get_plan

HP_MODEL, BE_MODEL = "resnet50", "mobilenet_v2"


def run_with_tuner(duration: float = 6.0):
    """Hand-built experiment so we can attach the live tuner."""
    sim = Simulator()
    device = GpuDevice(sim, V100_16GB)
    store = ProfileStore()
    hp_profile = get_profile(HP_MODEL, "training", V100_16GB)
    store.add(hp_profile)
    store.add(get_profile(BE_MODEL, "training", V100_16GB))

    backend = OrionBackend(
        sim, device, store,
        OrionConfig(hp_request_latency=hp_profile.request_latency),
    )
    gil = HostGil(sim)
    clients = []
    for model, high_priority in ((HP_MODEL, True), (BE_MODEL, False)):
        ctx = ClientContext(backend, f"{model}-train", HostThread(sim, gil=gil),
                            high_priority=high_priority, kind="training")
        client = TrainingClient(sim, ctx, get_plan(model, "training"),
                                V100_16GB, f"{model}-train", horizon=duration)
        clients.append(client)

    dedicated_hp = solo_throughput(HP_MODEL, "training")
    tuner = SmThresholdTuner(sim, backend, dedicated_hp,
                             config=TunerConfig(tolerance=0.2, window=0.75))
    backend.start()
    for client in clients:
        client.start()
    tuner.start()
    sim.run(until=duration)
    return clients, tuner, dedicated_hp


def main() -> None:
    print("running Orion with live SM_THRESHOLD binary search ...")
    (hp_client, be_client), tuner, dedicated_hp = run_with_tuner()

    print()
    print("tuner trajectory (binary search over SM_THRESHOLD):")
    print(format_table(
        ["SM_THRESHOLD", "HP it/s in window", "accepted"],
        [[step.threshold, f"{step.hp_throughput:.2f}", step.accepted]
         for step in tuner.history],
    ))
    print(f"final SM_THRESHOLD: {tuner.final_threshold}")

    hp_iters = len(hp_client.stats.records)
    be_iters = len(be_client.stats.records)
    print()
    print(f"HP {HP_MODEL}: {hp_iters} iterations "
          f"(dedicated would do ~{dedicated_hp*6:.0f})")
    print(f"BE {BE_MODEL}: {be_iters} iterations harvested from spare capacity")

    print()
    print("reference backends (fixed configs):")
    rows = []
    for backend, orion_kwargs in (("ticktock", {}), ("reef", {}),
                                  ("orion", {"sm_threshold": 160})):
        config = train_train_config(HP_MODEL, BE_MODEL, backend,
                                    duration=4.0, orion=orion_kwargs)
        result = run_scenario(
            Scenario(kind="experiment", experiment=config)).result
        rows.append([backend, f"{result.hp_job.throughput:.2f}",
                     f"{result.be_jobs()[0].throughput:.2f}"])
    print(format_table(["backend", "HP it/s", "BE it/s"], rows))


if __name__ == "__main__":
    main()
