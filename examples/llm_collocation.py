#!/usr/bin/env python3
"""§7 extension: collocating LLM token generation with compute-bound work.

The paper's discussion section argues that LLM decode is memory-bound
(it streams the full weights per token) and therefore a good partner
for compute-intensive jobs under Orion's resource-aware policy.  This
example serves a small LLM as the high-priority job while a best-effort
BERT training job harvests the idle compute throughput.

Run:  python examples/llm_collocation.py
"""

from repro.core import OrionBackend, OrionConfig
from repro.experiments.runner import get_profile
from repro.experiments.tables import format_table
from repro.gpu.device import GpuDevice
from repro.gpu.specs import V100_16GB
from repro.metrics.latency import summarize_latencies
from repro.metrics.throughput import throughput
from repro.profiler.nsight import profile_plan
from repro.profiler.profiles import ProfileStore
from repro.runtime.client import ClientContext
from repro.runtime.direct import DedicatedBackend
from repro.runtime.host import HostGil, HostThread
from repro.sim.engine import Simulator
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.clients import InferenceClient, TrainingClient
from repro.workloads.models.llm import LLM_SMALL, llm_generation_plan
from repro.workloads.registry import build_plan

import numpy as np

DURATION, WARMUP = 4.0, 0.5
LLM_RPS = 8.0
BE_MODEL = "bert"


def run(backend_name: str):
    sim = Simulator()
    llm_plan = llm_generation_plan(LLM_SMALL, batch=1, prompt_len=128,
                                   gen_tokens=16)
    if backend_name == "orion":
        device = GpuDevice(sim, V100_16GB)
        store = ProfileStore()
        llm_profile = profile_plan(llm_plan, V100_16GB)
        store.add(llm_profile)
        store.add(get_profile(BE_MODEL, "training", V100_16GB))
        backend = OrionBackend(
            sim, device, store,
            OrionConfig(hp_request_latency=llm_profile.request_latency),
        )
    else:
        backend = DedicatedBackend(sim, lambda: GpuDevice(sim, V100_16GB))
    gil = None if backend.process_per_client else HostGil(sim)

    llm_ctx = ClientContext(backend, "llm-serving", HostThread(sim, gil=gil),
                            high_priority=True, kind="inference")
    llm_client = InferenceClient(
        sim, llm_ctx, llm_plan, V100_16GB,
        PoissonArrivals(LLM_RPS, np.random.default_rng(0)),
        "llm-serving", horizon=DURATION,
    )
    be_ctx = ClientContext(backend, "bert-train", HostThread(sim, gil=gil),
                           kind="training")
    be_client = TrainingClient(sim, be_ctx, build_plan(BE_MODEL, "training"),
                               V100_16GB, "bert-train", horizon=DURATION)
    backend.start()
    llm_client.start()
    be_client.start()
    sim.run(until=DURATION)
    return llm_client, be_client


def main() -> None:
    rows = []
    for backend in ("ideal", "orion"):
        print(f"running {backend} ...")
        llm_client, be_client = run(backend)
        latency = summarize_latencies(llm_client.stats.records, after=WARMUP)
        tokens_per_s = latency.count * 16 / (DURATION - WARMUP)
        be_tput = throughput(be_client.stats.records, WARMUP, DURATION)
        rows.append([backend, f"{latency.p50*1e3:.1f}", f"{latency.p99*1e3:.1f}",
                     f"{tokens_per_s:.0f}", f"{be_tput:.2f}"])
    print()
    print("HP = LLM generation (128-token prompt, 16 new tokens, Poisson 8 rps)")
    print(format_table(
        ["backend", "p50 (ms)", "p99 (ms)", "tokens/s", "BERT it/s"],
        rows,
    ))
    print()
    print("Reading: decode kernels are memory-bound, so Orion schedules the "
          "compute-bound BERT training kernels opposite them; generation "
          "latency stays near dedicated while the trainer rides along — "
          "the collocation §7 of the paper proposes.")


if __name__ == "__main__":
    main()
