#!/usr/bin/env python3
"""Overload protection: drive the service past capacity, with and
without the adaptive SLO guard.

Run:  python examples/overload.py

What happens:

1. One high-priority inference client (30% of solo capacity) and two
   best-effort inference clients (200% of capacity between them) share
   a simulated V100 under the Orion scheduler — total offered load
   2.3x what the GPU can serve.
2. The scheduler starts with a deliberately *loose* DUR_THRESHOLD, so
   unprotected best-effort work inflates the high-priority p99 well
   past its SLO (the breach run).
3. A second run arms the protection stack: bounded best-effort
   software queues (backpressure), per-request deadlines that shed
   stale work at admission, and the adaptive SLO guard, which watches
   the rolling HP latency quantile and multiplicatively tightens
   DUR_THRESHOLD until the SLO holds — while best-effort goodput
   stays well above zero (served in the HP-idle gaps).
4. A third run swaps backpressure for load shedding ("reject"): full
   queues complete submissions immediately with the retryable
   QUEUE_FULL status instead of blocking the client.
5. Every run prints the ledger (served / failed / shed per client),
   queue telemetry, and the guard's action trace; identical seeds
   yield byte-identical ledgers.
"""

from repro.experiments.scenario import Scenario, run


def run_overload_scenario(**params):
    return run(Scenario(kind="overload", params=params)).result


DURATION = 1.2
WARMUP = 0.4
SEED = 0


def show(title: str, result) -> None:
    print(f"--- {title} ---")
    if result.hp_latency.count:
        print(f"hp latency: p50 {result.hp_latency.p50*1e3:.2f} ms   "
              f"p99 {result.hp_latency.p99*1e3:.2f} ms   "
              f"({result.hp_latency.count} requests)")
    print(f"be goodput: {result.be_goodput(DURATION, WARMUP):.1f} req/s   "
          f"shed: {result.total_shed()}")
    if result.guard_summary is not None:
        print(f"guard: {result.guard_summary}")
    for name, snap in result.queue_telemetry.items():
        print(f"  queue {name}: {snap}")
    print(result.ledger.format_table())
    print()


def main() -> None:
    print("running: dedicated reference (no best-effort load) ...")
    dedicated = run_overload_scenario(
        seed=SEED, duration=DURATION, warmup=WARMUP,
        be_clients=0, guard=False)
    print("running: overload, no protection ...")
    breach = run_overload_scenario(
        seed=SEED, duration=DURATION, warmup=WARMUP, guard=False)
    print("running: overload, guard + backpressure ...")
    guarded = run_overload_scenario(
        seed=SEED, duration=DURATION, warmup=WARMUP, guard=True)
    print("running: overload, guard + load shedding (reject) ...")
    shedding = run_overload_scenario(
        seed=SEED, duration=DURATION, warmup=WARMUP, guard=True,
        policy="reject", queue_depth=16)
    print()

    show("dedicated reference", dedicated)
    show("overload, unprotected", breach)
    show("overload, guard + backpressure", guarded)
    show("overload, guard + reject", shedding)

    ref = dedicated.hp_latency.p99
    print(f"hp p99 vs dedicated: unprotected "
          f"{breach.hp_latency.p99 / ref:.2f}x, guarded "
          f"{guarded.hp_latency.p99 / ref:.2f}x "
          "(the guard holds the SLO; best-effort work rides the gaps)")
    same = run_overload_scenario(
        seed=SEED, duration=DURATION, warmup=WARMUP, guard=True)
    print("ledger determinism (same seed, same knobs): "
          f"{guarded.ledger.to_json() == same.ledger.to_json()}")


if __name__ == "__main__":
    main()
