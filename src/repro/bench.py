"""Benchmark harness: time the reference scenarios against a pinned baseline.

``python -m repro bench`` runs the pinned reference scenarios (the
``*_ref`` entries of the scenario catalog), records simulator events
processed per wall-clock second, compares each against the committed
baseline in ``benchmarks/baselines/bench_baseline.json``, and writes
``BENCH_sim.json`` at the repo root.

Methodology (must match how baselines were captured, or the comparison
is meaningless):

* The offline-profile cache is warmed first, so the timed runs measure
  scheduling and simulation, not one-time profiling.
* Each scenario reports its best-of-``repeats`` ops/sec (best-of, not
  mean: scheduling noise only ever slows a run down).
* Same-seed simulation *results* are deterministic; only wall-clock
  varies between runs.

Baseline pinning rules are in DESIGN.md §6.4: the committed baseline is
only moved deliberately (``--update-baseline``) by a PR whose point is
performance, never silently.  ``--smoke`` is the CI mode: single
repeat, and the process exits nonzero when any scenario regresses more
than :data:`REGRESSION_TOLERANCE` below its baseline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

from repro.experiments.registry import make_scenario
from repro.experiments.scenario import run

__all__ = [
    "REFERENCE_SCENARIOS",
    "REGRESSION_TOLERANCE",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_OUT_PATH",
    "run_bench",
    "load_baseline",
]

#: The pinned references (see the scenario catalog): the overload
#: scenario is the headline number; the two collocation experiments
#: cover the Orion scheduler's other hot paths.
REFERENCE_SCENARIOS = ("overload_ref", "inf_train_ref", "train_train_ref")

#: CI fails when ops/sec drops more than this fraction below baseline.
REGRESSION_TOLERANCE = 0.25

_REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_BASELINE_PATH = _REPO_ROOT / "benchmarks" / "baselines" / \
    "bench_baseline.json"
DEFAULT_OUT_PATH = _REPO_ROOT / "BENCH_sim.json"


def load_baseline(path: Path) -> Optional[Dict]:
    if not Path(path).exists():
        return None
    with open(path) as fh:
        return json.load(fh)


def _warm_profile_cache() -> None:
    from repro.experiments.runner import get_profile
    from repro.gpu.specs import get_device

    spec = get_device("V100-16GB")
    for model, kind in (("mobilenet_v2", "inference"),
                        ("mobilenet_v2", "training"),
                        ("resnet50", "inference"),
                        ("resnet50", "training")):
        get_profile(model, kind, spec)


def _time_scenario(name: str, repeats: int) -> Dict:
    best = None
    for _ in range(repeats):
        result = run(make_scenario(name))
        sample = {
            "ops_per_sec": result.ops_per_sec,
            "wall_s": result.wall_time,
            "events": result.events_processed,
            "sim_time": result.sim_time,
        }
        if best is None or sample["ops_per_sec"] > best["ops_per_sec"]:
            best = sample
    return best


def run_bench(repeats: int = 3, smoke: bool = False,
              baseline_path: Optional[Path] = None,
              out_path: Optional[Path] = None,
              update_baseline: bool = False) -> Dict:
    """Time the reference scenarios; write the report; return it.

    The report's ``ok`` field is False when any scenario regressed more
    than :data:`REGRESSION_TOLERANCE` below the committed baseline —
    callers (the CLI, CI) turn that into a nonzero exit.
    """
    if smoke:
        repeats = 1
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    baseline_path = Path(baseline_path or DEFAULT_BASELINE_PATH)
    out_path = Path(out_path or DEFAULT_OUT_PATH)
    baseline = load_baseline(baseline_path)

    _warm_profile_cache()
    scenarios: Dict[str, Dict] = {}
    regressions = []
    for name in REFERENCE_SCENARIOS:
        entry = _time_scenario(name, repeats)
        base = ((baseline or {}).get("scenarios") or {}).get(name)
        if base:
            entry["baseline_ops_per_sec"] = base["ops_per_sec"]
            entry["speedup"] = entry["ops_per_sec"] / base["ops_per_sec"]
            if entry["speedup"] < 1.0 - REGRESSION_TOLERANCE:
                regressions.append(name)
        scenarios[name] = entry

    report = {
        "scenarios": scenarios,
        "baseline_path": str(baseline_path),
        "baseline_found": baseline is not None,
        "regression_tolerance": REGRESSION_TOLERANCE,
        "regressions": regressions,
        "ok": not regressions,
        "repeats": repeats,
        "smoke": smoke,
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")

    if update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        pinned = {
            "note": ("Pinned ops/sec baseline for `python -m repro bench`. "
                     "Update only deliberately via --update-baseline; "
                     "pinning rules in DESIGN.md §6.4."),
            "scenarios": {
                name: {"ops_per_sec": entry["ops_per_sec"],
                       "events": entry["events"],
                       "wall_s": entry["wall_s"]}
                for name, entry in scenarios.items()
            },
        }
        with open(baseline_path, "w") as fh:
            json.dump(pinned, fh, indent=1, sort_keys=True)
            fh.write("\n")
    return report
