"""Backend interface: where intercepted GPU operations go.

A *backend* is one GPU-sharing technique.  Clients never talk to
streams or devices directly; they register with a backend and launch
ops through a :class:`repro.runtime.client.ClientContext`.  The paper's
baselines (§6.1) and Orion itself are all backends over the same
simulated device, which is what makes the comparison apples-to-apples.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Union

from repro.gpu.device import GpuDevice
from repro.kernels.kernel import KernelOp, MemoryOp
from repro.sim.engine import Simulator
from repro.sim.process import Signal
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import NULL_TRACER

__all__ = ["Backend", "BackendOptions", "ClientInfo", "SoftwareQueue", "Op",
           "UnknownClientError"]

Op = Union[KernelOp, MemoryOp]


class UnknownClientError(KeyError):
    """An op or lifecycle call referenced a client id the backend does
    not know — never registered, or already deregistered."""

    def __init__(self, client_id: str, backend_name: str):
        super().__init__(client_id)
        self.client_id = client_id
        self.backend_name = backend_name

    def __str__(self) -> str:
        return (f"unknown or deregistered client {self.client_id!r} "
                f"on backend {self.backend_name!r}")


@dataclass
class BackendOptions:
    """Construction-time wiring for a backend.

    Collects what used to be one setter per feature
    (``set_telemetry``, ``set_overload_policy``, ...) into a single
    object passed at construction, so telemetry and policy references
    are in place *before* any client registers and captures them.  The
    setters remain as back-compat shims.

    ``overload_policies`` maps client ids to a bounded-queue overflow
    policy ("block" or "reject"); backends that support per-client
    policies apply the entry when that client registers.
    """

    tracer: Optional[object] = None
    metrics: Optional[MetricsRegistry] = None
    overload_policies: Dict[str, str] = field(default_factory=dict)


class ClientInfo:
    """Registration record for one client job."""

    __slots__ = ("client_id", "priority", "kind", "high_priority")

    def __init__(self, client_id: str, high_priority: bool, kind: str):
        if kind not in ("inference", "training"):
            raise ValueError(f"unknown job kind {kind!r}")
        self.client_id = client_id
        self.high_priority = high_priority
        self.kind = kind
        self.priority = 1 if high_priority else 0


class SoftwareQueue:
    """Per-client op queue in front of the GPU (paper Figure 5).

    The scheduler pops ops; clients receive per-op completion signals so
    blocking semantics survive the indirection.

    Overload protection (DESIGN.md §6.2): ``max_depth`` bounds the
    queue.  The queue itself never refuses a push — the owning backend
    checks :attr:`full` and applies its per-client policy (reject with
    ``QUEUE_FULL``, or block the client on :meth:`wait_for_room`).
    Room waiters are released with hysteresis: only once the depth
    drains back to ``high_water`` (default half of ``max_depth``), so a
    blocked client does not thrash on every single pop.
    """

    def __init__(self, sim: Simulator, client_id: str,
                 max_depth: Optional[int] = None,
                 high_water: Optional[int] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer=NULL_TRACER):
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if high_water is None and max_depth is not None:
            high_water = max(1, max_depth // 2)
        if high_water is not None and max_depth is not None \
                and not 0 < high_water <= max_depth:
            raise ValueError("high_water must be in (0, max_depth]")
        self.sim = sim
        self.client_id = client_id
        self.max_depth = max_depth
        self.high_water = high_water
        self.tracer = tracer
        self._items: Deque[tuple[Op, Signal]] = deque()
        # Depth/admit/reject accounting lives on MetricsRegistry
        # instruments; a private registry keeps standalone queues (unit
        # tests, ad-hoc construction) on the same code path.
        registry = registry if registry is not None else MetricsRegistry()
        self._m_enqueued = registry.counter("queue_enqueued_total",
                                            client=client_id)
        self._m_rejected = registry.counter("queue_rejected_total",
                                            client=client_id)
        self._m_depth = registry.gauge("queue_depth", client=client_id)
        self._room_waiters: list[Signal] = []

    def __len__(self) -> int:
        return len(self._items)

    # Back-compat shim: the PR-2 telemetry attributes stay readable and
    # writable (backends do ``queue.rejected_total += 1``) while the
    # values live on registry instruments.
    @property
    def enqueued_total(self) -> int:
        return self._m_enqueued.value

    @enqueued_total.setter
    def enqueued_total(self, value: int) -> None:
        self._m_enqueued.value = value

    @property
    def rejected_total(self) -> int:
        return self._m_rejected.value

    @rejected_total.setter
    def rejected_total(self, value: int) -> None:
        self._m_rejected.value = value

    @property
    def max_depth_seen(self) -> int:
        return self._m_depth.max_seen

    @max_depth_seen.setter
    def max_depth_seen(self, value: int) -> None:
        self._m_depth.max_seen = value

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.max_depth is not None and len(self._items) >= self.max_depth

    def push(self, op: Op) -> Signal:
        done = Signal(self.sim)
        self._items.append((op, done))
        self._m_enqueued.value += 1
        self._m_depth.set(len(self._items))
        if self.tracer.enabled:
            self.tracer.op_enqueue(self.client_id, op.seq, len(self._items))
        return done

    def peek(self) -> Optional[Op]:
        return self._items[0][0] if self._items else None

    def pop(self) -> tuple[Op, Signal]:
        if not self._items:
            raise IndexError(f"pop from empty software queue {self.client_id!r}")
        item = self._items.popleft()
        self._m_depth.value = len(self._items)
        if self.tracer.enabled:
            self.tracer.op_schedule(self.client_id, item[0].seq)
        self._release_room()
        return item

    def drain(self) -> list[tuple[Op, Signal]]:
        """Remove and return every queued (op, signal) pair — used when
        the owning client dies so pending signals can be errored."""
        items = list(self._items)
        self._items.clear()
        self._m_depth.value = 0
        # A drained queue has room by definition; waiters re-check their
        # context health after waking (the owner is usually dead here).
        waiters, self._room_waiters = self._room_waiters, []
        for waiter in waiters:
            waiter.trigger()
        return items

    def wait_for_room(self) -> Signal:
        """Signal that fires once the queue has drained to its
        high-water mark (immediately if it is not full)."""
        signal = Signal(self.sim)
        if not self.full:
            signal.trigger()
        else:
            self._room_waiters.append(signal)
        return signal

    def _release_room(self) -> None:
        if not self._room_waiters:
            return
        threshold = self.high_water if self.high_water is not None else 0
        if self.max_depth is None or len(self._items) <= threshold:
            waiters, self._room_waiters = self._room_waiters, []
            for waiter in waiters:
                waiter.trigger()

    def snapshot(self) -> dict:
        """Telemetry: current and high-water depth plus admit/reject
        counters (stable keys across every backend)."""
        return {
            "depth": len(self._items),
            "enqueued_total": self.enqueued_total,
            "max_depth_seen": self.max_depth_seen,
            "rejected_total": self.rejected_total,
            "max_depth": self.max_depth,
        }


class Backend(abc.ABC):
    """One GPU-sharing technique."""

    #: Human-readable baseline name (matches the paper's figures).
    name: str = "abstract"
    #: Whether clients run as threads of one process (share a GIL).
    process_per_client: bool = False

    def __init__(self, sim: Simulator, options: Optional[BackendOptions] = None):
        self.sim = sim
        self.options = options if options is not None else BackendOptions()
        self.clients: Dict[str, ClientInfo] = {}
        # Registry of software queues for uniform depth telemetry; a
        # backend that queues ops creates queues via _new_queue.
        self._software_queues: Dict[str, SoftwareQueue] = {}
        # Telemetry: off by default (nil-tracer fast path).  Wire a run's
        # tracer/registry via BackendOptions (preferred) or with
        # set_telemetry BEFORE clients register — queues and client
        # contexts capture the references at creation.
        self.tracer = self.options.tracer \
            if self.options.tracer is not None else NULL_TRACER
        self.metrics = self.options.metrics \
            if self.options.metrics is not None else MetricsRegistry()

    def set_telemetry(self, tracer=None, metrics: Optional[MetricsRegistry] = None) -> None:
        """Attach a run's tracer and/or metrics registry.  Must be
        called before clients register: software queues and client
        contexts capture the references when they are created."""
        if tracer is not None:
            self.tracer = tracer
        if metrics is not None:
            self.metrics = metrics
        try:
            for device in self.devices():
                device.tracer = self.tracer
        except NotImplementedError:
            pass

    @abc.abstractmethod
    def register_client(self, client_id: str, high_priority: bool, kind: str) -> ClientInfo:
        """Register a job before it launches any ops."""

    @abc.abstractmethod
    def submit(self, client_id: str, op: Op) -> Signal:
        """Accept one op; the returned signal fires when it completes on
        the device."""

    def devices(self) -> List[GpuDevice]:
        """Devices this backend occupies (for cost accounting)."""
        raise NotImplementedError

    # --- optional hooks -------------------------------------------------
    def begin_request(self, client_id: str,
                      deadline: Optional[float] = None) -> Optional[Signal]:
        """Called at a request/iteration boundary.  A backend may return
        a signal the client must wait on before issuing work (temporal
        sharing's time-slice grant); None means proceed immediately.
        ``deadline`` is the request's absolute completion deadline in
        simulated seconds (None when the client has no SLO)."""
        return None

    def admission_gate(self, client_id: str) -> Optional[Signal]:
        """Backpressure hook, checked by the client before each op: a
        returned signal stalls the client until the backend has room
        (bounded software queue under the "block" overload policy).
        None means submit immediately."""
        return None

    def end_request(self, client_id: str) -> None:
        """Request/iteration finished (after the client synchronized)."""

    def phase_marker(self, client_id: str, phase: str) -> Optional[Signal]:
        """Called at intra-iteration phase boundaries ("forward",
        "backward", "update").  Tick-Tock gates here; others ignore."""
        return None

    def start(self) -> None:
        """Start any scheduler processes (called once before the run)."""

    def interception_overhead(self) -> float:
        """Per-op host-side overhead this backend adds (seconds)."""
        return 0.0

    def client_info(self, client_id: str) -> ClientInfo:
        """Registration record for ``client_id``; raises
        :class:`UnknownClientError` for unregistered/deregistered ids."""
        try:
            return self.clients[client_id]
        except KeyError:
            raise UnknownClientError(client_id, self.name) from None

    def deregister_client(self, client_id: str) -> None:
        """Remove a (dead) client: its software queue is drained with
        pending signals errored, its stream destroyed, and its device
        allocations freed.  Idempotence is NOT provided — a second call
        raises :class:`UnknownClientError`."""
        info = self.client_info(client_id)
        self._deregister_cleanup(info)
        del self.clients[client_id]

    def _deregister_cleanup(self, info: ClientInfo) -> None:
        """Backend-specific teardown hook for :meth:`deregister_client`."""

    def queue_telemetry(self) -> Dict[str, dict]:
        """Per-client software-queue depth snapshot (overload telemetry).

        Keys are stable across backends — ``depth``, ``enqueued_total``,
        ``max_depth_seen``, ``rejected_total``, ``max_depth`` — so
        overload tests can assert on queue growth uniformly.  Queues of
        deregistered clients are retained (their final stats matter for
        post-run accounting) until a successor re-registers the id.
        """
        return {client_id: queue.snapshot()
                for client_id, queue in sorted(self._software_queues.items())}

    def _new_queue(self, client_id: str, max_depth: Optional[int] = None,
                   high_water: Optional[int] = None) -> SoftwareQueue:
        """Create and register a software queue for ``client_id``."""
        queue = SoftwareQueue(self.sim, client_id, max_depth=max_depth,
                              high_water=high_water,
                              registry=self.metrics, tracer=self.tracer)
        self._software_queues[client_id] = queue
        return queue

    def _register(self, client_id: str, high_priority: bool, kind: str) -> ClientInfo:
        if client_id in self.clients:
            raise ValueError(f"duplicate client id {client_id!r}")
        info = ClientInfo(client_id, high_priority, kind)
        self.clients[client_id] = info
        return info
