"""Backend interface: where intercepted GPU operations go.

A *backend* is one GPU-sharing technique.  Clients never talk to
streams or devices directly; they register with a backend and launch
ops through a :class:`repro.runtime.client.ClientContext`.  The paper's
baselines (§6.1) and Orion itself are all backends over the same
simulated device, which is what makes the comparison apples-to-apples.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Deque, Dict, List, Optional, Union

from repro.gpu.device import GpuDevice
from repro.kernels.kernel import KernelOp, MemoryOp
from repro.sim.engine import Simulator
from repro.sim.process import Signal

__all__ = ["Backend", "ClientInfo", "SoftwareQueue", "Op", "UnknownClientError"]

Op = Union[KernelOp, MemoryOp]


class UnknownClientError(KeyError):
    """An op or lifecycle call referenced a client id the backend does
    not know — never registered, or already deregistered."""

    def __init__(self, client_id: str, backend_name: str):
        super().__init__(client_id)
        self.client_id = client_id
        self.backend_name = backend_name

    def __str__(self) -> str:
        return (f"unknown or deregistered client {self.client_id!r} "
                f"on backend {self.backend_name!r}")


class ClientInfo:
    """Registration record for one client job."""

    __slots__ = ("client_id", "priority", "kind", "high_priority")

    def __init__(self, client_id: str, high_priority: bool, kind: str):
        if kind not in ("inference", "training"):
            raise ValueError(f"unknown job kind {kind!r}")
        self.client_id = client_id
        self.high_priority = high_priority
        self.kind = kind
        self.priority = 1 if high_priority else 0


class SoftwareQueue:
    """Per-client op queue in front of the GPU (paper Figure 5).

    The scheduler pops ops; clients receive per-op completion signals so
    blocking semantics survive the indirection.
    """

    def __init__(self, sim: Simulator, client_id: str):
        self.sim = sim
        self.client_id = client_id
        self._items: Deque[tuple[Op, Signal]] = deque()
        self.enqueued_total = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, op: Op) -> Signal:
        done = Signal(self.sim)
        self._items.append((op, done))
        self.enqueued_total += 1
        return done

    def peek(self) -> Optional[Op]:
        return self._items[0][0] if self._items else None

    def pop(self) -> tuple[Op, Signal]:
        if not self._items:
            raise IndexError(f"pop from empty software queue {self.client_id!r}")
        return self._items.popleft()

    def drain(self) -> list[tuple[Op, Signal]]:
        """Remove and return every queued (op, signal) pair — used when
        the owning client dies so pending signals can be errored."""
        items = list(self._items)
        self._items.clear()
        return items


class Backend(abc.ABC):
    """One GPU-sharing technique."""

    #: Human-readable baseline name (matches the paper's figures).
    name: str = "abstract"
    #: Whether clients run as threads of one process (share a GIL).
    process_per_client: bool = False

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.clients: Dict[str, ClientInfo] = {}

    @abc.abstractmethod
    def register_client(self, client_id: str, high_priority: bool, kind: str) -> ClientInfo:
        """Register a job before it launches any ops."""

    @abc.abstractmethod
    def submit(self, client_id: str, op: Op) -> Signal:
        """Accept one op; the returned signal fires when it completes on
        the device."""

    def devices(self) -> List[GpuDevice]:
        """Devices this backend occupies (for cost accounting)."""
        raise NotImplementedError

    # --- optional hooks -------------------------------------------------
    def begin_request(self, client_id: str) -> Optional[Signal]:
        """Called at a request/iteration boundary.  A backend may return
        a signal the client must wait on before issuing work (temporal
        sharing's time-slice grant); None means proceed immediately."""
        return None

    def end_request(self, client_id: str) -> None:
        """Request/iteration finished (after the client synchronized)."""

    def phase_marker(self, client_id: str, phase: str) -> Optional[Signal]:
        """Called at intra-iteration phase boundaries ("forward",
        "backward", "update").  Tick-Tock gates here; others ignore."""
        return None

    def start(self) -> None:
        """Start any scheduler processes (called once before the run)."""

    def interception_overhead(self) -> float:
        """Per-op host-side overhead this backend adds (seconds)."""
        return 0.0

    def client_info(self, client_id: str) -> ClientInfo:
        """Registration record for ``client_id``; raises
        :class:`UnknownClientError` for unregistered/deregistered ids."""
        try:
            return self.clients[client_id]
        except KeyError:
            raise UnknownClientError(client_id, self.name) from None

    def deregister_client(self, client_id: str) -> None:
        """Remove a (dead) client: its software queue is drained with
        pending signals errored, its stream destroyed, and its device
        allocations freed.  Idempotence is NOT provided — a second call
        raises :class:`UnknownClientError`."""
        info = self.client_info(client_id)
        self._deregister_cleanup(info)
        del self.clients[client_id]

    def _deregister_cleanup(self, info: ClientInfo) -> None:
        """Backend-specific teardown hook for :meth:`deregister_client`."""

    def _register(self, client_id: str, high_priority: bool, kind: str) -> ClientInfo:
        if client_id in self.clients:
            raise ValueError(f"duplicate client id {client_id!r}")
        info = ClientInfo(client_id, high_priority, kind)
        self.clients[client_id] = info
        return info
