"""Direct-submission backends.

``DirectStreamBackend`` maps each client to its own CUDA stream on one
shared device and submits ops straight through — this is the substrate
for the GPU Streams, Priority Streams, and MPS baselines.

``DedicatedBackend`` gives every client its own GPU: the paper's Ideal
configuration (latency lower bound, throughput upper bound).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.gpu.device import GpuDevice
from repro.gpu.errors import CudaError, CudaErrorCode
from repro.sim.engine import Simulator
from repro.sim.process import Signal

from .backend import Backend, BackendOptions, ClientInfo, Op, UnknownClientError

__all__ = ["DirectStreamBackend", "DedicatedBackend"]


class DirectStreamBackend(Backend):
    """One stream per client on a shared device; no software scheduling."""

    name = "streams"

    def __init__(self, sim: Simulator, device: GpuDevice, use_priorities: bool = False,
                 options: Optional[BackendOptions] = None):
        super().__init__(sim, options)
        self.device = device
        self.use_priorities = use_priorities
        self._streams: Dict[str, object] = {}
        self.set_telemetry()

    def register_client(self, client_id: str, high_priority: bool, kind: str) -> ClientInfo:
        info = self._register(client_id, high_priority, kind)
        priority = info.priority if self.use_priorities else 0
        self._streams[client_id] = self.device.create_stream(
            priority=priority, name=f"{client_id}-stream"
        )
        return info

    def submit(self, client_id: str, op: Op) -> Signal:
        # Hot path: one dict lookup instead of client_info + _streams.
        stream = self._streams.get(client_id)
        if stream is None:
            raise UnknownClientError(client_id, self.name)
        return stream.submit(op)

    def devices(self) -> List[GpuDevice]:
        return [self.device]

    def _deregister_cleanup(self, info: ClientInfo) -> None:
        # Parity with the scheduling backends: queued ops of the dead
        # client complete with a client-attributed kill, not an
        # anonymous stream teardown.
        error = CudaError(CudaErrorCode.CLIENT_KILLED,
                          "client deregistered with ops pending",
                          client_id=info.client_id, time=self.sim.now)
        stream = self._streams.pop(info.client_id, None)
        if stream is not None:
            self.device.destroy_stream(stream, error=error)
        self.device.release_client(info.client_id)


class DedicatedBackend(Backend):
    """Each client gets a whole GPU to itself (the Ideal baseline)."""

    name = "ideal"
    process_per_client = True

    def __init__(self, sim: Simulator, device_factory: Callable[[], GpuDevice],
                 options: Optional[BackendOptions] = None):
        super().__init__(sim, options)
        self._device_factory = device_factory
        self._devices: Dict[str, GpuDevice] = {}
        self._streams: Dict[str, object] = {}

    def register_client(self, client_id: str, high_priority: bool, kind: str) -> ClientInfo:
        info = self._register(client_id, high_priority, kind)
        device = self._device_factory()
        self._devices[client_id] = device
        self._streams[client_id] = device.create_stream(name=f"{client_id}-stream")
        return info

    def submit(self, client_id: str, op: Op) -> Signal:
        stream = self._streams.get(client_id)
        if stream is None:
            raise UnknownClientError(client_id, self.name)
        return stream.submit(op)

    def devices(self) -> List[GpuDevice]:
        return list(self._devices.values())

    def device_for(self, client_id: str) -> GpuDevice:
        return self._devices[client_id]

    def _deregister_cleanup(self, info: ClientInfo) -> None:
        error = CudaError(CudaErrorCode.CLIENT_KILLED,
                          "client deregistered with ops pending",
                          client_id=info.client_id, time=self.sim.now)
        stream = self._streams.pop(info.client_id, None)
        device = self._devices.pop(info.client_id, None)
        if device is not None and stream is not None:
            device.destroy_stream(stream, error=error)
            device.release_client(info.client_id)
