"""Host-side launch model.

Submitting a CUDA op costs CPU time on the submitting thread.  Backends
that run every client as a thread of one Python process (the GPU
Streams baseline, and Orion's default in-process mode) serialize
launches through the Python global interpreter lock; process-based
backends (MPS) give each client its own interpreter.  The paper calls
this out as the reason MPS slightly outperforms Streams (§6.2.1).

``HostThread.launch_cost()`` yields the per-op host delay: a fixed
launch overhead, serialized through a shared :class:`HostGil` when one
is attached, plus any interception overhead the backend charges
(Orion's wrapper overhead, measured at <1% in §6.5).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim.engine import Simulator
from repro.sim.process import Timeout
from repro.sim.resources import FifoLock

__all__ = ["HostGil", "HostThread", "DEFAULT_LAUNCH_OVERHEAD"]

# CPU time to issue one CUDA runtime call (cudaLaunchKernel & friends).
DEFAULT_LAUNCH_OVERHEAD = 4e-6


class HostGil:
    """The Python GIL shared by all threads of one process."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._lock = FifoLock(sim)
        self.contended_acquisitions = 0

    def hold(self, duration: float) -> Generator:
        """Generator: hold the GIL for ``duration`` seconds."""
        grant = self._lock.acquire()
        if not grant.triggered:
            self.contended_acquisitions += 1
        yield grant
        try:
            yield Timeout(duration)
        finally:
            self._lock.release()


class HostThread:
    """One client's submitting CPU thread."""

    def __init__(
        self,
        sim: Simulator,
        gil: Optional[HostGil] = None,
        launch_overhead: float = DEFAULT_LAUNCH_OVERHEAD,
        interception_overhead: float = 0.0,
    ):
        if launch_overhead < 0 or interception_overhead < 0:
            raise ValueError("host overheads must be >= 0")
        self.sim = sim
        self.gil = gil
        self.launch_overhead = launch_overhead
        self.interception_overhead = interception_overhead
        self.ops_launched = 0
        self.host_time = 0.0

    def launch_cost(self) -> Generator:
        """Generator that consumes the host-side cost of one op launch."""
        cost = self.launch_overhead + self.interception_overhead
        self.ops_launched += 1
        start = self.sim.now
        if self.gil is not None:
            yield from self.gil.hold(cost)
        else:
            yield Timeout(cost)
        self.host_time += self.sim.now - start
