"""Client-side CUDA-runtime facade.

A :class:`ClientContext` is what a DNN framework "process" holds: it
issues kernels and memory ops exactly as PyTorch issues CUDA runtime
calls, and every call is intercepted by the active backend (Figure 5 in
the paper).  Blocking semantics follow §5.1.3:

* ``cudaMemcpy`` / ``cudaMemset``  — the client blocks until completion;
* ``cudaMemcpyAsync``              — the client continues immediately;
* ``cudaMalloc`` / ``cudaFree``    — device-synchronizing;
* kernel launches                  — asynchronous.

Error semantics mirror real CUDA: a failed op's completion signal
carries a :class:`repro.gpu.errors.CudaError` instead of raising.  A
*sticky* error (faulting kernel, failed transfer) poisons the context —
every subsequent op completes immediately with ``CONTEXT_POISONED``
until :meth:`ClientContext.reset` — while non-sticky errors
(``cudaMalloc`` OOM) leave the context usable so callers can retry.

All methods are generators to be driven with ``yield from`` inside a
simulated process; each consumes the host-side launch cost first.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.gpu.errors import CudaError, CudaErrorCode
from repro.kernels.kernel import KernelOp, MemoryOp, MemoryOpKind
from repro.sim.process import Signal

from .backend import Backend, Op
from .host import HostThread

__all__ = ["ClientContext"]

# Prune already-triggered completion signals once the outstanding list
# exceeds this length, so long-running clients don't accumulate every
# signal between synchronize() calls.
_PRUNE_THRESHOLD = 32


class ClientContext:
    """One client job's handle onto a backend."""

    def __init__(
        self,
        backend: Backend,
        client_id: str,
        host: HostThread,
        high_priority: bool = False,
        kind: str = "inference",
    ):
        self.backend = backend
        self.client_id = client_id
        self.host = host
        # Captured at construction: the backend's tracer must be wired
        # (Backend.set_telemetry) before contexts are created.
        self.tracer = backend.tracer
        self.info = backend.register_client(client_id, high_priority, kind)
        self._outstanding: List[Signal] = []
        self.ops_issued = 0
        self.closed = False
        # Sticky-error state (None while healthy).
        self._error: Optional[CudaError] = None
        # Every error this context ever observed (for the error ledger).
        self.errors: List[CudaError] = []
        # Hooks invoked after each issued op with the running op count
        # (the fault injector's kill-after-op-N trigger).
        self._op_hooks: List[Callable[[int], None]] = []
        # Whether a backend request window is open (begin_request was
        # forwarded and end_request not yet called).
        self._in_request = False

    # ------------------------------------------------------------------
    # Error state
    # ------------------------------------------------------------------
    @property
    def in_request(self) -> bool:
        """True while a begin_request/end_request window is open."""
        return self._in_request

    @property
    def poisoned(self) -> bool:
        """True while the context holds a sticky error."""
        return self._error is not None

    @property
    def last_error(self) -> Optional[CudaError]:
        return self.errors[-1] if self.errors else None

    @property
    def sticky_error(self) -> Optional[CudaError]:
        return self._error

    def reset(self) -> None:
        """cudaDeviceReset analog: clear the sticky error so the client
        can issue work again.  Error history is retained."""
        self._error = None
        self._outstanding = []

    def close(self, error: Optional[CudaError] = None) -> None:
        """Tear the client down: deregister from the backend (draining
        its queue, destroying its stream, freeing its allocations) and
        refuse all further ops.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        if self._error is None:
            self._error = error or CudaError(
                CudaErrorCode.CLIENT_KILLED,
                f"context {self.client_id} closed",
                client_id=self.client_id,
            )
        if self.client_id in self.backend.clients:
            self.backend.deregister_client(self.client_id)

    def add_op_hook(self, hook: Callable[[int], None]) -> None:
        """Register a callback invoked with the op count after each issue."""
        self._op_hooks.append(hook)

    def _observe_completion(self, sig: Signal) -> None:
        if sig.error is None:
            return
        self.errors.append(sig.error)
        if sig.error.sticky and self._error is None:
            self._error = sig.error

    def _rejected(self) -> Signal:
        """An immediately-completed signal carrying the sticky error."""
        cause = self._error
        done = Signal()
        done.trigger(None, error=CudaError(
            CudaErrorCode.CONTEXT_POISONED,
            f"context poisoned by {cause.code.value}" if cause else "context closed",
            client_id=self.client_id,
            time=None,
        ))
        return done

    # ------------------------------------------------------------------
    # Launch primitives
    # ------------------------------------------------------------------
    def _issue(self, op: Op) -> Generator:
        """Host cost + backend submit; returns the completion signal.

        On a closed or poisoned context the op is not submitted at all:
        it completes immediately with an error status, as subsequent
        calls do in real CUDA after context corruption.
        """
        if self.closed or self.poisoned:
            return self._rejected()
        if self.tracer.enabled:
            # Submit is stamped before the admission gate and launch
            # cost: backpressure stalls and host time belong to the
            # request's queue component, not its execution.
            self.tracer.op_submit(self.client_id, op.seq, op.name,
                                  op.is_kernel)
        gate = self.backend.admission_gate(self.client_id)
        if gate is not None and not gate.triggered:
            # Backpressure: the backend's bounded queue is full and this
            # client's policy is to block until it drains (DESIGN.md
            # §6.2).  The stall happens before the launch cost, exactly
            # where a real runtime call would block in the interceptor.
            yield gate
            if self.closed or self.poisoned:
                return self._rejected()
        yield from self.host.launch_cost()
        if self.closed or self.poisoned:
            # Poisoned while paying the launch cost (e.g. an async
            # failure landed): reject without submitting.
            return self._rejected()
        op.client_id = self.client_id
        done = self.backend.submit(self.client_id, op)
        self.ops_issued += 1
        done.add_callback(self._observe_completion)
        if len(self._outstanding) > _PRUNE_THRESHOLD:
            self._outstanding = [s for s in self._outstanding if not s.triggered]
        self._outstanding.append(done)
        for hook in list(self._op_hooks):
            hook(self.ops_issued)
        return done

    def launch_kernel(self, op: KernelOp) -> Generator:
        """Asynchronous kernel launch (cudaLaunchKernel)."""
        done = yield from self._issue(op)
        return done

    def memcpy(self, nbytes: int, kind: MemoryOpKind, blocking: bool = True) -> Generator:
        """cudaMemcpy (blocking) / cudaMemcpyAsync (blocking=False)."""
        if not kind.is_transfer:
            raise ValueError(f"{kind} is not a transfer")
        op = MemoryOp(kind=kind, nbytes=nbytes, blocking=blocking)
        done = yield from self._issue(op)
        if blocking:
            yield done
        return done

    def memset(self, nbytes: int) -> Generator:
        """cudaMemset — blocking."""
        op = MemoryOp(kind=MemoryOpKind.MEMSET, nbytes=nbytes, blocking=True)
        done = yield from self._issue(op)
        yield done
        return done

    def malloc(self, nbytes: int) -> Generator:
        """cudaMalloc — device-synchronizing and blocking.

        OOM does not raise: the returned signal's ``error`` carries a
        non-sticky ``OUT_OF_MEMORY`` status the caller may retry on.
        """
        op = MemoryOp(kind=MemoryOpKind.MALLOC, nbytes=nbytes, blocking=True)
        done = yield from self._issue(op)
        yield done
        return done

    def free(self, nbytes: int) -> Generator:
        """cudaFree — device-synchronizing and blocking."""
        op = MemoryOp(kind=MemoryOpKind.FREE, nbytes=nbytes, blocking=True)
        done = yield from self._issue(op)
        yield done
        return done

    # ------------------------------------------------------------------
    # Synchronization and request boundaries
    # ------------------------------------------------------------------
    def synchronize(self) -> Generator:
        """Wait for every op this client has issued (cudaStreamSynchronize)."""
        pending = [s for s in self._outstanding if not s.triggered]
        self._outstanding = []
        for signal in pending:
            yield signal

    def begin_request(self, deadline: Optional[float] = None) -> Generator:
        """Request/iteration start; may block under temporal sharing.

        ``deadline`` (absolute simulated time, None = no SLO) is
        forwarded to the backend so it can account deadline misses.
        """
        if self.closed or self.poisoned:
            return
        gate = self.backend.begin_request(self.client_id, deadline)
        self._in_request = True
        if gate is not None:
            yield gate

    def end_request(self) -> None:
        # Forward even when poisoned mid-request: backends with
        # request-scoped state (temporal sharing's GPU lock) must be
        # released, or the dead client wedges every survivor.
        if not self._in_request:
            return
        self._in_request = False
        if self.closed or self.client_id not in self.backend.clients:
            return
        self.backend.end_request(self.client_id)

    def phase(self, name: str) -> Generator:
        """Intra-iteration phase boundary (forward / backward / update)."""
        if self.closed or self.poisoned:
            return
        gate = self.backend.phase_marker(self.client_id, name)
        if gate is not None:
            yield gate
