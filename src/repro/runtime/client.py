"""Client-side CUDA-runtime facade.

A :class:`ClientContext` is what a DNN framework "process" holds: it
issues kernels and memory ops exactly as PyTorch issues CUDA runtime
calls, and every call is intercepted by the active backend (Figure 5 in
the paper).  Blocking semantics follow §5.1.3:

* ``cudaMemcpy`` / ``cudaMemset``  — the client blocks until completion;
* ``cudaMemcpyAsync``              — the client continues immediately;
* ``cudaMalloc`` / ``cudaFree``    — device-synchronizing;
* kernel launches                  — asynchronous.

All methods are generators to be driven with ``yield from`` inside a
simulated process; each consumes the host-side launch cost first.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.kernels.kernel import KernelOp, MemoryOp, MemoryOpKind
from repro.sim.process import Signal

from .backend import Backend, Op
from .host import HostThread

__all__ = ["ClientContext"]


class ClientContext:
    """One client job's handle onto a backend."""

    def __init__(
        self,
        backend: Backend,
        client_id: str,
        host: HostThread,
        high_priority: bool = False,
        kind: str = "inference",
    ):
        self.backend = backend
        self.client_id = client_id
        self.host = host
        self.info = backend.register_client(client_id, high_priority, kind)
        self._outstanding: List[Signal] = []
        self.ops_issued = 0

    # ------------------------------------------------------------------
    # Launch primitives
    # ------------------------------------------------------------------
    def _issue(self, op: Op) -> Generator:
        """Host cost + backend submit; returns the completion signal."""
        yield from self.host.launch_cost()
        op.client_id = self.client_id
        done = self.backend.submit(self.client_id, op)
        self.ops_issued += 1
        self._outstanding.append(done)
        return done

    def launch_kernel(self, op: KernelOp) -> Generator:
        """Asynchronous kernel launch (cudaLaunchKernel)."""
        done = yield from self._issue(op)
        return done

    def memcpy(self, nbytes: int, kind: MemoryOpKind, blocking: bool = True) -> Generator:
        """cudaMemcpy (blocking) / cudaMemcpyAsync (blocking=False)."""
        if not kind.is_transfer:
            raise ValueError(f"{kind} is not a transfer")
        op = MemoryOp(kind=kind, nbytes=nbytes, blocking=blocking)
        done = yield from self._issue(op)
        if blocking:
            yield done
        return done

    def memset(self, nbytes: int) -> Generator:
        """cudaMemset — blocking."""
        op = MemoryOp(kind=MemoryOpKind.MEMSET, nbytes=nbytes, blocking=True)
        done = yield from self._issue(op)
        yield done
        return done

    def malloc(self, nbytes: int) -> Generator:
        """cudaMalloc — device-synchronizing and blocking."""
        op = MemoryOp(kind=MemoryOpKind.MALLOC, nbytes=nbytes, blocking=True)
        done = yield from self._issue(op)
        yield done
        return done

    def free(self, nbytes: int) -> Generator:
        """cudaFree — device-synchronizing and blocking."""
        op = MemoryOp(kind=MemoryOpKind.FREE, nbytes=nbytes, blocking=True)
        done = yield from self._issue(op)
        yield done
        return done

    # ------------------------------------------------------------------
    # Synchronization and request boundaries
    # ------------------------------------------------------------------
    def synchronize(self) -> Generator:
        """Wait for every op this client has issued (cudaStreamSynchronize)."""
        pending = [s for s in self._outstanding if not s.triggered]
        self._outstanding = []
        for signal in pending:
            yield signal

    def begin_request(self) -> Generator:
        """Request/iteration start; may block under temporal sharing."""
        gate = self.backend.begin_request(self.client_id)
        if gate is not None:
            yield gate

    def end_request(self) -> None:
        self.backend.end_request(self.client_id)

    def phase(self, name: str) -> Generator:
        """Intra-iteration phase boundary (forward / backward / update)."""
        gate = self.backend.phase_marker(self.client_id, name)
        if gate is not None:
            yield gate
