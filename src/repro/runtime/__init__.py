"""CUDA-runtime-like interception layer: backends, hosts, client contexts."""

from .backend import Backend, ClientInfo, Op, SoftwareQueue, UnknownClientError
from .client import ClientContext
from .direct import DedicatedBackend, DirectStreamBackend
from .host import DEFAULT_LAUNCH_OVERHEAD, HostGil, HostThread

__all__ = [
    "Backend",
    "ClientInfo",
    "Op",
    "SoftwareQueue",
    "UnknownClientError",
    "ClientContext",
    "HostGil",
    "HostThread",
    "DEFAULT_LAUNCH_OVERHEAD",
    "DirectStreamBackend",
    "DedicatedBackend",
]
