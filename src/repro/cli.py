"""Command-line interface: run collocation experiments without writing code.

    python -m repro --help
    python -m repro inf-train  --hp resnet50 --be mobilenet_v2 --backend orion
    python -m repro train-train --hp resnet50 --be mobilenet_v2 --backend reef
    python -m repro inf-inf    --hp resnet101 --be resnet50 --arrivals apollo
    python -m repro fleet      --num-gpus 16 --crashes 2 --degrades 1
    python -m repro llm        --backend orion --request-rate 80
    python -m repro sweep      --scenarios overload_ref --seeds 0,1,2,3
    python -m repro bench      --smoke
    python -m repro profile    --model bert --kind inference
    python -m repro scenarios  --json
    python -m repro serve      --socket /tmp/repro-serve.sock --workers 2
    python -m repro submit     fleet_ref --wait
    python -m repro status     job-0001
    python -m repro cancel     job-0001

Every run subcommand builds a :class:`repro.experiments.scenario.Scenario`
and executes it through the one ``run(scenario)`` entry point.  Prints
the per-job latency/throughput summary as a table; ``--json`` emits
machine-readable results instead.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.registry import (
    inf_inf_config,
    inf_train_config,
    train_train_config,
)
from repro.experiments.params import (
    FaultsParams,
    FleetParams,
    LlmParams,
    OverloadParams,
)
from repro.experiments.runner import get_profile
from repro.experiments.scenario import Scenario, run as run_scenario
from repro.experiments.tables import format_table
from repro.gpu.specs import DEVICES, get_device
from repro.workloads.models import MODEL_NAMES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Orion (EuroSys '24) reproduction — collocation experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--hp", required=True, choices=MODEL_NAMES,
                       help="high-priority model")
        p.add_argument("--be", required=True, choices=MODEL_NAMES,
                       help="best-effort model")
        p.add_argument("--backend", default="orion",
                       help="sharing technique (orion, reef, mps, streams, "
                            "priority-streams, temporal, ticktock, ideal)")
        p.add_argument("--duration", type=float, default=3.0,
                       help="simulated seconds (default 3.0)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--device", default="V100-16GB", choices=sorted(DEVICES))
        p.add_argument("--json", action="store_true",
                       help="emit JSON instead of a table")

    p = sub.add_parser("inf-train", help="HP inference + BE training (§6.2.1)")
    add_common(p)
    p.add_argument("--arrivals", default="poisson",
                   choices=("poisson", "apollo"))

    p = sub.add_parser("train-train", help="HP training + BE training (§6.2.2)")
    add_common(p)
    p.add_argument("--sm-threshold", type=int, default=None,
                   help="override SM_THRESHOLD (orion only)")

    p = sub.add_parser("inf-inf", help="HP inference + BE inference (§6.2.3)")
    add_common(p)
    p.add_argument("--arrivals", default="apollo",
                   choices=("apollo", "poisson"))

    p = sub.add_parser("faults",
                       help="fault-injection demo: kill clients mid-run, "
                            "print the error/availability ledger")
    p.add_argument("--backend", default="orion",
                   choices=("orion", "reef", "streams", "priority-streams"),
                   help="sharing technique")
    p.add_argument("--model", default="mobilenet_v2", choices=MODEL_NAMES)
    p.add_argument("--duration", type=float, default=0.2,
                   help="simulated seconds (default 0.2)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--device", default="V100-16GB", choices=sorted(DEVICES))
    p.add_argument("--kill", default="be-0",
                   help="client to kill (hp, be-0, be-1, ...); "
                        "'none' disables the kill")
    p.add_argument("--kill-at", type=float, default=None,
                   help="kill time in simulated seconds "
                        "(default: 40%% of the horizon)")
    p.add_argument("--be-clients", type=int, default=2,
                   help="number of best-effort training clients")
    p.add_argument("--watchdog", type=float, default=None, metavar="MULTIPLE",
                   help="flag BE kernels overdue by MULTIPLE x their "
                        "profiled duration (orion only)")
    p.add_argument("--json", action="store_true",
                   help="emit the canonical ledger JSON instead of a table")

    p = sub.add_parser("fleet",
                       help="multi-GPU resilience demo: crash/degrade GPUs "
                            "mid-run, print the availability report")
    p.add_argument("--num-gpus", type=int, default=8,
                   help="GPUs in the fleet (default 8)")
    p.add_argument("--backend", default="orion",
                   choices=("orion", "reef", "streams", "priority-streams"),
                   help="per-GPU sharing technique")
    p.add_argument("--model", default="mobilenet_v2", choices=MODEL_NAMES)
    p.add_argument("--duration", type=float, default=0.15,
                   help="simulated seconds (default 0.15)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--device", default="V100-16GB", choices=sorted(DEVICES))
    p.add_argument("--crashes", type=int, default=1,
                   help="GPUs to crash mid-run (default 1)")
    p.add_argument("--degrades", type=int, default=1,
                   help="GPUs to degrade mid-run (default 1)")
    p.add_argument("--slowdown", type=float, default=3.0,
                   help="degradation slowdown factor (default 3.0)")
    p.add_argument("--recover-after", type=float, default=None,
                   help="recover each victim this many seconds after its "
                        "fault (default: never)")
    p.add_argument("--be-tenants", type=int, default=2,
                   help="best-effort tenants sharing the fleet (default 2)")
    p.add_argument("--hp-load", type=float, default=0.25,
                   help="high-priority offered load as a fraction of the "
                        "fleet's aggregate solo capacity (default 0.25)")
    p.add_argument("--be-load", type=float, default=0.35,
                   help="total best-effort offered load as a fraction of "
                        "the fleet's aggregate solo capacity (default 0.35)")
    p.add_argument("--placement", default="all",
                   choices=("all", "plan", "adversarial"),
                   help="tenant residency: 'all' (every tenant on every "
                        "GPU), 'plan' (interference-aware single-home), "
                        "'adversarial' (worst-case packing, for rebalance "
                        "demos)")
    p.add_argument("--rebalance", action="store_true",
                   help="attach the migration controller (requires "
                        "--placement plan/adversarial)")
    p.add_argument("--rebalance-interval", type=float, default=0.02,
                   help="seconds between re-plan ticks (default 0.02)")
    p.add_argument("--migration-cooldown", type=float, default=0.04,
                   help="per-tenant quiet time after a move (default 0.04)")
    p.add_argument("--max-inflight-migrations", type=int, default=1,
                   help="concurrent migrations cap (default 1)")
    p.add_argument("--min-gain", type=float, default=0.05,
                   help="minimum predicted interference gain to consider "
                        "a move (default 0.05)")
    p.add_argument("--json", action="store_true",
                   help="emit the availability report JSON")
    p.add_argument("--report-out", default=None,
                   help="also write the availability report JSON here")
    p.add_argument("--migration-report-out", default=None,
                   help="write the migration controller's report JSON here")

    p = sub.add_parser("overload",
                       help="overload-protection demo: drive the service "
                            "past capacity, print latency/shed/guard stats")
    p.add_argument("--model", default="mobilenet_v2", choices=MODEL_NAMES)
    p.add_argument("--duration", type=float, default=0.8,
                   help="simulated seconds (default 0.8)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--device", default="V100-16GB", choices=sorted(DEVICES))
    p.add_argument("--be-clients", type=int, default=2,
                   help="number of best-effort inference clients")
    p.add_argument("--hp-load", type=float, default=0.3,
                   help="high-priority offered load as a fraction of solo "
                        "capacity (default 0.3)")
    p.add_argument("--be-load", type=float, default=2.0,
                   help="total best-effort offered load as a fraction of "
                        "solo capacity (default 2.0 — overload)")
    p.add_argument("--arrivals", default="poisson",
                   choices=("poisson", "burst", "ramp"),
                   help="high-priority arrival process")
    p.add_argument("--deadline-mult", type=float, default=20.0,
                   help="best-effort request deadline as a multiple of the "
                        "solo latency (0 disables shedding)")
    p.add_argument("--slo-mult", type=float, default=1.2,
                   help="HP latency SLO as a multiple of the solo latency")
    p.add_argument("--no-guard", action="store_true",
                   help="disable the adaptive SLO guard")
    p.add_argument("--queue-depth", type=int, default=32,
                   help="bound on each best-effort software queue "
                        "(0 = unbounded)")
    p.add_argument("--policy", default="block", choices=("block", "reject"),
                   help="full-queue policy: backpressure or load shedding")
    p.add_argument("--json", action="store_true",
                   help="emit JSON (including the canonical ledger)")

    p = sub.add_parser("llm",
                       help="continuous-batching LLM serving demo: "
                            "TTFT/TPOT/tokens-per-sec under collocation")
    p.add_argument("--model", default="llm-small",
                   help="LLM workload name from the registry "
                        "(default llm-small)")
    p.add_argument("--backend", default="orion",
                   choices=("orion", "temporal", "streams",
                            "priority-streams"),
                   help="sharing technique")
    p.add_argument("--duration", type=float, default=0.2,
                   help="simulated seconds (default 0.2)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--device", default="V100-16GB", choices=sorted(DEVICES))
    p.add_argument("--request-rate", type=float, default=80.0,
                   help="Poisson request arrivals per second (default 80)")
    p.add_argument("--prompt-mean", type=float, default=64.0,
                   help="mean prompt length in tokens (default 64)")
    p.add_argument("--prompt-cap", type=int, default=256,
                   help="max prompt length in tokens (default 256)")
    p.add_argument("--output-mean", type=float, default=8.0,
                   help="mean output length in tokens (default 8)")
    p.add_argument("--output-cap", type=int, default=64,
                   help="max output length in tokens (default 64)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="continuous-batching decode batch cap (default 8)")
    p.add_argument("--kv-budget-mb", type=float, default=None,
                   help="KV-cache budget in MiB (default: whatever "
                        "device memory is left)")
    p.add_argument("--kv-block-tokens", type=int, default=16,
                   help="tokens per KV-cache block (default 16)")
    p.add_argument("--cache-policy", default="evict",
                   choices=("evict", "block"),
                   help="KV pressure policy: evict-and-requeue or "
                        "block admission until the full reservation fits")
    p.add_argument("--be-model", default="mobilenet_v2", choices=MODEL_NAMES,
                   help="best-effort training model collocated with "
                        "the serving loop")
    p.add_argument("--be-clients", type=int, default=1,
                   help="best-effort training clients (0 = solo)")
    p.add_argument("--no-protect-prefill", action="store_true",
                   help="disable the phase-aware prefill protection "
                        "hint (orion only)")
    p.add_argument("--ttft-slo-mult", type=float, default=3.0,
                   help="TTFT SLO as a multiple of the solo prefill "
                        "latency (default 3.0)")
    p.add_argument("--warmup", type=float, default=0.0,
                   help="exclude requests arriving before this time")
    p.add_argument("--json", action="store_true",
                   help="emit the canonical scenario JSON")

    p = sub.add_parser("trace",
                       help="run a scenario with the tracer on; write the "
                            "Chrome trace-event JSON (view in Perfetto)")
    p.add_argument("scenario",
                   choices=("overload", "inf-train", "train-train", "inf-inf"),
                   help="which scenario to trace")
    p.add_argument("--out", required=True,
                   help="Chrome trace-event JSON output path")
    p.add_argument("--metrics-out", default=None,
                   help="also write the canonical metrics snapshot JSON here")
    p.add_argument("--attribution-out", default=None,
                   help="also write the per-request queue-delay attribution "
                        "report JSON here")
    p.add_argument("--hp", default="resnet50", choices=MODEL_NAMES,
                   help="high-priority model (experiment scenarios)")
    p.add_argument("--be", default="mobilenet_v2", choices=MODEL_NAMES,
                   help="best-effort model (experiment scenarios)")
    p.add_argument("--backend", default="orion",
                   help="sharing technique (experiment scenarios)")
    p.add_argument("--duration", type=float, default=0.4,
                   help="simulated seconds (default 0.4)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--device", default="V100-16GB", choices=sorted(DEVICES))
    p.add_argument("--capacity", type=int, default=1 << 16,
                   help="tracer ring-buffer capacity in events")
    p.add_argument("--engine-events", action="store_true",
                   help="also record every simulator calendar event "
                        "(very high volume)")

    p = sub.add_parser("sweep",
                       help="run a scenario x seed grid across worker "
                            "processes; emit the merged canonical JSON")
    p.add_argument("--scenarios",
                   default="overload_ref,inf_train_ref,train_train_ref",
                   help="comma-separated scenario names from the catalog "
                        "(see repro.experiments.registry.scenario_names)")
    p.add_argument("--seeds", default="0,1,2,3",
                   help="comma-separated seeds (default 0,1,2,3)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (default 1; results are "
                        "byte-identical at any worker count)")
    p.add_argument("--out", default=None,
                   help="write the merged canonical JSON here "
                        "(default: stdout)")

    p = sub.add_parser("bench",
                       help="time the reference scenarios vs the pinned "
                            "baseline; write BENCH_sim.json")
    p.add_argument("--smoke", action="store_true",
                   help="CI mode: one repeat, nonzero exit on a "
                        ">25%% ops/sec regression vs the baseline")
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repeats per scenario, best-of (default 3)")
    p.add_argument("--out", default=None,
                   help="report path (default: BENCH_sim.json at repo root)")
    p.add_argument("--baseline", default=None,
                   help="baseline path (default: "
                        "benchmarks/baselines/bench_baseline.json)")
    p.add_argument("--update-baseline", action="store_true",
                   help="re-pin the committed baseline to this run")
    p.add_argument("--json", action="store_true",
                   help="print the full report JSON")

    p = sub.add_parser("profile", help="offline-profile one workload (§5.2)")
    p.add_argument("--model", required=True, choices=MODEL_NAMES)
    p.add_argument("--kind", default="inference",
                   choices=("inference", "training"))
    p.add_argument("--device", default="V100-16GB", choices=sorted(DEVICES))
    p.add_argument("--out", default=None, help="write the profile JSON here")
    p.add_argument("--json", action="store_true")

    p = sub.add_parser("scenarios",
                       help="list the named-scenario catalog (the valid "
                            "submit/sweep/bench targets)")
    p.add_argument("--json", action="store_true",
                   help="emit the catalog as JSON")

    p = sub.add_parser("serve",
                       help="run the always-on scheduler daemon "
                            "(submit/status/cancel jobs over a socket)")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="Unix socket path (default: "
                        "/tmp/repro-serve.sock unless --port is given)")
    p.add_argument("--host", default="127.0.0.1",
                   help="TCP bind host (with --port)")
    p.add_argument("--port", type=int, default=None,
                   help="TCP port (0 = ephemeral); overrides --socket")
    p.add_argument("--workers", type=int, default=2,
                   help="job worker threads (default 2)")
    p.add_argument("--max-pending", type=int, default=16,
                   help="bounded pending-queue depth; submissions past "
                        "it are rejected (default 16)")
    p.add_argument("--pace", type=float, default=0.0,
                   help="wall-clock pacing: simulated seconds per wall "
                        "second (0 = run flat out)")
    p.add_argument("--history-out", default=None, metavar="PATH",
                   help="write the JSON job history here on shutdown")
    p.add_argument("--telemetry-interval", type=float, default=1.0,
                   help="seconds between telemetry ring snapshots "
                        "(default 1.0; 0 disables the ticker)")
    p.add_argument("--drain-timeout", type=float, default=None,
                   help="max seconds to wait for running jobs on "
                        "shutdown before aborting them (default: wait)")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="write-ahead job journal; enables crash "
                        "recovery and restart-safe idempotency keys")
    p.add_argument("--recover", choices=("requeue", "fail"),
                   default="requeue",
                   help="policy for jobs caught DISPATCHED/RUNNING by "
                        "a crash: re-run deterministically (requeue, "
                        "default) or terminate INTERRUPTED (fail)")
    p.add_argument("--fsync-batch", type=int, default=8,
                   help="journal group-commit size: fsync every N "
                        "records (durable records always sync; "
                        "default 8)")
    p.add_argument("--snapshot-every", type=int, default=256,
                   help="compact the journal into a snapshot every N "
                        "records (default 256)")
    p.add_argument("--hang-timeout", type=float, default=30.0,
                   help="seconds without a heartbeat before a running "
                        "job is declared hung (0 disables the "
                        "watchdog; default 30)")
    p.add_argument("--abort-grace", type=float, default=5.0,
                   help="seconds after a cooperative hang-abort before "
                        "the watchdog force-requeues (default 5)")
    p.add_argument("--max-retries", type=int, default=2,
                   help="re-run budget for hung/crashed jobs before "
                        "FAILED (default 2)")
    p.add_argument("--retry-backoff", type=float, default=0.25,
                   help="base of the exponential requeue backoff in "
                        "seconds (default 0.25)")

    def add_address(p):
        p.add_argument("--address", default=None,
                       help="daemon address (unix:/path or tcp:host:port; "
                            "default unix:/tmp/repro-serve.sock)")

    p = sub.add_parser("submit",
                       help="submit a job to a running serve daemon")
    add_address(p)
    p.add_argument("scenario",
                   help="registry scenario name (see 'repro scenarios')")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duration", type=float, default=None,
                   help="simulated-seconds override")
    p.add_argument("--priority", type=int, default=0,
                   help="queue priority (higher dispatches first)")
    p.add_argument("--set", action="append", default=[], metavar="KEY=VAL",
                   help="scenario override (repeatable); values parse "
                        "as JSON, falling back to strings")
    p.add_argument("--key", default=None, metavar="KEY",
                   help="idempotency key: re-submitting the same key "
                        "returns the original job id (survives daemon "
                        "restarts when the daemon runs with --journal)")
    p.add_argument("--retries", type=int, default=0,
                   help="retry budget for queue_full rejections "
                        "(honoring the daemon's retry_after_hint) and, "
                        "with --key, dropped connections (default 0)")
    p.add_argument("--wait", action="store_true",
                   help="poll status until the job finishes and print "
                        "the result")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="--wait timeout in seconds (default 300)")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable output")

    p = sub.add_parser("status",
                       help="job status (or the daemon summary) from a "
                            "running serve daemon")
    add_address(p)
    p.add_argument("job", nargs="?", default=None,
                   help="job id (omit for the daemon summary)")
    p.add_argument("--json", action="store_true")

    p = sub.add_parser("cancel",
                       help="cancel a queued or running job on a "
                            "running serve daemon")
    add_address(p)
    p.add_argument("job", help="job id to cancel")
    p.add_argument("--json", action="store_true")
    return parser


def _experiment_scenario(args) -> Scenario:
    if args.command == "inf-train":
        config = inf_train_config(args.hp, args.be, args.backend,
                                  arrivals=args.arrivals,
                                  duration=args.duration, seed=args.seed,
                                  device=args.device)
    elif args.command == "train-train":
        orion = {}
        if args.sm_threshold is not None:
            orion["sm_threshold"] = args.sm_threshold
        config = train_train_config(args.hp, args.be, args.backend,
                                    duration=args.duration, seed=args.seed,
                                    device=args.device, orion=orion)
    elif args.command == "inf-inf":
        config = inf_inf_config(args.hp, args.be, args.backend,
                                arrivals=args.arrivals,
                                duration=args.duration, seed=args.seed,
                                device=args.device)
    else:
        raise ValueError(f"unhandled command {args.command!r}")
    return Scenario(kind="experiment", name=args.command, experiment=config)


def _print_experiment(result, as_json: bool) -> None:
    if as_json:
        payload = {
            name: {
                "high_priority": job.high_priority,
                "p50_ms": job.latency.p50 * 1e3,
                "p99_ms": job.latency.p99 * 1e3,
                "throughput": job.throughput,
                "requests": job.latency.count,
            }
            for name, job in result.jobs.items()
        }
        payload["backend_stats"] = result.backend_stats
        print(json.dumps(payload, indent=1, default=float))
        return
    rows = []
    for name, job in result.jobs.items():
        rows.append([
            name,
            "HP" if job.high_priority else "BE",
            f"{job.latency.p50*1e3:.2f}" if job.latency.count else "-",
            f"{job.latency.p99*1e3:.2f}" if job.latency.count else "-",
            f"{job.throughput:.2f}",
        ])
    print(format_table(["job", "role", "p50 (ms)", "p99 (ms)", "tput/s"], rows))
    if result.backend_stats:
        print(f"scheduler: {result.backend_stats}")


def _run_faults(args) -> None:
    from repro.faults import FaultPlan, KillClient

    plan = FaultPlan(())
    if args.kill != "none":
        valid = ["hp"] + [f"be-{i}" for i in range(args.be_clients)]
        if args.kill not in valid:
            raise SystemExit(
                f"error: --kill {args.kill!r} names no client in this "
                f"scenario (choose from {', '.join(valid)}, or 'none')")
        kill_at = args.kill_at if args.kill_at is not None \
            else args.duration * 0.4
        plan = FaultPlan((KillClient(args.kill, at_time=kill_at),))
    params = FaultsParams(
        seed=args.seed, duration=args.duration, plan=plan,
        backend=args.backend, be_clients=args.be_clients,
        model=args.model, device=args.device,
        watchdog_multiple=args.watchdog,
    ).to_params()
    scenario = Scenario(kind="faults", name="faults", params=params)
    result = run_scenario(scenario).result
    if args.json:
        print(result.ledger.to_json())
        return
    print("fault plan:")
    for line in result.plan.describe().splitlines():
        print(f"  {line}")
    print()
    print(result.ledger.format_table())
    if result.hp_latency.count:
        print(f"\nhp latency: p50 {result.hp_latency.p50*1e3:.2f} ms   "
              f"p99 {result.hp_latency.p99*1e3:.2f} ms   "
              f"({result.hp_latency.count} requests)")
    if result.backend_stats:
        print(f"scheduler: {result.backend_stats}")


def _run_fleet(args) -> None:
    params = FleetParams(
        seed=args.seed, duration=args.duration, num_gpus=args.num_gpus,
        backend=args.backend, model=args.model, device=args.device,
        crashes=args.crashes, degrades=args.degrades,
        slowdown=args.slowdown, recover_after=args.recover_after,
        hp_load=args.hp_load, be_load=args.be_load,
        be_tenants=args.be_tenants,
        placement=args.placement, rebalance=args.rebalance,
        rebalance_interval=args.rebalance_interval,
        migration_cooldown=args.migration_cooldown,
        max_inflight_migrations=args.max_inflight_migrations,
        migration_min_gain=args.min_gain,
    ).to_params()
    scenario = Scenario(kind="fleet", name="fleet", params=params)
    result = run_scenario(scenario).result
    report = result.report
    payload = json.dumps(report, indent=1, sort_keys=True)
    if args.report_out:
        with open(args.report_out, "w") as fh:
            fh.write(json.dumps(report, sort_keys=True,
                                separators=(",", ":")))
        print(f"wrote {args.report_out}")
    if args.migration_report_out:
        with open(args.migration_report_out, "w") as fh:
            fh.write(json.dumps(result.migration, sort_keys=True,
                                separators=(",", ":")))
        print(f"wrote {args.migration_report_out}")
    if args.json:
        print(payload)
        return
    print("fault plan:")
    for line in result.plan.describe().splitlines() or ["  (none)"]:
        print(f"  {line}")
    print(f"\nfleet uptime: {report['fleet_uptime_fraction']:.4f}   "
          f"gpus: {result.num_gpus}   backend: {result.backend}")
    rows = []
    for name, g in report["gpus"].items():
        rows.append([name, g["state"], f"{g['uptime_fraction']:.3f}",
                     f"{g['health']:.3f}", str(g["jobs_completed"]),
                     str(g["crashes"]), str(g["recoveries"])])
    print(format_table(
        ["gpu", "state", "uptime", "health", "served", "crashes", "recov"],
        rows))
    fo = report["failover"]
    rate = fo["readmission_success_rate"]
    print(f"\nfailover: {fo['orphaned']} orphaned, {fo['failovers']} "
          f"re-admitted ({fo['retry_exhausted']} gave up), "
          f"success rate {'n/a' if rate is None else f'{rate:.2f}'}")
    if result.hp_latency.count:
        print(f"hp latency: p50 {result.hp_latency.p50*1e3:.2f} ms   "
              f"p99 {result.hp_latency.p99*1e3:.2f} ms   "
              f"({result.hp_latency.count} requests)")
    if result.migration:
        mig = result.migration
        print(f"migrations: {mig['started']} started, "
              f"{mig['completed']} completed, "
              f"{mig['rolled_back']} rolled back, "
              f"{mig['rerouted']} rerouted "
              f"(net predicted gain {mig['net_predicted_gain']:.3f}, "
              f"{mig['requeued_jobs']} jobs requeued)")
    print(f"routing: {result.routing['decisions']} decisions   "
          f"digest {result.routing['digest'][:16]}")
    print()
    print(result.ledger.format_table())


def _run_overload(args) -> None:
    params = OverloadParams(
        seed=args.seed, duration=args.duration, model=args.model,
        device=args.device, be_clients=args.be_clients,
        hp_load=args.hp_load, be_load=args.be_load, arrivals=args.arrivals,
        deadline_mult=args.deadline_mult or None, slo_mult=args.slo_mult,
        guard=not args.no_guard, queue_depth=args.queue_depth or None,
        policy=args.policy,
    ).to_params()
    scenario = Scenario(kind="overload", name="overload", params=params)
    result = run_scenario(scenario).result
    if args.json:
        payload = {
            "capacity_rps": result.capacity,
            "solo_latency_ms": result.solo_latency * 1e3,
            "slo_ms": None if result.slo is None else result.slo * 1e3,
            "hp_p50_ms": result.hp_latency.p50 * 1e3,
            "hp_p99_ms": result.hp_latency.p99 * 1e3,
            "hp_requests": result.hp_latency.count,
            "be_goodput_rps": result.be_goodput(args.duration),
            "total_shed": result.total_shed(),
            "backend_stats": result.backend_stats,
            "queue_telemetry": result.queue_telemetry,
            "guard_summary": result.guard_summary,
            "guard_actions": result.guard_actions,
            "ledger": json.loads(result.ledger.to_json()),
        }
        print(json.dumps(payload, indent=1, default=float))
        return
    offered = (args.hp_load + args.be_load) * result.capacity
    print(f"capacity: {result.capacity:.1f} req/s   "
          f"offered: {offered:.1f} req/s "
          f"({args.hp_load + args.be_load:.1f}x)   "
          f"solo latency: {result.solo_latency*1e3:.2f} ms")
    if result.slo is not None:
        print(f"SLO: {result.slo*1e3:.2f} ms (guard on)")
    else:
        print("guard: off")
    if result.hp_latency.count:
        print(f"hp latency: p50 {result.hp_latency.p50*1e3:.2f} ms   "
              f"p99 {result.hp_latency.p99*1e3:.2f} ms   "
              f"({result.hp_latency.count} requests)")
    print(f"be goodput: {result.be_goodput(args.duration):.1f} req/s   "
          f"shed: {result.total_shed()}")
    print(f"scheduler: {result.backend_stats}")
    if result.guard_summary is not None:
        print(f"guard: {result.guard_summary}")
    print("\nqueues:")
    for name, snap in result.queue_telemetry.items():
        print(f"  {name}: {snap}")
    print()
    print(result.ledger.format_table())


def _run_llm(args) -> None:
    params = LlmParams(
        seed=args.seed, duration=args.duration, model=args.model,
        device=args.device, backend=args.backend,
        request_rate=args.request_rate,
        prompt_mean=args.prompt_mean, prompt_cap=args.prompt_cap,
        output_mean=args.output_mean, output_cap=args.output_cap,
        max_batch=args.max_batch, kv_budget_mb=args.kv_budget_mb,
        kv_block_tokens=args.kv_block_tokens,
        cache_policy=args.cache_policy,
        be_model=args.be_model, be_clients=args.be_clients,
        protect_prefill=not args.no_protect_prefill,
        ttft_slo_mult=args.ttft_slo_mult, warmup=args.warmup,
    ).to_params()
    scenario = Scenario(kind="llm", name="llm", params=params)
    wrapped = run_scenario(scenario)
    if args.json:
        print(wrapped.to_json())
        return
    result = wrapped.result
    print(f"model: {result.model}   backend: {result.backend}   "
          f"batch cap: {args.max_batch}   policy: {args.cache_policy}")
    print(f"requests: {result.requests_arrived} arrived, "
          f"{result.requests_completed} completed, "
          f"{result.requests_failed} failed")
    if result.ttft.count:
        slo = result.ttft_slo
        verdict = "OK" if result.ttft.p95 <= slo else "VIOLATED"
        print(f"ttft: p50 {result.ttft.p50*1e3:.2f} ms   "
              f"p95 {result.ttft.p95*1e3:.2f} ms   "
              f"slo {slo*1e3:.2f} ms [{verdict}]")
    if result.tpot.count:
        print(f"tpot: p50 {result.tpot.p50*1e3:.2f} ms   "
              f"p95 {result.tpot.p95*1e3:.2f} ms")
    print(f"decode throughput: {result.decode_tokens_per_sec:.1f} tok/s   "
          f"total tokens: {result.total_tokens}")
    kv = result.kv
    print(f"kv cache: peak {kv['peak_bytes']/2**20:.1f} MiB   "
          f"evictions {kv['evictions']}   oom {kv['oom_events']}   "
          f"admission blocks {kv['admission_blocks']}   "
          f"conserved {kv['conserved']}")
    if result.backend_stats:
        print(f"scheduler: {result.backend_stats}")


def _run_trace(args) -> None:
    from repro.telemetry import (
        TelemetryConfig,
        attribution_report,
        export_chrome_trace,
        format_attribution_table,
    )

    tcfg = TelemetryConfig(tracing=True, capacity=args.capacity,
                           engine_events=args.engine_events)
    if args.scenario == "overload":
        scenario = Scenario(kind="overload", name="trace:overload",
                            params=dict(seed=args.seed,
                                        duration=args.duration,
                                        device=args.device, telemetry=tcfg))
    else:
        import dataclasses

        maker = {"inf-train": inf_train_config,
                 "train-train": train_train_config,
                 "inf-inf": inf_inf_config}[args.scenario]
        # Build at the registry defaults, then rescale: the registry
        # hardcodes a 0.5 s warmup, which would reject short traces.
        config = maker(args.hp, args.be, args.backend, seed=args.seed,
                       device=args.device)
        config = dataclasses.replace(
            config, duration=args.duration,
            warmup=min(config.warmup, args.duration / 4),
            telemetry=tcfg, record_utilization=True)
        scenario = Scenario(kind="experiment",
                            name=f"trace:{args.scenario}", experiment=config)
    result = run_scenario(scenario).result
    tracer, metrics = result.tracer, result.metrics
    segments = result.utilization_segments
    with open(args.out, "w") as fh:
        fh.write(export_chrome_trace(tracer, utilization_segments=segments))
    print(f"wrote {args.out}  ({len(tracer)} events, "
          f"{tracer.dropped} dropped)")
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(metrics.to_json())
        print(f"wrote {args.metrics_out}")
    if args.attribution_out:
        with open(args.attribution_out, "w") as fh:
            json.dump(attribution_report(tracer), fh, sort_keys=True,
                      separators=(",", ":"))
        print(f"wrote {args.attribution_out}")
    table = format_attribution_table(tracer)
    if table.count("\n"):
        print("\nlatency attribution (per client):")
        print(table)


def _run_sweep(args) -> None:
    from repro.experiments.registry import scenario_names
    from repro.experiments.sweep import run_sweep, sweep_to_json

    scenarios = [s for s in args.scenarios.split(",") if s]
    seeds = [int(s) for s in args.seeds.split(",") if s]
    known = scenario_names()
    for name in scenarios:
        if name not in known:
            raise SystemExit(f"error: unknown scenario {name!r} "
                             f"(choose from {', '.join(known)})")
    report = run_sweep(scenarios, seeds, workers=args.workers)
    payload = sweep_to_json(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload)
        grid = report["grid"]
        print(f"wrote {args.out}  ({grid['cells']} cells, "
              f"{grid['failed']} failed, workers={args.workers})")
    else:
        print(payload)


def _run_bench(args) -> int:
    from repro.bench import run_bench

    report = run_bench(repeats=args.repeats, smoke=args.smoke,
                       baseline_path=args.baseline, out_path=args.out,
                       update_baseline=args.update_baseline)
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        for name, entry in report["scenarios"].items():
            line = (f"{name}: {entry['ops_per_sec']:,.0f} ops/s  "
                    f"({entry['events']} events in {entry['wall_s']:.2f}s)")
            if "speedup" in entry:
                line += f"  {entry['speedup']:.2f}x vs baseline"
            print(line)
        if not report["baseline_found"]:
            print(f"no baseline at {report['baseline_path']} — "
                  "comparison skipped")
    if report["regressions"]:
        print(f"REGRESSION (> {report['regression_tolerance']:.0%} below "
              f"baseline): {', '.join(report['regressions'])}",
              file=sys.stderr)
        return 1
    return 0


def _run_scenarios(args) -> None:
    from repro.experiments.registry import scenario_catalog

    catalog = scenario_catalog()
    if args.json:
        print(json.dumps(catalog, indent=1, sort_keys=True))
        return
    rows = []
    for name, entry in catalog.items():
        params = entry["params"]
        if entry["kind"] == "experiment":
            summary = (f"{params['backend']} {'+'.join(params['jobs'])} "
                       f"duration={params['duration']:g}s")
        else:
            summary = " ".join(f"{k}={v}" for k, v in params.items()) \
                or "(defaults)"
        rows.append([name, entry["kind"], summary])
    print(format_table(["scenario", "kind", "key params"], rows))


def _serve_address(args) -> str:
    from repro.serve import DEFAULT_ADDRESS

    if getattr(args, "port", None) is not None:
        return f"tcp:{args.host}:{args.port}"
    if getattr(args, "socket", None):
        return f"unix:{args.socket}"
    return getattr(args, "address", None) or DEFAULT_ADDRESS


def _run_serve(args) -> int:
    import logging

    from repro.serve import ServeConfig, ServeServer

    logging.basicConfig(level=logging.INFO,
                        format="%(asctime)s %(name)s %(message)s")
    config = ServeConfig(address=_serve_address(args), workers=args.workers,
                         max_pending=args.max_pending, pace=args.pace,
                         history_path=args.history_out,
                         telemetry_interval=args.telemetry_interval,
                         drain_timeout=args.drain_timeout,
                         journal_path=args.journal,
                         recover=args.recover,
                         fsync_batch=args.fsync_batch,
                         snapshot_every=args.snapshot_every,
                         hang_timeout=args.hang_timeout,
                         abort_grace=args.abort_grace,
                         max_retries=args.max_retries,
                         retry_backoff=args.retry_backoff)
    server = ServeServer(config)
    print(f"listening on {server.start()}", flush=True)
    return server.serve_forever()


def _parse_override(item: str):
    key, sep, value = item.partition("=")
    if not sep or not key:
        raise SystemExit(f"error: bad --set {item!r}; expected KEY=VAL")
    try:
        return key, json.loads(value)
    except ValueError:
        return key, value


def _run_submit(args) -> int:
    from repro.serve import ServeClient, ServeError

    overrides = dict(_parse_override(item) for item in args.set)
    with ServeClient(_serve_address(args)) as client:
        try:
            job = client.submit(name=args.scenario, seed=args.seed,
                                duration=args.duration,
                                overrides=overrides or None,
                                priority=args.priority,
                                idempotency_key=args.key,
                                retries=args.retries)
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if not args.wait:
            if args.json:
                print(json.dumps({"job": job, "state": "QUEUED"}))
            else:
                print(f"submitted {job}")
            return 0
        record = client.wait(job, timeout=args.timeout)
        if args.json:
            payload = dict(record)
            if record["state"] == "COMPLETED":
                payload["result"] = client.result(job)
            print(json.dumps(payload, indent=1, sort_keys=True))
            return 0 if record["state"] == "COMPLETED" else 1
        print(f"{job}: {record['state']}"
              + (f" ({record['error']})" if record.get("error") else ""))
        if record["state"] == "COMPLETED":
            result = client.result(job)
            print(f"events: {result['events_processed']}   "
                  f"sim_time: {result['sim_time']:g}s   "
                  f"seed: {result['seed']}")
            return 0
        return 1


def _run_status(args) -> int:
    from repro.serve import ServeClient, ServeError

    with ServeClient(_serve_address(args)) as client:
        try:
            record = client.status(args.job)
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args.json:
        print(json.dumps(record, indent=1, sort_keys=True))
        return 0
    if args.job is not None:
        line = f"{record['id']}: {record['state']}"
        if record.get("error"):
            line += f" ({record['error']})"
        print(line)
        return 0
    daemon = record["daemon"]
    print(f"daemon: {daemon['address']}   uptime {daemon['uptime_s']:.1f}s   "
          f"admission {daemon['admission']}")
    print(f"queue: {daemon['queue_depth']}/{daemon['max_pending']}   "
          f"running: {', '.join(daemon['running']) or '(idle)'}")
    print(f"counters: {daemon['counters']}")
    if record["jobs"]:
        rows = [[j["id"], j["state"], str(j["priority"]),
                 j["spec"].get("name") or j["spec"].get("kind", "?")]
                for j in record["jobs"]]
        print(format_table(["job", "state", "prio", "scenario"], rows))
    return 0


def _run_cancel(args) -> int:
    from repro.serve import ServeClient, ServeError

    with ServeClient(_serve_address(args)) as client:
        try:
            response = client.cancel(args.job)
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args.json:
        print(json.dumps(response, indent=1, sort_keys=True))
        return 0
    if response.get("canceled"):
        print(f"{args.job}: canceled")
    elif response.get("cancel_requested"):
        print(f"{args.job}: cancel requested ({response['state']})")
    else:
        print(f"{args.job}: already {response['state']}; not canceled")
    return 0


def _run_profile(args) -> None:
    profile = get_profile(args.model, args.kind, get_device(args.device))
    if args.out:
        profile.save(args.out)
        print(f"wrote {args.out}")
    if args.json:
        print(json.dumps(profile.to_dict(), indent=1))
        return
    print(f"{profile.model_name} ({profile.kind}) on {profile.device_name}")
    print(f"kernels: {len(profile.kernels)}   "
          f"solo request latency: {profile.request_latency*1e3:.2f} ms")
    classes = {}
    for k in profile.kernels.values():
        classes[k.profile.value] = classes.get(k.profile.value, 0) + 1
    print(f"classes: {classes}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "profile":
        _run_profile(args)
        return 0
    if args.command == "faults":
        _run_faults(args)
        return 0
    if args.command == "fleet":
        _run_fleet(args)
        return 0
    if args.command == "overload":
        _run_overload(args)
        return 0
    if args.command == "llm":
        _run_llm(args)
        return 0
    if args.command == "trace":
        _run_trace(args)
        return 0
    if args.command == "sweep":
        _run_sweep(args)
        return 0
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "scenarios":
        _run_scenarios(args)
        return 0
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "submit":
        return _run_submit(args)
    if args.command == "status":
        return _run_status(args)
    if args.command == "cancel":
        return _run_cancel(args)
    result = run_scenario(_experiment_scenario(args)).result
    _print_experiment(result, args.json)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
