"""Command-line interface: run collocation experiments without writing code.

    python -m repro --help
    python -m repro inf-train  --hp resnet50 --be mobilenet_v2 --backend orion
    python -m repro train-train --hp resnet50 --be mobilenet_v2 --backend reef
    python -m repro inf-inf    --hp resnet101 --be resnet50 --arrivals apollo
    python -m repro profile    --model bert --kind inference

Prints the per-job latency/throughput summary as a table; ``--json``
emits machine-readable results instead.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.registry import (
    inf_inf_config,
    inf_train_config,
    train_train_config,
)
from repro.experiments.runner import get_profile, run_experiment
from repro.experiments.tables import format_table
from repro.gpu.specs import DEVICES, get_device
from repro.workloads.models import MODEL_NAMES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Orion (EuroSys '24) reproduction — collocation experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--hp", required=True, choices=MODEL_NAMES,
                       help="high-priority model")
        p.add_argument("--be", required=True, choices=MODEL_NAMES,
                       help="best-effort model")
        p.add_argument("--backend", default="orion",
                       help="sharing technique (orion, reef, mps, streams, "
                            "priority-streams, temporal, ticktock, ideal)")
        p.add_argument("--duration", type=float, default=3.0,
                       help="simulated seconds (default 3.0)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--device", default="V100-16GB", choices=sorted(DEVICES))
        p.add_argument("--json", action="store_true",
                       help="emit JSON instead of a table")

    p = sub.add_parser("inf-train", help="HP inference + BE training (§6.2.1)")
    add_common(p)
    p.add_argument("--arrivals", default="poisson",
                   choices=("poisson", "apollo"))

    p = sub.add_parser("train-train", help="HP training + BE training (§6.2.2)")
    add_common(p)
    p.add_argument("--sm-threshold", type=int, default=None,
                   help="override SM_THRESHOLD (orion only)")

    p = sub.add_parser("inf-inf", help="HP inference + BE inference (§6.2.3)")
    add_common(p)
    p.add_argument("--arrivals", default="apollo",
                   choices=("apollo", "poisson"))

    p = sub.add_parser("faults",
                       help="fault-injection demo: kill clients mid-run, "
                            "print the error/availability ledger")
    p.add_argument("--backend", default="orion",
                   choices=("orion", "reef", "streams", "priority-streams"),
                   help="sharing technique")
    p.add_argument("--model", default="mobilenet_v2", choices=MODEL_NAMES)
    p.add_argument("--duration", type=float, default=0.2,
                   help="simulated seconds (default 0.2)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--device", default="V100-16GB", choices=sorted(DEVICES))
    p.add_argument("--kill", default="be-0",
                   help="client to kill (hp, be-0, be-1, ...); "
                        "'none' disables the kill")
    p.add_argument("--kill-at", type=float, default=None,
                   help="kill time in simulated seconds "
                        "(default: 40%% of the horizon)")
    p.add_argument("--be-clients", type=int, default=2,
                   help="number of best-effort training clients")
    p.add_argument("--watchdog", type=float, default=None, metavar="MULTIPLE",
                   help="flag BE kernels overdue by MULTIPLE x their "
                        "profiled duration (orion only)")
    p.add_argument("--json", action="store_true",
                   help="emit the canonical ledger JSON instead of a table")

    p = sub.add_parser("profile", help="offline-profile one workload (§5.2)")
    p.add_argument("--model", required=True, choices=MODEL_NAMES)
    p.add_argument("--kind", default="inference",
                   choices=("inference", "training"))
    p.add_argument("--device", default="V100-16GB", choices=sorted(DEVICES))
    p.add_argument("--out", default=None, help="write the profile JSON here")
    p.add_argument("--json", action="store_true")
    return parser


def _experiment_config(args):
    if args.command == "inf-train":
        return inf_train_config(args.hp, args.be, args.backend,
                                arrivals=args.arrivals,
                                duration=args.duration, seed=args.seed,
                                device=args.device)
    if args.command == "train-train":
        orion = {}
        if args.sm_threshold is not None:
            orion["sm_threshold"] = args.sm_threshold
        return train_train_config(args.hp, args.be, args.backend,
                                  duration=args.duration, seed=args.seed,
                                  device=args.device, orion=orion)
    if args.command == "inf-inf":
        return inf_inf_config(args.hp, args.be, args.backend,
                              arrivals=args.arrivals,
                              duration=args.duration, seed=args.seed,
                              device=args.device)
    raise ValueError(f"unhandled command {args.command!r}")


def _print_experiment(result, as_json: bool) -> None:
    if as_json:
        payload = {
            name: {
                "high_priority": job.high_priority,
                "p50_ms": job.latency.p50 * 1e3,
                "p99_ms": job.latency.p99 * 1e3,
                "throughput": job.throughput,
                "requests": job.latency.count,
            }
            for name, job in result.jobs.items()
        }
        payload["backend_stats"] = result.backend_stats
        print(json.dumps(payload, indent=1, default=float))
        return
    rows = []
    for name, job in result.jobs.items():
        rows.append([
            name,
            "HP" if job.high_priority else "BE",
            f"{job.latency.p50*1e3:.2f}" if job.latency.count else "-",
            f"{job.latency.p99*1e3:.2f}" if job.latency.count else "-",
            f"{job.throughput:.2f}",
        ])
    print(format_table(["job", "role", "p50 (ms)", "p99 (ms)", "tput/s"], rows))
    if result.backend_stats:
        print(f"scheduler: {result.backend_stats}")


def _run_faults(args) -> None:
    from repro.faults import FaultPlan, KillClient, run_fault_scenario

    plan = FaultPlan(())
    if args.kill != "none":
        valid = ["hp"] + [f"be-{i}" for i in range(args.be_clients)]
        if args.kill not in valid:
            raise SystemExit(
                f"error: --kill {args.kill!r} names no client in this "
                f"scenario (choose from {', '.join(valid)}, or 'none')")
        kill_at = args.kill_at if args.kill_at is not None \
            else args.duration * 0.4
        plan = FaultPlan((KillClient(args.kill, at_time=kill_at),))
    result = run_fault_scenario(
        seed=args.seed, duration=args.duration, plan=plan,
        backend=args.backend, be_clients=args.be_clients,
        model=args.model, device=args.device,
        watchdog_multiple=args.watchdog,
    )
    if args.json:
        print(result.ledger.to_json())
        return
    print("fault plan:")
    for line in result.plan.describe().splitlines():
        print(f"  {line}")
    print()
    print(result.ledger.format_table())
    if result.hp_latency.count:
        print(f"\nhp latency: p50 {result.hp_latency.p50*1e3:.2f} ms   "
              f"p99 {result.hp_latency.p99*1e3:.2f} ms   "
              f"({result.hp_latency.count} requests)")
    if result.backend_stats:
        print(f"scheduler: {result.backend_stats}")


def _run_profile(args) -> None:
    profile = get_profile(args.model, args.kind, get_device(args.device))
    if args.out:
        profile.save(args.out)
        print(f"wrote {args.out}")
    if args.json:
        print(json.dumps(profile.to_dict(), indent=1))
        return
    print(f"{profile.model_name} ({profile.kind}) on {profile.device_name}")
    print(f"kernels: {len(profile.kernels)}   "
          f"solo request latency: {profile.request_latency*1e3:.2f} ms")
    classes = {}
    for k in profile.kernels.values():
        classes[k.profile.value] = classes.get(k.profile.value, 0) + 1
    print(f"classes: {classes}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "profile":
        _run_profile(args)
        return 0
    if args.command == "faults":
        _run_faults(args)
        return 0
    result = run_experiment(_experiment_config(args))
    _print_experiment(result, args.json)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
