"""Orion's kernel scheduling policy — pure decision functions (Listing 1).

Factored out of the scheduler loop so each rule is independently
testable and so the Figure-14 ablations can switch rules off:

* profile rule  — a best-effort kernel may co-run only if its
  compute/memory profile differs from the current high-priority
  kernel's (unknown profiles are optimistically allowed, §5.2);
* SM rule       — the best-effort kernel must need fewer SMs than
  SM_THRESHOLD so it cannot starve high-priority thread blocks;
* duration rule — outstanding (submitted but unfinished) best-effort
  work is capped at DUR_THRESHOLD x the high-priority request latency,
  because submitted kernels cannot be preempted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.kernels.kernel import ResourceProfile
from repro.profiler.profiles import KernelProfile

__all__ = ["PolicyConfig", "have_different_profiles", "schedule_be", "duration_throttled"]

# Paper default: 2.5% of the high-priority request latency (§6.4).
DEFAULT_DUR_THRESHOLD_FRAC = 0.025


@dataclass
class PolicyConfig:
    """Tunables and ablation switches of the Orion policy."""

    # None -> use the device's total SM count (paper default).
    sm_threshold: Optional[int] = None
    dur_threshold_frac: float = DEFAULT_DUR_THRESHOLD_FRAC
    # Ablation switches (Figure 14).
    use_profiles: bool = True
    use_sm_limit: bool = True
    use_dur_throttle: bool = True
    use_stream_priorities: bool = True

    def __post_init__(self):
        if self.sm_threshold is not None and self.sm_threshold < 0:
            raise ValueError("sm_threshold must be >= 0")
        if not (0 < self.dur_threshold_frac <= 1):
            raise ValueError("dur_threshold_frac must be in (0, 1]")


def have_different_profiles(hp: ResourceProfile, be: ResourceProfile) -> bool:
    """True when collocation is low-interference by the roofline classes.

    Unknown kernels are tiny and freely collocatable (paper §5.2).
    """
    if ResourceProfile.UNKNOWN in (hp, be):
        return True
    return hp is not be


def schedule_be(
    hp_task_running: bool,
    hp_profile: Optional[ResourceProfile],
    be_kernel: KernelProfile,
    sm_threshold: int,
    config: PolicyConfig,
) -> bool:
    """Listing 1's ``schedule_be``: is this BE kernel suitable right now?"""
    if not hp_task_running:
        return True
    sm_ok = True
    if config.use_sm_limit:
        sm_ok = be_kernel.sm_needed < sm_threshold
    profile_ok = True
    if config.use_profiles:
        current = hp_profile if hp_profile is not None else ResourceProfile.UNKNOWN
        profile_ok = have_different_profiles(current, be_kernel.profile)
    return sm_ok and profile_ok


def duration_throttled(
    outstanding_be_duration: float,
    hp_request_latency: float,
    config: PolicyConfig,
    candidate_duration: float = 0.0,
    hp_task_running: bool = False,
) -> bool:
    """Listing 1 lines 12-16: is the BE pipeline over its duration budget?

    Extension over the listing (documented in DESIGN.md): while a
    high-priority task is ongoing, a best-effort kernel whose *own*
    expected duration exceeds the whole budget is deferred, so a single
    long kernel cannot slip under an empty budget and then hold the GPU
    past the high-priority job's latency target — submitted kernels are
    not preemptible.  Kernels within the budget follow the listing's
    original outstanding-work accounting, and with the high-priority
    job idle the listing applies unchanged.
    """
    if not config.use_dur_throttle:
        return False
    budget = config.dur_threshold_frac * hp_request_latency
    if outstanding_be_duration > budget:
        return True
    if hp_task_running:
        return candidate_duration > budget
    return False
