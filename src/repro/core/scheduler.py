"""The Orion scheduler backend (paper §5, Listing 1).

Clients' GPU operations are intercepted into per-client software
queues.  A scheduler process drains them:

* high-priority kernels are forwarded immediately to a dedicated
  high-priority CUDA stream;
* best-effort kernels are admitted round-robin, only when the policy in
  :mod:`repro.core.policy` allows: the kernel is small enough
  (SM_THRESHOLD), has the opposite compute/memory profile to the
  current high-priority kernel, and the outstanding best-effort
  pipeline is under the DUR_THRESHOLD budget — tracked with CUDA
  events, never with blocking synchronization (§5.1.2);
* memory operations bypass the kernel policy and go straight to the
  device (§5.1.3); their blocking semantics are enforced by the device
  model itself.

All decisions use *profiled* kernel characteristics from the offline
profiling phase (§5.2), not simulator ground truth.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.gpu.cuda_events import CudaEvent
from repro.gpu.device import GpuDevice
from repro.gpu.errors import CudaError, CudaErrorCode
from repro.kernels.kernel import KernelOp, MemoryOp, ResourceProfile
from repro.profiler.profiles import KernelProfile, ProfileStore
from repro.runtime.backend import (
    Backend,
    BackendOptions,
    ClientInfo,
    Op,
    SoftwareQueue,
    UnknownClientError,
)
from repro.sim.engine import Simulator
from repro.sim.process import Signal, Timeout, spawn

from .policy import PolicyConfig, have_different_profiles

__all__ = ["OrionBackend", "OrionConfig", "OVERLOAD_POLICIES"]

# HP request latency assumed before the first profile/measurement lands
# (OrionConfig.fallback_hp_latency overrides; kept as the default).
_FALLBACK_HP_LATENCY = 10e-3
# Per-op interception cost of Orion's wrappers (<1% overhead, §6.5).
ORION_INTERCEPTION_OVERHEAD = 0.4e-6

#: Valid per-client bounded-queue policies (DESIGN.md §6.2).
OVERLOAD_POLICIES = ("block", "reject")


class OrionConfig(PolicyConfig):
    """Policy config plus scheduler-level settings.

    ``manage_pcie`` enables the §5.1.3 extension: best-effort
    host<->device copies are held in the software queue while a
    high-priority transfer occupies the PCIe bus, so the latency-
    critical job's copies get the full bus bandwidth.

    ``watchdog_multiple`` (off when None) arms a watchdog that flags a
    best-effort kernel whose completion is overdue by that multiple of
    its profiled duration; flags are surfaced in backend telemetry.
    ``watchdog_interval`` is the watchdog's polling period in seconds.

    Overload protection (DESIGN.md §6.2): ``be_queue_depth`` bounds
    each best-effort software queue (None = unbounded, the paper's
    behaviour); when a queue is full, ``overload_policy`` decides
    whether ``submit`` blocks the client until the queue drains to
    ``be_queue_high_water`` ("block", the default) or rejects the op
    with a retryable ``QUEUE_FULL`` status ("reject") — overridable per
    client via :meth:`OrionBackend.set_overload_policy`.
    ``fallback_hp_latency`` is the HP request latency assumed before
    any profile or measurement lands.  ``hp_window`` sizes the rolling
    window of observed HP request latencies the SLO guard watches.

    ``protect_prefill`` (phase-aware scheduling, §7 extension): while
    the high-priority client has declared a ``"prefill"`` phase via
    :meth:`OrionBackend.phase_marker` and its work is in flight, no
    best-effort kernel is admitted at all — the compute-bound prefill
    gets the whole GPU so TTFT stays flat, while decode phases fall
    back to the normal resource-aware policy (which happily collocates
    the memory-bound decode with compute-heavy best-effort kernels).
    Inert for workloads that never declare a prefill phase.
    """

    def __init__(self, hp_request_latency: Optional[float] = None,
                 manage_pcie: bool = False,
                 watchdog_multiple: Optional[float] = None,
                 watchdog_interval: float = 1e-3,
                 fallback_hp_latency: float = _FALLBACK_HP_LATENCY,
                 be_queue_depth: Optional[int] = None,
                 be_queue_high_water: Optional[int] = None,
                 overload_policy: str = "block",
                 protect_prefill: bool = True,
                 hp_window: int = 128, **kwargs):
        super().__init__(**kwargs)
        if watchdog_multiple is not None and watchdog_multiple <= 0:
            raise ValueError("watchdog_multiple must be positive")
        if watchdog_interval <= 0:
            raise ValueError("watchdog_interval must be positive")
        if fallback_hp_latency <= 0:
            raise ValueError("fallback_hp_latency must be positive")
        if be_queue_depth is not None and be_queue_depth < 1:
            raise ValueError("be_queue_depth must be >= 1")
        if overload_policy not in OVERLOAD_POLICIES:
            raise ValueError(f"overload_policy must be one of "
                             f"{OVERLOAD_POLICIES}, got {overload_policy!r}")
        if hp_window < 1:
            raise ValueError("hp_window must be >= 1")
        self.hp_request_latency = hp_request_latency
        self.manage_pcie = manage_pcie
        self.watchdog_multiple = watchdog_multiple
        self.watchdog_interval = watchdog_interval
        self.fallback_hp_latency = fallback_hp_latency
        self.be_queue_depth = be_queue_depth
        self.be_queue_high_water = be_queue_high_water
        self.overload_policy = overload_policy
        self.protect_prefill = protect_prefill
        self.hp_window = hp_window


class _BeClientState:
    """Per-best-effort-client scheduling state."""

    __slots__ = ("queue", "stream", "event", "outstanding", "policy")

    def __init__(self, queue: SoftwareQueue, stream, policy: str = "block"):
        self.queue = queue
        self.stream = stream
        self.event = CudaEvent()
        self.outstanding = 0.0  # expected seconds of submitted-unfinished work
        self.policy = policy    # bounded-queue overflow policy


class OrionBackend(Backend):
    """Fine-grained, interference-aware GPU scheduler."""

    name = "orion"

    def __init__(
        self,
        sim: Simulator,
        device: GpuDevice,
        profiles: ProfileStore,
        config: Optional[OrionConfig] = None,
        options: Optional[BackendOptions] = None,
    ):
        super().__init__(sim, options)
        self.device = device
        self.profiles = profiles
        self.config = config or OrionConfig()
        self._hp_queue: Optional[SoftwareQueue] = None
        self._hp_stream = None
        self._hp_client_id: Optional[str] = None
        self._be: Dict[str, _BeClientState] = {}
        self._be_order: List[str] = []
        self._rr_index = 0
        self._current_hp: Optional[KernelOp] = None
        self._wake = Signal(sim)
        self._started = False
        # EWMA of observed HP request latency (used when no profiled
        # latency was supplied).
        self._hp_latency_ewma: Optional[float] = None
        self._hp_request_started_at: Optional[float] = None
        self._hp_request_deadline: Optional[float] = None
        # Rolling window of observed HP request latencies, watched by
        # the adaptive SLO guard (repro.core.sloguard).
        self.hp_latency_window: Deque[float] = deque(
            maxlen=self.config.hp_window)
        # Overload state: while suspended, no best-effort kernel is
        # admitted at all (the SLO guard's emergency brake).
        self.be_admission_suspended = False
        self.be_suspensions = 0
        # Phase hint from the HP client (phase_marker); "prefill" arms
        # the protect_prefill deferral in _try_launch_be.
        self._hp_phase: Optional[str] = None
        # Counters for tests/telemetry.
        self.be_kernels_launched = 0
        self.be_kernels_deferred = 0
        self.prefill_deferrals = 0
        self.profile_misses = 0
        self.hp_requests_completed = 0
        self.hp_deadline_misses = 0
        self.clients_deregistered = 0
        self._hp_transfers_active = 0
        # Watchdog state: flagged overdue BE kernels (op seq -> record).
        self.watchdog_flags: List[dict] = []
        self._watchdog_seen: set = set()
        self._watchdog_wake = Signal(sim)
        self.set_telemetry()

    # ------------------------------------------------------------------
    # Backend interface
    # ------------------------------------------------------------------
    def register_client(self, client_id: str, high_priority: bool, kind: str) -> ClientInfo:
        info = self._register(client_id, high_priority, kind)
        if high_priority:
            if self._hp_queue is not None:
                raise ValueError("Orion supports exactly one high-priority client")
            priority = 1 if self.config.use_stream_priorities else 0
            self._hp_stream = self.device.create_stream(priority=priority,
                                                        name="orion-hp")
            # The HP queue is never bounded: overload protection sheds
            # best-effort work, not the latency-critical job's.
            self._hp_queue = self._new_queue(client_id)
            self._hp_client_id = client_id
        else:
            stream = self.device.create_stream(priority=0, name=f"orion-be-{client_id}")
            queue = self._new_queue(client_id,
                                    max_depth=self.config.be_queue_depth,
                                    high_water=self.config.be_queue_high_water)
            policy = self.options.overload_policies.get(
                client_id, self.config.overload_policy)
            if policy not in OVERLOAD_POLICIES:
                raise ValueError(f"policy must be one of {OVERLOAD_POLICIES}, "
                                 f"got {policy!r}")
            state = _BeClientState(queue, stream, policy=policy)
            self._be[client_id] = state
            self._be_order.append(client_id)
        return info

    def set_overload_policy(self, client_id: str, policy: str) -> None:
        """Override the bounded-queue overflow policy for one
        best-effort client ("block" or "reject")."""
        if policy not in OVERLOAD_POLICIES:
            raise ValueError(f"policy must be one of {OVERLOAD_POLICIES}, "
                             f"got {policy!r}")
        self._be_state(client_id).policy = policy

    def devices(self) -> List[GpuDevice]:
        return [self.device]

    def interception_overhead(self) -> float:
        return ORION_INTERCEPTION_OVERHEAD

    def start(self) -> None:
        if not self._started:
            self._started = True
            spawn(self.sim, self._run_scheduler(), "orion-scheduler")
            if self.config.watchdog_multiple is not None:
                spawn(self.sim, self._run_watchdog(), "orion-watchdog")

    def submit(self, client_id: str, op: Op) -> Signal:
        # Hot path: direct dict lookup (client_info adds a call frame).
        info = self.clients.get(client_id)
        if info is None:
            raise UnknownClientError(client_id, self.name)
        if isinstance(op, MemoryOp):
            # With PCIe management on, best-effort transfers go through
            # the software queue so the scheduler can keep the bus clear
            # for high-priority copies (§5.1.3 extension).
            if (self.config.manage_pcie and not info.high_priority
                    and op.kind.is_transfer):
                state = self._be_state(client_id)
                if state.queue.full and state.policy == "reject":
                    return self._reject_overload(state.queue, client_id)
                done = state.queue.push(op)
                self._wake_scheduler()
                return done
            # Otherwise memory ops bypass the kernel policy.  Their
            # completion still wakes the scheduler: a request's trailing
            # D2H copy is often the op whose completion opens the
            # HP-idle window best-effort kernels are waiting for.
            done = self._memory_stream_for(client_id, info).submit(op)
            if info.high_priority and op.kind.is_transfer:
                self._hp_transfers_active += 1
                done.add_callback(lambda _sig: self._hp_transfer_done())
            self._watch_stream(done)
            return done
        if info.high_priority:
            done = self._hp_queue.push(op)
        else:
            state = self._be_state(client_id)
            if state.queue.full and state.policy == "reject":
                return self._reject_overload(state.queue, client_id)
            done = state.queue.push(op)
        self._wake_scheduler()
        return done

    def _reject_overload(self, queue: SoftwareQueue, client_id: str) -> Signal:
        """Load shedding at the queue: complete immediately with the
        retryable ``QUEUE_FULL`` status instead of enqueueing."""
        queue.rejected_total += 1
        if self.tracer.enabled:
            self.tracer.instant("scheduler", "queue_reject",
                                client=client_id, depth=queue.depth)
        done = Signal(self.sim)
        done.trigger(None, error=CudaError(
            CudaErrorCode.QUEUE_FULL,
            f"software queue full (depth {queue.depth}/{queue.max_depth})",
            client_id=client_id, time=self.sim.now))
        return done

    def admission_gate(self, client_id: str) -> Optional[Signal]:
        """Backpressure: block a best-effort client whose bounded queue
        is full (policy "block") until it drains to the high-water
        mark.  High-priority clients are never blocked."""
        info = self.client_info(client_id)
        if info.high_priority:
            return None
        state = self._be.get(client_id)
        if state is None or state.policy != "block" or not state.queue.full:
            return None
        return state.queue.wait_for_room()

    def begin_request(self, client_id: str,
                      deadline: Optional[float] = None) -> Optional[Signal]:
        if client_id == self._hp_client_id:
            self._hp_request_started_at = self.sim.now
            self._hp_request_deadline = deadline
        return None

    def phase_marker(self, client_id: str, phase: str) -> Optional[Signal]:
        """Record the HP client's declared phase (§7 phase hints).

        Only the high-priority client's markers matter here: entering
        ``"prefill"`` arms the protect-prefill deferral, leaving it
        wakes the scheduler so deferred best-effort work re-evaluates.
        Never blocks the caller.
        """
        if client_id == self._hp_client_id and phase != self._hp_phase:
            self._hp_phase = phase
            if phase != "prefill":
                self._wake_scheduler()
        return None

    def _deregister_cleanup(self, info: ClientInfo) -> None:
        """Self-healing teardown for a dead client (§7's cluster-manager
        duty, absorbed into the scheduler): drain its software queue
        with errored signals, destroy its stream, free its allocations,
        repair the round-robin state, and — for the high-priority
        client — vacate the HP slot so a successor can register."""
        client_id = info.client_id
        error = CudaError(CudaErrorCode.CLIENT_KILLED,
                          "client deregistered with ops pending",
                          client_id=client_id, time=self.sim.now)
        # Scheduler bookkeeping is repaired *before* any signal fires:
        # triggering a drained/destroyed op's signal can resume the
        # scheduler process synchronously, and it must never observe the
        # dead client in its round-robin order or HP slot.
        if client_id == self._hp_client_id:
            hp_queue, hp_stream = self._hp_queue, self._hp_stream
            self._hp_queue = None
            self._hp_stream = None
            self._hp_client_id = None
            self._current_hp = None
            self._hp_request_started_at = None
            self._hp_request_deadline = None
            self._hp_phase = None
            # A successor HP client is a different workload: its latency
            # estimate must be re-learned, not inherited from the dead one.
            self._hp_latency_ewma = None
            self.hp_latency_window.clear()
            for _op, done in hp_queue.drain():
                done.trigger(None, error=error)
            self.device.destroy_stream(hp_stream, error=error)
        elif client_id in self._be:
            state = self._be.pop(client_id)
            self._be_order.remove(client_id)
            self._rr_index = self._rr_index % len(self._be_order) \
                if self._be_order else 0
            for _op, done in state.queue.drain():
                done.trigger(None, error=error)
            self.device.destroy_stream(state.stream, error=error)
        self.device.release_client(client_id)
        self.clients_deregistered += 1
        self._wake_scheduler()

    def end_request(self, client_id: str) -> None:
        if client_id == self._hp_client_id and self._hp_request_started_at is not None:
            observed = self.sim.now - self._hp_request_started_at
            if self._hp_latency_ewma is None:
                self._hp_latency_ewma = observed
            else:
                self._hp_latency_ewma = 0.8 * self._hp_latency_ewma + 0.2 * observed
            self.hp_latency_window.append(observed)
            if (self._hp_request_deadline is not None
                    and self.sim.now > self._hp_request_deadline):
                self.hp_deadline_misses += 1
            self._hp_request_started_at = None
            self._hp_request_deadline = None
            self.hp_requests_completed += 1
            if self._hp_phase is not None:
                # Phase hints are request-scoped: a lingering "prefill"
                # must not keep deferring best-effort work while the HP
                # client sits idle between requests.
                self._hp_phase = None
                self._wake_scheduler()

    # ------------------------------------------------------------------
    # Overload controls (driven by repro.core.sloguard)
    # ------------------------------------------------------------------
    def suspend_be_admission(self) -> None:
        """Stop admitting best-effort kernels entirely (emergency brake
        when the HP SLO is breached and DUR_THRESHOLD is already at its
        floor).  Queued ops stay queued; blocked clients stay blocked."""
        if not self.be_admission_suspended:
            self.be_admission_suspended = True
            self.be_suspensions += 1
            if self.tracer.enabled:
                self.tracer.instant("scheduler", "be_admission_suspended")

    def resume_be_admission(self) -> None:
        """Re-open best-effort admission after the SLO recovers."""
        if self.be_admission_suspended:
            self.be_admission_suspended = False
            if self.tracer.enabled:
                self.tracer.instant("scheduler", "be_admission_resumed")
            self._wake_scheduler()

    # ------------------------------------------------------------------
    # Scheduler internals
    # ------------------------------------------------------------------
    def _be_state(self, client_id: str) -> _BeClientState:
        try:
            return self._be[client_id]
        except KeyError:
            raise UnknownClientError(client_id, self.name) from None

    def _memory_stream_for(self, client_id: str, info: ClientInfo):
        if info.high_priority:
            return self._hp_stream
        return self._be_state(client_id).stream

    def _wake_scheduler(self) -> None:
        if not self._wake.triggered:
            self._wake.trigger()

    def _wake_watchdog(self) -> None:
        if not self._watchdog_wake.triggered:
            self._watchdog_wake.trigger()

    @property
    def hp_task_running(self) -> bool:
        if self._hp_queue is None:
            return False
        return bool(self._hp_queue) or self._hp_stream.busy

    @property
    def hp_request_latency(self) -> float:
        if self.config.hp_request_latency is not None:
            return self.config.hp_request_latency
        if self._hp_latency_ewma is not None:
            return self._hp_latency_ewma
        return self.config.fallback_hp_latency

    @property
    def sm_threshold(self) -> int:
        if self.config.sm_threshold is not None:
            return self.config.sm_threshold
        return self.device.spec.num_sms

    def _be_profile(self, op: KernelOp) -> KernelProfile:
        profile = self.profiles.lookup(op.spec.name)
        if profile is not None:
            return profile
        # Unprofiled kernel: be conservative — treat as unknown profile
        # with its static launch footprint and a pessimistic duration.
        self.profile_misses += 1
        return KernelProfile(
            kernel_id=op.spec.name,
            duration=op.duration,
            compute_util=op.compute_util,
            memory_util=op.memory_util,
            sm_needed=op.sm_needed,
            profile=ResourceProfile.UNKNOWN,
        )

    def _total_outstanding(self) -> float:
        return sum(state.outstanding for state in self._be.values())

    def _current_hp_profile(self) -> Optional[ResourceProfile]:
        """Profile of the HP kernel executing (or next to execute) now.

        The framework submits HP kernels in bursts well ahead of the
        GPU, so the *last submitted* kernel is a poor proxy for what is
        on the SMs; the in-flight stream op is the right reference for
        the opposite-profile check.
        """
        if self._hp_stream is None:
            return None
        in_flight = self._hp_stream.in_flight
        if in_flight is not None and isinstance(in_flight.op, KernelOp):
            return in_flight.op.profile
        for stream_op in self._hp_stream.queue:
            if isinstance(stream_op.op, KernelOp):
                return stream_op.op.profile
        if self._current_hp is not None:
            return self._current_hp.profile
        return None

    def _run_scheduler(self):
        """Listing 1's run_scheduler, event-driven instead of busy-polling."""
        while True:
            progressed = True
            while progressed:
                progressed = False
                # High-priority ops: forward immediately, in order.
                while self._hp_queue is not None and len(self._hp_queue):
                    op, done = self._hp_queue.pop()
                    inner = self._hp_stream.submit(op)
                    self._chain(inner, done)
                    self._current_hp = op
                    self._watch_stream(inner)
                    progressed = True
                # Best-effort clients: round-robin.
                for offset in range(len(self._be_order)):
                    client_id = self._be_order[(self._rr_index + offset)
                                               % len(self._be_order)]
                    if self._try_launch_be(client_id):
                        self._rr_index = (self._rr_index + offset + 1) \
                            % len(self._be_order)
                        progressed = True
            # Sleep until new work or a completion changes the world.
            self._wake = Signal(self.sim)
            yield self._wake

    def _hp_transfer_done(self) -> None:
        self._hp_transfers_active -= 1
        self._wake_scheduler()

    def _run_watchdog(self):
        """Flag best-effort kernels whose completion event is overdue by
        ``watchdog_multiple`` x their profiled duration.  Real GPU stacks
        use this to detect hung/runaway kernels; here the flags feed the
        availability telemetry."""
        multiple = self.config.watchdog_multiple
        while True:
            # Sleep while no best-effort stream has work: a free-running
            # poll loop would keep the event calendar non-empty forever
            # and an un-bounded sim.run() could never drain.
            if not any(state.stream.busy for state in self._be.values()):
                self._watchdog_wake = Signal(self.sim)
                yield self._watchdog_wake
                continue
            yield Timeout(self.config.watchdog_interval)
            now = self.sim.now
            for client_id, state in self._be.items():
                in_flight = state.stream.in_flight
                if in_flight is None or in_flight.started_at is None:
                    continue
                op = in_flight.op
                if not isinstance(op, KernelOp) or op.seq in self._watchdog_seen:
                    continue
                # Profile lookup without the _be_profile miss counter:
                # the watchdog polls, and polling must not skew stats.
                profile = self.profiles.lookup(op.spec.name)
                expected = profile.duration if profile is not None else op.duration
                deadline = in_flight.started_at + multiple * expected
                if now > deadline:
                    self._watchdog_seen.add(op.seq)
                    if self.tracer.enabled:
                        self.tracer.instant("scheduler", "watchdog_flag",
                                            client=client_id,
                                            kernel=op.spec.name)
                    self.watchdog_flags.append({
                        "time": now,
                        "client": client_id,
                        "kernel": op.spec.name,
                        "expected_duration": expected,
                        "overdue_by": now - deadline,
                    })

    def _try_launch_be(self, client_id: str) -> bool:
        state = self._be_state(client_id)
        op = state.queue.peek()
        if op is None:
            return False
        if self.be_admission_suspended:
            self.be_kernels_deferred += 1
            self._trace_be_block(client_id, "suspended")
            return False
        if isinstance(op, MemoryOp):
            # PCIe management: hold BE transfers while an HP transfer
            # owns the bus; submit directly otherwise.
            if self._hp_transfers_active > 0:
                self.be_kernels_deferred += 1
                self._trace_be_block(client_id, "pcie_hold")
                return False
            op, done = state.queue.pop()
            inner = state.stream.submit(op)
            self._chain(inner, done)
            self._watch_stream(inner)
            return True
        be_profile = self._be_profile(op)
        # Duration throttle (Listing 1 lines 12-16), accounted per
        # best-effort client as in the listing: reset the budget when
        # this client's recorded CUDA event shows its pipeline drained.
        if state.outstanding > 0 and state.event.query():
            state.outstanding = 0.0
        # The policy rules below are policy.duration_throttled and
        # policy.schedule_be inlined (decision-for-decision): this is the
        # scheduler's hottest function and the call/kwarg overhead of the
        # pure-function forms is measurable.  hp_task_running walks the
        # HP queue/stream; nothing between the checks mutates it, so
        # evaluate once.
        config = self.config
        hp_running = self.hp_task_running
        if (hp_running and config.protect_prefill
                and self._hp_phase == "prefill"):
            # Phase hint: compute-bound prefill in flight — hold all
            # best-effort kernels so TTFT stays at its solo latency.
            self.be_kernels_deferred += 1
            self.prefill_deferrals += 1
            self._trace_be_block(client_id, "prefill_protect")
            return False
        if config.use_dur_throttle:
            budget = config.dur_threshold_frac * self.hp_request_latency
            if state.outstanding > budget or (
                    hp_running and be_profile.duration > budget):
                self.be_kernels_deferred += 1
                self._trace_be_block(client_id, "dur_threshold")
                return False
        if hp_running:
            admit = True
            if config.use_sm_limit:
                admit = be_profile.sm_needed < self.sm_threshold
            if admit and config.use_profiles:
                hp_profile = self._current_hp_profile()
                current = hp_profile if hp_profile is not None \
                    else ResourceProfile.UNKNOWN
                admit = have_different_profiles(current, be_profile.profile)
            if not admit:
                self.be_kernels_deferred += 1
                self._trace_be_block(client_id, "policy")
                return False
        op, done = state.queue.pop()
        if self.tracer.enabled:
            self.tracer.instant("scheduler", "be_admit", client=client_id,
                                kernel=op.spec.name)
        inner = state.stream.submit(op)
        self._chain(inner, done)
        state.outstanding += be_profile.duration
        state.event.record(state.stream)
        self._watch_stream(inner)
        self.be_kernels_launched += 1
        self._wake_watchdog()
        return True

    def _trace_be_block(self, client_id: str, reason: str) -> None:
        if self.tracer.enabled:
            self.tracer.instant("scheduler", "be_block", client=client_id,
                                reason=reason)

    def _chain(self, inner: Signal, outer: Signal) -> None:
        """Forward the stream's completion to the client's signal."""
        inner.add_callback(lambda sig: outer.trigger(sig.value, error=sig.error))

    def _watch_stream(self, done: Signal) -> None:
        """Re-evaluate the policy when a submitted op completes."""
        done.add_callback(lambda _sig: self._wake_scheduler())
