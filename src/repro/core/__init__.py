"""Orion: the interference-aware, fine-grained GPU scheduler (paper §5)."""

from .autotune import SmThresholdTuner, TunerConfig
from .policy import (
    DEFAULT_DUR_THRESHOLD_FRAC,
    PolicyConfig,
    duration_throttled,
    have_different_profiles,
    schedule_be,
)
from .scheduler import (
    ORION_INTERCEPTION_OVERHEAD,
    OVERLOAD_POLICIES,
    OrionBackend,
    OrionConfig,
)
from .sloguard import SloGuard, SloGuardConfig

__all__ = [
    "OrionBackend",
    "OrionConfig",
    "OVERLOAD_POLICIES",
    "SloGuard",
    "SloGuardConfig",
    "ORION_INTERCEPTION_OVERHEAD",
    "PolicyConfig",
    "schedule_be",
    "duration_throttled",
    "have_different_profiles",
    "DEFAULT_DUR_THRESHOLD_FRAC",
    "SmThresholdTuner",
    "TunerConfig",
]
