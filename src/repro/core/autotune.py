"""Dynamic SM_THRESHOLD tuning (paper §5.1.1).

For throughput-oriented high-priority jobs (training), Orion can raise
SM_THRESHOLD for more aggressive collocation.  The paper tunes by
binary search: monitor high-priority throughput over a window; the
search range is [0, max SMs needed by any best-effort kernel].  A
candidate threshold is kept when high-priority throughput stays within
a tolerance of its dedicated-GPU throughput, otherwise the range
shrinks downward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.profiler.profiles import ProfileStore
from repro.sim.engine import Simulator
from repro.sim.process import Timeout, spawn

from .scheduler import OrionBackend

__all__ = ["SmThresholdTuner", "TunerConfig"]


@dataclass
class TunerConfig:
    """Binary-search tuning parameters."""

    # HP throughput must stay above (1 - tolerance) x dedicated.
    tolerance: float = 0.16
    # Measurement window per search step (seconds of simulated time).
    window: float = 1.0

    def __post_init__(self):
        if not (0 < self.tolerance < 1):
            raise ValueError("tolerance must be in (0, 1)")
        if self.window <= 0:
            raise ValueError("window must be positive")


@dataclass
class TunerStep:
    """One binary-search step, recorded for inspection."""

    threshold: int
    hp_throughput: float
    accepted: bool


class SmThresholdTuner:
    """Binary-searches SM_THRESHOLD while the workload runs."""

    def __init__(
        self,
        sim: Simulator,
        backend: OrionBackend,
        dedicated_hp_throughput: float,
        be_max_sm: Optional[int] = None,
        profiles: Optional[ProfileStore] = None,
        config: TunerConfig = TunerConfig(),
    ):
        if dedicated_hp_throughput <= 0:
            raise ValueError("dedicated_hp_throughput must be positive")
        self.sim = sim
        self.backend = backend
        self.config = config
        self.target = (1.0 - config.tolerance) * dedicated_hp_throughput
        if be_max_sm is None:
            be_max_sm = self._max_be_sm(profiles, backend)
        # The policy's SM rule is a strict inequality (sm_needed <
        # SM_THRESHOLD), so searching up to max+1 makes the largest
        # best-effort kernel admissible at the top of the range.
        self.be_max_sm = be_max_sm + 1
        self.history: List[TunerStep] = []
        self.final_threshold: Optional[int] = None
        self._hp_completed_at_window_start = 0

    @staticmethod
    def _max_be_sm(profiles: Optional[ProfileStore], backend: OrionBackend) -> int:
        if profiles is None:
            return backend.device.spec.num_sms
        max_sm = 0
        for client_id, info in backend.clients.items():
            if info.high_priority:
                continue
        # Without client->model mapping, fall back to the global store.
        for kernel in getattr(profiles, "_kernels", {}).values():
            max_sm = max(max_sm, kernel.sm_needed)
        return max_sm or backend.device.spec.num_sms

    def start(self) -> None:
        spawn(self.sim, self._tune_loop(), "sm-threshold-tuner")

    def _hp_throughput_since(self, count_before: int, window: float) -> float:
        return (self.backend.hp_requests_completed - count_before) / window

    def _tune_loop(self):
        lo, hi = 0, self.be_max_sm
        while lo < hi:
            mid = (lo + hi + 1) // 2
            self.backend.config.sm_threshold = mid
            before = self.backend.hp_requests_completed
            yield Timeout(self.config.window)
            throughput = self._hp_throughput_since(before, self.config.window)
            accepted = throughput >= self.target
            self.history.append(TunerStep(mid, throughput, accepted))
            if accepted:
                lo = mid
            else:
                hi = mid - 1
        self.final_threshold = lo
        self.backend.config.sm_threshold = max(lo, 1)
