"""Adaptive SLO guard: closes the control loop on Orion's DUR_THRESHOLD.

The paper picks DUR_THRESHOLD once, offline (§6.4: 2.5% of the
high-priority request latency) and shows p95/p99 are sensitive to it.
A serving system cannot re-profile every time load shifts, so this
module makes the threshold self-tuning at runtime: a simulated guard
process watches a rolling window of observed high-priority request
latencies against a configured SLO and acts on the scheduler —

* **breach** (windowed p-quantile above the SLO): multiplicatively
  tighten ``OrionConfig.dur_threshold_frac``; once the threshold is at
  its floor and the SLO is still breached, suspend best-effort
  admission entirely (the emergency brake);
* **recovery** (quantile back under ``recover_margin`` x SLO for
  ``recover_checks`` consecutive checks — hysteresis, so the guard
  never flaps on the boundary): first resume best-effort admission,
  then multiplicatively relax the threshold back toward its original
  value, one step per hysteresis period.

Between the breach and recovery bands the guard holds state (the dead
band that gives the hysteresis its width).  Every action is recorded
with rounded timestamps so guard traces serialize canonically, the same
determinism contract the availability ledger honours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.sim.process import Timeout, spawn

from .scheduler import OrionBackend

__all__ = ["SloGuard", "SloGuardConfig"]

# Action timestamps are rounded like the availability ledger's, so two
# identically seeded runs produce byte-identical guard traces.
_TIME_DECIMALS = 9


@dataclass
class SloGuardConfig:
    """Tunables of the adaptive SLO guard.

    ``slo`` is the HP latency target in seconds for the windowed
    ``quantile``.  ``check_interval`` paces the control loop; the
    window itself lives on the backend (``OrionConfig.hp_window``).
    """

    slo: float
    check_interval: float = 2e-3
    quantile: float = 99.0
    min_samples: int = 8
    tighten_factor: float = 0.5
    relax_factor: float = 2.0
    min_dur_frac: float = 0.004
    recover_margin: float = 0.85
    recover_checks: int = 3
    #: Clear the latency window after every actuation, so the next
    #: decision measures the *new* operating point instead of acting
    #: again on samples taken under the old one (the min_samples gate
    #: then provides the settle time).  Without this a slow-refreshing
    #: window makes the guard over-tighten: several actions land before
    #: a single stale breach sample ages out.
    reset_window_on_action: bool = True

    def __post_init__(self):
        if self.slo <= 0:
            raise ValueError("slo must be positive")
        if self.check_interval <= 0:
            raise ValueError("check_interval must be positive")
        if not 0 < self.quantile <= 100:
            raise ValueError("quantile must be in (0, 100]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if not 0 < self.tighten_factor < 1:
            raise ValueError("tighten_factor must be in (0, 1)")
        if self.relax_factor <= 1:
            raise ValueError("relax_factor must be > 1")
        if self.min_dur_frac <= 0:
            raise ValueError("min_dur_frac must be positive")
        if not 0 < self.recover_margin <= 1:
            raise ValueError("recover_margin must be in (0, 1]")
        if self.recover_checks < 1:
            raise ValueError("recover_checks must be >= 1")


class SloGuard:
    """Feedback controller between HP latency telemetry and the
    Orion scheduler's admission policy."""

    def __init__(self, sim, backend: OrionBackend, config: SloGuardConfig):
        self.sim = sim
        self.backend = backend
        self.config = config
        # The value the threshold relaxes back toward.
        self.baseline_dur_frac = backend.config.dur_threshold_frac
        self.actions: List[dict] = []
        self.breaches = 0
        self._healthy_streak = 0
        self._process = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SloGuard":
        if self._process is None:
            self._process = spawn(self.sim, self._run(), "slo-guard")
        return self

    @property
    def suspended(self) -> bool:
        return self.backend.be_admission_suspended

    def windowed_quantile(self) -> Optional[float]:
        """Current windowed latency quantile (None below min_samples)."""
        window = self.backend.hp_latency_window
        if len(window) < self.config.min_samples:
            return None
        return float(np.percentile(np.asarray(window, dtype=float),
                                   self.config.quantile))

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def _run(self):
        while True:
            yield Timeout(self.config.check_interval)
            observed = self.windowed_quantile()
            if observed is None:
                continue
            if observed > self.config.slo:
                self.breaches += 1
                self._healthy_streak = 0
                self._tighten(observed)
            elif observed <= self.config.recover_margin * self.config.slo:
                self._healthy_streak += 1
                if self._healthy_streak >= self.config.recover_checks:
                    self._relax(observed)
            else:
                # Dead band: neither breached nor clearly recovered —
                # hold, and require recovery to restart its streak.
                self._healthy_streak = 0

    def _tighten(self, observed: float) -> None:
        policy = self.backend.config
        if policy.dur_threshold_frac > self.config.min_dur_frac:
            policy.dur_threshold_frac = max(
                self.config.min_dur_frac,
                policy.dur_threshold_frac * self.config.tighten_factor)
            self._record("tighten", observed)
        elif not self.backend.be_admission_suspended:
            self.backend.suspend_be_admission()
            self._record("suspend", observed)
        # Already suspended at the floor: nothing further to withhold.

    def _relax(self, observed: float) -> None:
        policy = self.backend.config
        if self.backend.be_admission_suspended:
            self.backend.resume_be_admission()
            self._record("resume", observed)
        elif policy.dur_threshold_frac < self.baseline_dur_frac:
            policy.dur_threshold_frac = min(
                self.baseline_dur_frac,
                policy.dur_threshold_frac * self.config.relax_factor)
            self._record("relax", observed)
        else:
            return  # fully relaxed; keep the streak, nothing to record
        # One relax step per hysteresis period: re-earn the streak
        # before the next step, so recovery is gradual by construction.
        self._healthy_streak = 0

    def _record(self, action: str, observed: float) -> None:
        if self.config.reset_window_on_action:
            self.backend.hp_latency_window.clear()
        tracer = self.backend.tracer
        if tracer.enabled:
            tracer.instant(
                "sloguard", action,
                observed=round(float(observed), _TIME_DECIMALS),
                dur_threshold_frac=round(
                    float(self.backend.config.dur_threshold_frac), 12))
        self.actions.append({
            "time": round(float(self.sim.now), _TIME_DECIMALS),
            "action": action,
            "observed": round(float(observed), _TIME_DECIMALS),
            "slo": round(float(self.config.slo), _TIME_DECIMALS),
            "dur_threshold_frac": round(
                float(self.backend.config.dur_threshold_frac), 12),
            "suspended": self.backend.be_admission_suspended,
        })

    def summary(self) -> dict:
        """Telemetry snapshot for results/benchmarks."""
        counts: dict = {}
        for entry in self.actions:
            counts[entry["action"]] = counts.get(entry["action"], 0) + 1
        return {
            "breach_checks": self.breaches,
            "actions": counts,
            "final_dur_threshold_frac": self.backend.config.dur_threshold_frac,
            "suspended_at_end": self.backend.be_admission_suspended,
        }
