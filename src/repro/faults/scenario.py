"""Canonical fault-injection scenario: Orion collocation under faults.

One high-priority inference client and N best-effort training clients
share a GPU; a seeded :class:`~repro.faults.plan.FaultPlan` injects
client kills (and optionally kernel/transfer faults) mid-run.  Clients
run under restart supervisors, so the scenario exercises the full
recovery loop: death → deregistration (queue drained, stream destroyed,
memory freed, scheduler state repaired) → backoff → re-registration →
serving again.  Used by ``python -m repro faults``, the
``examples/fault_tolerance.py`` demo, and the recovery benchmarks.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines import PriorityStreamsBackend, ReefBackend, StreamsBackend
from repro.core import OrionBackend, OrionConfig
from repro.experiments.runner import get_profile
from repro.gpu.device import GpuDevice
from repro.gpu.specs import get_device
from repro.metrics.availability import ErrorLedger
from repro.metrics.latency import LatencySummary, summarize_latencies
from repro.profiler.profiles import ProfileStore
from repro.runtime.client import ClientContext
from repro.runtime.host import HostGil, HostThread
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.clients import (
    ClientStats,
    RestartingInferenceClient,
    RestartingTrainingClient,
)
from repro.workloads.registry import build_plan

from .injector import FaultInjector
from .plan import FaultPlan, KillClient

__all__ = ["FaultScenarioResult", "run_fault_scenario"]


@dataclass
class FaultScenarioResult:
    """Everything one fault scenario produced."""

    plan: FaultPlan
    ledger: ErrorLedger
    jobs: Dict[str, ClientStats]
    hp_latency: LatencySummary
    backend_stats: Dict = field(default_factory=dict)
    # Uniform run accounting for the Scenario API (bench/sweep).
    events_processed: int = 0
    sim_time: float = 0.0

    @property
    def hp_stats(self) -> ClientStats:
        return self.jobs["hp"]


def _make_backend(name: str, sim: Simulator, device: GpuDevice,
                  store: ProfileStore, hp_latency: float,
                  watchdog_multiple: Optional[float]):
    if name == "orion":
        return OrionBackend(sim, device, store, OrionConfig(
            hp_request_latency=hp_latency,
            watchdog_multiple=watchdog_multiple,
        ))
    if name == "reef":
        return ReefBackend(sim, device)
    if name == "streams":
        return StreamsBackend(sim, device)
    if name == "priority-streams":
        return PriorityStreamsBackend(sim, device)
    raise ValueError(f"unknown backend {name!r} for fault scenario")


def run_fault_scenario(
    seed: int = 0,
    duration: float = 0.2,
    plan: Optional[FaultPlan] = None,
    backend: str = "orion",
    be_clients: int = 2,
    model: str = "mobilenet_v2",
    device: str = "V100-16GB",
    hp_rps: float = 100.0,
    watchdog_multiple: Optional[float] = None,
    warmup: float = 0.0,
) -> FaultScenarioResult:
    """Deprecated shim: build a Scenario and call ``scenario.run`` instead.

    Kept for back-compat; delegates to the unified Scenario API and
    returns the same :class:`FaultScenarioResult` it always did.
    """
    warnings.warn(
        "run_fault_scenario() is deprecated and scheduled for removal two "
        "releases after the Scenario API shipped (DESIGN.md §6.9); use "
        "repro.experiments.scenario.run(Scenario(kind='faults', "
        "params={...})) instead",
        FutureWarning, stacklevel=2)
    from repro.experiments.scenario import Scenario, run as run_scenario

    params = dict(
        seed=seed, duration=duration, plan=plan, backend=backend,
        be_clients=be_clients, model=model, device=device, hp_rps=hp_rps,
        watchdog_multiple=watchdog_multiple, warmup=warmup,
    )
    return run_scenario(Scenario(kind="faults", params=params)).result


def _run_fault_scenario(
    seed: int = 0,
    duration: float = 0.2,
    plan: Optional[FaultPlan] = None,
    backend: str = "orion",
    be_clients: int = 2,
    model: str = "mobilenet_v2",
    device: str = "V100-16GB",
    hp_rps: float = 100.0,
    watchdog_multiple: Optional[float] = None,
    warmup: float = 0.0,
) -> FaultScenarioResult:
    """Run the collocation-under-faults scenario and return its ledger.

    With no explicit ``plan``, the first best-effort client is killed at
    40% of the horizon — the paper-style "BE job dies, HP job must not
    notice" experiment.  Fully deterministic under (seed, arguments).
    """
    if plan is None:
        plan = FaultPlan((KillClient("be-0", at_time=duration * 0.4),))
    valid_targets = {"hp"} | {f"be-{i}" for i in range(be_clients)}
    for event in plan:
        if isinstance(event, KillClient) and event.client not in valid_targets:
            raise ValueError(
                f"fault plan targets unknown client {event.client!r}; "
                f"this scenario has {sorted(valid_targets)}")

    sim = Simulator()
    device_spec = get_device(device)
    rng_factory = RngFactory(seed)
    ledger = ErrorLedger()

    store = ProfileStore()
    inf_profile = get_profile(model, "inference", device_spec)
    store.add(inf_profile)
    store.add(get_profile(model, "training", device_spec))

    gpu = GpuDevice(sim, device_spec)
    be = _make_backend(backend, sim, gpu, store,
                       inf_profile.request_latency, watchdog_multiple)

    gil = HostGil(sim)

    def make_ctx(name: str, high_priority: bool, kind: str) -> ClientContext:
        host = HostThread(sim, gil=gil,
                          interception_overhead=be.interception_overhead())
        return ClientContext(be, name, host,
                             high_priority=high_priority, kind=kind)

    clients: List = []
    hp_plan = build_plan(model, "inference")
    hp = RestartingInferenceClient(
        sim, make_ctx("hp", True, "inference"), hp_plan, device_spec,
        PoissonArrivals(hp_rps, rng_factory.stream("poisson:hp")),
        "hp", horizon=duration,
        ctx_factory=lambda: make_ctx("hp", True, "inference"),
        ledger=ledger,
    )
    clients.append(hp)
    train_plan = build_plan(model, "training")
    for i in range(be_clients):
        name = f"be-{i}"
        clients.append(RestartingTrainingClient(
            sim, make_ctx(name, False, "training"), train_plan, device_spec,
            name, horizon=duration,
            ctx_factory=lambda n=name: make_ctx(n, False, "training"),
            ledger=ledger,
        ))

    injector = FaultInjector(
        sim, plan, device=gpu,
        clients={c.name: c for c in clients},
        profiles=store,
    ).start()

    be.start()
    for client in clients:
        client.start()
    sim.run(until=duration)

    for entry in injector.log:
        ledger.record_injection(entry)
    ledger.finalize(duration)

    jobs = {c.name: c.stats for c in clients}
    hp_latency = summarize_latencies(hp.stats.records, after=warmup)

    backend_stats: Dict = {}
    if isinstance(be, OrionBackend):
        backend_stats = {
            "be_kernels_launched": be.be_kernels_launched,
            "be_kernels_deferred": be.be_kernels_deferred,
            "clients_deregistered": be.clients_deregistered,
            "watchdog_flags": len(be.watchdog_flags),
        }
    return FaultScenarioResult(plan=plan, ledger=ledger, jobs=jobs,
                               hp_latency=hp_latency,
                               backend_stats=backend_stats,
                               events_processed=sim.events_processed,
                               sim_time=sim.now)
