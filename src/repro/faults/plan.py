"""Deterministic fault-injection plans.

A :class:`FaultPlan` is an immutable sequence of fault events — client
kills, kernel faults, PCIe transfer failures, profile corruption — that
a :class:`repro.faults.injector.FaultInjector` executes against a
running simulation.  Plans are plain data: they can be constructed by
hand for targeted tests or sampled deterministically from a seed via
:meth:`FaultPlan.sample` (driven by :class:`repro.sim.rng.RngFactory`,
so the same seed always yields the same faults regardless of what else
the experiment draws).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.sim.rng import RngFactory

__all__ = [
    "FaultEvent",
    "KillClient",
    "KernelFault",
    "TransferFault",
    "ProfileFault",
    "GpuCrash",
    "GpuDegrade",
    "GpuRecover",
    "FaultPlan",
]


@dataclass(frozen=True)
class FaultEvent:
    """Base class for plan entries."""

    def describe(self) -> str:
        return repr(self)


@dataclass(frozen=True)
class KillClient(FaultEvent):
    """Kill a client at an absolute time or after it issues N ops.

    Exactly one of ``at_time`` / ``after_ops`` must be set.
    """

    client: str
    at_time: Optional[float] = None
    after_ops: Optional[int] = None

    def __post_init__(self):
        if (self.at_time is None) == (self.after_ops is None):
            raise ValueError(
                "KillClient requires exactly one of at_time / after_ops"
            )
        if self.at_time is not None and self.at_time < 0:
            raise ValueError("at_time must be >= 0")
        if self.after_ops is not None and self.after_ops < 1:
            raise ValueError("after_ops must be >= 1")

    def describe(self) -> str:
        if self.at_time is not None:
            return f"kill client {self.client!r} at t={self.at_time:.6f}"
        return f"kill client {self.client!r} after {self.after_ops} ops"


@dataclass(frozen=True)
class KernelFault(FaultEvent):
    """Arm the device so the next launch(es) of a named kernel fault."""

    kernel: str
    at_time: float = 0.0
    client: Optional[str] = None
    count: int = 1

    def __post_init__(self):
        if self.at_time < 0:
            raise ValueError("at_time must be >= 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")

    def describe(self) -> str:
        who = f" (client {self.client!r})" if self.client else ""
        return (f"fault kernel {self.kernel!r}{who} x{self.count} "
                f"from t={self.at_time:.6f}")


@dataclass(frozen=True)
class TransferFault(FaultEvent):
    """Arm the device so the next PCIe transfer(s) fail."""

    at_time: float = 0.0
    count: int = 1

    def __post_init__(self):
        if self.at_time < 0:
            raise ValueError("at_time must be >= 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")

    def describe(self) -> str:
        return f"fail {self.count} PCIe transfer(s) from t={self.at_time:.6f}"


@dataclass(frozen=True)
class ProfileFault(FaultEvent):
    """Drop or corrupt a kernel's profile entry before the run starts.

    ``mode="drop"`` removes the entry (the scheduler falls back to its
    profile-miss path); ``mode="corrupt"`` multiplies the profiled
    duration by ``factor`` (feeding the watchdog false expectations).
    """

    kernel: str
    mode: str = "corrupt"
    factor: float = 10.0

    def __post_init__(self):
        if self.mode not in ("drop", "corrupt"):
            raise ValueError(f"mode must be 'drop' or 'corrupt', got {self.mode!r}")
        if self.factor <= 0:
            raise ValueError("factor must be > 0")

    def describe(self) -> str:
        if self.mode == "drop":
            return f"drop profile entry {self.kernel!r}"
        return f"corrupt profile entry {self.kernel!r} (duration x{self.factor:g})"


@dataclass(frozen=True)
class GpuCrash(FaultEvent):
    """Take a whole GPU down at an absolute time (fleet scenarios).

    Every client resident on the GPU is torn down through the normal
    ``deregister_client`` path; its queued and in-flight jobs become
    failover candidates for the fleet router.
    """

    gpu: int
    at_time: float = 0.0

    def __post_init__(self):
        if self.gpu < 0:
            raise ValueError("gpu index must be >= 0")
        if self.at_time < 0:
            raise ValueError("at_time must be >= 0")

    def describe(self) -> str:
        return f"crash gpu {self.gpu} at t={self.at_time:.6f}"


@dataclass(frozen=True)
class GpuDegrade(FaultEvent):
    """Slow a GPU down by ``slowdown`` (>1) at an absolute time.

    The GPU keeps serving — degradation is what the fleet's health
    tracker must *observe* (rising latency) rather than be told about.
    """

    gpu: int
    at_time: float = 0.0
    slowdown: float = 2.0

    def __post_init__(self):
        if self.gpu < 0:
            raise ValueError("gpu index must be >= 0")
        if self.at_time < 0:
            raise ValueError("at_time must be >= 0")
        if self.slowdown <= 1.0:
            raise ValueError("slowdown must be > 1.0")

    def describe(self) -> str:
        return (f"degrade gpu {self.gpu} x{self.slowdown:g} "
                f"at t={self.at_time:.6f}")


@dataclass(frozen=True)
class GpuRecover(FaultEvent):
    """Bring a crashed GPU back (fresh boot) or clear a degradation."""

    gpu: int
    at_time: float = 0.0

    def __post_init__(self):
        if self.gpu < 0:
            raise ValueError("gpu index must be >= 0")
        if self.at_time < 0:
            raise ValueError("at_time must be >= 0")

    def describe(self) -> str:
        return f"recover gpu {self.gpu} at t={self.at_time:.6f}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, ordered collection of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def timed_events(self) -> List[FaultEvent]:
        """Events executed at an absolute time, in execution order.

        Ties break by plan position, so execution order is a pure
        function of the plan.
        """
        timed = [(ev.at_time, i, ev) for i, ev in enumerate(self.events)
                 if getattr(ev, "at_time", None) is not None]
        timed.sort(key=lambda item: (item[0], item[1]))
        return [ev for _, _, ev in timed]

    def op_triggered_kills(self) -> List[KillClient]:
        return [ev for ev in self.events
                if isinstance(ev, KillClient) and ev.after_ops is not None]

    def profile_faults(self) -> List[ProfileFault]:
        return [ev for ev in self.events if isinstance(ev, ProfileFault)]

    def fleet_events(self) -> List[FaultEvent]:
        """GPU-level events (crash/degrade/recover), in plan order."""
        return [ev for ev in self.events
                if isinstance(ev, (GpuCrash, GpuDegrade, GpuRecover))]

    def max_gpu_index(self) -> int:
        """Highest GPU index any fleet event references (-1 if none)."""
        return max((ev.gpu for ev in self.fleet_events()), default=-1)

    def describe(self) -> str:
        if not self.events:
            return "(empty fault plan)"
        return "\n".join(ev.describe() for ev in self.events)

    @classmethod
    def sample(
        cls,
        seed: int,
        clients: Sequence[str],
        kernels: Sequence[str] = (),
        horizon: float = 1.0,
        max_kills: int = 1,
        kernel_faults: int = 0,
        transfer_faults: int = 0,
    ) -> "FaultPlan":
        """Draw a deterministic plan from ``seed``.

        Kill times land in the middle 80% of the horizon so startup and
        drain are never faulted; the same (seed, arguments) pair always
        produces the identical plan.
        """
        rng = RngFactory(seed).stream("fault-plan")
        events: List[FaultEvent] = []
        victims = list(clients)
        n_kills = min(max_kills, len(victims))
        if n_kills > 0:
            chosen = rng.choice(len(victims), size=n_kills, replace=False)
            for index in sorted(int(i) for i in chosen):
                at = float(rng.uniform(0.1, 0.9)) * horizon
                events.append(KillClient(victims[index], at_time=at))
        pool = list(kernels)
        if pool:
            for _ in range(kernel_faults):
                kernel = pool[int(rng.integers(len(pool)))]
                at = float(rng.uniform(0.1, 0.9)) * horizon
                events.append(KernelFault(kernel, at_time=at))
        for _ in range(transfer_faults):
            at = float(rng.uniform(0.1, 0.9)) * horizon
            events.append(TransferFault(at_time=at))
        return cls(tuple(events))

    @classmethod
    def sample_fleet(
        cls,
        seed: int,
        num_gpus: int,
        horizon: float = 1.0,
        crashes: int = 1,
        degrades: int = 0,
        slowdown: float = 3.0,
        recover_after: Optional[float] = None,
    ) -> "FaultPlan":
        """Draw a deterministic fleet-level plan from ``seed``.

        Victim GPUs are sampled without replacement; crash/degrade
        times land in the middle 40% of the horizon so the run observes
        both the healthy steady state and the post-fault regime.  With
        ``recover_after`` set, each victim recovers that many seconds
        after its fault (clipped to the horizon).
        """
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if crashes < 0 or degrades < 0:
            raise ValueError("crashes/degrades must be >= 0")
        rng = RngFactory(seed).stream("fleet-fault-plan")
        events: List[FaultEvent] = []
        n_victims = min(crashes + degrades, num_gpus)
        if n_victims == 0:
            return cls(())
        chosen = rng.choice(num_gpus, size=n_victims, replace=False)
        victims = sorted(int(i) for i in chosen)
        n_crashes = min(crashes, n_victims)
        for index, gpu in enumerate(victims):
            at = float(rng.uniform(0.3, 0.7)) * horizon
            if index < n_crashes:
                events.append(GpuCrash(gpu, at_time=at))
            else:
                events.append(GpuDegrade(gpu, at_time=at, slowdown=slowdown))
            if recover_after is not None:
                events.append(GpuRecover(gpu, at_time=min(at + recover_after,
                                                          horizon)))
        return cls(tuple(events))
