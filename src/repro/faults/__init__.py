"""Deterministic fault injection: plans, the injector process, and the
canonical collocation-under-faults scenario.  GPU-level fleet events
(GpuCrash/GpuDegrade/GpuRecover) target :mod:`repro.cluster.fleet`."""

from .injector import FaultInjector
from .plan import (
    FaultEvent,
    FaultPlan,
    GpuCrash,
    GpuDegrade,
    GpuRecover,
    KernelFault,
    KillClient,
    ProfileFault,
    TransferFault,
)
from .scenario import FaultScenarioResult, run_fault_scenario

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultScenarioResult",
    "GpuCrash",
    "GpuDegrade",
    "GpuRecover",
    "KernelFault",
    "KillClient",
    "ProfileFault",
    "TransferFault",
    "run_fault_scenario",
]
