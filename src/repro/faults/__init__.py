"""Deterministic fault injection: plans, the injector process, and the
canonical collocation-under-faults scenario."""

from .injector import FaultInjector
from .plan import (
    FaultEvent,
    FaultPlan,
    KernelFault,
    KillClient,
    ProfileFault,
    TransferFault,
)
from .scenario import FaultScenarioResult, run_fault_scenario

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultScenarioResult",
    "KernelFault",
    "KillClient",
    "ProfileFault",
    "TransferFault",
    "run_fault_scenario",
]
