"""Executes a :class:`repro.faults.plan.FaultPlan` against a simulation.

The injector is itself a simulated process: timed events fire at their
scheduled times through the normal event calendar, so fault runs replay
byte-identically under a fixed seed.  Kill targets may be workload
clients (anything exposing ``kill()``) or bare
:class:`repro.runtime.client.ClientContext` objects (killed via
``close()``); op-count-triggered kills hook the context's op counter.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.gpu.device import GpuDevice
from repro.profiler.profiles import ProfileStore
from repro.sim.engine import Simulator
from repro.sim.process import Process, Timeout, spawn
from repro.telemetry.tracer import NULL_TRACER

from .plan import (
    FaultEvent,
    FaultPlan,
    GpuCrash,
    GpuDegrade,
    GpuRecover,
    KernelFault,
    KillClient,
    ProfileFault,
    TransferFault,
)

__all__ = ["FaultInjector"]


class FaultInjector:
    """Runs a fault plan: arms device faults, kills clients, mutates profiles.

    ``fleet`` is the target for GPU-level events (GpuCrash/GpuDegrade/
    GpuRecover): any object exposing ``crash_gpu(gpu)``,
    ``degrade_gpu(gpu, slowdown)``, and ``recover_gpu(gpu)`` — in
    practice :class:`repro.cluster.fleet.Fleet`.  Fleet events in a plan
    with no fleet target are a configuration error and raise at
    :meth:`start`.
    """

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        device: Optional[GpuDevice] = None,
        clients: Optional[Dict[str, object]] = None,
        profiles: Optional[ProfileStore] = None,
        fleet: Optional[object] = None,
        tracer=NULL_TRACER,
    ):
        self.sim = sim
        self.plan = plan
        self.device = device
        self.clients: Dict[str, object] = dict(clients or {})
        self.profiles = profiles
        self.fleet = fleet
        self.tracer = tracer
        # Chronological record of injected faults (feeds the error ledger).
        self.log: List[dict] = []
        self._process: Optional[Process] = None
        self._started = False

    def add_client(self, name: str, target: object) -> None:
        """Register a kill target (usable mid-run for late joiners)."""
        self.clients[name] = target
        for event in self.plan.op_triggered_kills():
            if event.client == name:
                self._arm_op_kill(event, target)

    def start(self) -> "FaultInjector":
        """Apply profile faults, arm op-count kills, spawn the timed runner."""
        if self._started:
            return self
        self._started = True
        if self.fleet is None and self.plan.fleet_events():
            raise ValueError(
                "fault plan contains GPU-level events (GpuCrash/GpuDegrade/"
                "GpuRecover) but no fleet target was provided; these events "
                "only apply to fleet scenarios")
        for event in self.plan.profile_faults():
            self._apply_profile_fault(event)
        for event in self.plan.op_triggered_kills():
            target = self.clients.get(event.client)
            if target is not None:
                self._arm_op_kill(event, target)
        timed = self.plan.timed_events()
        if timed:
            self._process = spawn(self.sim, self._run(timed), "fault-injector")
        return self

    # ------------------------------------------------------------------
    def _run(self, timed: List[FaultEvent]):
        for event in timed:
            delay = event.at_time - self.sim.now
            if delay > 0:
                yield Timeout(delay)
            self._execute(event)

    def _execute(self, event: FaultEvent) -> None:
        if isinstance(event, KillClient):
            self._kill(event.client)
        elif isinstance(event, KernelFault):
            if self.device is not None:
                self.device.arm_kernel_fault(event.kernel,
                                             client_id=event.client,
                                             count=event.count)
        elif isinstance(event, TransferFault):
            if self.device is not None:
                self.device.arm_transfer_fault(count=event.count)
        elif isinstance(event, GpuCrash):
            if self.fleet is not None:
                self.fleet.crash_gpu(event.gpu)
        elif isinstance(event, GpuDegrade):
            if self.fleet is not None:
                self.fleet.degrade_gpu(event.gpu, event.slowdown)
        elif isinstance(event, GpuRecover):
            if self.fleet is not None:
                self.fleet.recover_gpu(event.gpu)
        self._record(event)

    def _kill(self, name: str) -> None:
        target = self.clients.get(name)
        if target is None:
            return
        if hasattr(target, "kill"):
            target.kill()
        else:
            target.close()

    def _arm_op_kill(self, event: KillClient, target: object) -> None:
        ctx = getattr(target, "ctx", target)
        fired = [False]

        def hook(count: int) -> None:
            if fired[0] or count < event.after_ops:
                return
            fired[0] = True
            # Defer: the hook runs inside the victim's own issue path,
            # and deregistration must not reenter the submitting stream.
            self.sim.call_in(0.0, lambda: self._execute(event))

        ctx.add_op_hook(hook)

    def _apply_profile_fault(self, event: ProfileFault) -> None:
        if self.profiles is None:
            return
        if event.mode == "drop":
            applied = self.profiles.drop(event.kernel)
        else:
            applied = self.profiles.corrupt(event.kernel, event.factor)
        if applied:
            self._record(event)

    def _record(self, event: FaultEvent) -> None:
        if self.tracer.enabled:
            self.tracer.instant("faults", type(event).__name__,
                                fault=event.describe())
        self.log.append({
            "time": round(self.sim.now, 9),
            "type": type(event).__name__,
            "fault": event.describe(),
        })
