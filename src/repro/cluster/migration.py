"""Live tenant migration: closed-loop, crash-safe fleet rebalancing.

The placement module predicts interference from offline signatures and
the fleet acts on it once, at boot.  But predicted signatures misrank
real collocations, and a bad pairing (or a degraded-then-recovered GPU)
otherwise persists for the whole run.  This module closes the loop: a
:class:`MigrationController` measures pairwise interference from the
latencies tenants actually observe while co-active, periodically
re-plans the assignment with
:func:`~repro.cluster.placement.replan_placement`, prices each
candidate move against a drain + re-warm cost model, and executes the
accepted moves through a crash-safe state machine::

    planned -> cordoned -> draining -> moving -> rewarming -> completed
                   |            |          |          |
                   +------------+----------+----------+--> rolled-back
                                                       \\-> rerouted

Safety properties:

* **At-most-once job accounting.**  A migration never creates or loses
  a job: the drain step pulls the source worker's queued jobs and
  requeues the very same objects at the router inside one simulation
  event (no in-transit gap), and the in-flight job finishes on the
  source before the worker is torn down.  ``submitted == served + shed
  + failed + dropped`` holds exactly through any number of moves.
* **Rollback / re-route.**  If the destination dies or degrades while
  the tenant is draining or re-warming, the move is unwound: back to
  the source if it is still up (*rolled-back*), else to the best
  healthy GPU (*rerouted*).  If a GPU crash re-homes the tenant first
  (the fleet's crash path runs independently), the controller detects
  the changed assignment and stands down.
* **Hysteresis.**  A per-tenant cooldown, a cap on concurrent
  migrations, and a minimum predicted-gain threshold keep the
  controller from thrashing; the cost model additionally rejects moves
  whose predicted benefit over the remaining horizon does not pay for
  the drain + re-warm disruption.

Determinism: every decision is a pure function of simulation state, and
every state transition is folded into the run's routing digest, so
same-seed replays are byte-identical or the digest catches the drift.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.sim.process import Signal, Timeout, spawn

from .placement import MoveProposal, pair_interference, replan_placement

__all__ = [
    "MigrationPolicy",
    "MigrationCostModel",
    "InterferenceTracker",
    "MigrationRecord",
    "MigrationController",
]

_ROUND = 9


def _r(x: float) -> float:
    return round(float(x), _ROUND)


@dataclass(frozen=True)
class MigrationPolicy:
    """Hysteresis and measurement knobs for the controller.

    ``interval`` is the re-plan period; ``cooldown`` the per-tenant
    quiet time after a completed move; ``max_inflight`` caps concurrent
    migrations fleet-wide; ``min_gain`` is the smallest predicted
    interference reduction worth considering; ``cost_weight`` scales
    the drain+re-warm cost against the gain integrated over the
    remaining horizon.  ``measure_window``/``measure_min_samples``
    bound the per-pair measured-interference window and how many
    samples it needs before measurements override predictions.
    """

    interval: float = 0.02
    cooldown: float = 0.04
    max_inflight: int = 1
    min_gain: float = 0.05
    cost_weight: float = 1.0
    measure_window: int = 32
    measure_min_samples: int = 8

    def __post_init__(self):
        if self.interval <= 0:
            raise ValueError("interval must be > 0")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.min_gain < 0:
            raise ValueError("min_gain must be >= 0")
        if self.measure_window < 1 or self.measure_min_samples < 1:
            raise ValueError("measurement knobs must be >= 1")


@dataclass(frozen=True)
class MigrationCostModel:
    """Prices one move in seconds of disruption.

    Draining costs the queued work at the source (jobs x solo latency);
    re-warming costs shipping the model state to the destination at
    ``rewarm_bandwidth`` bytes/s (PCIe-class by default).  Both are
    *predictions* used to rank moves — the actual timing comes from the
    runtime when the move executes.
    """

    rewarm_bandwidth: float = 12e9

    def drain_seconds(self, queued: int, solo_latency: float) -> float:
        return queued * solo_latency

    def rewarm_seconds(self, state_bytes: int) -> float:
        return state_bytes / self.rewarm_bandwidth

    def cost_seconds(self, queued: int, solo_latency: float,
                     state_bytes: int) -> float:
        return (self.drain_seconds(queued, solo_latency)
                + self.rewarm_seconds(state_bytes))


class InterferenceTracker:
    """Windowed measured interference per co-active tenant pair.

    Each time a job completes while another tenant is active on the
    same GPU, the *excess* normalized latency — ``max(0, observed/solo
    - 1)`` — is attributed to every such pair.  The pairwise estimate
    is the window mean once ``min_samples`` observations exist;
    otherwise the caller falls back to the predicted signature-based
    score.  Keys are unordered pairs, so the estimate is symmetric by
    construction.
    """

    def __init__(self, window: int = 32, min_samples: int = 8):
        self.window = window
        self.min_samples = min_samples
        self._samples: Dict[Tuple[str, str], Deque[float]] = {}

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def observe(self, a: str, b: str, excess: float) -> None:
        key = self._key(a, b)
        window = self._samples.get(key)
        if window is None:
            window = self._samples[key] = deque(maxlen=self.window)
        window.append(max(0.0, excess))

    def measured(self, a: str, b: str) -> Optional[float]:
        window = self._samples.get(self._key(a, b))
        if window is None or len(window) < self.min_samples:
            return None
        return sum(window) / len(window)

    def sample_count(self, a: str, b: str) -> int:
        window = self._samples.get(self._key(a, b))
        return 0 if window is None else len(window)


@dataclass
class MigrationRecord:
    """One migration's full history (reported and digested)."""

    seq: int
    tenant: str
    src: int
    dst: int
    predicted_gain: float
    cost_seconds: float
    source: str  # "measured" | "predicted" (what scored the move)
    started: float
    transitions: List[Tuple[float, str]] = field(default_factory=list)
    outcome: str = "in-flight"
    finished: Optional[float] = None
    final_gpu: Optional[int] = None

    def as_dict(self) -> Dict:
        return {
            "seq": self.seq,
            "tenant": self.tenant,
            "src": self.src,
            "dst": self.dst,
            "predicted_gain": _r(self.predicted_gain),
            "cost_seconds": _r(self.cost_seconds),
            "source": self.source,
            "started": _r(self.started),
            "finished": _r(self.finished) if self.finished is not None
            else None,
            "final_gpu": self.final_gpu,
            "outcome": self.outcome,
            "transitions": [[_r(t), s] for t, s in self.transitions],
        }


class MigrationController:
    """Periodically re-plans placement and executes safe tenant moves.

    Attach to a single-home fleet (``fleet.assignment`` must be set);
    :meth:`start` spawns the tick loop.  All decisions and transitions
    are deterministic and recorded — :meth:`digest_lines` feeds the
    routing digest, :meth:`migration_report` the availability report.
    """

    def __init__(self, fleet, policy: Optional[MigrationPolicy] = None,
                 cost_model: Optional[MigrationCostModel] = None):
        if fleet.assignment is None:
            raise ValueError(
                "migration needs a single-home fleet: pass assignment= "
                "(placement='plan'/'adversarial' at the scenario layer)")
        self.fleet = fleet
        self.sim = fleet.sim
        self.policy = policy or MigrationPolicy()
        self.cost_model = cost_model or MigrationCostModel()
        self.tracker = InterferenceTracker(
            window=self.policy.measure_window,
            min_samples=self.policy.measure_min_samples)
        self.horizon: Optional[float] = None
        self.records: List[MigrationRecord] = []
        self._inflight: Dict[str, MigrationRecord] = {}
        self._last_move: Dict[str, float] = {}
        self._digest: List[str] = []
        self._seq = 0
        self.ticks = 0
        self.rejected_by_cost = 0
        self.measured_decisions = 0
        self.predicted_decisions = 0
        fleet.migration = self

    # -- measurement feed (called by the router on every completion) ----
    def observe_completion(self, worker, norm_latency: float) -> None:
        """Attribute one completion's excess latency to co-active pairs."""
        excess = max(0.0, norm_latency - 1.0)
        tenant = worker.spec.name
        for other, w in worker.gpu.workers.items():
            if other != tenant and not w.dead and w.load > 0:
                self.tracker.observe(tenant, other, excess)

    # -- interference estimate used by the re-planner -------------------
    def pair(self, a: str, b: str) -> float:
        measured = self.tracker.measured(a, b)
        if measured is not None:
            return measured
        return pair_interference(self.fleet.signatures[a],
                                 self.fleet.signatures[b])

    # -- control loop ---------------------------------------------------
    def start(self, horizon: float):
        self.horizon = horizon
        return spawn(self.sim, self._tick_loop(horizon), "migration-ctl")

    def _tick_loop(self, horizon: float):
        while True:
            yield Timeout(self.policy.interval)
            if self.sim.now >= horizon:
                return
            self.ticks += 1
            self._tick()

    def _pinned(self) -> set:
        now = self.sim.now
        pinned = set(self._inflight)
        for tenant, t in self._last_move.items():
            if now - t < self.policy.cooldown:
                pinned.add(tenant)
        return pinned

    def _tick(self) -> None:
        fleet = self.fleet
        budget = self.policy.max_inflight - len(self._inflight)
        if budget <= 0:
            return
        allowed = {g.index for g in fleet.gpus if g.state == "up"}
        if len(allowed) < 2:
            return
        proposals = replan_placement(
            fleet.assignment, fleet.num_gpus, self.pair,
            max_per_gpu=fleet.max_tenants_per_gpu,
            pinned=self._pinned(),
            min_gain=self.policy.min_gain,
            max_moves=budget,
            allowed_gpus=allowed,
        )
        for proposal in proposals:
            if len(self._inflight) >= self.policy.max_inflight:
                break
            self._maybe_execute(proposal)

    def _maybe_execute(self, proposal: MoveProposal) -> None:
        fleet = self.fleet
        tenant = proposal.tenant
        # The plan was computed against a snapshot; re-validate live.
        if fleet.assignment.get(tenant) != proposal.src:
            return
        src_gpu = fleet.gpus[proposal.src]
        dst_gpu = fleet.gpus[proposal.dst]
        if dst_gpu.state != "up":
            return
        worker = src_gpu.workers.get(tenant)
        spec = fleet.tenant(tenant)
        queued = worker.load if worker is not None else 0
        cost = self.cost_model.cost_seconds(
            queued, fleet.solo_latency[spec.model],
            fleet.plans[spec.model].state_bytes)
        remaining = ((self.horizon - self.sim.now)
                     if self.horizon is not None else self.policy.interval)
        if proposal.gain * remaining <= self.policy.cost_weight * cost:
            self.rejected_by_cost += 1
            if fleet.tracer.enabled:
                fleet.tracer.instant(
                    "migration", "rejected_by_cost", tenant=tenant,
                    src=proposal.src, dst=proposal.dst,
                    gain=_r(proposal.gain), cost=_r(cost))
            return
        source = ("measured"
                  if self._scored_by_measurement(tenant, proposal.src)
                  else "predicted")
        if source == "measured":
            self.measured_decisions += 1
        else:
            self.predicted_decisions += 1
        self._seq += 1
        record = MigrationRecord(
            seq=self._seq, tenant=tenant, src=proposal.src,
            dst=proposal.dst, predicted_gain=proposal.gain,
            cost_seconds=cost, source=source, started=self.sim.now)
        self.records.append(record)
        self._inflight[tenant] = record
        self._transition(record, "planned")
        self.fleet.metrics.counter("fleet_migrations_started").inc()
        spawn(self.sim, self._execute(record),
              f"migrate-{tenant}-{self._seq}")

    def _scored_by_measurement(self, tenant: str, src: int) -> bool:
        """True when any co-resident pair at the source had enough
        samples for the measured estimate to drive the decision."""
        for other, w in self.fleet.gpus[src].workers.items():
            if other != tenant and not w.dead \
                    and self.tracker.measured(tenant, other) is not None:
                return True
        return False

    # -- the state machine ----------------------------------------------
    def _transition(self, record: MigrationRecord, state: str) -> None:
        now = self.sim.now
        record.transitions.append((now, state))
        self._digest.append(
            f"m:{now:.9f}:{record.seq}:{record.tenant}:"
            f"{record.src}->{record.dst}:{state}")
        if self.fleet.tracer.enabled:
            self.fleet.tracer.instant(
                "migration", state, tenant=record.tenant,
                src=record.src, dst=record.dst, seq=record.seq)

    def _finish(self, record: MigrationRecord, outcome: str,
                final_gpu: Optional[int]) -> None:
        record.outcome = outcome
        record.finished = self.sim.now
        record.final_gpu = final_gpu
        self._transition(record, outcome)
        self._inflight.pop(record.tenant, None)
        self._last_move[record.tenant] = self.sim.now
        self.fleet.metrics.counter(
            f"fleet_migrations_{outcome.replace('-', '_')}").inc()
        if self.fleet.tracer.enabled:
            self.fleet.tracer.span(
                "migration", f"migrate:{record.tenant}",
                record.started, self.sim.now,
                outcome=outcome, src=record.src, dst=record.dst)
        self.fleet.router.pump()

    def _execute(self, record: MigrationRecord):
        fleet = self.fleet
        router = fleet.router
        tenant = record.tenant
        src, dst = record.src, record.dst

        # cordon: no new dispatches to the source while we move.
        router.cordon(tenant, src)
        self._transition(record, "cordoned")
        try:
            worker = fleet.gpus[src].workers.get(tenant)
            if worker is None or worker.dead:
                # The source died between planning and execution; the
                # crash path (reclaim + re-home) already owns the jobs.
                self._finish(record, "failed", fleet.assignment.get(tenant))
                return

            # drain: queued jobs go straight back to the router (same
            # objects, same event — no accounting gap); the in-flight
            # job finishes on the source.
            self._transition(record, "draining")
            worker.drain_signal = Signal(self.sim)
            router.requeue(worker.drain())
            if worker.current is not None and not worker.dead:
                yield worker.drain_signal

            if worker.dead or fleet.assignment.get(tenant) != src:
                # Source crashed mid-drain; reclaim/re-home handled it.
                self._finish(record, "rerouted", fleet.assignment.get(tenant))
                return

            # move: tear the source worker down through the normal
            # deregister path and flip the tenant's home.
            self._transition(record, "moving")
            leftovers = fleet.remove_worker(tenant, src)
            if leftovers:
                router.requeue(leftovers)
            fleet.assignment[tenant] = dst

            if fleet.gpus[dst].state != "up":
                yield from self._unwind(record, src)
                return

            # rewarm: spawn the destination worker and wait for its
            # model state to be resident.
            self._transition(record, "rewarming")
            new_worker = fleet.add_worker(tenant, dst)
            if not new_worker.warm:
                new_worker.warm_signal = Signal(self.sim)
                yield new_worker.warm_signal

            if fleet.assignment.get(tenant) != dst:
                # Destination crashed mid-warm; the crash path already
                # re-homed the tenant somewhere healthy.
                self._finish(record, "rerouted", fleet.assignment.get(tenant))
                return
            if new_worker.dead or fleet.gpus[dst].state != "up":
                yield from self._unwind(record, src)
                return

            self._finish(record, "completed", dst)
        finally:
            router.uncordon(tenant, src)
            router.pump()

    def _unwind(self, record: MigrationRecord, src: int):
        """Destination unusable mid-move: go back (or somewhere healthy).

        *rolled-back* when the original source still works; *rerouted*
        to the best healthy GPU otherwise; *failed* when nothing is up
        (the assignment keeps pointing at the destination so its
        eventual recovery boot restores the worker).
        """
        fleet = self.fleet
        tenant = record.tenant
        target: Optional[int] = None
        outcome = "failed"
        if fleet.gpus[src].state == "up":
            target, outcome = src, "rolled-back"
        else:
            best = fleet.rehome_tenant(tenant,
                                       exclude=frozenset((record.dst,)))
            if best is not None:
                target, outcome = best, "rerouted"
        if target is not None:
            fleet.assignment[tenant] = target
            worker = fleet.add_worker(tenant, target)
            if not worker.warm and not worker.dead:
                worker.warm_signal = Signal(self.sim)
                yield worker.warm_signal
        self._finish(record, outcome, fleet.assignment.get(tenant))

    # -- accounting hooks -----------------------------------------------
    def drain_in_transit(self) -> List:
        """Jobs the controller is holding at the horizon (always empty:
        drains requeue synchronously — kept as the accounting hook so
        :meth:`Fleet.drain_unfinished` stays total by construction)."""
        return []

    def digest_lines(self) -> List[str]:
        """Migration transitions for the routing digest (event order)."""
        return list(self._digest)

    def migration_report(self) -> Dict:
        outcomes = {"completed": 0, "rolled-back": 0, "rerouted": 0,
                    "failed": 0, "in-flight": 0}
        net_gain = 0.0
        for record in self.records:
            outcomes[record.outcome] += 1
            if record.outcome == "completed":
                net_gain += record.predicted_gain
        return {
            "started": len(self.records),
            "ticks": self.ticks,
            "completed": outcomes["completed"],
            "rolled_back": outcomes["rolled-back"],
            "rerouted": outcomes["rerouted"],
            "failed": outcomes["failed"],
            "in_flight": outcomes["in-flight"],
            "rejected_by_cost": self.rejected_by_cost,
            "requeued_jobs": self.fleet.router.migration_requeues,
            "re_homed": self.fleet.re_homed,
            "measured_decisions": self.measured_decisions,
            "predicted_decisions": self.predicted_decisions,
            "net_predicted_gain": _r(net_gain),
            "records": [r.as_dict() for r in self.records],
        }
