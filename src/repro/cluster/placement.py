"""Interference-aware cluster placement (paper §7 co-design extension).

The discussion section proposes that a cluster manager use each job's
compute/memory kernel profiles to place jobs with *complementary*
resource profiles on the same GPU.  This module implements that
proposal on top of the offline profiles:

1. Each job gets a demand *signature* — its time-weighted compute and
   memory-bandwidth utilization over one request/iteration.
2. Pairwise interference is estimated as the cosine similarity of the
   signatures weighted by their combined load (the same quantity the
   device contention model penalizes).
3. A greedy matcher packs the job list onto GPUs, always pairing the
   currently heaviest unplaced job with its most complementary partner.

The output names which jobs share each GPU and predicts the
interference score, so a scheduler like Orion runs where it helps most.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    AbstractSet,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.profiler.profiles import ModelProfile

__all__ = ["JobSignature", "signature_of", "pair_interference",
           "plan_placement", "Placement", "MoveProposal",
           "replan_placement", "adversarial_assignment"]


@dataclass(frozen=True)
class JobSignature:
    """Time-weighted resource demand of one job."""

    name: str
    compute: float
    memory: float
    busy_time: float  # seconds of kernel time per request/iteration

    @property
    def magnitude(self) -> float:
        return math.hypot(self.compute, self.memory)


def signature_of(profile: ModelProfile, name: Optional[str] = None) -> JobSignature:
    """Aggregate a model profile into a demand signature."""
    kernels = list(profile.kernels.values())
    if not kernels:
        raise ValueError(f"profile {profile.model_name!r} has no kernels")
    total = sum(k.duration for k in kernels)
    compute = sum(k.compute_util * k.duration for k in kernels) / total
    memory = sum(k.memory_util * k.duration for k in kernels) / total
    return JobSignature(
        name=name or f"{profile.model_name}:{profile.kind}",
        compute=compute,
        memory=memory,
        busy_time=total,
    )


def pair_interference(a: JobSignature, b: JobSignature) -> float:
    """Predicted interference of collocating two jobs (0 = free, 1 = worst).

    Cosine similarity of the demand vectors, scaled by how much combined
    load the pair brings: two similar but tiny jobs still share fine.
    """
    if a.magnitude == 0 or b.magnitude == 0:
        return 0.0
    cosine = (a.compute * b.compute + a.memory * b.memory) / (
        a.magnitude * b.magnitude
    )
    load = min(1.0, (a.compute + b.compute + a.memory + b.memory) / 2.0)
    return cosine * load


@dataclass
class Placement:
    """One GPU's job set with its predicted interference."""

    gpu: int
    jobs: List[JobSignature]
    interference: float


def plan_placement(jobs: Sequence[JobSignature], num_gpus: int,
                   max_per_gpu: int = 2) -> List[Placement]:
    """Greedy complementary-pair packing.

    Heaviest job first; each is paired with the unplaced job that
    minimizes predicted interference, until GPUs or jobs run out.
    Raises if the jobs cannot fit in ``num_gpus * max_per_gpu`` slots.
    """
    if num_gpus < 1 or max_per_gpu < 1:
        raise ValueError("need at least one GPU slot")
    if len(jobs) > num_gpus * max_per_gpu:
        raise ValueError(
            f"{len(jobs)} jobs do not fit on {num_gpus} GPUs "
            f"x {max_per_gpu} slots"
        )
    remaining = sorted(jobs, key=lambda j: j.magnitude, reverse=True)
    placements: List[Placement] = []
    gpu = 0
    while remaining and gpu < num_gpus:
        anchor = remaining.pop(0)
        group = [anchor]
        # Fill the GPU with the most complementary partners, unless
        # leaving them for an empty GPU is strictly better (interference
        # zero) and there is room.
        gpus_left_after = num_gpus - gpu - 1
        while len(group) < max_per_gpu and remaining:
            if gpus_left_after * max_per_gpu >= len(remaining):
                # Everything left fits on fresh GPUs; stop packing.
                break
            best_index = min(
                range(len(remaining)),
                key=lambda i: pair_interference(anchor, remaining[i]),
            )
            group.append(remaining.pop(best_index))
        interference = 0.0
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                interference = max(interference, pair_interference(a, b))
        placements.append(Placement(gpu=gpu, jobs=group,
                                    interference=interference))
        gpu += 1
    if remaining:
        raise ValueError("ran out of GPUs while jobs remain (internal error)")
    return placements


# ---------------------------------------------------------------------------
# Incremental re-planning over an existing assignment (live migration)


@dataclass(frozen=True)
class MoveProposal:
    """One proposed tenant move with its predicted interference gain.

    ``gain`` is the reduction in the summed pairwise interference of the
    whole assignment if the tenant moves from ``src`` to ``dst`` (with
    every other tenant staying put): positive means the move helps.
    """

    tenant: str
    src: int
    dst: int
    gain: float


def replan_placement(
    assignment: Mapping[str, int],
    num_gpus: int,
    interference: Callable[[str, str], float],
    max_per_gpu: int = 2,
    pinned: AbstractSet[str] = frozenset(),
    min_gain: float = 0.0,
    max_moves: Optional[int] = None,
    allowed_gpus: Optional[AbstractSet[int]] = None,
) -> List[MoveProposal]:
    """Greedy incremental re-plan over the *current* residents.

    Unlike :func:`plan_placement` — which packs a fresh job list from
    scratch — this starts from a live ``tenant -> gpu`` assignment and
    proposes individual moves, so a running fleet can converge without
    tearing everything down.  ``interference`` is a symmetric pairwise
    callable (measured interference where available, predicted
    signatures as the fallback).  ``pinned`` tenants never move
    (cooldown, in-flight migrations); ``allowed_gpus`` restricts move
    *destinations* (healthy GPUs only — sources may be anywhere).

    Moves are found greedily: the single best move (largest gain, ties
    broken on tenant name then destination index, so the plan is a pure
    function of its inputs) is applied to a working copy and the search
    repeats, until no move gains at least ``min_gain`` or ``max_moves``
    proposals have been emitted.
    """
    if num_gpus < 1 or max_per_gpu < 1:
        raise ValueError("need at least one GPU slot")
    working: Dict[str, int] = dict(assignment)
    for tenant, gpu in working.items():
        if not 0 <= gpu < num_gpus:
            raise ValueError(f"tenant {tenant!r} assigned to gpu {gpu} "
                             f"outside the {num_gpus}-GPU fleet")
    destinations = (set(range(num_gpus)) if allowed_gpus is None
                    else {g for g in allowed_gpus if 0 <= g < num_gpus})
    proposals: List[MoveProposal] = []
    while max_moves is None or len(proposals) < max_moves:
        residents: Dict[int, List[str]] = {}
        for tenant, gpu in working.items():
            residents.setdefault(gpu, []).append(tenant)
        best: Optional[MoveProposal] = None
        for tenant in sorted(working):
            if tenant in pinned:
                continue
            src = working[tenant]
            # Interference the tenant currently contributes at its source.
            src_cost = sum(interference(tenant, other)
                           for other in residents.get(src, ())
                           if other != tenant)
            for dst in sorted(destinations):
                if dst == src:
                    continue
                occupants = residents.get(dst, ())
                if len(occupants) >= max_per_gpu:
                    continue
                dst_cost = sum(interference(tenant, other)
                               for other in occupants)
                gain = src_cost - dst_cost
                if gain < min_gain:
                    continue
                candidate = MoveProposal(tenant, src, dst, gain)
                if best is None or (-candidate.gain, candidate.tenant,
                                    candidate.dst) < (-best.gain,
                                                      best.tenant, best.dst):
                    best = candidate
        if best is None:
            break
        proposals.append(best)
        working[best.tenant] = best.dst
    return proposals


def adversarial_assignment(
    signatures: Mapping[str, "JobSignature"],
    num_gpus: int,
    max_per_gpu: int = 2,
) -> Dict[str, int]:
    """Deliberately *bad* packing: most-interfering partners together.

    The mirror image of :func:`plan_placement` — heaviest unplaced job
    anchors a GPU, then the partner that *maximizes* pairwise
    interference fills it, even while other GPUs sit empty.  Used to
    seed migration benchmarks with a placement worth unwinding.
    """
    if num_gpus < 1 or max_per_gpu < 1:
        raise ValueError("need at least one GPU slot")
    if len(signatures) > num_gpus * max_per_gpu:
        raise ValueError(
            f"{len(signatures)} jobs do not fit on {num_gpus} GPUs "
            f"x {max_per_gpu} slots")
    remaining = sorted(signatures,
                       key=lambda n: (-signatures[n].magnitude, n))
    assignment: Dict[str, int] = {}
    gpu = 0
    while remaining:
        anchor = remaining.pop(0)
        assignment[anchor] = gpu
        group = 1
        while group < max_per_gpu and remaining:
            partner = min(
                remaining,
                key=lambda n: (-pair_interference(signatures[anchor],
                                                  signatures[n]), n))
            remaining.remove(partner)
            assignment[partner] = gpu
            group += 1
        gpu += 1
    return assignment


def placement_summary(placements: List[Placement]) -> List[Tuple[int, str, float]]:
    """(gpu, 'job+job', interference) rows for display."""
    rows = []
    for p in placements:
        rows.append((p.gpu, " + ".join(j.name for j in p.jobs),
                     round(p.interference, 3)))
    return rows
