"""Interference-aware cluster placement (paper §7 co-design extension).

The discussion section proposes that a cluster manager use each job's
compute/memory kernel profiles to place jobs with *complementary*
resource profiles on the same GPU.  This module implements that
proposal on top of the offline profiles:

1. Each job gets a demand *signature* — its time-weighted compute and
   memory-bandwidth utilization over one request/iteration.
2. Pairwise interference is estimated as the cosine similarity of the
   signatures weighted by their combined load (the same quantity the
   device contention model penalizes).
3. A greedy matcher packs the job list onto GPUs, always pairing the
   currently heaviest unplaced job with its most complementary partner.

The output names which jobs share each GPU and predicts the
interference score, so a scheduler like Orion runs where it helps most.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.profiler.profiles import ModelProfile

__all__ = ["JobSignature", "signature_of", "pair_interference",
           "plan_placement", "Placement"]


@dataclass(frozen=True)
class JobSignature:
    """Time-weighted resource demand of one job."""

    name: str
    compute: float
    memory: float
    busy_time: float  # seconds of kernel time per request/iteration

    @property
    def magnitude(self) -> float:
        return math.hypot(self.compute, self.memory)


def signature_of(profile: ModelProfile, name: Optional[str] = None) -> JobSignature:
    """Aggregate a model profile into a demand signature."""
    kernels = list(profile.kernels.values())
    if not kernels:
        raise ValueError(f"profile {profile.model_name!r} has no kernels")
    total = sum(k.duration for k in kernels)
    compute = sum(k.compute_util * k.duration for k in kernels) / total
    memory = sum(k.memory_util * k.duration for k in kernels) / total
    return JobSignature(
        name=name or f"{profile.model_name}:{profile.kind}",
        compute=compute,
        memory=memory,
        busy_time=total,
    )


def pair_interference(a: JobSignature, b: JobSignature) -> float:
    """Predicted interference of collocating two jobs (0 = free, 1 = worst).

    Cosine similarity of the demand vectors, scaled by how much combined
    load the pair brings: two similar but tiny jobs still share fine.
    """
    if a.magnitude == 0 or b.magnitude == 0:
        return 0.0
    cosine = (a.compute * b.compute + a.memory * b.memory) / (
        a.magnitude * b.magnitude
    )
    load = min(1.0, (a.compute + b.compute + a.memory + b.memory) / 2.0)
    return cosine * load


@dataclass
class Placement:
    """One GPU's job set with its predicted interference."""

    gpu: int
    jobs: List[JobSignature]
    interference: float


def plan_placement(jobs: Sequence[JobSignature], num_gpus: int,
                   max_per_gpu: int = 2) -> List[Placement]:
    """Greedy complementary-pair packing.

    Heaviest job first; each is paired with the unplaced job that
    minimizes predicted interference, until GPUs or jobs run out.
    Raises if the jobs cannot fit in ``num_gpus * max_per_gpu`` slots.
    """
    if num_gpus < 1 or max_per_gpu < 1:
        raise ValueError("need at least one GPU slot")
    if len(jobs) > num_gpus * max_per_gpu:
        raise ValueError(
            f"{len(jobs)} jobs do not fit on {num_gpus} GPUs "
            f"x {max_per_gpu} slots"
        )
    remaining = sorted(jobs, key=lambda j: j.magnitude, reverse=True)
    placements: List[Placement] = []
    gpu = 0
    while remaining and gpu < num_gpus:
        anchor = remaining.pop(0)
        group = [anchor]
        # Fill the GPU with the most complementary partners, unless
        # leaving them for an empty GPU is strictly better (interference
        # zero) and there is room.
        gpus_left_after = num_gpus - gpu - 1
        while len(group) < max_per_gpu and remaining:
            if gpus_left_after * max_per_gpu >= len(remaining):
                # Everything left fits on fresh GPUs; stop packing.
                break
            best_index = min(
                range(len(remaining)),
                key=lambda i: pair_interference(anchor, remaining[i]),
            )
            group.append(remaining.pop(best_index))
        interference = 0.0
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                interference = max(interference, pair_interference(a, b))
        placements.append(Placement(gpu=gpu, jobs=group,
                                    interference=interference))
        gpu += 1
    if remaining:
        raise ValueError("ran out of GPUs while jobs remain (internal error)")
    return placements


def placement_summary(placements: List[Placement]) -> List[Tuple[int, str, float]]:
    """(gpu, 'job+job', interference) rows for display."""
    rows = []
    for p in placements:
        rows.append((p.gpu, " + ".join(j.name for j in p.jobs),
                     round(p.interference, 3)))
    return rows
