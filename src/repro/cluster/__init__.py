"""Cluster-manager co-design (paper §7): interference-aware placement."""

from .placement import (
    JobSignature,
    Placement,
    pair_interference,
    plan_placement,
    placement_summary,
    signature_of,
)

__all__ = [
    "JobSignature",
    "Placement",
    "signature_of",
    "pair_interference",
    "plan_placement",
    "placement_summary",
]
