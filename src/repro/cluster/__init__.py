"""Cluster-manager co-design (paper §7): interference-aware placement
and the multi-GPU resilience fleet built on top of it."""

from .fleet import (
    Fleet,
    FleetGpu,
    FleetJob,
    FleetResult,
    FleetRouter,
    GpuHealth,
    TenantPolicy,
    TenantSpec,
    availability_report,
    run_fleet_scenario,
)
from .migration import (
    InterferenceTracker,
    MigrationController,
    MigrationCostModel,
    MigrationPolicy,
)
from .placement import (
    JobSignature,
    MoveProposal,
    Placement,
    adversarial_assignment,
    pair_interference,
    plan_placement,
    placement_summary,
    replan_placement,
    signature_of,
)

__all__ = [
    "JobSignature",
    "MoveProposal",
    "Placement",
    "signature_of",
    "pair_interference",
    "plan_placement",
    "replan_placement",
    "adversarial_assignment",
    "placement_summary",
    "InterferenceTracker",
    "MigrationController",
    "MigrationCostModel",
    "MigrationPolicy",
    "Fleet",
    "FleetGpu",
    "FleetJob",
    "FleetResult",
    "FleetRouter",
    "GpuHealth",
    "TenantPolicy",
    "TenantSpec",
    "availability_report",
    "run_fleet_scenario",
]
