"""Cluster-manager co-design (paper §7): interference-aware placement
and the multi-GPU resilience fleet built on top of it."""

from .fleet import (
    Fleet,
    FleetGpu,
    FleetJob,
    FleetResult,
    FleetRouter,
    GpuHealth,
    TenantPolicy,
    TenantSpec,
    availability_report,
    run_fleet_scenario,
)
from .placement import (
    JobSignature,
    Placement,
    pair_interference,
    plan_placement,
    placement_summary,
    signature_of,
)

__all__ = [
    "JobSignature",
    "Placement",
    "signature_of",
    "pair_interference",
    "plan_placement",
    "placement_summary",
    "Fleet",
    "FleetGpu",
    "FleetJob",
    "FleetResult",
    "FleetRouter",
    "GpuHealth",
    "TenantPolicy",
    "TenantSpec",
    "availability_report",
    "run_fleet_scenario",
]
