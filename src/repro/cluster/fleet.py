"""Fleet-scale resilience: N GPUs, one shared arrival stream, failover.

The cluster-placement module (§7 co-design) answers *where jobs should
live*; this module answers *what happens when the GPU they live on
dies*.  A :class:`Fleet` simulates ``num_gpus`` independent GPUs, each
running its own backend instance (Orion by default) with one resident
worker per tenant.  A shared arrival stream per tenant feeds a central
:class:`FleetRouter` that places every request on a GPU, scoring
candidates by queue depth, predicted interference (the placement
module's :func:`~repro.cluster.placement.pair_interference` between the
tenant's demand signature and the signatures already active on the
GPU), and a windowed health score.

Fleet-level faults come from the existing
:class:`~repro.faults.plan.FaultPlan` machinery — ``GpuCrash``,
``GpuDegrade`` and ``GpuRecover`` events executed by the
:class:`~repro.faults.injector.FaultInjector` with the fleet as its
target:

* **crash** — every resident worker is torn down through the normal
  ``deregister_client`` path (queues drained, streams destroyed); its
  queued and in-flight jobs are reclaimed by the router and re-admitted
  on healthy GPUs with bounded retries and exponential backoff.
* **degrade** — the device's kernel rates are scaled down; nothing is
  *told* about it: the health tracker must observe the rising service
  latencies and demote the GPU in routing.
* **recover** — a crashed GPU boots fresh (new device, new backend,
  new workers) and rejoins the routable set; a degraded GPU's slowdown
  clears.

Per-tenant policy knobs (:class:`TenantPolicy`) bound each tenant's
fleet-wide concurrency and router queue and grant priority boosts,
modeled on the ``tenant_gpu_policies`` idiom of multi-tenant GPU
operators.  The run's availability report aggregates the per-GPU
:class:`~repro.metrics.availability.ErrorLedger` entries into fleet
uptime fractions, failover counts, re-admission success and mean time
to recover.  Fully deterministic under (seed, arguments): same-seed
runs serialize byte-identically, including fault timing and every
routing decision (digested in the canonical output).
"""

from __future__ import annotations

import hashlib
from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.baselines import PriorityStreamsBackend, ReefBackend, StreamsBackend
from repro.core import OrionBackend, OrionConfig
from repro.experiments.runner import get_profile
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, GpuCrash, GpuDegrade, GpuRecover
from repro.frameworks.lowering import instantiate_plan
from repro.gpu.device import GpuDevice
from repro.gpu.specs import DeviceSpec, get_device
from repro.metrics.availability import ErrorLedger
from repro.metrics.latency import LatencySummary, summarize_latencies
from repro.profiler.profiles import ProfileStore
from repro.runtime.client import ClientContext
from repro.runtime.host import HostGil, HostThread
from repro.sim.engine import Simulator
from repro.sim.process import Interrupted, Process, Signal, Timeout, spawn
from repro.sim.rng import RngFactory
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import NULL_TRACER, TelemetryConfig
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.clients import ClientStats, RequestRecord
from repro.workloads.registry import build_plan

from .placement import (
    JobSignature,
    adversarial_assignment,
    pair_interference,
    plan_placement,
    signature_of,
)

__all__ = [
    "TenantPolicy",
    "TenantSpec",
    "FleetJob",
    "GpuHealth",
    "FleetGpu",
    "FleetRouter",
    "Fleet",
    "FleetResult",
    "run_fleet_scenario",
]

_ROUND = 9


def _r(x: float) -> float:
    return round(float(x), _ROUND)


# ---------------------------------------------------------------------------
# Tenants and jobs


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant routing/admission knobs enforced at the fleet router.

    ``max_concurrency`` bounds the tenant's fleet-wide dispatched jobs
    (queued-on-GPU plus in service); excess requests wait in the router
    backlog.  ``max_queued`` bounds that backlog — requests arriving
    past it are shed (rejected at admission, never tried).
    ``priority_boost`` is added to the tenant's base priority (1 for
    high-priority tenants, 0 otherwise) when ordering the backlog.
    Failover is bounded: an orphaned job is re-admitted at most
    ``max_retries`` times, with exponential backoff from
    ``backoff_base`` capped at ``backoff_cap`` seconds.
    """

    max_concurrency: Optional[int] = None
    max_queued: Optional[int] = None
    priority_boost: float = 0.0
    max_retries: int = 3
    backoff_base: float = 2e-3
    backoff_cap: float = 5e-2

    def __post_init__(self):
        if self.max_concurrency is not None and self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1 (or None)")
        if self.max_queued is not None and self.max_queued < 0:
            raise ValueError("max_queued must be >= 0 (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base <= 0 or self.backoff_cap <= 0:
            raise ValueError("backoff values must be > 0")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a model served fleet-wide at an aggregate rate."""

    name: str
    model: str = "mobilenet_v2"
    rps: float = 100.0
    high_priority: bool = False
    policy: TenantPolicy = field(default_factory=TenantPolicy)

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.rps <= 0:
            raise ValueError("tenant rps must be > 0")


class FleetJob:
    """One request travelling through the fleet (routable unit)."""

    __slots__ = ("tenant", "seq", "arrival", "attempts", "gpus",
                 "_counted_readmit")

    def __init__(self, tenant: str, seq: int, arrival: float):
        self.tenant = tenant
        self.seq = seq
        self.arrival = arrival
        self.attempts = 0          # completed failovers so far
        self.gpus: List[int] = []  # every GPU this job was dispatched to
        self._counted_readmit = False


# ---------------------------------------------------------------------------
# Health tracking


class GpuHealth:
    """Windowed health score from observed outcomes, in [0, 1].

    The score is the recent success fraction scaled by a latency term:
    1 while the mean normalized service time (observed / solo) stays
    under ``latency_tolerance``, then decaying as ``tolerance / mean``.
    A degraded GPU is never *told* it is slow — its inflated service
    times push the score down, which is what demotes it in routing.
    """

    def __init__(self, window: int = 32, latency_tolerance: float = 2.0):
        if window < 1:
            raise ValueError("window must be >= 1")
        if latency_tolerance <= 0:
            raise ValueError("latency_tolerance must be > 0")
        self.latency_tolerance = latency_tolerance
        self._ok: Deque[float] = deque(maxlen=window)
        self._latency: Deque[float] = deque(maxlen=window)

    def reset(self) -> None:
        """Forget the window (a recovered GPU starts with a clean slate:
        stale inflated-latency samples must not keep it demoted)."""
        self._ok.clear()
        self._latency.clear()

    def observe(self, ok: bool, norm_latency: Optional[float] = None) -> None:
        self._ok.append(1.0 if ok else 0.0)
        if norm_latency is not None:
            self._latency.append(norm_latency)

    def score(self) -> float:
        if not self._ok:
            return 1.0
        ok = sum(self._ok) / len(self._ok)
        scale = 1.0
        if self._latency:
            mean = sum(self._latency) / len(self._latency)
            if mean > self.latency_tolerance:
                scale = self.latency_tolerance / mean
        return ok * scale


# ---------------------------------------------------------------------------
# Per-GPU machinery


class _TenantWorker:
    """One tenant's resident serving process on one GPU.

    Mirrors :class:`~repro.workloads.clients.InferenceClient`'s serve
    loop, but jobs arrive from the fleet router instead of a private
    arrival process, and completion/failure is reported back to the
    router so it can account health, stats, and failover.
    """

    def __init__(self, fleet: "Fleet", gpu: "FleetGpu", spec: TenantSpec,
                 ctx: ClientContext):
        self.fleet = fleet
        self.sim = fleet.sim
        self.gpu = gpu
        self.spec = spec
        self.ctx = ctx
        self.plan = fleet.plans[spec.model]
        self.pending: Deque[FleetJob] = deque()
        self.current: Optional[FleetJob] = None
        self.dead = False
        # Warm once model state is resident on the device (the malloc at
        # the top of the serve loop); migrations wait on this before
        # uncordoning the tenant.
        self.warm = False
        self.warm_signal: Optional[Signal] = None
        # Draining: the worker finishes its in-flight job but accepts
        # nothing new; the migration state machine waits on drain_signal.
        self.draining = False
        self.drain_signal: Optional[Signal] = None
        self._work = Signal(fleet.sim)
        self._process: Optional[Process] = None

    def start(self) -> None:
        self._process = spawn(
            self.sim, self._loop(),
            f"{self.spec.name}@gpu{self.gpu.index}")

    @property
    def load(self) -> int:
        return len(self.pending) + (1 if self.current is not None else 0)

    def submit(self, job: FleetJob) -> None:
        self.pending.append(job)
        if not self._work.triggered:
            self._work.trigger()

    def drain(self) -> List[FleetJob]:
        """Stop accepting work; return the queued (not yet started) jobs.

        The in-flight job (if any) keeps running — :meth:`notify_idle`
        fires ``drain_signal`` once it completes.
        """
        self.draining = True
        jobs = list(self.pending)
        self.pending.clear()
        return jobs

    def notify_idle(self) -> None:
        """Wake a drain waiter once the in-flight job is gone."""
        if self.drain_signal is not None and not self.drain_signal.triggered:
            self.drain_signal.trigger()

    def _notify_warm(self) -> None:
        if self.warm_signal is not None and not self.warm_signal.triggered:
            self.warm_signal.trigger()

    def shutdown(self) -> List[FleetJob]:
        """Tear the worker down (GPU crash); return its reclaimed jobs."""
        self.dead = True
        jobs: List[FleetJob] = []
        if self.current is not None:
            jobs.append(self.current)
            self.current = None
        jobs.extend(self.pending)
        self.pending.clear()
        if self._process is not None and self._process.alive:
            self._process.interrupt("gpu crashed")
        self.ctx.close()
        self._notify_warm()
        self.notify_idle()
        return jobs

    def _loop(self):
        try:
            done = yield from self.ctx.malloc(self.plan.state_bytes)
            if done.error is not None:
                self._die()
                return
            self.warm = True
            self._notify_warm()
            while True:
                while not self.pending:
                    self._work = Signal(self.sim)
                    yield self._work
                    if self.dead:
                        return
                job = self.pending.popleft()
                self.current = job
                yield from self.ctx.begin_request()
                start = self.sim.now
                ops = instantiate_plan(self.plan, self.fleet.device_spec,
                                       client_id=self.ctx.client_id)
                for op in ops:
                    if op.is_kernel:
                        yield from self.ctx.launch_kernel(op)
                    else:
                        yield from self.ctx.memcpy(op.nbytes, op.kind,
                                                   blocking=op.blocking)
                yield from self.ctx.synchronize()
                self.ctx.end_request()
                if self.ctx.closed or self.ctx.poisoned:
                    # Sticky error mid-request that was not a fleet
                    # crash (those interrupt the loop): the worker dies
                    # and its jobs fail over like a crash's would.
                    self._die()
                    return
                self.current = None
                self.fleet.router.on_complete(self, job, start, self.sim.now)
        except Interrupted:
            return  # crash path: shutdown() already reclaimed the jobs

    def _die(self) -> None:
        self.dead = True
        jobs: List[FleetJob] = []
        if self.current is not None:
            jobs.append(self.current)
            self.current = None
        jobs.extend(self.pending)
        self.pending.clear()
        self.ctx.close()
        self._notify_warm()
        self.notify_idle()
        self.fleet.router.on_worker_death(self, jobs)


class FleetGpu:
    """One simulated GPU: its device, backend instance, and workers."""

    def __init__(self, fleet: "Fleet", index: int):
        self.fleet = fleet
        self.index = index
        self.state = "down"  # boot() flips to "up"
        self.device: Optional[GpuDevice] = None
        self.backend = None
        self.gil: Optional[HostGil] = None
        self.workers: Dict[str, _TenantWorker] = {}
        self.health = GpuHealth(
            window=fleet.health_window,
            latency_tolerance=fleet.health_latency_tolerance)
        self.crashes = 0
        self.recoveries = 0
        self.jobs_completed = 0

    @property
    def routable(self) -> bool:
        return self.state != "down"

    def queue_depth(self) -> int:
        return sum(w.load for w in self.workers.values())

    def boot(self) -> None:
        """Build a fresh device + backend and (re)spawn tenant workers.

        With an assignment in force, only the tenants homed on this GPU
        get workers; otherwise (the default all-resident fleet) every
        tenant is resident everywhere.
        """
        fleet = self.fleet
        self.device = GpuDevice(fleet.sim, fleet.device_spec)
        self.backend = fleet.make_backend(fleet.sim, self.device)
        self.backend.set_telemetry(tracer=fleet.tracer)
        self.gil = HostGil(fleet.sim)
        self.workers = {}
        self.backend.start()
        for spec in fleet.tenants:
            if (fleet.assignment is None
                    or fleet.assignment.get(spec.name) == self.index):
                self.spawn_worker(spec)
        self.state = "up"

    def spawn_worker(self, spec: TenantSpec) -> _TenantWorker:
        """Create and start one tenant's resident worker on this GPU."""
        host = HostThread(
            self.fleet.sim, gil=self.gil,
            interception_overhead=self.backend.interception_overhead())
        ctx = ClientContext(self.backend, f"{spec.name}@gpu{self.index}",
                            host, high_priority=spec.high_priority,
                            kind="inference")
        worker = _TenantWorker(self.fleet, self, spec, ctx)
        self.workers[spec.name] = worker
        worker.start()
        return worker

    def crash(self) -> List[FleetJob]:
        """Tear every worker down; return all reclaimed jobs."""
        self.state = "down"
        self.crashes += 1
        orphans: List[FleetJob] = []
        for spec in self.fleet.tenants:  # deterministic tenant order
            worker = self.workers.get(spec.name)
            if worker is not None:
                orphans.extend(worker.shutdown())
        self.workers = {}
        self.device = None
        self.backend = None
        self.gil = None
        return orphans

    def degrade(self, slowdown: float) -> None:
        if self.device is not None:
            self.device.set_slowdown(slowdown)
            self.state = "degraded"

    def recover(self) -> None:
        if self.state == "down":
            self.health.reset()
            self.boot()
            self.recoveries += 1
        elif self.state == "degraded" and self.device is not None:
            self.device.set_slowdown(1.0)
            self.state = "up"
            # The slowdown is gone, but the health window still holds
            # the inflated-latency samples it produced — without a
            # reset the GPU stays demoted in routing until the window
            # rolls over (the down->boot path already starts clean).
            self.health.reset()
            self.recoveries += 1


# ---------------------------------------------------------------------------
# Routing


class FleetRouter:
    """Places every job on a GPU; owns backlog, policy, and failover.

    Candidate GPUs are scored by ``queue_depth + interference_weight *
    max pairwise interference with tenants active on the GPU +
    health_weight * (1 - health score)``; lowest score wins, ties break
    on GPU index, so routing is a pure function of simulation state.
    """

    def __init__(self, fleet: "Fleet", interference_weight: float = 1.0,
                 health_weight: float = 4.0):
        self.fleet = fleet
        self.sim = fleet.sim
        self.interference_weight = interference_weight
        self.health_weight = health_weight
        # Backlog of (sort key, job): key = (-(priority + boost), seq).
        self._backlog: List[Tuple[Tuple[float, int], FleetJob]] = []
        self._backlog_count: Dict[str, int] = {}
        self._dispatched: Dict[str, int] = {}
        # (tenant, gpu) pairs a migration has cordoned: no new dispatches.
        self._cordoned: set = set()
        # Jobs waiting out a failover backoff (scheduled via call_in):
        # tracked so horizon-end accounting never loses one mid-backoff.
        self._backoff_pending: List[FleetJob] = []
        # Accounting (all deterministic).
        self.submitted = 0
        self.dispatches = 0
        self.orphaned = 0
        self.failovers = 0
        self.readmitted_ok = 0
        self.retry_exhausted = 0
        self.migration_requeues = 0
        self.decisions: List[Tuple[float, int, int]] = []

    # -- admission ------------------------------------------------------
    def submit(self, job: FleetJob) -> None:
        self.submitted += 1
        spec = self.fleet.tenant(job.tenant)
        limit = spec.policy.max_queued
        if limit is not None and self._backlog_count.get(job.tenant, 0) >= limit:
            stats = self.fleet.stats[job.tenant]
            stats.shed += 1
            self.fleet.ledger.record_shed(job.tenant)
            return
        self._enqueue(job)
        self.pump()

    def _enqueue(self, job: FleetJob) -> None:
        spec = self.fleet.tenant(job.tenant)
        priority = (1.0 if spec.high_priority else 0.0) + spec.policy.priority_boost
        insort(self._backlog, ((-priority, job.seq), job))
        self._backlog_count[job.tenant] = \
            self._backlog_count.get(job.tenant, 0) + 1

    def backlog_size(self) -> int:
        return len(self._backlog)

    def drain_backlog(self) -> List[FleetJob]:
        """Remove and return every backlogged job (priority order).

        The public way to empty the router — used by horizon-end
        accounting and by migration drains; nothing outside the router
        touches ``_backlog`` directly.
        """
        jobs = [job for _, job in self._backlog]
        self._backlog.clear()
        self._backlog_count.clear()
        return jobs

    def drain_backoff(self) -> List[FleetJob]:
        """Remove and return jobs still waiting out a failover backoff."""
        jobs, self._backoff_pending = self._backoff_pending, []
        return jobs

    # -- migration support ----------------------------------------------
    def cordon(self, tenant: str, gpu_index: int) -> None:
        """Stop routing ``tenant`` to ``gpu_index`` (migration source)."""
        self._cordoned.add((tenant, gpu_index))

    def uncordon(self, tenant: str, gpu_index: int) -> None:
        self._cordoned.discard((tenant, gpu_index))

    def is_cordoned(self, tenant: str, gpu_index: int) -> bool:
        return (tenant, gpu_index) in self._cordoned

    def requeue(self, jobs: List[FleetJob]) -> None:
        """Return drained (not failed) jobs to the backlog.

        Unlike :meth:`reclaim` this charges no retry attempt and counts
        no failover: the jobs were healthy, their worker is just moving.
        Re-enqueueing keeps at-most-once accounting exact — the job
        object itself moves, so it can neither be lost nor duplicated.
        """
        for job in jobs:
            self.migration_requeues += 1
            self._dispatched[job.tenant] -= 1
            self._enqueue(job)
        if jobs:
            self.pump()

    # -- dispatch -------------------------------------------------------
    def pump(self) -> None:
        """Dispatch every backlog job that has capacity and a GPU."""
        progress = True
        while progress and self._backlog:
            progress = False
            for i, (_, job) in enumerate(self._backlog):
                if self._at_cap(job.tenant):
                    continue
                gpu = self._choose_gpu(job.tenant)
                if gpu is None:
                    continue
                del self._backlog[i]
                self._backlog_count[job.tenant] -= 1
                self._dispatch(job, gpu)
                progress = True
                break

    def _at_cap(self, tenant: str) -> bool:
        limit = self.fleet.tenant(tenant).policy.max_concurrency
        return limit is not None and self._dispatched.get(tenant, 0) >= limit

    def _choose_gpu(self, tenant: str) -> Optional[FleetGpu]:
        sig = self.fleet.signatures[tenant]
        best: Optional[FleetGpu] = None
        best_score: Tuple[float, int] = (0.0, 0)
        for gpu in self.fleet.gpus:
            if not gpu.routable or tenant not in gpu.workers:
                continue
            worker = gpu.workers[tenant]
            if worker.dead or worker.draining \
                    or (tenant, gpu.index) in self._cordoned:
                continue
            score = float(gpu.queue_depth())
            score += self.health_weight * (1.0 - gpu.health.score())
            interference = 0.0
            for other, w in gpu.workers.items():
                if other != tenant and w.load > 0:
                    interference = max(
                        interference,
                        pair_interference(sig, self.fleet.signatures[other]))
            score += self.interference_weight * interference
            key = (score, gpu.index)
            if best is None or key < best_score:
                best, best_score = gpu, key
        return best

    def _dispatch(self, job: FleetJob, gpu: FleetGpu) -> None:
        self.dispatches += 1
        self._dispatched[job.tenant] = self._dispatched.get(job.tenant, 0) + 1
        job.gpus.append(gpu.index)
        self.decisions.append((_r(self.sim.now), job.seq, gpu.index))
        gpu.workers[job.tenant].submit(job)

    # -- completion and failure -----------------------------------------
    def on_complete(self, worker: _TenantWorker, job: FleetJob,
                    start: float, end: float) -> None:
        self._dispatched[job.tenant] -= 1
        worker.gpu.jobs_completed += 1
        solo = self.fleet.solo_latency[worker.spec.model]
        norm = (end - start) / solo
        worker.gpu.health.observe(True, norm)
        stats = self.fleet.stats[job.tenant]
        stats.records.append(RequestRecord(job.arrival, start, end))
        self.fleet.ledger.record_served(job.tenant)
        if job.attempts > 0 and not job._counted_readmit:
            job._counted_readmit = True
            self.readmitted_ok += 1
        migration = self.fleet.migration
        if migration is not None:
            migration.observe_completion(worker, norm)
        if worker.draining and worker.current is None:
            worker.notify_idle()
        self.pump()

    def on_worker_death(self, worker: _TenantWorker,
                        jobs: List[FleetJob]) -> None:
        """A worker died on a sticky error (not a fleet crash)."""
        worker.gpu.health.observe(False)
        worker.gpu.workers.pop(worker.spec.name, None)
        self.reclaim(jobs, reason="worker-death")

    def reclaim(self, jobs: List[FleetJob], reason: str) -> None:
        """Fail orphaned jobs over: bounded retries, exponential backoff."""
        for job in jobs:
            self.orphaned += 1
            self._dispatched[job.tenant] -= 1
            policy = self.fleet.tenant(job.tenant).policy
            job.attempts += 1
            if job.attempts > policy.max_retries:
                self.retry_exhausted += 1
                stats = self.fleet.stats[job.tenant]
                stats.failed += 1
                self.fleet.ledger.record_failed(job.tenant)
                continue
            self.failovers += 1
            self.fleet.metrics.counter("fleet_failovers").inc()
            if self.fleet.tracer.enabled:
                self.fleet.tracer.instant(
                    "fleet", "failover", tenant=job.tenant, seq=job.seq,
                    attempt=job.attempts, reason=reason)
            delay = min(policy.backoff_cap,
                        policy.backoff_base * 2.0 ** (job.attempts - 1))
            self._backoff_pending.append(job)
            self.sim.call_in(delay, lambda j=job: self._readmit(j))

    def _readmit(self, job: FleetJob) -> None:
        # Re-admission bypasses max_queued: the job was already admitted
        # once; shedding it now would double-charge the tenant.
        self._backoff_pending.remove(job)
        self._enqueue(job)
        self.pump()


# ---------------------------------------------------------------------------
# The fleet itself


class Fleet:
    """N GPUs + router + shared arrival streams, under fault injection.

    This is the ``fleet`` target the :class:`FaultInjector` drives:
    :meth:`crash_gpu`, :meth:`degrade_gpu` and :meth:`recover_gpu`
    execute the plan's GPU-level events.
    """

    def __init__(
        self,
        sim: Simulator,
        num_gpus: int,
        tenants: Sequence[TenantSpec],
        device_spec: DeviceSpec,
        store: ProfileStore,
        backend: str = "orion",
        rng_factory: Optional[RngFactory] = None,
        ledger: Optional[ErrorLedger] = None,
        tracer=NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
        interference_weight: float = 1.0,
        health_weight: float = 4.0,
        health_window: int = 32,
        health_latency_tolerance: float = 2.0,
        assignment: Optional[Dict[str, int]] = None,
        max_tenants_per_gpu: int = 2,
    ):
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if not tenants:
            raise ValueError("fleet needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        if backend == "orion" and sum(t.high_priority for t in tenants) > 1:
            raise ValueError(
                "the orion backend supports one high-priority tenant per GPU")
        if assignment is not None:
            missing = set(names) - set(assignment)
            if missing:
                raise ValueError(
                    f"assignment misses tenants: {sorted(missing)}")
            for tenant, gpu in assignment.items():
                if tenant not in names:
                    raise ValueError(f"assignment names unknown tenant "
                                     f"{tenant!r}")
                if not 0 <= gpu < num_gpus:
                    raise ValueError(
                        f"tenant {tenant!r} assigned to gpu {gpu} outside "
                        f"the {num_gpus}-GPU fleet")
        if max_tenants_per_gpu < 1:
            raise ValueError("max_tenants_per_gpu must be >= 1")
        self.sim = sim
        self.num_gpus = num_gpus
        self.tenants = tuple(tenants)
        self._by_name = {t.name: t for t in self.tenants}
        self.device_spec = device_spec
        self.store = store
        self.backend_name = backend
        self.rng_factory = rng_factory or RngFactory(0)
        self.ledger = ledger if ledger is not None else ErrorLedger()
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.health_window = health_window
        self.health_latency_tolerance = health_latency_tolerance

        self.plans = {t.model: build_plan(t.model, "inference")
                      for t in self.tenants}
        self.solo_latency: Dict[str, float] = {}
        self.signatures: Dict[str, JobSignature] = {}
        for t in self.tenants:
            profile = get_profile(t.model, "inference", device_spec)
            self.solo_latency[t.model] = profile.request_latency
            self.signatures[t.name] = signature_of(profile, name=t.name)

        self.stats: Dict[str, ClientStats] = {
            t.name: ClientStats(name=t.name, kind="inference")
            for t in self.tenants}
        self.router = FleetRouter(self, interference_weight=interference_weight,
                                  health_weight=health_weight)
        self.gpus: List[FleetGpu] = [FleetGpu(self, i)
                                     for i in range(num_gpus)]
        # Tenant -> home GPU (None: every tenant resident on every GPU).
        self.assignment: Optional[Dict[str, int]] = (
            dict(assignment) if assignment is not None else None)
        self.max_tenants_per_gpu = max_tenants_per_gpu
        # Attached by a MigrationController (repro.cluster.migration).
        self.migration = None
        # Fault accounting (the availability report's "injected" side).
        self.crashes_injected = 0
        self.degrades_injected = 0
        self.recoveries_injected = 0
        self.re_homed = 0
        self._job_seq = 0

    # -- setup ----------------------------------------------------------
    def tenant(self, name: str) -> TenantSpec:
        return self._by_name[name]

    def make_backend(self, sim: Simulator, device: GpuDevice):
        name = self.backend_name
        if name == "orion":
            hp = [t for t in self.tenants if t.high_priority]
            hp_latency = self.solo_latency[hp[0].model] if hp else None
            return OrionBackend(sim, device, self.store,
                                OrionConfig(hp_request_latency=hp_latency))
        if name == "reef":
            return ReefBackend(sim, device)
        if name == "streams":
            return StreamsBackend(sim, device)
        if name == "priority-streams":
            return PriorityStreamsBackend(sim, device)
        raise ValueError(f"unknown backend {name!r} for fleet scenario")

    def start(self, horizon: float) -> None:
        """Boot every GPU and spawn the shared arrival streams."""
        for gpu in self.gpus:
            gpu.boot()
        for spec in self.tenants:
            spawn(self.sim, self._arrival_loop(spec, horizon),
                  f"fleet-arrivals-{spec.name}")

    def _arrival_loop(self, spec: TenantSpec, horizon: float):
        arrivals = PoissonArrivals(
            spec.rps, self.rng_factory.stream(f"poisson:{spec.name}"))
        last = 0.0
        for t in arrivals.arrival_times(horizon):
            if t > last:
                yield Timeout(t - last)
                last = t
            self._job_seq += 1
            self.router.submit(FleetJob(spec.name, self._job_seq, self.sim.now))

    # -- worker lifecycle (migration / re-homing) ------------------------
    def add_worker(self, tenant: str, gpu_index: int) -> _TenantWorker:
        """Spawn ``tenant``'s resident worker on an up GPU (re-warm path)."""
        gpu = self.gpus[gpu_index]
        if not gpu.routable or gpu.backend is None:
            raise ValueError(f"gpu{gpu_index} is not up")
        if tenant in gpu.workers and not gpu.workers[tenant].dead:
            return gpu.workers[tenant]
        return gpu.spawn_worker(self.tenant(tenant))

    def remove_worker(self, tenant: str, gpu_index: int) -> List[FleetJob]:
        """Tear ``tenant``'s worker off a GPU; return any stranded jobs.

        The caller decides what happens to the returned jobs — a
        migration requeues them (no retry charge), a crash reclaims
        them through the failover path.
        """
        gpu = self.gpus[gpu_index]
        worker = gpu.workers.pop(tenant, None)
        if worker is None:
            return []
        return worker.shutdown()

    def rehome_tenant(self, tenant: str,
                      exclude: frozenset = frozenset()) -> Optional[int]:
        """Pick a deterministic new home GPU for a tenant (or None).

        Candidates are up GPUs outside ``exclude``; GPUs with free
        tenant slots win over over-capacity ones, then the router's
        scoring (queue depth, health, interference) and the GPU index
        break ties.
        """
        sig = self.signatures[tenant]
        best: Optional[FleetGpu] = None
        best_key = None
        for gpu in self.gpus:
            if gpu.index in exclude or gpu.state != "up":
                continue
            live = [w for w in gpu.workers.values() if not w.dead]
            over = len(live) >= self.max_tenants_per_gpu
            score = float(gpu.queue_depth())
            score += self.router.health_weight * (1.0 - gpu.health.score())
            interference = 0.0
            for other, w in gpu.workers.items():
                if other != tenant and not w.dead:
                    interference = max(
                        interference,
                        pair_interference(sig, self.signatures[other]))
            score += self.router.interference_weight * interference
            key = (over, score, gpu.index)
            if best_key is None or key < best_key:
                best, best_key = gpu, key
        return best.index if best is not None else None

    def _rehome_after_crash(self, index: int) -> None:
        """Re-home tenants whose assigned GPU just died.

        Without this, a single-homed tenant would have no worker
        anywhere and its backlog would starve until the GPU recovered.
        If no GPU is up the assignment is left pointing at the dead GPU
        — its recovery boot restores the worker.
        """
        if self.assignment is None:
            return
        for spec in self.tenants:  # deterministic tenant order
            if self.assignment[spec.name] != index:
                continue
            new_home = self.rehome_tenant(spec.name,
                                          exclude=frozenset((index,)))
            if new_home is None:
                continue
            self.assignment[spec.name] = new_home
            self.add_worker(spec.name, new_home)
            self.re_homed += 1
            self.metrics.counter("fleet_rehomed").inc()
            if self.tracer.enabled:
                self.tracer.instant("migration", "rehome", tenant=spec.name,
                                    src=index, dst=new_home)

    # -- fault-injector target ------------------------------------------
    def crash_gpu(self, index: int) -> None:
        gpu = self.gpus[index]
        if not gpu.routable:
            return
        self.crashes_injected += 1
        self.metrics.counter("fleet_gpu_crashes").inc()
        if self.tracer.enabled:
            self.tracer.instant("fleet", "gpu_crash", gpu=index)
        self.ledger.record_down(f"gpu{index}", self.sim.now)
        orphans = gpu.crash()
        self._rehome_after_crash(index)
        self.router.reclaim(orphans, reason="gpu-crash")

    def degrade_gpu(self, index: int, slowdown: float) -> None:
        gpu = self.gpus[index]
        if not gpu.routable:
            return
        self.degrades_injected += 1
        self.metrics.counter("fleet_gpu_degrades").inc()
        if self.tracer.enabled:
            self.tracer.instant("fleet", "gpu_degrade", gpu=index,
                                slowdown=slowdown)
        gpu.degrade(slowdown)

    def recover_gpu(self, index: int) -> None:
        gpu = self.gpus[index]
        if gpu.state == "up":
            return
        was_down = gpu.state == "down"
        self.recoveries_injected += 1
        self.metrics.counter("fleet_gpu_recoveries").inc()
        if self.tracer.enabled:
            self.tracer.instant("fleet", "gpu_recover", gpu=index)
        gpu.recover()
        if was_down:
            self.ledger.record_recovered(f"gpu{index}", self.sim.now)
        self.router.pump()

    # -- end-of-run accounting ------------------------------------------
    def drain_unfinished(self) -> int:
        """Count jobs still queued/in-flight at the horizon as dropped.

        Covers the router backlog (through the public
        :meth:`FleetRouter.drain_backlog` API), jobs waiting out a
        failover backoff, jobs parked with a migration controller
        mid-move, and every worker's pending/current job — so
        ``submitted == served + shed + failed + dropped`` holds exactly.
        """
        dropped = 0
        unfinished = self.router.drain_backlog() + self.router.drain_backoff()
        if self.migration is not None:
            unfinished.extend(self.migration.drain_in_transit())
        for job in unfinished:
            self.stats[job.tenant].dropped += 1
            dropped += 1
        for gpu in self.gpus:
            for worker in gpu.workers.values():
                for job in list(worker.pending) + (
                        [worker.current] if worker.current else []):
                    self.stats[job.tenant].dropped += 1
                    dropped += 1
        return dropped


# ---------------------------------------------------------------------------
# Scenario result + report


@dataclass
class FleetResult:
    """Everything one fleet scenario produced."""

    num_gpus: int
    backend: str
    plan: FaultPlan
    tenants: Tuple[TenantSpec, ...]
    jobs: Dict[str, ClientStats]
    hp_latency: LatencySummary
    ledger: ErrorLedger
    report: Dict = field(default_factory=dict)
    routing: Dict = field(default_factory=dict)
    #: Migration controller report (empty when rebalancing is off).
    migration: Dict = field(default_factory=dict)
    #: Every routing decision as (time, job seq, gpu index); the
    #: canonical output carries only its count and digest.
    decisions: List[Tuple[float, int, int]] = field(default_factory=list)
    tracer: object = NULL_TRACER
    metrics: Optional[MetricsRegistry] = None
    # Uniform run accounting for the Scenario API (bench/sweep).
    events_processed: int = 0
    sim_time: float = 0.0

    def goodput(self, tenant: str, duration: float, after: float = 0.0) -> float:
        """Served requests per second for one tenant in [after, duration]."""
        span = duration - after
        if span <= 0:
            return 0.0
        served = [r for r in self.jobs[tenant].records
                  if after <= r.end <= duration]
        return len(served) / span


def availability_report(fleet: Fleet, duration: float) -> Dict:
    """Aggregate the ledger + router into the fleet availability report."""
    router = fleet.router
    gpus = {}
    recover_samples: List[float] = []
    for gpu in fleet.gpus:
        entry = fleet.ledger.client(f"gpu{gpu.index}")
        recover_samples.extend(entry.recovery_times)
        gpus[f"gpu{gpu.index}"] = {
            "state": gpu.state,
            "uptime_fraction": _r(
                fleet.ledger.availability(f"gpu{gpu.index}", duration)),
            "crashes": gpu.crashes,
            "recoveries": gpu.recoveries,
            "jobs_completed": gpu.jobs_completed,
            "health": _r(gpu.health.score()),
        }
    fleet_uptime = _r(sum(g["uptime_fraction"] for g in gpus.values())
                      / len(gpus))
    readmission_rate = (_r(router.readmitted_ok / router.failovers)
                        if router.failovers else None)
    mttr = (_r(sum(recover_samples) / len(recover_samples))
            if recover_samples else None)
    tenants = {}
    for spec in fleet.tenants:
        entry = fleet.ledger.client(spec.name)
        stats = fleet.stats[spec.name]
        tenants[spec.name] = {
            "served": entry.served,
            "failed": entry.failed,
            "shed": entry.shed,
            "dropped_at_horizon": stats.dropped,
        }
    report = {
        "duration": _r(duration),
        "num_gpus": fleet.num_gpus,
        "fleet_uptime_fraction": fleet_uptime,
        "gpus": gpus,
        "faults": {
            "crashes": fleet.crashes_injected,
            "degrades": fleet.degrades_injected,
            "recoveries": fleet.recoveries_injected,
        },
        "failover": {
            "orphaned": router.orphaned,
            "failovers": router.failovers,
            "readmitted": router.readmitted_ok,
            "retry_exhausted": router.retry_exhausted,
            "readmission_success_rate": readmission_rate,
            "re_homed": fleet.re_homed,
        },
        "mean_time_to_recover": mttr,
        "tenants": tenants,
    }
    if fleet.migration is not None:
        report["migrations"] = fleet.migration.migration_report()
    return report


def _routing_digest(decisions: Sequence[Tuple[float, int, int]],
                    migration_lines: Sequence[str] = ()) -> str:
    """sha256 over routing decisions plus migration transitions.

    Migration lines are appended after the decision lines, so a run
    without migrations digests identically to the pre-migration format.
    """
    blob = "\n".join(f"{t:.9f}:{seq}:{gpu}" for t, seq, gpu in decisions)
    if migration_lines:
        blob = "\n".join([blob, *migration_lines]) if blob \
            else "\n".join(migration_lines)
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


# ---------------------------------------------------------------------------
# Scenario entry point


def _default_tenants(capacity: float, num_gpus: int, model: str,
                     hp_load: float, be_load: float,
                     be_tenants: int) -> List[TenantSpec]:
    tenants = [TenantSpec("hp", model=model, high_priority=True,
                          rps=hp_load * capacity * num_gpus,
                          policy=TenantPolicy(priority_boost=0.5))]
    for i in range(be_tenants):
        tenants.append(TenantSpec(
            f"be-{i}", model=model,
            rps=be_load * capacity * num_gpus / max(1, be_tenants)))
    return tenants


def run_fleet_scenario(**params) -> FleetResult:
    """Convenience wrapper: build a fleet Scenario and run it."""
    from repro.experiments.scenario import Scenario, run as run_scenario

    return run_scenario(Scenario(kind="fleet", params=params)).result


def _run_fleet_scenario(
    seed: int = 0,
    duration: float = 0.2,
    num_gpus: int = 8,
    backend: str = "orion",
    model: str = "mobilenet_v2",
    device: str = "V100-16GB",
    tenants: Optional[Sequence[TenantSpec]] = None,
    plan: Optional[FaultPlan] = None,
    crashes: int = 1,
    degrades: int = 1,
    slowdown: float = 3.0,
    recover_after: Optional[float] = None,
    hp_load: float = 0.25,
    be_load: float = 0.35,
    be_tenants: int = 2,
    interference_weight: float = 1.0,
    health_weight: float = 4.0,
    warmup: float = 0.0,
    telemetry: Optional[TelemetryConfig] = None,
    placement: object = "all",
    max_tenants_per_gpu: int = 2,
    rebalance: bool = False,
    rebalance_interval: float = 0.02,
    migration_cooldown: float = 0.04,
    max_inflight_migrations: int = 1,
    migration_min_gain: float = 0.05,
    migration_cost_weight: float = 1.0,
    measure_window: int = 32,
    measure_min_samples: int = 8,
) -> FleetResult:
    """Run the fleet-resilience scenario and return its accounting.

    With no explicit ``plan``, a deterministic fleet plan is sampled
    from the seed (``crashes`` crashes + ``degrades`` degradations,
    optionally recovering ``recover_after`` seconds later).  With no
    explicit ``tenants``, one high-priority tenant and ``be_tenants``
    best-effort tenants serve ``model`` at ``hp_load``/``be_load``
    fractions of the fleet's aggregate solo capacity.  Fully
    deterministic under (seed, arguments).

    ``placement`` selects tenant residency: ``"all"`` (default —
    every tenant resident on every GPU, migration off), ``"plan"``
    (single-home via :func:`plan_placement`), ``"adversarial"``
    (worst-case packing, for migration benchmarks), or an explicit
    ``{tenant: gpu}`` mapping.  ``rebalance=True`` attaches a
    :class:`~repro.cluster.migration.MigrationController` that
    periodically re-plans over measured interference and moves tenants
    through the cordon→drain→move→re-warm→uncordon state machine.
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    if duration <= 0:
        raise ValueError("duration must be > 0")
    if rebalance and placement == "all":
        raise ValueError(
            "rebalance requires single-home placement "
            "(placement='plan'/'adversarial' or an explicit mapping); "
            "with placement='all' every tenant is already everywhere")

    sim = Simulator()
    device_spec = get_device(device)
    rng_factory = RngFactory(seed)
    ledger = ErrorLedger()
    telemetry = telemetry or TelemetryConfig()
    tracer = telemetry.build_tracer(sim)
    if telemetry.engine_events:
        sim.attach_tracer(tracer)

    if plan is None:
        plan = FaultPlan.sample_fleet(
            seed, num_gpus, horizon=duration, crashes=crashes,
            degrades=degrades, slowdown=slowdown,
            recover_after=recover_after)
    non_fleet = [ev for ev in plan if not isinstance(
        ev, (GpuCrash, GpuDegrade, GpuRecover))]
    if non_fleet:
        raise ValueError(
            "fleet scenarios accept only GPU-level fault events "
            f"(GpuCrash/GpuDegrade/GpuRecover); got {non_fleet[0]!r}")
    if plan.max_gpu_index() >= num_gpus:
        raise ValueError(
            f"fault plan targets gpu {plan.max_gpu_index()} but the fleet "
            f"has only {num_gpus} GPUs")

    store = ProfileStore()
    models = {model} | ({t.model for t in tenants} if tenants else set())
    for m in sorted(models):
        store.add(get_profile(m, "inference", device_spec))

    if tenants is None:
        capacity = 1.0 / get_profile(model, "inference",
                                     device_spec).request_latency
        tenants = _default_tenants(capacity, num_gpus, model,
                                   hp_load, be_load, be_tenants)

    assignment: Optional[Dict[str, int]] = None
    if placement == "all":
        assignment = None
    elif placement in ("plan", "adversarial"):
        signatures = {
            t.name: signature_of(
                get_profile(t.model, "inference", device_spec), name=t.name)
            for t in tenants}
        if placement == "plan":
            placements = plan_placement(
                sorted(signatures.values(), key=lambda s: s.name),
                num_gpus, max_per_gpu=max_tenants_per_gpu)
            assignment = {job.name: p.gpu
                          for p in placements for job in p.jobs}
        else:
            assignment = adversarial_assignment(
                signatures, num_gpus, max_per_gpu=max_tenants_per_gpu)
    elif isinstance(placement, dict):
        assignment = dict(placement)
    else:
        raise ValueError(
            f"placement must be 'all', 'plan', 'adversarial' or a "
            f"tenant->gpu mapping; got {placement!r}")

    fleet = Fleet(
        sim, num_gpus, tenants, device_spec, store, backend=backend,
        rng_factory=rng_factory, ledger=ledger, tracer=tracer,
        interference_weight=interference_weight, health_weight=health_weight,
        assignment=assignment, max_tenants_per_gpu=max_tenants_per_gpu,
    )
    controller = None
    if rebalance:
        from repro.cluster.migration import (MigrationController,
                                             MigrationPolicy)
        controller = MigrationController(fleet, MigrationPolicy(
            interval=rebalance_interval,
            cooldown=migration_cooldown,
            max_inflight=max_inflight_migrations,
            min_gain=migration_min_gain,
            cost_weight=migration_cost_weight,
            measure_window=measure_window,
            measure_min_samples=measure_min_samples,
        ))
    fleet.start(duration)
    if controller is not None:
        controller.start(duration)
    injector = FaultInjector(sim, plan, fleet=fleet, tracer=tracer).start()
    sim.run(until=duration)

    fleet.drain_unfinished()
    for entry in injector.log:
        ledger.record_injection(entry)
    ledger.finalize(duration)

    hp_names = [t.name for t in fleet.tenants if t.high_priority]
    hp_records = [r for name in hp_names
                  for r in fleet.stats[name].records]
    hp_records.sort(key=lambda r: (r.arrival, r.start, r.end))
    hp_latency = summarize_latencies(hp_records, after=warmup)

    report = availability_report(fleet, duration)
    migration_lines = (controller.digest_lines()
                       if controller is not None else ())
    routing = {
        "decisions": len(fleet.router.decisions),
        "submitted": fleet.router.submitted,
        "migrations": len(migration_lines),
        "digest": _routing_digest(fleet.router.decisions, migration_lines),
    }
    migration_report = (controller.migration_report()
                        if controller is not None else {})
    return FleetResult(
        num_gpus=num_gpus,
        backend=backend,
        plan=plan,
        tenants=fleet.tenants,
        jobs=dict(fleet.stats),
        hp_latency=hp_latency,
        ledger=ledger,
        report=report,
        routing=routing,
        migration=migration_report,
        decisions=list(fleet.router.decisions),
        tracer=tracer,
        metrics=fleet.metrics,
        events_processed=sim.events_processed,
        sim_time=sim.now,
    )
