"""Discrete-event simulation substrate (engine, processes, seeded RNG)."""

from .engine import ScheduledEvent, SimulationError, Simulator
from .process import AllOf, AnyOf, Interrupted, Process, Signal, Timeout, spawn
from .rng import RngFactory, substream_seed

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "SimulationError",
    "Process",
    "Signal",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupted",
    "spawn",
    "RngFactory",
    "substream_seed",
]
