"""Discrete-event simulation substrate (engine, processes, seeded RNG)."""

from .engine import (
    RunAborted,
    ScheduledEvent,
    SimulationError,
    Simulator,
    get_abort_check,
    set_abort_check,
)
from .process import AllOf, AnyOf, Interrupted, Process, Signal, Timeout, spawn
from .rng import RngFactory, substream_seed

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "SimulationError",
    "RunAborted",
    "set_abort_check",
    "get_abort_check",
    "Process",
    "Signal",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupted",
    "spawn",
    "RngFactory",
    "substream_seed",
]
