"""Generator-based simulated processes.

A process is a Python generator that yields *awaitables*:

* ``Timeout(delay)`` — resume after ``delay`` simulated seconds.
* ``Signal`` — resume when another process triggers the signal; a
  triggered signal carries an optional value which becomes the result of
  the ``yield``.
* ``AllOf([...])`` — resume when every child awaitable completes.
* ``AnyOf([...])`` — resume when the first child completes.

This mirrors the subset of SimPy semantics the system needs, without
pulling in a dependency.  Processes themselves are awaitable: yielding a
:class:`Process` waits for it to finish and returns its return value.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from .engine import Simulator, SimulationError

__all__ = ["Timeout", "Signal", "AllOf", "AnyOf", "Process", "Interrupted", "spawn"]


class Interrupted(Exception):
    """Thrown into a process when it is interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Awaitable:
    """Base class for things a process may yield.

    Completion optionally carries an ``error`` payload (CUDA-style
    status reporting): the awaitable still *completes* — waiters resume
    normally — but holders can inspect ``.error`` to learn the op
    failed.  ``error`` is ``None`` on success.
    """

    __slots__ = ("_callbacks", "triggered", "value", "error")

    def __init__(self):
        self._callbacks: list = []
        self.triggered = False
        self.value: Any = None
        self.error: Any = None

    @property
    def ok(self) -> bool:
        """True once triggered without an error payload."""
        return self.triggered and self.error is None

    def add_callback(self, callback) -> None:
        if self.triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire(self, value: Any = None, error: Any = None) -> None:
        if self.triggered:
            return
        self.triggered = True
        self.value = value
        self.error = error
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _start(self, sim: Simulator) -> None:
        """Hook invoked when a process first waits on this awaitable.

        The base implementation is a no-op so the process core can call
        it unconditionally instead of isinstance-dispatching per yield.
        """


class Timeout(_Awaitable):
    """Completes after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        super().__init__()
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay!r}")
        self.delay = delay

    def _start(self, sim: Simulator) -> None:
        sim.call_in(self.delay, self._fire)


class Signal(_Awaitable):
    """One-shot event triggered explicitly via :meth:`trigger`."""

    __slots__ = ("_sim",)

    def __init__(self, sim: Optional[Simulator] = None):
        # Inlined _Awaitable.__init__: signals are created per submitted
        # op, so the extra super() frame is measurable.
        self._callbacks = []
        self.triggered = False
        self.value = None
        self.error = None
        self._sim = sim

    # ``trigger(value, error)`` is exactly ``_fire``; alias it to drop a
    # call frame on the completion hot path.
    trigger = _Awaitable._fire

    def _start(self, sim: Simulator) -> None:
        self._sim = sim


class AllOf(_Awaitable):
    """Completes when all children complete; value is the list of child values."""

    __slots__ = ("children",)

    def __init__(self, children: Iterable[_Awaitable]):
        super().__init__()
        self.children = list(children)

    def _start(self, sim: Simulator) -> None:
        if not self.children:
            sim.call_in(0.0, lambda: self._fire([]))
            return
        remaining = {"n": len(self.children)}

        def on_child(_child):
            remaining["n"] -= 1
            if remaining["n"] == 0:
                first_error = next(
                    (c.error for c in self.children if c.error is not None), None
                )
                self._fire([c.value for c in self.children], first_error)

        for child in self.children:
            if isinstance(child, (Timeout, AllOf, AnyOf)):
                child._start(sim)
            child.add_callback(on_child)


class AnyOf(_Awaitable):
    """Completes when the first child completes; value is that child's value."""

    __slots__ = ("children",)

    def __init__(self, children: Iterable[_Awaitable]):
        super().__init__()
        self.children = list(children)
        if not self.children:
            raise SimulationError("AnyOf requires at least one child")

    def _start(self, sim: Simulator) -> None:
        def on_child(child):
            self._fire(child.value, child.error)

        for child in self.children:
            if isinstance(child, (Timeout, AllOf, AnyOf)):
                child._start(sim)
            child.add_callback(on_child)


class Process(_Awaitable):
    """A running generator coroutine inside the simulator."""

    __slots__ = ("sim", "name", "_generator", "_waiting_on", "_interrupt_pending")

    def __init__(self, sim: Simulator, generator: Generator, name: str = "process"):
        super().__init__()
        self.sim = sim
        self.name = name
        self._generator = generator
        self._waiting_on: Optional[_Awaitable] = None
        self._interrupt_pending: Optional[Interrupted] = None
        sim.call_in(0.0, self._resume_first)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "running"
        return f"<Process {self.name} {state}>"

    @property
    def alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its current yield."""
        if self.triggered:
            return
        self._interrupt_pending = Interrupted(cause)
        waiting, self._waiting_on = self._waiting_on, None
        # Resume immediately (in a fresh event so we never reenter the
        # generator from inside its own stack frame).
        self.sim.call_in(0.0, lambda: self._advance(None, waiting))

    def _resume_first(self) -> None:
        self._advance(None, None)

    def _on_awaitable_done(self, awaitable: _Awaitable) -> None:
        if self._waiting_on is not awaitable:
            return  # interrupted while waiting; stale wakeup
        self._waiting_on = None
        self._advance(awaitable.value, awaitable)

    def _advance(self, send_value: Any, _source) -> None:
        if self.triggered:
            return
        try:
            if self._interrupt_pending is not None:
                exc, self._interrupt_pending = self._interrupt_pending, None
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(send_value)
        except StopIteration as stop:
            self._fire(stop.value)
            return
        except Interrupted:
            # Process chose not to handle the interrupt: it dies quietly.
            self._fire(None)
            return
        if not isinstance(target, _Awaitable):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; expected an awaitable"
            )
        self._waiting_on = target
        target._start(self.sim)
        if target.triggered:
            # Resume via a fresh zero-delay event rather than recursing:
            # long chains of already-complete awaitables (e.g. a burst
            # of uncontended lock acquisitions) must not grow the stack.
            self.sim.call_in(0.0, lambda: self._on_awaitable_done(target))
        else:
            target.add_callback(self._on_awaitable_done)


def spawn(sim: Simulator, generator: Generator, name: str = "process") -> Process:
    """Start ``generator`` as a process on ``sim``."""
    return Process(sim, generator, name=name)
