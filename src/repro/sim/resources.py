"""FIFO resources for simulated processes (mutex with queued waiters)."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .engine import Simulator
from .process import Signal

__all__ = ["FifoLock"]


class FifoLock:
    """A fair mutex: acquire() returns a signal fired when the lock is held.

    Supports priority classes: waiters with a larger ``priority`` value
    are granted the lock before lower-priority waiters, FIFO within a
    class.  This is the substrate for the temporal-sharing baseline's
    "prioritize the high-priority job's requests" behaviour.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._held = False
        self._waiters: Deque[tuple[int, int, Signal]] = deque()
        self._seq = 0
        self.holder: Optional[str] = None

    @property
    def locked(self) -> bool:
        return self._held

    def acquire(self, priority: int = 0, holder: str = "") -> Signal:
        """Request the lock; the returned signal fires when granted."""
        granted = Signal(self.sim)
        if not self._held and not self._waiters:
            self._held = True
            self.holder = holder
            granted.trigger()
            return granted
        self._seq += 1
        self._waiters.append((priority, self._seq, granted))
        # Keep highest priority first, FIFO within priority.
        self._waiters = deque(sorted(self._waiters, key=lambda w: (-w[0], w[1])))
        return granted

    def cancel(self, granted: Signal) -> bool:
        """Withdraw a not-yet-granted acquire (the waiter died).  Returns
        True if the waiter was found and removed; a grant that already
        fired cannot be cancelled — release the lock instead."""
        for waiter in self._waiters:
            if waiter[2] is granted:
                self._waiters.remove(waiter)
                return True
        return False

    def release(self) -> None:
        if not self._held:
            raise RuntimeError("release of a lock that is not held")
        if self._waiters:
            _, _, granted = self._waiters.popleft()
            granted.trigger()
        else:
            self._held = False
            self.holder = None
