"""Deterministic discrete-event simulation engine.

The engine is a classic event-calendar simulator: callbacks are scheduled
at absolute simulated times and executed in (time, sequence) order, so
runs are fully deterministic for a given seed and schedule.  On top of
the raw calendar, :mod:`repro.sim.process` builds generator-based
processes (``yield`` a wait or a condition), which is how clients,
schedulers, and the GPU dispatcher are written.

Time is a float in *seconds* of simulated GPU/host time.
"""

from __future__ import annotations

import heapq
import itertools
import math
import threading
from typing import Callable, Optional

__all__ = ["Simulator", "ScheduledEvent", "SimulationError", "RunAborted",
           "set_abort_check", "get_abort_check"]


class SimulationError(RuntimeError):
    """Raised for invalid use of the simulation engine."""


class RunAborted(SimulationError):
    """Raised from :meth:`Simulator.run` when the thread's abort check
    fires (see :func:`set_abort_check`).  Carries no partial results:
    the run that raised it is abandoned wholesale."""


# Cooperative cancellation for externally-driven runs (the serve
# daemon's job cancel).  The hook is thread-local because scenario
# families construct their own Simulator deep inside run(scenario):
# a worker thread sets the check before calling run(), and every
# Simulator built on that thread polls it every 1024 events.  Threads
# that never set a check (every pre-existing caller) pay one hoisted
# local None-test per event.
_thread_hooks = threading.local()


def set_abort_check(check: Optional[Callable[[], bool]]) -> Optional[Callable]:
    """Install ``check`` as this thread's abort hook; returns the
    previous hook.  Simulators created on this thread afterwards poll
    it periodically during :meth:`Simulator.run` and raise
    :class:`RunAborted` when it returns true.  Pass None to clear."""
    previous = getattr(_thread_hooks, "abort_check", None)
    _thread_hooks.abort_check = check
    return previous


def get_abort_check() -> Optional[Callable[[], bool]]:
    """This thread's installed abort hook (None if unset)."""
    return getattr(_thread_hooks, "abort_check", None)


# Calendar entries are plain (time, seq, event) tuples: heap sift
# compares resolve on the C-level float/int comparison of the first two
# fields and never reach the event object.  A dataclass with order=True
# here costs a Python-level __lt__ per heap comparison — measurably the
# hottest single line of the simulator before this representation.


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation.

    Cancellation is lazy: the heap entry stays in the calendar but is
    skipped when popped.  ``cancel`` is O(1).
    """

    __slots__ = ("time", "callback", "cancelled", "fired")

    def __init__(self, time: float, callback: Callable[[], None]):
        self.time = time
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled and not self.fired


class Simulator:
    """Event calendar with a monotonically advancing clock.

    Usage::

        sim = Simulator()
        sim.call_at(1.5, lambda: print("hello at t=1.5"))
        sim.run()
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[tuple[float, int, ScheduledEvent]] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed = 0
        # Engine-level tracing (None = fast path).  Every processed
        # calendar event is recorded, so this is opt-in via
        # TelemetryConfig.engine_events, not regular tracing.
        self._tracer = None
        self._abort_check = get_abort_check()

    def attach_tracer(self, tracer) -> None:
        """Record every processed calendar event in ``tracer`` (verbose;
        enabled only by ``TelemetryConfig.engine_events``).  Pass a
        disabled tracer (or None) to detach."""
        self._tracer = tracer if tracer is not None and tracer.enabled else None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def call_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulated ``time``."""
        now = self._now
        if not time >= now:  # also catches NaN, which fails every compare
            if math.isnan(time):
                raise SimulationError("cannot schedule an event at NaN time")
            if time < now - 1e-15:
                raise SimulationError(
                    f"cannot schedule in the past: t={time!r} < now={now!r}"
                )
            time = now
        event = ScheduledEvent(time, callback)
        heapq.heappush(self._heap, (time, next(self._seq), event))
        return event

    def call_in(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.call_at(self._now + delay, callback)

    def stop(self) -> None:
        """Stop the run loop after the current event."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next active event, or None if the calendar is empty."""
        heap = self._heap
        while heap:
            event = heap[0][2]
            if event.cancelled or event.fired:
                heapq.heappop(heap)
            else:
                return heap[0][0]
        return None

    def step(self) -> bool:
        """Run the single next event.  Returns False when none remain."""
        heap = self._heap
        while heap:
            time, _, event = heapq.heappop(heap)
            if event.cancelled or event.fired:
                continue
            if time < self._now - 1e-15:
                raise SimulationError("event calendar corrupted: time went backwards")
            if time > self._now:
                self._now = time
            event.fired = True
            self.events_processed += 1
            if self._tracer is not None:
                self._tracer.sim_event(
                    getattr(event.callback, "__qualname__", "callback"))
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the calendar drains, ``until`` is reached, or
        ``max_events`` have been processed.  Returns the final clock.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if the last event fired earlier.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        # Hot loop: locals for the heap and heappop, single pop per event
        # (peek-then-step would scan the heap top twice), tracer branch
        # hoisted out when tracing is off.
        heap = self._heap
        pop = heapq.heappop
        tracer = self._tracer
        abort = self._abort_check
        if abort is not None and abort():
            self._running = False
            raise RunAborted("run aborted before the first event")
        try:
            while not self._stopped:
                if max_events is not None and processed >= max_events:
                    break
                if not heap:
                    break
                time, _, event = heap[0]
                if event.cancelled or event.fired:
                    pop(heap)
                    continue
                if until is not None and time > until:
                    break
                pop(heap)
                if time < self._now - 1e-15:
                    raise SimulationError(
                        "event calendar corrupted: time went backwards")
                if time > self._now:
                    self._now = time
                event.fired = True
                self.events_processed += 1
                if tracer is not None:
                    tracer.sim_event(
                        getattr(event.callback, "__qualname__", "callback"))
                event.callback()
                processed += 1
                if abort is not None and (processed & 1023) == 0 and abort():
                    raise RunAborted(
                        f"run aborted after {processed} events "
                        f"at t={self._now:.6f}")
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now
