"""Seeded random-number streams for reproducible experiments.

Every stochastic component (arrival processes, trace generators, jitter)
draws from its own named substream derived from a single experiment
seed, so adding a new component never perturbs the draws of existing
ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory", "substream_seed"]


def substream_seed(root_seed: int, name: str) -> int:
    """Derive a stable 63-bit seed for substream ``name``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


class RngFactory:
    """Factory of independent named :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for substream ``name`` (stable per call)."""
        return np.random.default_rng(substream_seed(self.root_seed, name))
