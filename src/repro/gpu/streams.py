"""CUDA stream model.

A stream is an ordered queue of operations that the device executes
in FIFO order; at most one op of a stream is in flight at a time.
Streams carry a priority (larger = more important, default 0) which the
hardware dispatcher uses when choosing among streams with ready work —
but, as on real NVIDIA GPUs, priority never preempts a running kernel.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Deque, Optional, Union

from repro.kernels.kernel import KernelOp, MemoryOp
from repro.sim.process import Signal

if TYPE_CHECKING:  # pragma: no cover
    from .device import GpuDevice

__all__ = ["Stream", "StreamOp", "DEFAULT_PRIORITY", "HIGH_PRIORITY"]

DEFAULT_PRIORITY = 0
HIGH_PRIORITY = 1

_stream_ids = itertools.count()


class StreamOp:
    """An op enqueued on a stream, with its completion signal."""

    __slots__ = ("op", "done", "stream", "enqueued_at", "started_at", "finished_at")

    def __init__(self, op: Union[KernelOp, MemoryOp], done: Signal, stream: "Stream",
                 enqueued_at: float):
        self.op = op
        self.done = done
        self.stream = stream
        self.enqueued_at = enqueued_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None


class Stream:
    """One CUDA stream bound to a device."""

    def __init__(self, device: "GpuDevice", priority: int = DEFAULT_PRIORITY,
                 name: Optional[str] = None):
        self.device = device
        self.priority = priority
        self.stream_id = next(_stream_ids)
        self.name = name or f"stream-{self.stream_id}"
        self.queue: Deque[StreamOp] = deque()
        self.in_flight: Optional[StreamOp] = None
        # Signal of the most recently enqueued op; cudaEventRecord
        # semantics hang off this ("event completes when all work
        # submitted to the stream before the record completes").
        self.last_op_done: Optional[Signal] = None
        self.ops_submitted = 0
        self.ops_completed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stream {self.name} prio={self.priority} queued={len(self.queue)}>"

    @property
    def busy(self) -> bool:
        """True while the stream has queued or in-flight work."""
        return self.in_flight is not None or bool(self.queue)

    def submit(self, op: Union[KernelOp, MemoryOp]) -> Signal:
        """Enqueue ``op``; returns a signal fired on its completion."""
        done = Signal(self.device.sim)
        stream_op = StreamOp(op, done, self, self.device.sim.now)
        self.queue.append(stream_op)
        self.last_op_done = done
        self.ops_submitted += 1
        self.device.notify_work(self)
        return done

    def head(self) -> Optional[StreamOp]:
        """The next dispatchable op, if the stream is idle and has work."""
        if self.in_flight is not None or not self.queue:
            return None
        return self.queue[0]

    def synchronize_signal(self) -> Signal:
        """Signal that fires when all currently-submitted work completes."""
        if self.last_op_done is None or self.last_op_done.triggered:
            done = Signal(self.device.sim)
            done.trigger()
            return done
        return self.last_op_done
