"""CUDA event analog (paper §5.1.2).

Orion uses CUDA events to track best-effort stream progress without
blocking stream synchronization: record an event after submitting a
kernel, then poll it with ``cudaEventQuery``.  The simulator mirrors
those exact semantics: an event recorded on a stream completes when all
work submitted to the stream *before the record* has completed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.process import Signal

if TYPE_CHECKING:  # pragma: no cover
    from .streams import Stream

__all__ = ["CudaEvent"]


class CudaEvent:
    """One-shot completion marker recordable on a stream, re-recordable."""

    def __init__(self, name: str = "event"):
        self.name = name
        self._signal: Optional[Signal] = None
        self._recorded = False
        self.completed_at: Optional[float] = None

    def record(self, stream: "Stream") -> None:
        """Capture the stream's current tail; resets any prior record."""
        self._recorded = True
        self.completed_at = None
        signal = stream.synchronize_signal()
        self._signal = signal
        sim = stream.device.sim

        def on_done(_sig, _self=self, _signal=signal, _sim=sim):
            # A later re-record supersedes this one.
            if _self._signal is _signal:
                _self.completed_at = _sim.now

        signal.add_callback(on_done)

    def query(self) -> bool:
        """Non-blocking status check (cudaEventQuery).

        True if the event has completed.  An event that was never
        recorded reports True, matching CUDA's cudaSuccess for
        unrecorded events.
        """
        if not self._recorded:
            return True
        return self._signal is not None and self._signal.triggered

    def synchronize_signal(self) -> Signal:
        """Awaitable signal for process code (cudaEventSynchronize)."""
        if self._signal is None:
            done = Signal()
            done.trigger()
            return done
        return self._signal
