"""CUDA-style error codes and the error record completion signals carry.

Real CUDA reports failures through return codes, and distinguishes
*sticky* errors (a faulting kernel corrupts the CUDA context: every
subsequent call in that process returns the same error until the device
is reset) from *non-sticky* ones (``cudaErrorMemoryAllocation`` — the
call failed but the context is intact and the caller may retry).  The
simulator mirrors those semantics: a failed operation's completion
signal triggers with a :class:`CudaError` payload instead of raising
into the event loop, and :class:`repro.runtime.client.ClientContext`
applies the sticky/non-sticky distinction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["CudaError", "CudaErrorCode"]


class CudaErrorCode(enum.Enum):
    """Failure classes surfaced to clients, mirroring CUDA runtime codes."""

    #: A kernel faulted on the device (cudaErrorLaunchFailure) — sticky.
    LAUNCH_FAILURE = "launch_failure"
    #: cudaMalloc exceeded device memory (cudaErrorMemoryAllocation) —
    #: non-sticky: the context survives and the caller may retry.
    OUT_OF_MEMORY = "out_of_memory"
    #: A host<->device copy failed on the bus — sticky (async failures
    #: corrupt the context like launch failures do).
    TRANSFER_FAILURE = "transfer_failure"
    #: The owning client was killed/deregistered; pending ops complete
    #: with this status — sticky for any context still holding it.
    CLIENT_KILLED = "client_killed"
    #: An op was rejected because the context already holds a sticky
    #: error (the status CUDA returns on every call after corruption).
    CONTEXT_POISONED = "context_poisoned"
    #: A bounded software queue refused the op (overload protection,
    #: DESIGN.md §6.2) — non-sticky: the client may back off and retry.
    QUEUE_FULL = "queue_full"

    @property
    def sticky(self) -> bool:
        """Whether this error permanently poisons the issuing context."""
        return self in (
            CudaErrorCode.LAUNCH_FAILURE,
            CudaErrorCode.TRANSFER_FAILURE,
            CudaErrorCode.CLIENT_KILLED,
        )


@dataclass(frozen=True)
class CudaError:
    """One failure event, attached to a completion signal's ``error``."""

    code: CudaErrorCode
    message: str = ""
    client_id: Optional[str] = None
    kernel: Optional[str] = None
    time: Optional[float] = None

    @property
    def sticky(self) -> bool:
        return self.code.sticky

    def __str__(self) -> str:
        parts = [self.code.value]
        if self.kernel:
            parts.append(f"kernel={self.kernel}")
        if self.client_id:
            parts.append(f"client={self.client_id}")
        if self.message:
            parts.append(self.message)
        return ": ".join((parts[0], ", ".join(parts[1:]))) if len(parts) > 1 else parts[0]
