"""PCIe copy engine.

Models host<->device transfers with per-direction bandwidth shared
equally among concurrent transfers, plus a fixed setup latency.  This
is the substrate behind ``cudaMemcpy``/``cudaMemcpyAsync`` and the §5.1.3
observation that memory operations consume CPU-GPU PCIe bandwidth
rather than SM resources.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.engine import ScheduledEvent, Simulator
from repro.sim.process import Signal

__all__ = ["PcieEngine", "PcieTransfer"]


class PcieTransfer:
    """One in-flight transfer."""

    __slots__ = ("nbytes", "remaining", "done", "started_at")

    def __init__(self, nbytes: int, done: Signal, started_at: float):
        self.nbytes = nbytes
        self.remaining = float(nbytes)
        self.done = done
        self.started_at = started_at


class _Channel:
    """One direction of the bus: equal-share bandwidth processor."""

    def __init__(self, sim: Simulator, bandwidth: float):
        self.sim = sim
        self.bandwidth = bandwidth
        self.transfers: list[PcieTransfer] = []
        self._last_update = 0.0
        self._completion: Optional[ScheduledEvent] = None
        self.bytes_moved = 0.0
        # A transfer is done when < 1ns of bus time remains; without a
        # bandwidth-relative epsilon, float residue (remaining bytes
        # whose drain time underflows the clock's resolution) would spin
        # the completion event forever at one timestamp.
        self._eps_bytes = max(1.0, bandwidth * 1e-9)

    def _rate(self) -> float:
        return self.bandwidth / max(1, len(self.transfers))

    def _advance(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed > 0 and self.transfers:
            rate = self._rate()
            for t in self.transfers:
                moved = min(t.remaining, rate * elapsed)
                t.remaining -= moved
                self.bytes_moved += moved
        self._last_update = now

    def _reschedule(self) -> None:
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        if not self.transfers:
            return
        rate = self._rate()
        soonest = min(t.remaining for t in self.transfers) / rate
        # Floor at 1ns so the event always advances the clock.
        self._completion = self.sim.call_in(max(soonest, 1e-9), self._on_completion)

    def _on_completion(self) -> None:
        self._advance()
        finished = [t for t in self.transfers if t.remaining <= self._eps_bytes]
        self.transfers = [t for t in self.transfers if t.remaining > self._eps_bytes]
        self._reschedule()
        for t in finished:
            t.done.trigger(self.sim.now)

    def add(self, transfer: PcieTransfer) -> None:
        self._advance()
        self.transfers.append(transfer)
        self._reschedule()


class PcieEngine:
    """Full-duplex PCIe bus with independent H2D and D2H channels."""

    def __init__(self, sim: Simulator, bandwidth: float, latency: float = 10e-6):
        if bandwidth <= 0:
            raise ValueError("PCIe bandwidth must be positive")
        if latency < 0:
            raise ValueError("PCIe latency must be >= 0")
        self.sim = sim
        self.latency = latency
        self._channels: Dict[str, _Channel] = {
            "h2d": _Channel(sim, bandwidth),
            "d2h": _Channel(sim, bandwidth),
        }

    def active_transfers(self, direction: str) -> int:
        return len(self._channels[direction].transfers)

    def bytes_moved(self, direction: str) -> float:
        return self._channels[direction].bytes_moved

    def start_transfer(self, nbytes: int, direction: str = "h2d") -> Signal:
        """Begin a transfer; returns a signal fired on completion."""
        if direction not in self._channels:
            raise ValueError(f"unknown PCIe direction {direction!r}")
        if nbytes < 0:
            raise ValueError("transfer size must be >= 0")
        done = Signal(self.sim)
        channel = self._channels[direction]
        if nbytes == 0:
            self.sim.call_in(self.latency, lambda: done.trigger(self.sim.now))
            return done
        transfer = PcieTransfer(nbytes, done, self.sim.now)
        # Setup latency before the transfer occupies the channel.
        self.sim.call_in(self.latency, lambda: channel.add(transfer))
        return done
