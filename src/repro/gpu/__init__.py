"""Simulated GPU: device catalog, streams, dispatcher, contention, memory, PCIe."""

from .contention import ContentionModel, ContentionParams, profile_similarity
from .cuda_events import CudaEvent
from .device import ArmedKernelFault, GpuDevice, RunningKernel
from .errors import CudaError, CudaErrorCode
from .memory import Allocation, DeviceMemory, GpuOutOfMemoryError
from .pcie import PcieEngine
from .specs import A100_40GB, DEVICES, V100_16GB, DeviceSpec, get_device
from .streams import DEFAULT_PRIORITY, HIGH_PRIORITY, Stream, StreamOp

__all__ = [
    "GpuDevice",
    "RunningKernel",
    "ArmedKernelFault",
    "CudaError",
    "CudaErrorCode",
    "DeviceSpec",
    "V100_16GB",
    "A100_40GB",
    "DEVICES",
    "get_device",
    "Stream",
    "StreamOp",
    "DEFAULT_PRIORITY",
    "HIGH_PRIORITY",
    "CudaEvent",
    "ContentionModel",
    "ContentionParams",
    "profile_similarity",
    "DeviceMemory",
    "Allocation",
    "GpuOutOfMemoryError",
    "PcieEngine",
]
