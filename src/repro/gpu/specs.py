"""Device catalog.

Specs mirror the two GPUs in the paper's evaluation: the V100-16GB used
for the main experiments (§6.1) and the A100-40GB used for the
generalization experiment (§6.3, Figure 13).  Peak numbers are the
public datasheet figures; scheduling-model parameters (oversubscription
cap, launch overheads) are shared model constants documented here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.kernels.launch import SmLimits

__all__ = ["DeviceSpec", "V100_16GB", "A100_40GB", "get_device", "DEVICES"]

GIB = 1024**3


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one GPU device."""

    name: str
    num_sms: int
    peak_flops: float  # FP32 FLOP/s
    memory_bandwidth: float  # bytes/s
    memory_capacity: int  # bytes
    pcie_bandwidth: float  # bytes/s per direction
    sm_limits: SmLimits = field(default_factory=SmLimits)
    # --- scheduling-model constants ---
    # Fixed floor added to every kernel (launch/dispatch/teardown).
    kernel_min_duration: float = 2e-6
    # Kernels shorter than this lack a roofline analysis in the profiler
    # (the paper's "unknown" class; Nsight cannot characterize them).
    roofline_min_duration: float = 6e-6
    # The hardware dispatcher admits new kernels while the SM backlog of
    # running kernels is below this multiple of num_sms; beyond it,
    # arrivals (even high priority) wait — there is no preemption.
    # Two machine-filling kernels may co-reside (their blocks
    # timeshare, modelled by the contention sm_term); a third waits.
    sm_oversubscription: float = 2.0
    # Hard cap on concurrently resident kernels (HW queue limit).
    max_concurrent_kernels: int = 128
    # Latency of a device-synchronizing op (cudaMalloc/cudaFree).
    device_sync_latency: float = 10e-6
    # Fixed PCIe transfer setup latency.
    pcie_latency: float = 10e-6

    def __post_init__(self):
        if self.num_sms < 1:
            raise ValueError("device needs at least one SM")
        if min(self.peak_flops, self.memory_bandwidth, self.pcie_bandwidth) <= 0:
            raise ValueError("device rates must be positive")
        if self.memory_capacity <= 0:
            raise ValueError("memory capacity must be positive")
        if self.sm_oversubscription < 1.0:
            raise ValueError("sm_oversubscription must be >= 1")

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """Return a copy with some fields replaced (for what-if studies)."""
        return replace(self, **kwargs)


V100_16GB = DeviceSpec(
    name="V100-16GB",
    num_sms=80,
    peak_flops=15.7e12,
    memory_bandwidth=900e9,
    memory_capacity=16 * GIB,
    pcie_bandwidth=16e9,
)

A100_40GB = DeviceSpec(
    name="A100-40GB",
    num_sms=108,
    peak_flops=19.5e12,
    memory_bandwidth=1555e9,
    memory_capacity=40 * GIB,
    pcie_bandwidth=32e9,
    sm_limits=SmLimits(max_threads=2048, max_blocks=32, registers=65536, shared_memory=164 * 1024),
)

DEVICES = {spec.name: spec for spec in (V100_16GB, A100_40GB)}


def get_device(name: str) -> DeviceSpec:
    """Look up a device spec by catalog name."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(f"unknown device {name!r}; known: {sorted(DEVICES)}") from None
