"""The simulated GPU device.

Ties together the pieces of §2 of the paper: per-stream work queues, a
non-preemptive hardware dispatcher that honours stream priorities, the
calibrated contention model, the device-memory allocator, and the PCIe
copy engine.  Execution is rate-based: whenever the resident kernel set
changes, every kernel's progress rate is recomputed from the contention
model and the next completion is rescheduled.

Hardware-faithful behaviours the scheduler layers above rely on:

* Kernels on one stream execute strictly in order.
* Once dispatched, a kernel runs to completion (no preemption) — the
  reason Orion needs its DUR_THRESHOLD throttle.
* When the head of a higher-priority stream cannot be admitted (SM
  backlog at the oversubscription cap), lower-priority kernels do not
  jump ahead of it.
* ``cudaMalloc``/``cudaFree`` synchronize the whole device.
* A *blocking* host<->device copy stalls kernel dispatch for its
  duration (the utilization dips visible in Figure 8 of the paper).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.kernels.kernel import KernelOp, MemoryOp, MemoryOpKind
from repro.sim.engine import ScheduledEvent, Simulator
from repro.sim.process import Signal
from repro.telemetry.tracer import NULL_TRACER

from .contention import ContentionModel, ContentionParams
from .errors import CudaError, CudaErrorCode
from .memory import DeviceMemory, GpuOutOfMemoryError
from .pcie import PcieEngine
from .specs import DeviceSpec
from .streams import Stream, StreamOp

__all__ = ["GpuDevice", "RunningKernel", "ArmedKernelFault"]

_EPS = 1e-12


def _candidate_key(stream):
    """Dispatch order: priority first, then FIFO by head enqueue, then id."""
    return (-stream.priority, stream.queue[0].enqueued_at, stream.stream_id)

# Time a faulting kernel occupies its stream before the launch failure
# is reported (real faulting kernels abort almost immediately).
FAULT_REPORT_LATENCY = 1e-6


class ArmedKernelFault:
    """A pending injected fault: the next matching kernel launch fails."""

    __slots__ = ("kernel_name", "client_id", "count")

    def __init__(self, kernel_name: str, client_id: Optional[str] = None,
                 count: int = 1):
        if count < 1:
            raise ValueError("fault count must be >= 1")
        self.kernel_name = kernel_name
        self.client_id = client_id
        self.count = count

    def matches(self, op: KernelOp) -> bool:
        if op.spec.name != self.kernel_name:
            return False
        return self.client_id is None or op.client_id == self.client_id


class RunningKernel:
    """Book-keeping for one resident kernel."""

    __slots__ = ("stream_op", "remaining", "rate", "admitted_at")

    def __init__(self, stream_op: StreamOp, admitted_at: float):
        self.stream_op = stream_op
        self.remaining = stream_op.op.duration
        self.rate = 1.0
        self.admitted_at = admitted_at

    @property
    def op(self) -> KernelOp:
        return self.stream_op.op  # type: ignore[return-value]


class GpuDevice:
    """One simulated GPU."""

    def __init__(
        self,
        sim: Simulator,
        spec: DeviceSpec,
        contention_params: ContentionParams = ContentionParams(),
        record_utilization: bool = False,
    ):
        self.sim = sim
        self.spec = spec
        self.contention = ContentionModel(spec.num_sms, contention_params)
        self.memory = DeviceMemory(spec.memory_capacity)
        self.pcie = PcieEngine(sim, spec.pcie_bandwidth, spec.pcie_latency)
        self.streams: List[Stream] = []
        self.running: Dict[int, RunningKernel] = {}
        # Incrementally-maintained sum of running kernels' sm_needed
        # (exact int arithmetic; avoids re-summing per admission check).
        self._sm_backlog = 0
        self._completion_event: Optional[ScheduledEvent] = None
        self._dispatch_scheduled = False
        self._last_rate_update = sim.now
        # Blocking memcpys in flight stall kernel dispatch.
        self._dispatch_blockers = 0
        # FIFO of pending device-synchronizing ops (cudaMalloc/cudaFree).
        self._pending_syncs: Deque[StreamOp] = deque()
        self._sync_in_progress = False
        self._active_transfers = 0
        # Live allocations per client (for cudaFree matching).
        self._allocations: Dict[str, List] = {}
        # Armed fault-injection state (see repro.faults).
        self._armed_kernel_faults: List[ArmedKernelFault] = []
        self._armed_transfer_faults = 0
        # Telemetry.  The tracer is wired by the run harness
        # (Backend.set_telemetry / the experiment runner); the default
        # null tracer keeps the hot paths on the disabled fast path.
        self.tracer = NULL_TRACER
        # Degradation factor (fleet fault injection): kernel progress
        # rates are divided by this, so a slowdown of 3.0 makes every
        # resident kernel take 3x as long from the moment it is set.
        self.slowdown = 1.0
        self.record_utilization = record_utilization
        self.utilization_segments: List[Tuple[float, float, float, float, float]] = []
        self.kernels_completed = 0
        self.kernels_faulted = 0
        self.transfers_faulted = 0
        self.oom_failures = 0
        self.kernel_busy_time = 0.0

    # ------------------------------------------------------------------
    # Stream management
    # ------------------------------------------------------------------
    def create_stream(self, priority: int = 0, name: Optional[str] = None) -> Stream:
        stream = Stream(self, priority=priority, name=name)
        self.streams.append(stream)
        return stream

    def destroy_stream(self, stream: Stream, error: Optional[CudaError] = None) -> int:
        """Tear down a stream: queued (undispatched) ops complete with an
        error; an in-flight op runs to completion (kernels are not
        preemptible).  Returns the number of ops cancelled."""
        if error is None:
            error = CudaError(CudaErrorCode.CLIENT_KILLED,
                              f"stream {stream.name} destroyed",
                              time=self.sim.now)
        cancelled = list(stream.queue)
        stream.queue.clear()
        # Device-synchronizing ops the dispatcher already parked.
        doomed_syncs = [s for s in self._pending_syncs if s.stream is stream]
        for head in doomed_syncs:
            self._pending_syncs.remove(head)
            if stream.in_flight is head:
                stream.in_flight = None
            cancelled.append(head)
        if stream in self.streams:
            self.streams.remove(stream)
        for head in cancelled:
            head.finished_at = self.sim.now
            head.done.trigger(None, error=error)
        self._schedule_dispatch()
        return len(cancelled)

    def release_client(self, client_id: str) -> int:
        """Free every allocation owned by ``client_id`` (dead-client
        cleanup); returns bytes freed."""
        freed = self.memory.release_client(client_id)
        self._allocations.pop(client_id, None)
        return freed

    # ------------------------------------------------------------------
    # Fault injection (see repro.faults)
    # ------------------------------------------------------------------
    def arm_kernel_fault(self, kernel_name: str, client_id: Optional[str] = None,
                         count: int = 1) -> None:
        """Make the next ``count`` launches of ``kernel_name`` (optionally
        restricted to one client) fail with a sticky launch failure."""
        self._armed_kernel_faults.append(
            ArmedKernelFault(kernel_name, client_id, count))

    def arm_transfer_fault(self, count: int = 1) -> None:
        """Make the next ``count`` PCIe transfers fail."""
        if count < 1:
            raise ValueError("fault count must be >= 1")
        self._armed_transfer_faults += count

    def _consume_kernel_fault(self, op: KernelOp) -> Optional[CudaError]:
        for fault in self._armed_kernel_faults:
            if fault.matches(op):
                fault.count -= 1
                if fault.count == 0:
                    self._armed_kernel_faults.remove(fault)
                return CudaError(CudaErrorCode.LAUNCH_FAILURE,
                                 "injected kernel fault",
                                 client_id=op.client_id,
                                 kernel=op.spec.name,
                                 time=self.sim.now)
        return None

    def _consume_transfer_fault(self, op: MemoryOp) -> Optional[CudaError]:
        if self._armed_transfer_faults <= 0:
            return None
        self._armed_transfer_faults -= 1
        return CudaError(CudaErrorCode.TRANSFER_FAILURE,
                         "injected PCIe transfer fault",
                         client_id=op.client_id,
                         time=self.sim.now)

    def notify_work(self, _stream: Stream) -> None:
        """Called by streams on submit; coalesces dispatch passes."""
        self._schedule_dispatch()

    def _schedule_dispatch(self) -> None:
        if self._dispatch_scheduled:
            return
        self._dispatch_scheduled = True
        self.sim.call_in(0.0, self._dispatch_pass)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    @property
    def sm_backlog(self) -> int:
        """SMs demanded by the resident kernel set."""
        return self._sm_backlog

    @property
    def idle(self) -> bool:
        """True when no kernel, transfer, or sync is in progress."""
        return (
            not self.running
            and self._active_transfers == 0
            and not self._sync_in_progress
        )

    def _dispatch_pass(self) -> None:
        self._dispatch_scheduled = False
        # Close the telemetry segment under the old resident set before
        # any admission changes it.
        self._checkpoint()
        # A device-wide sync owns the device exclusively.
        if self._sync_in_progress:
            return
        if self._pending_syncs:
            self._try_start_sync()
            return
        # Candidate streams with a ready head, priority first, then FIFO.
        candidates = [s for s in self.streams if s.head() is not None]
        candidates.sort(key=_candidate_key)
        kernels_gated = False
        changed = False
        for stream in candidates:
            head = stream.head()
            if head is None:
                continue
            op = head.op
            if isinstance(op, MemoryOp):
                if op.kind.synchronizes_device:
                    stream.queue.popleft()
                    stream.in_flight = head
                    self._pending_syncs.append(head)
                    self._schedule_dispatch()
                    continue
                self._start_memory_op(stream, head)
                continue
            # Kernel admission.
            if kernels_gated or self._dispatch_blockers > 0:
                continue
            fault = self._consume_kernel_fault(op) \
                if self._armed_kernel_faults else None
            if fault is not None:
                # The kernel is dispatched but crashes almost instantly:
                # it never occupies SMs, and its completion signal
                # carries the (sticky) launch failure.
                stream.queue.popleft()
                stream.in_flight = head
                head.started_at = self.sim.now
                self.kernels_faulted += 1
                if self.tracer.enabled:
                    self.tracer.op_dispatch(op.client_id, op.seq, stream.name)
                    self.tracer.instant("device", "kernel_fault",
                                        client=op.client_id,
                                        kernel=op.spec.name)
                self.sim.call_in(
                    FAULT_REPORT_LATENCY,
                    lambda h=head, e=fault: self._finish_faulted_op(h, e))
                continue
            if not self._admit_ok(op):
                # Respect priority: a stalled higher-priority kernel
                # gates all lower-priority kernel dispatch.
                kernels_gated = True
                continue
            stream.queue.popleft()
            stream.in_flight = head
            head.started_at = self.sim.now
            self.running[op.seq] = RunningKernel(head, self.sim.now)
            self._sm_backlog += op.sm_needed
            if self.tracer.enabled:
                self.tracer.op_dispatch(op.client_id, op.seq, stream.name)
            changed = True
        if changed:
            self._recompute_rates()

    def _admit_ok(self, op: KernelOp) -> bool:
        if not self.running:
            return True
        if len(self.running) >= self.spec.max_concurrent_kernels:
            return False
        cap = self.spec.sm_oversubscription * self.spec.num_sms
        return self._sm_backlog + op.sm_needed <= cap

    # ------------------------------------------------------------------
    # Kernel execution (rate-based)
    # ------------------------------------------------------------------
    def _advance_running(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_rate_update
        if elapsed > 0 and self.running:
            for r in self.running.values():
                left = r.remaining - elapsed * r.rate
                r.remaining = left if left > 0.0 else 0.0
            self.kernel_busy_time += elapsed
        self._last_rate_update = now

    def _checkpoint(self) -> None:
        """Advance running kernels to now and close the telemetry segment
        for the elapsed interval using the rates that were in force."""
        segment_start = self._last_rate_update
        if self.record_utilization and self.sim.now > segment_start:
            rates = {seq: r.rate for seq, r in self.running.items()}
            ops = [r.op for r in self.running.values()]
            compute, mem, sm = self.contention.device_utilization(ops, rates)
            self.utilization_segments.append(
                (segment_start, self.sim.now, compute, mem, sm)
            )
        self._advance_running()

    def set_slowdown(self, factor: float) -> None:
        """Degrade (or restore, with 1.0) the device's effective speed.

        Running kernels advance at their old rates up to now, then
        continue at the scaled rates — a mid-run thermal throttle or
        failing part, as injected by ``repro.faults`` GpuDegrade.
        """
        if factor <= 0:
            raise ValueError("slowdown factor must be > 0")
        if factor == self.slowdown:
            return
        self._checkpoint()
        self.slowdown = factor
        self._recompute_rates()

    def _recompute_rates(self) -> None:
        running = self.running.values()
        ops = [r.op for r in running]
        priorities = {r.op.seq: r.stream_op.stream.priority for r in running}
        rates = self.contention.rates(ops, priorities)
        if self.slowdown != 1.0:
            inv = 1.0 / self.slowdown
            for seq in rates:
                rates[seq] *= inv
        for seq, r in self.running.items():
            r.rate = rates[seq]
        self._reschedule_completion()

    def _reschedule_completion(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self.running:
            return
        soonest = None
        for r in self.running.values():
            rate = r.rate
            t = r.remaining / (rate if rate > _EPS else _EPS)
            if soonest is None or t < soonest:
                soonest = t
        self._completion_event = self.sim.call_in(max(soonest, 1e-9), self._on_completion)

    def _on_completion(self) -> None:
        self._completion_event = None
        self._checkpoint()
        finished = [r for r in self.running.values() if r.remaining <= 1e-9]
        # Bookkeeping and the next dispatch pass are queued *before*
        # completion signals fire: the hardware starts the next pending
        # kernel immediately, while host software only observes the
        # completion afterwards.  Schedulers polling device occupancy
        # must not see a phantom idle gap between back-to-back kernels.
        to_signal = []
        for r in finished:
            del self.running[r.op.seq]
            self._sm_backlog -= r.op.sm_needed
            stream_op = r.stream_op
            stream_op.finished_at = self.sim.now
            stream_op.stream.in_flight = None
            stream_op.stream.ops_completed += 1
            self.kernels_completed += 1
            if self.tracer.enabled:
                self.tracer.op_complete(r.op.client_id, r.op.seq,
                                        stream_op.stream.name,
                                        r.op.duration, True)
            to_signal.append(stream_op.done)
        # Survivors may speed up now that co-runners left; recompute.
        self._recompute_rates()
        self._schedule_dispatch()
        for done in to_signal:
            done.trigger(self.sim.now)

    def _finish_stream_op(self, stream_op: StreamOp,
                          error: Optional[CudaError] = None) -> None:
        stream_op.finished_at = self.sim.now
        stream = stream_op.stream
        stream.in_flight = None
        stream.ops_completed += 1
        if self.tracer.enabled:
            self.tracer.op_complete(stream_op.op.client_id, stream_op.op.seq,
                                    stream.name, None, error is None)
        stream_op.done.trigger(self.sim.now, error=error)

    def _finish_faulted_op(self, stream_op: StreamOp, error: CudaError) -> None:
        self._finish_stream_op(stream_op, error=error)
        self._schedule_dispatch()

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------
    def _start_memory_op(self, stream: Stream, head: StreamOp) -> None:
        op = head.op
        assert isinstance(op, MemoryOp)
        stream.queue.popleft()
        stream.in_flight = head
        head.started_at = self.sim.now
        if self.tracer.enabled:
            self.tracer.op_dispatch(op.client_id, op.seq, stream.name)
        if op.kind.is_transfer:
            direction = "d2h" if op.kind is MemoryOpKind.MEMCPY_D2H else "h2d"
            self._active_transfers += 1
            if op.blocking:
                self._dispatch_blockers += 1
            fault = self._consume_transfer_fault(op) \
                if self._armed_transfer_faults else None
            if fault is not None:
                # The bus rejects the copy after its setup latency; the
                # op completes with a transfer failure instead of data.
                self.transfers_faulted += 1
                self.sim.call_in(
                    self.pcie.latency,
                    lambda h=head, o=op, e=fault: self._finish_transfer(h, o, e))
                return
            done = self.pcie.start_transfer(op.nbytes, direction)
            done.add_callback(lambda _sig, s=stream, h=head, o=op: self._finish_transfer(h, o))
        elif op.kind is MemoryOpKind.MEMSET:
            # Device-side fill: bounded by memory bandwidth; modelled as
            # a short non-contending operation.
            duration = op.nbytes / self.spec.memory_bandwidth + self.spec.kernel_min_duration
            self.sim.call_in(duration, lambda h=head: self._finish_simple_op(h))
        else:  # pragma: no cover - syncs are routed earlier
            raise AssertionError(f"unexpected memory op {op.kind} in _start_memory_op")

    def _finish_transfer(self, head: StreamOp, op: MemoryOp,
                         error: Optional[CudaError] = None) -> None:
        self._active_transfers -= 1
        if op.blocking:
            self._dispatch_blockers -= 1
        self._finish_stream_op(head, error=error)
        self._schedule_dispatch()

    def _finish_simple_op(self, head: StreamOp) -> None:
        self._finish_stream_op(head)
        self._schedule_dispatch()

    def _try_start_sync(self) -> None:
        """Run the next cudaMalloc/cudaFree once the device drains."""
        if self._sync_in_progress or not self._pending_syncs:
            return
        if self.running or self._active_transfers > 0:
            return  # completion paths re-trigger dispatch, which re-tries
        head = self._pending_syncs.popleft()
        self._sync_in_progress = True
        head.started_at = self.sim.now
        if self.tracer.enabled:
            self.tracer.op_dispatch(head.op.client_id, head.op.seq,
                                    head.stream.name)
        error: Optional[CudaError] = None
        try:
            self._apply_memory_op(head.op)
        except GpuOutOfMemoryError as exc:
            # CUDA-style: cudaMalloc returns cudaErrorMemoryAllocation
            # (non-sticky) to the calling client rather than tearing
            # down the whole simulation.
            self.oom_failures += 1
            error = CudaError(CudaErrorCode.OUT_OF_MEMORY, str(exc),
                              client_id=head.op.client_id, time=self.sim.now)
            if self.tracer.enabled:
                self.tracer.instant("device", "oom",
                                    client=head.op.client_id,
                                    nbytes=head.op.nbytes)

        def finish(h=head, e=error):
            self._sync_in_progress = False
            self._finish_stream_op(h, error=e)
            self._schedule_dispatch()

        self.sim.call_in(self.spec.device_sync_latency, finish)

    def _apply_memory_op(self, op: MemoryOp) -> None:
        """Update the allocator for a malloc/free (raises on OOM)."""
        client = op.client_id or "anonymous"
        if op.kind is MemoryOpKind.MALLOC:
            alloc = self.memory.malloc(op.nbytes, client)
            self._allocations.setdefault(client, []).append(alloc)
        elif op.kind is MemoryOpKind.FREE:
            owned = self._allocations.get(client, [])
            match = next((a for a in owned if a.nbytes == op.nbytes),
                         owned[-1] if owned else None)
            if match is not None:
                owned.remove(match)
                self.memory.free_allocation(match)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def synchronize_signal(self) -> Signal:
        """Signal fired when every stream drains (cudaDeviceSynchronize)."""
        done = Signal(self.sim)

        def poll():
            if self.idle and all(not s.busy for s in self.streams):
                done.trigger(self.sim.now)
            else:
                self.sim.call_in(5e-6, poll)

        poll()
        return done

    def resident_profiles(self) -> List[KernelOp]:
        """Kernels currently resident on the device."""
        return [r.op for r in self.running.values()]
