"""Interference model for co-resident kernels.

This module is the simulator's substitute for real-silicon contention
and is calibrated against the paper's own Table 2 microbenchmark (see
DESIGN.md §3).  Given the set of kernels currently resident on the
device, it computes each kernel's *progress rate*: 1.0 means the kernel
advances at its solo speed; 0.5 means it takes twice as long.

Model
-----
Each kernel k carries solo demands ``c_k`` (fraction of peak compute
throughput), ``m_k`` (fraction of peak memory bandwidth) and ``s_k``
(SM footprint).  For the resident set, the per-resource totals are

    D_c = sum(c_j),   D_m = sum(m_j),   D_sm = sum(s_j) / num_sms

A kernel's slowdown is the worst of four contention mechanisms:

    slowdown_k = max(1, compute_term, memory_term, sm_term, residency_term)

    compute_term  = (w_c * D'_c)^ALPHA_C        # ALU/issue bandwidth
    memory_term   = (w_m * D'_m)^ALPHA_M        # DRAM bandwidth
    sm_term       = 1 + max(0, D_sm - 1) * GAMMA * similarity_k
    residency_term= prod_j (1 + BETA * similarity_kj * s_j / num_sms)

* compute/memory terms: dependence is weighted by the kernel's own
  profile (``w = demand / dominant demand``) and contention is
  priority-discounted (the hardware issues warps from higher-priority
  streams first).
* sm_term models *thread-block slot timesharing*: when resident kernels
  demand more SMs than exist, their blocks interleave and each kernel
  effectively timeshares the machine (GAMMA = 1 is proportional
  timesharing).  Opposite-profile co-runners hide in each other's
  stall cycles, so the term is scaled by profile similarity — the
  physical effect Orion exploits.  Block slots are not preemptible, so
  stream priority does NOT discount this term.
* residency_term is a co-residency penalty (L2 / DRAM row-buffer /
  scheduler collisions) for similar-profile neighbours even under
  capacity.

Constants are fit to reproduce Table 2 of the paper: Conv2d+Conv2d
1.0x (two machine-filling compute kernels timeshare into sequential-
equivalent time), BN2d+BN2d ~1.1x, Conv2d+BN2d ~1.45x speedup over
sequential execution (pinned by ``tests/test_calibration.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.kernels.kernel import KernelOp

__all__ = ["ContentionModel", "ContentionParams", "profile_similarity"]


@dataclass(frozen=True)
class ContentionParams:
    """Tunable constants of the interference model (see module docs)."""

    alpha_compute: float = 1.00
    alpha_memory: float = 1.22
    # Weight of SM block-slot timesharing (1.0 = proportional).
    gamma_sm: float = 1.00
    # Co-residency penalty per similar-profile co-runner (see module docs).
    beta_coresidency: float = 0.15
    # Relative warp-issue weight of a priority step: contention caused
    # by a stream ``p`` levels below is discounted by this base.
    priority_weight_base: float = 4.0

    def __post_init__(self):
        if self.alpha_compute < 1 or self.alpha_memory < 1:
            raise ValueError("contention exponents must be >= 1")
        if self.gamma_sm < 0 or self.beta_coresidency < 0:
            raise ValueError("gamma_sm and beta_coresidency must be >= 0")
        if self.priority_weight_base < 1:
            raise ValueError("priority_weight_base must be >= 1")


def profile_similarity(a: KernelOp, b: KernelOp) -> float:
    """Cosine similarity of two kernels' (compute, memory) demand vectors.

    1.0 for identical profiles (worst SM sharing), near 0 for fully
    opposite profiles (best SM sharing).
    """
    norm_a = math.hypot(a.compute_util, a.memory_util)
    norm_b = math.hypot(b.compute_util, b.memory_util)
    if norm_a == 0 or norm_b == 0:
        return 0.0
    dot = a.compute_util * b.compute_util + a.memory_util * b.memory_util
    return min(1.0, dot / (norm_a * norm_b))


def _pair_similarity(cache: Dict[tuple, float], a: KernelOp, b: KernelOp) -> float:
    """Memoized :func:`profile_similarity` (symmetric) for one rates() call."""
    key = (a.seq, b.seq) if a.seq < b.seq else (b.seq, a.seq)
    sim = cache.get(key)
    if sim is None:
        sim = cache[key] = profile_similarity(a, b)
    return sim


class ContentionModel:
    """Computes progress rates for a resident kernel set."""

    def __init__(self, num_sms: int, params: ContentionParams = ContentionParams()):
        if num_sms < 1:
            raise ValueError("num_sms must be >= 1")
        self.num_sms = num_sms
        self.params = params

    def _priority_factor(self, own_priority: int, other_priority: int) -> float:
        """How much of another kernel's demand this kernel experiences.

        Equal priorities contend fully (1.0).  A higher-priority kernel
        sees discounted interference from lower-priority co-runners,
        while lower-priority kernels see amplified interference, roughly
        conserving total throughput.
        """
        w_own = self.params.priority_weight_base**own_priority
        w_other = self.params.priority_weight_base**other_priority
        return 2.0 * w_other / (w_own + w_other)

    def rates(
        self, kernels: Sequence[KernelOp], priorities: Dict[int, int]
    ) -> Dict[int, float]:
        """Progress rate per kernel ``seq`` for the resident set.

        ``priorities`` maps kernel ``seq`` to its stream priority
        (larger = more important; 0 = default).
        """
        if not kernels:
            return {}
        params = self.params
        alpha_c = params.alpha_compute
        alpha_m = params.alpha_memory
        if len(kernels) == 1:
            # Solo kernel: no co-runners, so the SM and residency terms
            # are identically 1.0 and the pair loops vanish.  The float
            # expressions are verbatim copies of the general path so the
            # result is bit-identical.
            k = kernels[0]
            dominant = max(k.compute_util, k.memory_util, 1e-12)
            w_c = k.compute_util / dominant
            w_m = k.memory_util / dominant
            compute_term = (w_c * k.compute_util) ** alpha_c
            memory_term = (w_m * k.memory_util) ** alpha_m
            slowdown = max(1.0, compute_term, memory_term)
            return {k.seq: 1.0 / slowdown}
        gamma = params.gamma_sm
        beta = params.beta_coresidency
        base = params.priority_weight_base
        num_sms = self.num_sms
        sm_total = sum(k.sm_needed for k in kernels) / num_sms
        sm_excess = max(0.0, sm_total - 1.0)
        # Per-kernel priority weight (base**priority) computed once per
        # kernel instead of twice per ordered pair.
        weights = [base ** priorities.get(k.seq, 0) for k in kernels]
        # profile_similarity is symmetric and appears in both the SM and
        # residency terms; memoize per unordered pair for this call.
        sim_cache: Dict[tuple, float] = {}
        result: Dict[int, float] = {}
        for i, k in enumerate(kernels):
            w_own = weights[i]
            demand_c = k.compute_util
            demand_m = k.memory_util
            for idx, j in enumerate(kernels):
                if j.seq == k.seq:
                    continue
                w_other = weights[idx]
                factor = 2.0 * w_other / (w_own + w_other)
                demand_c += j.compute_util * factor
                demand_m += j.memory_util * factor
            dominant = max(k.compute_util, k.memory_util, 1e-12)
            w_c = k.compute_util / dominant
            w_m = k.memory_util / dominant
            compute_term = (w_c * demand_c) ** alpha_c
            memory_term = (w_m * demand_m) ** alpha_m
            sm_term = 1.0
            if sm_excess > 0 and gamma > 0:
                sm_weight = sum(j.sm_needed for j in kernels if j.seq != k.seq)
                if sm_weight > 0:
                    similarity = sum(
                        _pair_similarity(sim_cache, k, j) * j.sm_needed
                        for j in kernels
                        if j.seq != k.seq
                    ) / sm_weight
                    sm_term = 1.0 + gamma * sm_excess * similarity
            residency_term = 1.0
            if beta > 0:
                for j in kernels:
                    if j.seq == k.seq:
                        continue
                    share = min(1.0, j.sm_needed / num_sms)
                    residency_term *= 1.0 + (
                        beta * _pair_similarity(sim_cache, k, j) * share
                    )
            slowdown = max(1.0, compute_term, memory_term, sm_term, residency_term)
            result[k.seq] = 1.0 / slowdown
        return result

    def device_utilization(
        self, kernels: Sequence[KernelOp], rates: Dict[int, float]
    ) -> tuple[float, float, float]:
        """Instantaneous (compute, memory-bw, sm-busy) device utilization.

        A kernel progressing at rate r consumes its solo resource
        demands scaled by r (it retires FLOPs/bytes proportionally
        slower under contention).
        """
        compute = sum(k.compute_util * rates.get(k.seq, 1.0) for k in kernels)
        memory = sum(k.memory_util * rates.get(k.seq, 1.0) for k in kernels)
        sm_busy = sum(k.sm_needed for k in kernels) / self.num_sms
        return min(1.0, compute), min(1.0, memory), min(1.0, sm_busy)
