"""Device memory allocator.

Tracks GPU memory capacity per client.  Orion (and REEF) assume the
cluster manager only collocates jobs whose aggregate state fits in GPU
memory (§5.1.3); the allocator enforces that assumption and surfaces
out-of-memory as an explicit error, and feeds the "memory capacity
utilization" column of Table 1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict

__all__ = ["DeviceMemory", "Allocation", "GpuOutOfMemoryError"]


class GpuOutOfMemoryError(RuntimeError):
    """Raised when an allocation exceeds remaining device memory."""


@dataclass(frozen=True)
class Allocation:
    """Handle to one device-memory allocation."""

    alloc_id: int
    nbytes: int
    client_id: str


class DeviceMemory:
    """Bump-count allocator with per-client accounting."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.used = 0
        self.peak_used = 0
        self._by_client: Dict[str, int] = {}
        self._allocations: Dict[int, Allocation] = {}
        self._ids = itertools.count(1)

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def utilization(self) -> float:
        """Fraction of capacity currently allocated."""
        return self.used / self.capacity

    def client_usage(self, client_id: str) -> int:
        return self._by_client.get(client_id, 0)

    def malloc(self, nbytes: int, client_id: str = "default") -> Allocation:
        if nbytes < 0:
            raise ValueError("cannot allocate a negative size")
        if nbytes > self.free:
            raise GpuOutOfMemoryError(
                f"cudaMalloc of {nbytes} bytes failed: "
                f"{self.free} of {self.capacity} bytes free"
            )
        alloc = Allocation(next(self._ids), nbytes, client_id)
        self._allocations[alloc.alloc_id] = alloc
        self.used += nbytes
        self.peak_used = max(self.peak_used, self.used)
        self._by_client[client_id] = self._by_client.get(client_id, 0) + nbytes
        return alloc

    def free_allocation(self, alloc: Allocation) -> None:
        if alloc.alloc_id not in self._allocations:
            raise ValueError(f"double free of allocation {alloc.alloc_id}")
        del self._allocations[alloc.alloc_id]
        self.used -= alloc.nbytes
        self._by_client[alloc.client_id] -= alloc.nbytes
        if self._by_client[alloc.client_id] == 0:
            del self._by_client[alloc.client_id]

    def release_client(self, client_id: str) -> int:
        """Free every allocation owned by ``client_id``; returns bytes freed."""
        doomed = [a for a in self._allocations.values() if a.client_id == client_id]
        for alloc in doomed:
            self.free_allocation(alloc)
        return sum(a.nbytes for a in doomed)
