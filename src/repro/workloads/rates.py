"""Table 3 of the paper: requests per second for DNN inference jobs.

Rates are derived by the authors from the top-20 most frequently
invoked functions of the Microsoft Azure Functions trace; we use the
published constants verbatim.
"""

from __future__ import annotations

__all__ = ["TABLE3_RPS", "rps_for"]

# model -> {scenario: rps}
TABLE3_RPS = {
    "resnet50": {"inf_inf_uniform": 80, "inf_inf_poisson": 50, "inf_train_poisson": 15},
    "mobilenet_v2": {"inf_inf_uniform": 100, "inf_inf_poisson": 65, "inf_train_poisson": 40},
    "resnet101": {"inf_inf_uniform": 40, "inf_inf_poisson": 25, "inf_train_poisson": 9},
    "bert": {"inf_inf_uniform": 8, "inf_inf_poisson": 5, "inf_train_poisson": 4},
    "transformer": {"inf_inf_uniform": 20, "inf_inf_poisson": 12, "inf_train_poisson": 8},
}


def rps_for(model: str, scenario: str) -> float:
    """Look up the Table 3 rate for ``model`` in ``scenario``."""
    try:
        return float(TABLE3_RPS[model][scenario])
    except KeyError:
        raise KeyError(
            f"no Table 3 rate for model={model!r}, scenario={scenario!r}"
        ) from None
