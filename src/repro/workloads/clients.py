"""Client job processes: inference serving loops and training loops.

An :class:`InferenceClient` receives requests from an arrival process
into a pending queue and serves them one at a time (a model instance is
sequential); latency is completion minus *arrival*, so queueing delay —
the head-of-line blocking that kills temporal sharing in the paper —
is part of the measurement.  A :class:`TrainingClient` runs minibatch
iterations in a closed loop, emitting forward/backward/update phase
markers that the Tick-Tock baseline gates on.

Both clients allocate their GPU state with ``cudaMalloc`` before
serving, mirroring framework startup.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.frameworks.lowering import OpPlan, instantiate_plan
from repro.gpu.specs import DeviceSpec
from repro.kernels.kernel import KernelOp
from repro.runtime.client import ClientContext
from repro.sim.engine import Simulator
from repro.sim.process import Process, Signal, spawn

from .arrivals import ArrivalProcess, ClosedLoop

__all__ = ["RequestRecord", "InferenceClient", "TrainingClient", "ClientStats"]


@dataclass(frozen=True)
class RequestRecord:
    """Timing of one completed request/iteration."""

    arrival: float
    start: float
    end: float

    @property
    def latency(self) -> float:
        return self.end - self.arrival

    @property
    def service_time(self) -> float:
        return self.end - self.start


@dataclass
class ClientStats:
    """Raw per-client results of one run."""

    name: str
    kind: str
    records: List[RequestRecord] = field(default_factory=list)
    dropped: int = 0

    def completed(self, after: float = 0.0) -> List[RequestRecord]:
        return [r for r in self.records if r.arrival >= after]


class _BaseClient:
    def __init__(self, sim: Simulator, ctx: ClientContext, plan: OpPlan,
                 device_spec: DeviceSpec, name: str):
        self.sim = sim
        self.ctx = ctx
        self.plan = plan
        self.device_spec = device_spec
        self.name = name
        self.stats = ClientStats(name=name, kind=plan.kind)
        self._process: Optional[Process] = None

    def _startup(self):
        """Allocate resident model state (weights, workspace)."""
        yield from self.ctx.malloc(self.plan.state_bytes)

    def _run_ops(self, ops):
        """Launch one request's ops with CUDA blocking semantics."""
        for op in ops:
            if isinstance(op, KernelOp):
                yield from self.ctx.launch_kernel(op)
            else:
                # MemoryOp copies go through the dedicated entry points.
                yield from self.ctx.memcpy(op.nbytes, op.kind, blocking=op.blocking)
        yield from self.ctx.synchronize()


class InferenceClient(_BaseClient):
    """Serves inference requests from an arrival process, FIFO."""

    def __init__(self, sim: Simulator, ctx: ClientContext, plan: OpPlan,
                 device_spec: DeviceSpec, arrivals: ArrivalProcess,
                 name: str, horizon: float):
        super().__init__(sim, ctx, plan, device_spec, name)
        self.arrivals = arrivals
        self.horizon = horizon
        self._pending: Deque[float] = deque()
        self._work = Signal(sim)

    def start(self) -> None:
        if not isinstance(self.arrivals, ClosedLoop):
            spawn(self.sim, self._arrival_loop(), f"{self.name}-arrivals")
        self._process = spawn(self.sim, self._serve_loop(), f"{self.name}-serve")

    def _arrival_loop(self):
        from repro.sim.process import Timeout

        last = 0.0
        for t in self.arrivals.arrival_times(self.horizon):
            if t > last:
                yield Timeout(t - last)
                last = t
            self._pending.append(t)
            if not self._work.triggered:
                self._work.trigger()

    def _serve_loop(self):
        from repro.sim.process import Timeout

        yield from self._startup()
        closed = isinstance(self.arrivals, ClosedLoop)
        while True:
            if closed:
                arrival = self.sim.now
            else:
                while not self._pending:
                    self._work = Signal(self.sim)
                    yield self._work
                arrival = self._pending.popleft()
            yield from self.ctx.begin_request()
            start = self.sim.now
            ops = instantiate_plan(self.plan, self.device_spec,
                                   client_id=self.ctx.client_id)
            yield from self._run_ops(ops)
            self.ctx.end_request()
            self.stats.records.append(RequestRecord(arrival, start, self.sim.now))
            if closed and self.sim.now >= self.horizon:
                return
            # Tiny host-side gap between requests in closed loop.
            if closed:
                yield Timeout(1e-5)


class TrainingClient(_BaseClient):
    """Runs training iterations in a closed loop with phase markers."""

    def __init__(self, sim: Simulator, ctx: ClientContext, plan: OpPlan,
                 device_spec: DeviceSpec, name: str, horizon: float):
        if plan.kind != "training":
            raise ValueError(f"TrainingClient needs a training plan, got {plan.kind}")
        super().__init__(sim, ctx, plan, device_spec, name)
        self.horizon = horizon

    def start(self) -> None:
        self._process = spawn(self.sim, self._train_loop(), f"{self.name}-train")

    def _iteration_ops(self):
        # Training inputs are prefetched: the minibatch H2D copy is
        # asynchronous and overlaps compute (standard input pipelining;
        # the paper's §6.1 setup eliminates input stalls).
        ops = instantiate_plan(self.plan, self.device_spec,
                               client_id=self.ctx.client_id,
                               async_copies=True)
        phases = {"copy": [], "forward": [], "backward": [], "update": []}
        for op in ops:
            phases[op.tag if op.tag in phases else "forward"].append(op)
        return phases

    def _train_loop(self):
        yield from self._startup()
        while self.sim.now < self.horizon:
            yield from self.ctx.begin_request()
            start = self.sim.now
            phases = self._iteration_ops()
            yield from self.ctx.phase("forward")
            for op in phases["copy"] + phases["forward"]:
                yield from self._launch(op)
            yield from self.ctx.phase("backward")
            for op in phases["backward"]:
                yield from self._launch(op)
            yield from self.ctx.phase("update")
            for op in phases["update"]:
                yield from self._launch(op)
            yield from self.ctx.synchronize()
            self.ctx.end_request()
            self.stats.records.append(RequestRecord(start, start, self.sim.now))

    def _launch(self, op):
        if isinstance(op, KernelOp):
            yield from self.ctx.launch_kernel(op)
        else:
            yield from self.ctx.memcpy(op.nbytes, op.kind, blocking=op.blocking)
