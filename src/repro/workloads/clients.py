"""Client job processes: inference serving loops and training loops.

An :class:`InferenceClient` receives requests from an arrival process
into a pending queue and serves them one at a time (a model instance is
sequential); latency is completion minus *arrival*, so queueing delay —
the head-of-line blocking that kills temporal sharing in the paper —
is part of the measurement.  A :class:`TrainingClient` runs minibatch
iterations in a closed loop, emitting forward/backward/update phase
markers that the Tick-Tock baseline gates on.

Both clients allocate their GPU state with ``cudaMalloc`` before
serving, mirroring framework startup; allocation failures (a non-sticky
``OUT_OF_MEMORY`` status) are retried with bounded exponential backoff
rather than tearing the run down.  A sticky error (faulting kernel,
failed transfer, kill) poisons the context: the plain clients stop, the
``Restarting*`` variants run under a supervisor that rebuilds the
context and resumes serving after exponential backoff — the
fault-tolerance loop a production serving stack would run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, List, Optional

from repro.frameworks.lowering import OpPlan, instantiate_plan
from repro.gpu.errors import CudaError, CudaErrorCode
from repro.gpu.specs import DeviceSpec
from repro.kernels.kernel import KernelOp
from repro.runtime.client import ClientContext
from repro.sim.engine import Simulator
from repro.sim.process import Interrupted, Process, Signal, Timeout, spawn

from .arrivals import ArrivalProcess, ClosedLoop

if TYPE_CHECKING:  # avoids the metrics -> clients import cycle
    from repro.metrics.availability import ErrorLedger

__all__ = [
    "RequestRecord",
    "InferenceClient",
    "TrainingClient",
    "RestartingInferenceClient",
    "RestartingTrainingClient",
    "ClientStats",
]

# Bounded retry/backoff for startup allocation OOM.
_OOM_RETRIES = 5
_OOM_BACKOFF = 5e-4
_OOM_BACKOFF_CAP = 5e-2


@dataclass(frozen=True)
class RequestRecord:
    """Timing of one completed request/iteration."""

    arrival: float
    start: float
    end: float

    @property
    def latency(self) -> float:
        return self.end - self.arrival

    @property
    def service_time(self) -> float:
        return self.end - self.start


@dataclass
class ClientStats:
    """Raw per-client results of one run."""

    name: str
    kind: str
    records: List[RequestRecord] = field(default_factory=list)
    dropped: int = 0
    failed: int = 0
    restarts: int = 0
    # Requests shed at admission because their deadline had already
    # expired before any GPU work was issued (overload protection).
    # Shed is neither served nor failed: the request was never tried.
    shed: int = 0

    def completed(self, after: float = 0.0) -> List[RequestRecord]:
        return [r for r in self.records if r.arrival >= after]


class _BaseClient:
    def __init__(self, sim: Simulator, ctx: ClientContext, plan: OpPlan,
                 device_spec: DeviceSpec, name: str,
                 ledger: Optional[ErrorLedger] = None):
        self.sim = sim
        self.ctx = ctx
        self.plan = plan
        self.device_spec = device_spec
        self.name = name
        self.stats = ClientStats(name=name, kind=plan.kind)
        self.ledger = ledger
        self._process: Optional[Process] = None
        self._serve: Optional[Process] = None
        self._errors_seen = 0

    def kill(self, error: Optional[CudaError] = None) -> None:
        """Simulated process death: the serve loop is interrupted and the
        context closed (deregistering from the backend)."""
        target = self._serve or self._process
        if target is not None and target.alive:
            target.interrupt("killed")
        if self.ctx.in_request:
            self._record_failed()
        if self.ledger is not None:
            self.ledger.record_down(self.name, self.sim.now)
        self.ctx.close(error)
        self._flush_errors()

    @property
    def alive(self) -> bool:
        proc = self._process
        return proc is not None and proc.alive

    def _flush_errors(self) -> None:
        """Forward errors the context observed since the last flush."""
        new = self.ctx.errors[self._errors_seen:]
        self._errors_seen = len(self.ctx.errors)
        if self.ledger is not None:
            for error in new:
                self.ledger.record_error(self.name, error.code.value,
                                         self.sim.now)

    def _record_served(self) -> None:
        if self.ledger is not None:
            self.ledger.record_served(self.name)

    def _record_failed(self) -> None:
        self.stats.failed += 1
        if self.ledger is not None:
            self.ledger.record_failed(self.name)

    def _record_shed(self) -> None:
        self.stats.shed += 1
        if self.ledger is not None:
            self.ledger.record_shed(self.name)

    def _startup(self):
        """Allocate resident model state (weights, workspace).

        OOM is retried with bounded exponential backoff; returns True
        once the allocation succeeds, False when retries are exhausted
        or a different error lands.
        """
        for attempt in range(_OOM_RETRIES + 1):
            done = yield from self.ctx.malloc(self.plan.state_bytes)
            self._flush_errors()
            if done.error is None:
                return True
            if (done.error.code is not CudaErrorCode.OUT_OF_MEMORY
                    or attempt >= _OOM_RETRIES):
                return False
            yield Timeout(min(_OOM_BACKOFF_CAP, _OOM_BACKOFF * 2 ** attempt))
        return False

    def _run_ops(self, ops):
        """Launch one request's ops with CUDA blocking semantics."""
        for op in ops:
            if isinstance(op, KernelOp):
                yield from self.ctx.launch_kernel(op)
            else:
                # MemoryOp copies go through the dedicated entry points.
                yield from self.ctx.memcpy(op.nbytes, op.kind, blocking=op.blocking)
        yield from self.ctx.synchronize()

    def _healthy(self) -> bool:
        return not (self.ctx.closed or self.ctx.poisoned)


class InferenceClient(_BaseClient):
    """Serves inference requests from an arrival process, FIFO.

    ``deadline`` (relative seconds, None = no SLO) arms shed-at-
    admission: a queued request whose ``arrival + deadline`` has
    already passed when it reaches the head of the line is dropped —
    recorded as *shed*, not served and not failed — before any GPU
    work is issued.  Under a burst this keeps the latency distribution
    of served requests meaningful instead of letting queueing delay
    grow without bound (DESIGN.md §6.2).
    """

    def __init__(self, sim: Simulator, ctx: ClientContext, plan: OpPlan,
                 device_spec: DeviceSpec, arrivals: ArrivalProcess,
                 name: str, horizon: float,
                 ledger: Optional[ErrorLedger] = None,
                 deadline: Optional[float] = None):
        super().__init__(sim, ctx, plan, device_spec, name, ledger=ledger)
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive")
        self.arrivals = arrivals
        self.horizon = horizon
        self.deadline = deadline
        self._pending: Deque[float] = deque()
        self._work = Signal(sim)

    def start(self) -> None:
        if not isinstance(self.arrivals, ClosedLoop):
            spawn(self.sim, self._arrival_loop(), f"{self.name}-arrivals")
        self._process = spawn(self.sim, self._serve_loop(), f"{self.name}-serve")

    def _arrival_loop(self):
        last = 0.0
        for t in self.arrivals.arrival_times(self.horizon):
            if t > last:
                yield Timeout(t - last)
                last = t
            self._pending.append(t)
            if not self._work.triggered:
                self._work.trigger()

    def _serve_loop(self):
        ok = yield from self._startup()
        if not ok:
            self._record_failed()
            return
        closed = isinstance(self.arrivals, ClosedLoop)
        while True:
            if closed:
                arrival = self.sim.now
            else:
                while not self._pending:
                    self._work = Signal(self.sim)
                    yield self._work
                arrival = self._pending.popleft()
                if (self.deadline is not None
                        and self.sim.now > arrival + self.deadline):
                    # Shed at admission: the deadline expired while the
                    # request sat in the pending queue — serving it now
                    # would burn GPU time on an answer nobody can use.
                    self._record_shed()
                    continue
            deadline = None if self.deadline is None \
                else arrival + self.deadline
            yield from self.ctx.begin_request(deadline=deadline)
            start = self.sim.now
            ops = instantiate_plan(self.plan, self.device_spec,
                                   client_id=self.ctx.client_id)
            yield from self._run_ops(ops)
            self.ctx.end_request()
            self._flush_errors()
            if not self._healthy():
                # Sticky error mid-request: the request failed; the
                # plain client stops here (Restarting* recovers).
                self._record_failed()
                return
            self.stats.records.append(RequestRecord(arrival, start, self.sim.now))
            if self.ctx.tracer.enabled:
                self.ctx.tracer.request(self.ctx.client_id, arrival, start)
            self._record_served()
            if closed and self.sim.now >= self.horizon:
                return
            # Tiny host-side gap between requests in closed loop.
            if closed:
                yield Timeout(1e-5)


class TrainingClient(_BaseClient):
    """Runs training iterations in a closed loop with phase markers."""

    def __init__(self, sim: Simulator, ctx: ClientContext, plan: OpPlan,
                 device_spec: DeviceSpec, name: str, horizon: float,
                 ledger: Optional[ErrorLedger] = None):
        if plan.kind != "training":
            raise ValueError(f"TrainingClient needs a training plan, got {plan.kind}")
        super().__init__(sim, ctx, plan, device_spec, name, ledger=ledger)
        self.horizon = horizon

    def start(self) -> None:
        self._process = spawn(self.sim, self._train_loop(), f"{self.name}-train")

    def _iteration_ops(self):
        # Training inputs are prefetched: the minibatch H2D copy is
        # asynchronous and overlaps compute (standard input pipelining;
        # the paper's §6.1 setup eliminates input stalls).
        ops = instantiate_plan(self.plan, self.device_spec,
                               client_id=self.ctx.client_id,
                               async_copies=True)
        phases = {"copy": [], "forward": [], "backward": [], "update": []}
        for op in ops:
            phases[op.tag if op.tag in phases else "forward"].append(op)
        return phases

    def _train_loop(self):
        ok = yield from self._startup()
        if not ok:
            self._record_failed()
            return
        while self.sim.now < self.horizon:
            yield from self.ctx.begin_request()
            start = self.sim.now
            phases = self._iteration_ops()
            yield from self.ctx.phase("forward")
            for op in phases["copy"] + phases["forward"]:
                yield from self._launch(op)
            yield from self.ctx.phase("backward")
            for op in phases["backward"]:
                yield from self._launch(op)
            yield from self.ctx.phase("update")
            for op in phases["update"]:
                yield from self._launch(op)
            yield from self.ctx.synchronize()
            self.ctx.end_request()
            self._flush_errors()
            if not self._healthy():
                self._record_failed()
                return
            self.stats.records.append(RequestRecord(start, start, self.sim.now))
            if self.ctx.tracer.enabled:
                self.ctx.tracer.request(self.ctx.client_id, start, start)
            self._record_served()

    def _launch(self, op):
        if isinstance(op, KernelOp):
            yield from self.ctx.launch_kernel(op)
        else:
            yield from self.ctx.memcpy(op.nbytes, op.kind, blocking=op.blocking)


class _RestartSupervisor:
    """Mixin: run the serve loop under a supervisor that restarts it.

    On a crash (sticky error or kill) the supervisor waits an
    exponentially growing backoff, rebuilds the client context via
    ``ctx_factory`` (a fresh registration — under Orion a dead
    high-priority client's successor re-acquires the vacated priority
    stream), and resumes serving.  Restarts are bounded.
    """

    max_restarts: int = 8
    backoff_base: float = 1e-3
    backoff_factor: float = 2.0
    backoff_cap: float = 5e-2

    def _configure_restarts(self, ctx_factory: Optional[Callable[[], ClientContext]],
                            max_restarts: int) -> None:
        self._ctx_factory = ctx_factory
        self.max_restarts = max_restarts
        self._halted = False

    def start(self) -> None:
        self._start_aux()
        self._process = spawn(self.sim, self._supervise(),
                              f"{self.name}-supervisor")

    def _start_aux(self) -> None:
        """Hook for auxiliary processes (arrival loops)."""

    def kill(self, error: Optional[CudaError] = None) -> None:
        _BaseClient.kill(self, error)

    def halt(self) -> None:
        """Permanent kill: the supervisor will not restart."""
        self._halted = True
        self.kill()

    def _supervise(self):
        attempt = 0
        while True:
            self._serve = spawn(self.sim, self._serve_body(),
                                f"{self.name}-serve-{attempt}")
            yield self._serve
            self._flush_errors()
            if self._halted or self.sim.now >= self.horizon:
                return
            if self._healthy():
                return  # clean completion
            if attempt >= self.max_restarts:
                return
            delay = min(self.backoff_cap,
                        self.backoff_base * self.backoff_factor ** attempt)
            attempt += 1
            try:
                yield Timeout(delay)
            except Interrupted:
                return
            if self._halted or self.sim.now >= self.horizon:
                return
            self._rebuild_context()
            self.stats.restarts += 1
            if self.ledger is not None:
                self.ledger.record_recovered(self.name, self.sim.now)

    def _rebuild_context(self) -> None:
        if self.ctx.closed:
            if self._ctx_factory is None:
                raise RuntimeError(
                    f"client {self.name}: context closed and no ctx_factory "
                    "to rebuild it"
                )
            self.ctx = self._ctx_factory()
            self._errors_seen = 0
        else:
            # Poisoned but never deregistered: cudaDeviceReset analog.
            self.ctx.reset()


class RestartingInferenceClient(_RestartSupervisor, InferenceClient):
    """Inference client that restarts after crashes with backoff."""

    def __init__(self, sim: Simulator, ctx: ClientContext, plan: OpPlan,
                 device_spec: DeviceSpec, arrivals: ArrivalProcess,
                 name: str, horizon: float,
                 ctx_factory: Optional[Callable[[], ClientContext]] = None,
                 max_restarts: int = 8,
                 ledger: Optional[ErrorLedger] = None,
                 deadline: Optional[float] = None):
        InferenceClient.__init__(self, sim, ctx, plan, device_spec, arrivals,
                                 name, horizon, ledger=ledger,
                                 deadline=deadline)
        self._configure_restarts(ctx_factory, max_restarts)

    def _start_aux(self) -> None:
        if not isinstance(self.arrivals, ClosedLoop):
            spawn(self.sim, self._arrival_loop(), f"{self.name}-arrivals")

    def _serve_body(self):
        yield from self._serve_loop()


class RestartingTrainingClient(_RestartSupervisor, TrainingClient):
    """Training client that restarts after crashes with backoff."""

    def __init__(self, sim: Simulator, ctx: ClientContext, plan: OpPlan,
                 device_spec: DeviceSpec, name: str, horizon: float,
                 ctx_factory: Optional[Callable[[], ClientContext]] = None,
                 max_restarts: int = 8,
                 ledger: Optional[ErrorLedger] = None):
        TrainingClient.__init__(self, sim, ctx, plan, device_spec, name,
                                horizon, ledger=ledger)
        self._configure_restarts(ctx_factory, max_restarts)

    def _serve_body(self):
        yield from self._train_loop()
