"""Synthetic Apollo-style inference trace.

The paper drives its high-priority inference job with a trace collected
from a real object-detection deployment in the Apollo autonomous
driving system (via the DISB benchmark).  That trace is not
redistributable here, so we synthesize one with the same qualitative
structure: a periodic sensing loop (cameras fire at a base rate) whose
rate is modulated by driving phases (cruise / dense-scene bursts /
idle), with per-frame jitter.  What matters for the scheduler is the
burstiness — back-to-back requests probe queueing and interference
exactly like the real trace does — and that property is preserved.

The generator is fully determined by its seed.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["apollo_trace", "APOLLO_BASE_RPS"]

# Base sensing rate of the synthetic deployment (close to the DISB
# Apollo detection stream's mean rate).
APOLLO_BASE_RPS = 25.0

# (relative rate multiplier, mean phase length in seconds)
_PHASES = (
    (1.0, 2.0),   # cruise: steady sensing
    (2.5, 0.8),   # dense scene: burst of detections
    (0.4, 1.2),   # idle/stopped: sparse frames
)


def apollo_trace(duration: float, seed: int = 0,
                 base_rps: float = APOLLO_BASE_RPS) -> List[float]:
    """Generate arrival timestamps in [0, duration)."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    if base_rps <= 0:
        raise ValueError("base_rps must be positive")
    rng = np.random.default_rng(seed)
    timestamps: List[float] = []
    t = 0.0
    while t < duration:
        multiplier, mean_len = _PHASES[int(rng.integers(len(_PHASES)))]
        phase_end = min(duration, t + float(rng.exponential(mean_len)))
        rate = base_rps * multiplier
        period = 1.0 / rate
        while t < phase_end:
            # Periodic sensing with ±20% per-frame jitter.
            jitter = float(rng.uniform(-0.2, 0.2)) * period
            t += max(period + jitter, 1e-4)
            if t < duration:
                timestamps.append(t)
        # The inner loop leaves t at/after phase_end; never move it
        # backwards or the trace would lose monotonicity.
        t = max(t, phase_end)
    return timestamps
