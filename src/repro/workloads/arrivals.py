"""Request arrival processes (§6.1 of the paper).

* Uniform — fixed inter-arrival time (autonomous-driving-style periodic
  sensing).
* Poisson — exponential inter-arrivals (event-driven serving); rates
  follow the Azure Functions trace-derived RPS of Table 3.
* Apollo — a synthetic stand-in for the DISB/Apollo object-detection
  trace used for the high-priority job: periodic sensing with bursts
  and jitter (see :mod:`repro.workloads.apollo`).
* Closed loop — the next request is issued when the previous finishes
  (training jobs, and the best-effort offline inference jobs).
"""

from __future__ import annotations

import abc
from typing import Iterator, Optional

import numpy as np

__all__ = ["ArrivalProcess", "UniformArrivals", "PoissonArrivals",
           "TraceArrivals", "ClosedLoop", "make_arrivals"]


class ArrivalProcess(abc.ABC):
    """Yields absolute arrival times (seconds), monotonically increasing."""

    closed_loop = False

    @abc.abstractmethod
    def arrival_times(self, until: float) -> Iterator[float]:
        """Arrival times in [0, until)."""


class UniformArrivals(ArrivalProcess):
    """Fixed-rate periodic arrivals."""

    def __init__(self, rps: float, offset: float = 0.0):
        if rps <= 0:
            raise ValueError("rps must be positive")
        self.rps = rps
        self.offset = offset

    def arrival_times(self, until: float) -> Iterator[float]:
        # Multiply rather than accumulate: repeated float addition of
        # the period drifts enough to emit a phantom arrival at ~until.
        period = 1.0 / self.rps
        n = 0
        while True:
            t = self.offset + n * period
            if t >= until:
                return
            yield t
            n += 1


class PoissonArrivals(ArrivalProcess):
    """Exponential inter-arrival times with mean rate ``rps``."""

    def __init__(self, rps: float, rng: Optional[np.random.Generator] = None):
        if rps <= 0:
            raise ValueError("rps must be positive")
        self.rps = rps
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def arrival_times(self, until: float) -> Iterator[float]:
        t = float(self.rng.exponential(1.0 / self.rps))
        while t < until:
            yield t
            t += float(self.rng.exponential(1.0 / self.rps))


class TraceArrivals(ArrivalProcess):
    """Replays a list of absolute timestamps (e.g. the Apollo trace)."""

    def __init__(self, timestamps):
        self.timestamps = sorted(float(t) for t in timestamps)
        if any(t < 0 for t in self.timestamps):
            raise ValueError("trace timestamps must be >= 0")

    def arrival_times(self, until: float) -> Iterator[float]:
        for t in self.timestamps:
            if t >= until:
                return
            yield t


class ClosedLoop(ArrivalProcess):
    """Marker process: the client issues the next request on completion."""

    closed_loop = True

    def arrival_times(self, until: float) -> Iterator[float]:
        return iter(())


def make_arrivals(kind: str, rps: float = 0.0,
                  rng: Optional[np.random.Generator] = None,
                  timestamps=None) -> ArrivalProcess:
    """Factory used by experiment configs."""
    if kind == "uniform":
        return UniformArrivals(rps)
    if kind == "poisson":
        return PoissonArrivals(rps, rng)
    if kind == "trace":
        if timestamps is None:
            raise ValueError("trace arrivals need timestamps")
        return TraceArrivals(timestamps)
    if kind == "closed":
        return ClosedLoop()
    raise ValueError(f"unknown arrival kind {kind!r}")
