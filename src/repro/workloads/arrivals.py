"""Request arrival processes (§6.1 of the paper).

* Uniform — fixed inter-arrival time (autonomous-driving-style periodic
  sensing).
* Poisson — exponential inter-arrivals (event-driven serving); rates
  follow the Azure Functions trace-derived RPS of Table 3.
* Apollo — a synthetic stand-in for the DISB/Apollo object-detection
  trace used for the high-priority job: periodic sensing with bursts
  and jitter (see :mod:`repro.workloads.apollo`).
* Closed loop — the next request is issued when the previous finishes
  (training jobs, and the best-effort offline inference jobs).

Overload patterns (DESIGN.md §6.2), for driving the serving stack past
capacity on purpose:

* Poisson burst — a Poisson base rate with periodic burst windows at a
  higher rate (flash-crowd arrivals).
* Ramp — a Poisson process whose rate climbs linearly from a start to
  an end rate, for sweeping offered load across the capacity knee in a
  single run.
"""

from __future__ import annotations

import abc
import math
from typing import Iterator, Optional

import numpy as np

__all__ = ["ArrivalProcess", "UniformArrivals", "PoissonArrivals",
           "BurstArrivals", "RampArrivals", "TraceArrivals", "ClosedLoop",
           "make_arrivals"]


class ArrivalProcess(abc.ABC):
    """Yields absolute arrival times (seconds), monotonically increasing."""

    closed_loop = False

    @abc.abstractmethod
    def arrival_times(self, until: float) -> Iterator[float]:
        """Arrival times in [0, until)."""


class UniformArrivals(ArrivalProcess):
    """Fixed-rate periodic arrivals."""

    def __init__(self, rps: float, offset: float = 0.0):
        if rps <= 0:
            raise ValueError("rps must be positive")
        self.rps = rps
        self.offset = offset

    def arrival_times(self, until: float) -> Iterator[float]:
        # Multiply rather than accumulate: repeated float addition of
        # the period drifts enough to emit a phantom arrival at ~until.
        period = 1.0 / self.rps
        n = 0
        while True:
            t = self.offset + n * period
            if t >= until:
                return
            yield t
            n += 1


class PoissonArrivals(ArrivalProcess):
    """Exponential inter-arrival times with mean rate ``rps``."""

    def __init__(self, rps: float, rng: Optional[np.random.Generator] = None):
        if rps <= 0:
            raise ValueError("rps must be positive")
        self.rps = rps
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def arrival_times(self, until: float) -> Iterator[float]:
        t = float(self.rng.exponential(1.0 / self.rps))
        while t < until:
            yield t
            t += float(self.rng.exponential(1.0 / self.rps))


class BurstArrivals(ArrivalProcess):
    """Poisson arrivals with periodic burst windows.

    Every ``burst_every`` seconds the rate jumps to ``burst_rps`` for
    ``burst_duration`` seconds, then falls back to ``base_rps``.  The
    process is a piecewise-constant-rate Poisson process: thanks to the
    exponential's memorylessness, restarting the inter-arrival draw at
    each phase boundary with the new rate is exact, not approximate.
    """

    def __init__(self, base_rps: float, burst_rps: float,
                 burst_every: float, burst_duration: float,
                 rng: Optional[np.random.Generator] = None):
        if base_rps <= 0 or burst_rps <= 0:
            raise ValueError("rates must be positive")
        if burst_every <= 0:
            raise ValueError("burst_every must be positive")
        if not 0 < burst_duration < burst_every:
            raise ValueError("burst_duration must be in (0, burst_every)")
        self.base_rps = base_rps
        self.burst_rps = burst_rps
        self.burst_every = burst_every
        self.burst_duration = burst_duration
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def rate_at(self, t: float) -> float:
        return self.burst_rps if (t % self.burst_every) < self.burst_duration \
            else self.base_rps

    def arrival_times(self, until: float) -> Iterator[float]:
        t = 0.0
        while t < until:
            phase_pos = t % self.burst_every
            in_burst = phase_pos < self.burst_duration
            rate = self.burst_rps if in_burst else self.base_rps
            boundary = t - phase_pos + (
                self.burst_duration if in_burst else self.burst_every)
            gap = float(self.rng.exponential(1.0 / rate))
            if t + gap >= boundary:
                # No arrival before the phase flips; redraw at the new
                # rate from the boundary (exact by memorylessness).
                # Rounding in ``t % burst_every`` can place the computed
                # boundary at exactly ``t``; force progress or this
                # loop never terminates.
                t = boundary if boundary > t else math.nextafter(t, math.inf)
                continue
            t += gap
            if t >= until:
                return
            yield t


class RampArrivals(ArrivalProcess):
    """Poisson arrivals whose rate ramps linearly over time.

    The rate climbs from ``start_rps`` to ``end_rps`` across
    ``ramp_duration`` seconds (the whole horizon when None) and holds
    at ``end_rps`` afterwards.  Generated by thinning against the peak
    rate, which is exact for any bounded rate function.
    """

    def __init__(self, start_rps: float, end_rps: float,
                 ramp_duration: Optional[float] = None,
                 rng: Optional[np.random.Generator] = None):
        if start_rps <= 0 or end_rps <= 0:
            raise ValueError("rates must be positive")
        if ramp_duration is not None and ramp_duration <= 0:
            raise ValueError("ramp_duration must be positive")
        self.start_rps = start_rps
        self.end_rps = end_rps
        self.ramp_duration = ramp_duration
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def rate_at(self, t: float, horizon: Optional[float] = None) -> float:
        ramp = self.ramp_duration if self.ramp_duration is not None else horizon
        if ramp is None or ramp <= 0 or t >= ramp:
            return self.end_rps
        frac = t / ramp
        return self.start_rps + (self.end_rps - self.start_rps) * frac

    def arrival_times(self, until: float) -> Iterator[float]:
        peak = max(self.start_rps, self.end_rps)
        t = 0.0
        while True:
            t += float(self.rng.exponential(1.0 / peak))
            if t >= until:
                return
            if self.rng.uniform() * peak <= self.rate_at(t, horizon=until):
                yield t


class TraceArrivals(ArrivalProcess):
    """Replays a list of absolute timestamps (e.g. the Apollo trace)."""

    def __init__(self, timestamps):
        self.timestamps = sorted(float(t) for t in timestamps)
        if any(t < 0 for t in self.timestamps):
            raise ValueError("trace timestamps must be >= 0")

    def arrival_times(self, until: float) -> Iterator[float]:
        for t in self.timestamps:
            if t >= until:
                return
            yield t


class ClosedLoop(ArrivalProcess):
    """Marker process: the client issues the next request on completion."""

    closed_loop = True

    def arrival_times(self, until: float) -> Iterator[float]:
        return iter(())


def make_arrivals(kind: str, rps: float = 0.0,
                  rng: Optional[np.random.Generator] = None,
                  timestamps=None, burst_rps: Optional[float] = None,
                  burst_every: float = 0.1, burst_duration: float = 0.02,
                  end_rps: Optional[float] = None,
                  ramp_duration: Optional[float] = None) -> ArrivalProcess:
    """Factory used by experiment configs."""
    if kind == "uniform":
        return UniformArrivals(rps)
    if kind == "poisson":
        return PoissonArrivals(rps, rng)
    if kind == "burst":
        if burst_rps is None:
            raise ValueError("burst arrivals need burst_rps")
        return BurstArrivals(rps, burst_rps, burst_every, burst_duration, rng)
    if kind == "ramp":
        if end_rps is None:
            raise ValueError("ramp arrivals need end_rps")
        return RampArrivals(rps, end_rps, ramp_duration, rng)
    if kind == "trace":
        if timestamps is None:
            raise ValueError("trace arrivals need timestamps")
        return TraceArrivals(timestamps)
    if kind == "closed":
        return ClosedLoop()
    raise ValueError(f"unknown arrival kind {kind!r}")
