"""Named workload registry: every model plan behind one front door.

Scenarios got a named registry in PR 4 (``make_scenario``); workloads
are the same idea one layer down.  A :class:`WorkloadSpec` describes one
nameable workload — which plan kinds it supports and which typed
keyword knobs each plan accepts — and ``build_plan(name, kind,
**kwargs)`` constructs the lowered :class:`~repro.frameworks.lowering.
OpPlan` for it.  The registry spans both workload families:

* the paper's five DNN models (Table 1), wrapping the cached zoo
  lowering in :mod:`repro.workloads.models.zoo`;
* the §7 LLM generation workload (``llm-small``, plus ``llm`` as an
  alias), wrapping :func:`~repro.workloads.models.llm.
  llm_generation_plan` with its typed batch/prompt/gen knobs.

``get_plan(model, kind)`` remains as the legacy thin path for the zoo
models; new code — ``make_scenario`` param validation, the LLM serving
scenario, examples — goes through the registry so a workload is always
constructible from a plain string name plus JSON-safe kwargs (the
serve daemon's submit surface).
"""

from __future__ import annotations

from typing import Dict, Protocol, Tuple, runtime_checkable

from repro.frameworks.lowering import OpPlan

from .models.llm import LLM_SMALL, LlmConfig, llm_generation_plan
from .models.zoo import DEFAULT_BATCH_SIZES, MODEL_NAMES
from .models.zoo import get_plan as _zoo_get_plan

__all__ = [
    "WorkloadSpec",
    "ZooWorkload",
    "LlmWorkload",
    "WORKLOADS",
    "register_workload",
    "get_workload",
    "workload_names",
    "build_plan",
]


@runtime_checkable
class WorkloadSpec(Protocol):
    """A nameable workload: plan kinds plus a typed plan constructor.

    Implementations expose ``name`` (the registry key), ``kinds`` (the
    plan kinds they can lower), ``plan(kind, **kwargs)`` returning an
    :class:`OpPlan`, and ``describe()`` returning a JSON-safe summary
    of the knob surface (shown by ``repro scenarios`` tooling).
    """

    name: str

    @property
    def kinds(self) -> Tuple[str, ...]: ...

    def plan(self, kind: str, **kwargs) -> OpPlan: ...

    def describe(self) -> Dict: ...


class ZooWorkload:
    """One of the paper's Table 1 DNN models (zoo-backed)."""

    def __init__(self, name: str):
        if name not in MODEL_NAMES:
            raise ValueError(f"unknown zoo model {name!r}; known: {MODEL_NAMES}")
        self.name = name

    @property
    def kinds(self) -> Tuple[str, ...]:
        return ("inference", "training")

    def plan(self, kind: str, *, batch_size: int = 0) -> OpPlan:
        """Lowered plan; ``batch_size`` 0 selects the Table 1 default."""
        self._check_kind(kind)
        if batch_size < 0:
            raise ValueError(f"batch_size must be >= 0, got {batch_size}")
        return _zoo_get_plan(self.name, kind, batch_size)

    def _check_kind(self, kind: str) -> None:
        if kind not in self.kinds:
            raise ValueError(
                f"workload {self.name!r} supports kinds {self.kinds}, "
                f"got {kind!r}")

    def describe(self) -> Dict:
        return {
            "family": "zoo",
            "kinds": list(self.kinds),
            "kwargs": {"batch_size": "int (0 = Table 1 default)"},
            "default_batch_sizes": {
                kind: DEFAULT_BATCH_SIZES[(self.name, kind)]
                for kind in self.kinds
            },
        }


class LlmWorkload:
    """The §7 LLM generation workload (prefill + decode lowering)."""

    def __init__(self, name: str, config: LlmConfig = LLM_SMALL):
        self.name = name
        self.config = config

    @property
    def kinds(self) -> Tuple[str, ...]:
        return ("inference",)

    def plan(self, kind: str = "inference", *, batch: int = 1,
             prompt_len: int = 128, gen_tokens: int = 16) -> OpPlan:
        """One serving request: prefill + ``gen_tokens`` decode steps."""
        if kind not in self.kinds:
            raise ValueError(
                f"workload {self.name!r} supports kinds {self.kinds}, "
                f"got {kind!r}")
        return llm_generation_plan(self.config, batch=batch,
                                   prompt_len=prompt_len,
                                   gen_tokens=gen_tokens)

    def describe(self) -> Dict:
        return {
            "family": "llm",
            "kinds": list(self.kinds),
            "kwargs": {
                "batch": "int >= 1",
                "prompt_len": "int >= 1",
                "gen_tokens": "int >= 0 (0 = prefill only)",
            },
            "config": {
                "layers": self.config.layers,
                "hidden": self.config.hidden,
                "heads": self.config.heads,
                "ffn": self.config.ffn,
                "vocab": self.config.vocab,
                "params": self.config.params,
            },
        }


#: name -> WorkloadSpec.  ``llm`` aliases the pinned small config so
#: scenario params can just say model="llm".
WORKLOADS: Dict[str, WorkloadSpec] = {}


def register_workload(spec: WorkloadSpec) -> WorkloadSpec:
    """Add (or replace) one workload in the registry; returns it."""
    if not spec.name:
        raise ValueError("workload name must be non-empty")
    WORKLOADS[spec.name] = spec
    return spec


for _name in MODEL_NAMES:
    register_workload(ZooWorkload(_name))
register_workload(LlmWorkload("llm-small", LLM_SMALL))
register_workload(LlmWorkload("llm", LLM_SMALL))


def get_workload(name: str) -> WorkloadSpec:
    spec = WORKLOADS.get(name)
    if spec is None:
        raise ValueError(f"unknown workload {name!r}; "
                         f"known: {', '.join(sorted(WORKLOADS))}")
    return spec


def workload_names() -> Tuple[str, ...]:
    return tuple(sorted(WORKLOADS))


def build_plan(name: str, kind: str = "inference", **kwargs) -> OpPlan:
    """Construct the plan for workload ``name`` — the registry front door.

    Unknown kwargs fail with a ``TypeError`` naming the workload's
    typed knob surface, exactly like calling the spec directly.
    """
    return get_workload(name).plan(kind, **kwargs)
