"""LLM continuous-batching serving loop (paper §7, made concrete).

The §7 proposal — collocate memory-bound LLM token generation with
compute-heavy best-effort work under Orion's resource-aware policy —
needs a serving loop around the prefill/decode lowering in
:mod:`repro.workloads.models.llm`.  This module is that loop:

* **Continuous batching.**  Requests arrive concurrently (Poisson
  arrivals; prompt and output lengths drawn per-request from seeded
  streams).  The engine forms a new batch every decode step: waiting
  requests join at prefill boundaries, finished sequences retire
  immediately — no static-batch head-of-line blocking.
* **KV-cache accounting.**  Each sequence's KV cache is allocated in
  fixed token blocks through ``cudaMalloc``, so cache growth competes
  for real device memory and cache pressure surfaces as the existing
  *non-sticky* ``OUT_OF_MEMORY`` status.  Policy ``"evict"`` reacts by
  evicting the youngest sequence (free its blocks, requeue it in
  admission order); ``"block"`` reserves a request's full cache at
  admission so growth never faults and overload shows up as admission
  blocking instead.  Block bytes are exactly conserved: every byte
  granted is eventually released, and the accounting object proves it.
* **Phase hints.**  Every prefill step is bracketed by
  ``phase("prefill")`` so :class:`~repro.core.scheduler.OrionBackend`
  can hold best-effort kernels while the compute-bound prefill runs
  (protecting TTFT), and ``phase("decode")`` re-opens collocation for
  the memory-bound decode steps.

``_run_llm_scenario`` wires the engine to a backend (Orion, temporal
sharing, or the stream baselines), optionally collocates best-effort
training clients, and returns an :class:`LlmServeResult` with the
serving metrics the field cares about: TTFT, per-output-token latency
(TPOT), and decode token goodput.  Fully deterministic under
(seed, arguments); surfaced as ``Scenario(kind="llm")``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.frameworks.module import Namer
from repro.frameworks.specbuild import FP32_BYTES
from repro.gpu.errors import CudaErrorCode
from repro.kernels.costmodel import instantiate_kernel
from repro.kernels.kernel import KernelOp, MemoryOpKind
from repro.metrics.availability import ErrorLedger
from repro.metrics.latency import LatencySummary
from repro.runtime.client import ClientContext
from repro.sim.engine import Simulator
from repro.sim.process import Signal, Timeout, spawn

from .arrivals import PoissonArrivals
from .models.llm import LlmConfig, _decode_step_specs, _prefill_specs

__all__ = [
    "LlmRequestRecord",
    "KvCacheAccounting",
    "ContinuousBatchingEngine",
    "LlmServeResult",
    "CACHE_POLICIES",
]

#: Valid KV-cache pressure policies.
CACHE_POLICIES = ("evict", "block")

# Startup-allocation OOM retry/backoff (same constants as the DNN
# clients in repro.workloads.clients).
_OOM_RETRIES = 5
_OOM_BACKOFF = 5e-4
_OOM_BACKOFF_CAP = 5e-2

# A sequence evicted this many times is failed instead of requeued:
# its cache will never fit, and requeueing forever would livelock.
_MAX_EVICTIONS_PER_REQUEST = 8


@dataclass
class LlmRequestRecord:
    """Lifecycle timestamps and token counts of one serving request."""

    req_id: int
    arrival: float
    prompt_tokens: int
    output_tokens: int
    admitted: Optional[float] = None     #: first admission into the batch
    first_token: Optional[float] = None  #: end of (first) prefill
    end: Optional[float] = None          #: last output token produced
    evictions: int = 0
    failed: bool = False

    @property
    def completed(self) -> bool:
        return self.end is not None and not self.failed

    @property
    def ttft(self) -> Optional[float]:
        """Time to first token, measured from arrival (queueing included)."""
        if self.first_token is None:
            return None
        return self.first_token - self.arrival

    @property
    def tpot(self) -> Optional[float]:
        """Mean per-output-token decode latency (output_tokens >= 2)."""
        if self.end is None or self.first_token is None \
                or self.output_tokens < 2:
            return None
        return (self.end - self.first_token) / (self.output_tokens - 1)


class KvCacheAccounting:
    """Block-granular KV-cache bookkeeping with conservation proofs.

    The device's bump allocator holds the actual bytes; this object
    tracks which sequence owns how many blocks and maintains the
    conservation invariant ``granted_bytes == released_bytes +
    in_use_bytes`` that the eviction tests assert.
    """

    def __init__(self, block_bytes: int):
        if block_bytes < 1:
            raise ValueError("block_bytes must be >= 1")
        self.block_bytes = block_bytes
        self.granted_bytes = 0
        self.released_bytes = 0
        self.peak_bytes = 0
        self.evictions = 0
        self.oom_events = 0
        self.admission_blocks = 0
        self._blocks: Dict[int, int] = {}

    @property
    def in_use_bytes(self) -> int:
        return sum(self._blocks.values()) * self.block_bytes

    @property
    def conserved(self) -> bool:
        return self.granted_bytes == self.released_bytes + self.in_use_bytes

    def blocks_of(self, req_id: int) -> int:
        return self._blocks.get(req_id, 0)

    def grant(self, req_id: int, blocks: int = 1) -> None:
        self._blocks[req_id] = self._blocks.get(req_id, 0) + blocks
        self.granted_bytes += blocks * self.block_bytes
        self.peak_bytes = max(self.peak_bytes, self.in_use_bytes)

    def release(self, req_id: int) -> int:
        """Drop every block of ``req_id``; returns the block count."""
        blocks = self._blocks.pop(req_id, 0)
        self.released_bytes += blocks * self.block_bytes
        return blocks

    def snapshot(self) -> Dict:
        return {
            "block_bytes": self.block_bytes,
            "granted_bytes": self.granted_bytes,
            "released_bytes": self.released_bytes,
            "in_use_bytes": self.in_use_bytes,
            "peak_bytes": self.peak_bytes,
            "evictions": self.evictions,
            "oom_events": self.oom_events,
            "admission_blocks": self.admission_blocks,
            "conserved": self.conserved,
        }


class _Sequence:
    """One in-flight request's decoding state."""

    __slots__ = ("record", "generated")

    def __init__(self, record: LlmRequestRecord):
        self.record = record
        self.generated = 0  # output tokens produced so far

    @property
    def req_id(self) -> int:
        return self.record.req_id

    @property
    def cached_tokens(self) -> int:
        return self.record.prompt_tokens + self.generated

    @property
    def finished(self) -> bool:
        return self.generated >= self.record.output_tokens


def _bucket(tokens: int) -> int:
    """Power-of-two bucket (kernel-spec reuse, as in llm_generation_plan)."""
    return 2 ** int(math.ceil(math.log2(max(tokens, 1))))


class ContinuousBatchingEngine:
    """The serving loop: admit, prefill, decode, retire — forever.

    One engine is the scenario's single high-priority client.  Each
    prefill/decode step runs inside a ``begin_request``/``end_request``
    window (so temporal sharing's slice lock works unchanged) and is
    announced with a phase marker (so Orion's phase hints work).
    """

    def __init__(self, sim: Simulator, ctx: ClientContext,
                 config: LlmConfig, device_spec, arrivals,
                 prompt_rng: np.random.Generator,
                 output_rng: np.random.Generator,
                 horizon: float,
                 max_batch: int = 8,
                 prompt_mean: float = 64.0, prompt_cap: int = 256,
                 output_mean: float = 8.0, output_cap: int = 64,
                 kv_block_tokens: int = 16,
                 cache_policy: str = "evict",
                 warmup: float = 0.0,
                 ledger: Optional[ErrorLedger] = None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if kv_block_tokens < 1:
            raise ValueError("kv_block_tokens must be >= 1")
        if cache_policy not in CACHE_POLICIES:
            raise ValueError(f"cache_policy must be one of {CACHE_POLICIES}, "
                             f"got {cache_policy!r}")
        if min(prompt_mean, output_mean) < 1:
            raise ValueError("prompt_mean and output_mean must be >= 1")
        self.sim = sim
        self.ctx = ctx
        self.config = config
        self.device_spec = device_spec
        self.arrivals = arrivals
        self.prompt_rng = prompt_rng
        self.output_rng = output_rng
        self.horizon = horizon
        self.max_batch = max_batch
        self.prompt_mean = prompt_mean
        self.prompt_cap = prompt_cap
        self.output_mean = output_mean
        self.output_cap = output_cap
        self.cache_policy = cache_policy
        self.warmup = warmup
        self.ledger = ledger
        self.block_bytes = config.kv_cache_bytes(1, kv_block_tokens)
        self.kv_block_tokens = kv_block_tokens
        self.weights_bytes = FP32_BYTES * config.params
        self.kv = KvCacheAccounting(self.block_bytes)
        # Request state.
        self.records: List[LlmRequestRecord] = []
        self._waiting: List[LlmRequestRecord] = []  # kept in req_id order
        self._pending_prefill: List[_Sequence] = []
        self._active: List[_Sequence] = []
        self.admission_log: List[int] = []
        # Token goodput accounting (tokens produced at/after warmup).
        self.decode_tokens = 0
        self.prefill_tokens = 0
        self.requests_completed = 0
        self.requests_failed = 0
        # Kernel-spec caches (per shape bucket, like a real deployment's
        # one-time per-shape profiles).
        self._decode_specs: Dict = {}
        self._prefill_spec_cache: Dict[int, list] = {}
        self._work = Signal(sim)
        self._process = None
        self._errors_seen = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        spawn(self.sim, self._arrival_loop(), "llm-arrivals")
        self._process = spawn(self.sim, self._serve_loop(), "llm-serve")

    @property
    def batch_size(self) -> int:
        return len(self._active) + len(self._pending_prefill)

    def _wake(self) -> None:
        if not self._work.triggered:
            self._work.trigger()

    def _flush_errors(self) -> None:
        new = self.ctx.errors[self._errors_seen:]
        self._errors_seen = len(self.ctx.errors)
        if self.ledger is not None:
            for error in new:
                self.ledger.record_error("llm", error.code.value, self.sim.now)

    def _healthy(self) -> bool:
        return not (self.ctx.closed or self.ctx.poisoned)

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def _draw_length(self, rng: np.random.Generator, mean: float,
                     cap: int) -> int:
        # 1 + exponential tail: most requests short, a heavy-ish tail,
        # hard-capped so one request can't exceed the cache by itself.
        return min(cap, 1 + int(rng.exponential(max(mean - 1.0, 1e-9))))

    def _arrival_loop(self):
        last = 0.0
        for t in self.arrivals.arrival_times(self.horizon):
            if t > last:
                yield Timeout(t - last)
                last = t
            record = LlmRequestRecord(
                req_id=len(self.records),
                arrival=self.sim.now,
                prompt_tokens=self._draw_length(
                    self.prompt_rng, self.prompt_mean, self.prompt_cap),
                output_tokens=self._draw_length(
                    self.output_rng, self.output_mean, self.output_cap),
            )
            self.records.append(record)
            self._waiting.append(record)
            self._wake()

    # ------------------------------------------------------------------
    # KV block allocation through the CUDA runtime
    # ------------------------------------------------------------------
    def _blocks_for(self, tokens: int) -> int:
        return max(1, -(-tokens // self.kv_block_tokens))

    def _free_blocks(self, blocks: int):
        for _ in range(blocks):
            yield from self.ctx.free(self.block_bytes)

    def _evict(self, seq: _Sequence):
        """Evict ``seq``: free its cache, requeue it in admission order.

        Generation restarts from the prompt on re-admission (the cache
        is gone), so eviction trades completed work for survival —
        exactly the soft-OOM behaviour the paper's §3 motivates.
        """
        blocks = self.kv.release(seq.req_id)
        self._active.remove(seq)
        yield from self._free_blocks(blocks)
        self.kv.evictions += 1
        seq.record.evictions += 1
        if seq.record.evictions > _MAX_EVICTIONS_PER_REQUEST:
            self._fail_request(seq.record)
            return
        # Reinsert preserving req_id (= admission) order.
        self._waiting.append(seq.record)
        self._waiting.sort(key=lambda r: r.req_id)

    def _fail_request(self, record: LlmRequestRecord) -> None:
        record.failed = True
        self.requests_failed += 1
        if self.ledger is not None:
            self.ledger.record_failed("llm")

    def _alloc_admission(self, record: LlmRequestRecord):
        """Reserve a new request's cache; False (with rollback) on OOM."""
        tokens = record.prompt_tokens
        if self.cache_policy == "block":
            # Full reservation: growth during decode can never fault.
            tokens += record.output_tokens
        blocks = self._blocks_for(tokens)
        got = 0
        for _ in range(blocks):
            done = yield from self.ctx.malloc(self.block_bytes)
            if done.error is None:
                got += 1
                continue
            if done.error.code is CudaErrorCode.OUT_OF_MEMORY:
                self.kv.oom_events += 1
            # Roll back the partial reservation and report no room.
            for _ in range(got):
                yield from self.ctx.free(self.block_bytes)
            return False
        self.kv.grant(record.req_id, blocks)
        return True

    def _grow_for(self, seq: _Sequence):
        """Ensure ``seq`` has cache room for one more token.

        Under ``"evict"``, an OOM evicts the *youngest* active sequence
        (FIFO service order is preserved: the oldest admitted work is
        the last to lose its cache) and retries; evicting ``seq`` itself
        is the last resort.  Returns False when ``seq`` was evicted.
        """
        while self.kv.blocks_of(seq.req_id) * self.kv_block_tokens \
                < seq.cached_tokens + 1:
            done = yield from self.ctx.malloc(self.block_bytes)
            if done.error is None:
                self.kv.grant(seq.req_id, 1)
                continue
            if done.error.code is not CudaErrorCode.OUT_OF_MEMORY:
                return False  # sticky error; serve loop will stop
            self.kv.oom_events += 1
            victims = [s for s in self._active if s is not seq]
            victim = max(victims, key=lambda s: s.req_id) if victims else seq
            yield from self._evict(victim)
            if victim is seq:
                return False
        return True

    # ------------------------------------------------------------------
    # The serving loop
    # ------------------------------------------------------------------
    def _startup(self):
        """Allocate the weights with bounded OOM retry (framework boot)."""
        for attempt in range(_OOM_RETRIES + 1):
            done = yield from self.ctx.malloc(self.weights_bytes)
            self._flush_errors()
            if done.error is None:
                return True
            if (done.error.code is not CudaErrorCode.OUT_OF_MEMORY
                    or attempt >= _OOM_RETRIES):
                return False
            yield Timeout(min(_OOM_BACKOFF_CAP, _OOM_BACKOFF * 2 ** attempt))
        return False

    def _serve_loop(self):
        ok = yield from self._startup()
        if not ok:
            return
        while self._healthy():
            yield from self._admit_waiting()
            if self._pending_prefill:
                yield from self._prefill_step()
            elif self._active:
                yield from self._decode_step()
            else:
                self._work = Signal(self.sim)
                yield self._work
            self._flush_errors()

    def _admit_waiting(self):
        """Join waiting requests at the prefill boundary, FIFO."""
        while self._waiting and self.batch_size < self.max_batch:
            record = self._waiting[0]
            ok = yield from self._alloc_admission(record)
            if not ok:
                self.kv.admission_blocks += 1
                if not self._active and not self._pending_prefill:
                    # Nothing in flight will ever release cache: this
                    # request can never fit.  Fail it instead of
                    # spinning forever.
                    self._waiting.pop(0)
                    self._fail_request(record)
                    continue
                break
            self._waiting.pop(0)
            if record.admitted is None:
                record.admitted = self.sim.now
            self.admission_log.append(record.req_id)
            self._pending_prefill.append(_Sequence(record))

    def _prefill_kernels(self, prompt_bucket: int) -> List[KernelOp]:
        specs = self._prefill_spec_cache.get(prompt_bucket)
        if specs is None:
            namer = Namer(f"{self.config.name}-serve/prefill{prompt_bucket}")
            specs = _prefill_specs(self.config, 1, prompt_bucket, namer)
            self._prefill_spec_cache[prompt_bucket] = specs
        return [instantiate_kernel(spec, self.device_spec,
                                   self.ctx.client_id, tag="prefill")
                for spec in specs]

    def _decode_kernels(self, batch: int, cache_bucket: int) -> List[KernelOp]:
        key = (batch, cache_bucket)
        specs = self._decode_specs.get(key)
        if specs is None:
            namer = Namer(
                f"{self.config.name}-serve/b{batch}/cache{cache_bucket}")
            specs = _decode_step_specs(self.config, batch, cache_bucket, namer)
            self._decode_specs[key] = specs
        return [instantiate_kernel(spec, self.device_spec,
                                   self.ctx.client_id, tag="decode")
                for spec in specs]

    def _prefill_step(self):
        """Run prefill for every newly joined request (one per request —
        prompts are ragged), producing each one's first token."""
        joined, self._pending_prefill = self._pending_prefill, []
        yield from self.ctx.begin_request()
        yield from self.ctx.phase("prefill")
        for seq in joined:
            yield from self.ctx.memcpy(
                FP32_BYTES * seq.record.prompt_tokens,
                MemoryOpKind.MEMCPY_H2D, blocking=False)
            for op in self._prefill_kernels(_bucket(seq.record.prompt_tokens)):
                yield from self.ctx.launch_kernel(op)
        yield from self.ctx.synchronize()
        self.ctx.end_request()
        if not self._healthy():
            return
        now = self.sim.now
        for seq in joined:
            seq.generated = 1  # prefill emits the first token
            if seq.record.first_token is None:
                seq.record.first_token = now
            if now >= self.warmup:
                self.prefill_tokens += 1
            self._active.append(seq)
        yield from self._retire_finished()

    def _decode_step(self):
        """One continuous-batching decode step over the active batch."""
        yield from self.ctx.begin_request()
        yield from self.ctx.phase("decode")
        # Grow each sequence's cache first: allocation is device-
        # synchronizing, and a real engine reserves pages before the
        # step.  Growth may evict (policy "evict") — re-check liveness.
        for seq in list(self._active):
            if seq in self._active:
                yield from self._grow_for(seq)
        if not self._active or not self._healthy():
            self.ctx.end_request()
            return
        batch = len(self._active)
        cache_bucket = _bucket(max(s.cached_tokens for s in self._active))
        for op in self._decode_kernels(batch, cache_bucket):
            yield from self.ctx.launch_kernel(op)
        yield from self.ctx.synchronize()
        # Stream the batch's new tokens out (one fp32 logit id each).
        yield from self.ctx.memcpy(FP32_BYTES * batch,
                                   MemoryOpKind.MEMCPY_D2H, blocking=True)
        self.ctx.end_request()
        if not self._healthy():
            return
        now = self.sim.now
        for seq in self._active:
            seq.generated += 1
        if now >= self.warmup:
            self.decode_tokens += batch
        yield from self._retire_finished()

    def _retire_finished(self):
        finished = [s for s in self._active if s.finished]
        for seq in finished:
            self._active.remove(seq)
            blocks = self.kv.release(seq.req_id)
            yield from self._free_blocks(blocks)
            seq.record.end = self.sim.now
            self.requests_completed += 1
            if self.ledger is not None:
                self.ledger.record_served("llm")


# ---------------------------------------------------------------------------
# The scenario around the engine.


@dataclass
class LlmServeResult:
    """Everything one LLM serving scenario produced."""

    model: str
    backend: str
    ttft: LatencySummary
    tpot: LatencySummary
    decode_tokens_per_sec: float
    total_tokens: int
    ttft_slo: float                      #: seconds (ttft_slo_mult x solo prefill)
    prefill_reference: float             #: solo prefill latency estimate (s)
    requests_arrived: int = 0
    requests_completed: int = 0
    requests_failed: int = 0
    records: List[LlmRequestRecord] = field(default_factory=list)
    admission_log: List[int] = field(default_factory=list)
    kv: Dict = field(default_factory=dict)
    jobs: Dict = field(default_factory=dict)   #: best-effort ClientStats
    backend_stats: Dict = field(default_factory=dict)
    ledger: ErrorLedger = field(default_factory=ErrorLedger)
    events_processed: int = 0
    sim_time: float = 0.0

    def be_iterations(self, warmup: float = 0.0) -> int:
        """Completed best-effort training iterations past warmup."""
        return sum(len(stats.completed(after=warmup))
                   for stats in self.jobs.values())


def _summarize(values: List[float]) -> LatencySummary:
    if not values:
        return LatencySummary.empty()
    arr = np.asarray(values, dtype=float)
    return LatencySummary(
        count=int(arr.size), mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50)), p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)), max=float(arr.max()),
    )


def _run_llm_scenario(
    seed: int = 0,
    duration: float = 0.2,
    model: str = "llm-small",
    device: str = "V100-16GB",
    backend: str = "orion",
    request_rate: float = 80.0,
    prompt_mean: float = 64.0,
    prompt_cap: int = 256,
    output_mean: float = 8.0,
    output_cap: int = 64,
    max_batch: int = 8,
    kv_budget_mb: Optional[float] = None,
    kv_block_tokens: int = 16,
    cache_policy: str = "evict",
    be_model: str = "mobilenet_v2",
    be_clients: int = 1,
    protect_prefill: bool = True,
    ttft_slo_mult: float = 3.0,
    warmup: float = 0.0,
    telemetry=None,
) -> LlmServeResult:
    """Run the continuous-batching LLM serving scenario.

    One high-priority :class:`ContinuousBatchingEngine` serves Poisson
    request arrivals at ``request_rate`` req/s; ``be_clients``
    best-effort training clients (``be_model``) run closed-loop
    alongside it.  ``kv_budget_mb`` (None = whatever the device leaves
    free) caps the KV cache headroom by pre-reserving the rest of
    device memory, so exceeding it produces genuine ``cudaMalloc`` OOM
    statuses for the ``cache_policy`` machinery to absorb.  The TTFT
    SLO reported (and asserted by the benchmark) is ``ttft_slo_mult``
    x the solo prefill latency estimate at the mean prompt length.
    """
    from repro.core import OrionBackend, OrionConfig
    from repro.experiments.runner import get_profile
    from repro.gpu.device import GpuDevice
    from repro.gpu.specs import get_device
    from repro.profiler.profiles import ProfileStore
    from repro.runtime.host import HostGil, HostThread
    from repro.sim.rng import RngFactory
    from repro.telemetry.tracer import TelemetryConfig
    from repro.workloads.clients import TrainingClient
    from repro.workloads.registry import build_plan, get_workload

    if be_clients < 0:
        raise ValueError("be_clients must be >= 0")
    if request_rate <= 0:
        raise ValueError("request_rate must be positive")
    if ttft_slo_mult <= 0:
        raise ValueError("ttft_slo_mult must be positive")
    if kv_budget_mb is not None and kv_budget_mb <= 0:
        raise ValueError("kv_budget_mb must be positive")

    workload = get_workload(model)
    config: LlmConfig = getattr(workload, "config", None)
    if config is None:
        raise ValueError(f"workload {model!r} is not an LLM workload; "
                         "kind='llm' scenarios need one (e.g. 'llm-small')")

    sim = Simulator()
    device_spec = get_device(device)
    rng_factory = RngFactory(seed)
    ledger = ErrorLedger()
    telemetry = telemetry or TelemetryConfig()

    # Reference latencies from the lowering, used for the Orion duration
    # budget and the TTFT SLO — profiled estimates, not ground truth.
    # The SLO reference is the solo prefill latency of the *largest
    # admissible* prompt (cap bucket): TTFT includes queueing, so the
    # bound must cover a worst-case prompt arriving behind a step.
    prefill_ref = sum(
        instantiate_kernel(s, device_spec).duration
        for s in _prefill_specs(config, 1, _bucket(prompt_cap),
                                Namer(f"{config.name}-ref/prefill")))
    decode_ref = sum(
        instantiate_kernel(s, device_spec).duration
        for s in _decode_step_specs(config, 1, _bucket(int(prompt_mean)),
                                    Namer(f"{config.name}-ref/decode")))
    ttft_slo = ttft_slo_mult * prefill_ref

    store = ProfileStore()
    be_plan = None
    if be_clients:
        store.add(get_profile(be_model, "training", device_spec))
        be_plan = build_plan(be_model, "training")

    gpu = GpuDevice(sim, device_spec, record_utilization=telemetry.tracing)
    if backend == "orion":
        be_backend = OrionBackend(sim, gpu, store, OrionConfig(
            fallback_hp_latency=decode_ref,
            protect_prefill=protect_prefill,
        ))
    elif backend == "temporal":
        from repro.baselines.temporal import TemporalBackend

        be_backend = TemporalBackend(sim, gpu)
    elif backend == "streams":
        from repro.baselines.spatial import StreamsBackend

        be_backend = StreamsBackend(sim, gpu)
    elif backend == "priority-streams":
        from repro.baselines.spatial import PriorityStreamsBackend

        be_backend = PriorityStreamsBackend(sim, gpu)
    else:
        raise ValueError(
            f"kind='llm' supports backends orion|temporal|streams|"
            f"priority-streams, got {backend!r}")
    tracer = telemetry.build_tracer(sim)
    be_backend.set_telemetry(tracer=tracer)
    if telemetry.engine_events:
        sim.attach_tracer(tracer)

    # Enforce the KV budget with real memory: reserve everything beyond
    # (weights + best-effort state + budget), so cache growth past the
    # budget faults through the ordinary cudaMalloc OOM path.
    if kv_budget_mb is not None:
        budget = int(kv_budget_mb * 2**20)
        resident = FP32_BYTES * config.params
        if be_plan is not None:
            resident += be_clients * be_plan.state_bytes
        blocker = gpu.memory.free - resident - budget
        if blocker > 0:
            gpu.memory.malloc(blocker, client_id="kv-budget-reserve")

    gil = HostGil(sim)

    def make_ctx(name: str, high_priority: bool, kind: str) -> ClientContext:
        host = HostThread(
            sim, gil=gil,
            interception_overhead=be_backend.interception_overhead())
        return ClientContext(be_backend, name, host,
                             high_priority=high_priority, kind=kind)

    engine = ContinuousBatchingEngine(
        sim, make_ctx("llm", True, "inference"), config, device_spec,
        PoissonArrivals(request_rate, rng_factory.stream("llm:arrivals")),
        prompt_rng=rng_factory.stream("llm:prompts"),
        output_rng=rng_factory.stream("llm:outputs"),
        horizon=duration, max_batch=max_batch,
        prompt_mean=prompt_mean, prompt_cap=prompt_cap,
        output_mean=output_mean, output_cap=output_cap,
        kv_block_tokens=kv_block_tokens, cache_policy=cache_policy,
        warmup=warmup, ledger=ledger,
    )

    be_jobs: List[TrainingClient] = []
    for i in range(be_clients):
        name = f"be-{i}"
        be_jobs.append(TrainingClient(
            sim, make_ctx(name, False, "training"), be_plan, device_spec,
            name, horizon=duration, ledger=ledger))

    be_backend.start()
    # Best-effort clients start first so their resident state lands
    # before the KV cache can grow into it (allocation order at t=0 is
    # spawn order; deterministic either way).
    for job in be_jobs:
        job.start()
    engine.start()
    sim.run(until=duration)
    ledger.finalize(duration)

    after = warmup
    ttfts = [r.ttft for r in engine.records
             if r.ttft is not None and r.arrival >= after]
    tpots = [r.tpot for r in engine.records
             if r.tpot is not None and r.arrival >= after]
    span = max(sim.now - warmup, 1e-12)
    total_tokens = engine.decode_tokens + engine.prefill_tokens

    backend_stats: Dict = {}
    if backend == "orion":
        backend_stats = {
            "be_kernels_launched": be_backend.be_kernels_launched,
            "be_kernels_deferred": be_backend.be_kernels_deferred,
            "prefill_deferrals": be_backend.prefill_deferrals,
            "hp_requests_completed": be_backend.hp_requests_completed,
            "dur_threshold_frac": be_backend.config.dur_threshold_frac,
            "protect_prefill": be_backend.config.protect_prefill,
        }

    return LlmServeResult(
        model=model,
        backend=backend,
        ttft=_summarize(ttfts),
        tpot=_summarize(tpots),
        decode_tokens_per_sec=engine.decode_tokens / span,
        total_tokens=total_tokens,
        ttft_slo=ttft_slo,
        prefill_reference=prefill_ref,
        requests_arrived=len(engine.records),
        requests_completed=engine.requests_completed,
        requests_failed=engine.requests_failed,
        records=list(engine.records),
        admission_log=list(engine.admission_log),
        kv=engine.kv.snapshot(),
        jobs={job.name: job.stats for job in be_jobs},
        backend_stats=backend_stats,
        ledger=ledger,
        events_processed=sim.events_processed,
        sim_time=sim.now,
    )
