"""Model zoo: the paper's five DNN workloads."""

from .bert import bert_base, bert_large
from .llm import LLM_SMALL, LlmConfig, llm_generation_plan
from .mobilenet import mobilenet_v2
from .resnet import resnet50, resnet101
from .transformer import transformer_xl
from .zoo import (
    DEFAULT_BATCH_SIZES,
    MODEL_NAMES,
    NLP_MODELS,
    VISION_MODELS,
    batch_size_for,
    get_plan,
)

__all__ = [
    "resnet50",
    "resnet101",
    "mobilenet_v2",
    "bert_base",
    "bert_large",
    "transformer_xl",
    "LlmConfig",
    "LLM_SMALL",
    "llm_generation_plan",
    "get_plan",
    "batch_size_for",
    "MODEL_NAMES",
    "VISION_MODELS",
    "NLP_MODELS",
    "DEFAULT_BATCH_SIZES",
]
