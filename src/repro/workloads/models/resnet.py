"""ResNet-50 / ResNet-101 (He et al. 2016), TorchVision-style.

Standard bottleneck residual networks over 224x224 inputs.  Stage
configuration: ResNet-50 = [3, 4, 6, 3], ResNet-101 = [3, 4, 23, 3].
"""

from __future__ import annotations

from repro.frameworks.layers.vision import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.frameworks.module import Module, Residual, Sequential

__all__ = ["resnet50", "resnet101", "resnet"]


def _bottleneck(c_in: int, width: int, stride: int) -> Module:
    """1x1 reduce -> 3x3 -> 1x1 expand (4x) with BN/ReLU, plus skip."""
    c_out = 4 * width
    body = Sequential(
        Conv2d(c_in, width, 1),
        BatchNorm2d(width),
        ReLU(),
        Conv2d(width, width, 3, stride=stride, padding=1),
        BatchNorm2d(width),
        ReLU(),
        Conv2d(width, c_out, 1),
        BatchNorm2d(c_out),
    )
    projection = None
    if stride != 1 or c_in != c_out:
        projection = Sequential(
            Conv2d(c_in, c_out, 1, stride=stride), BatchNorm2d(c_out)
        )
    return Sequential(Residual(body, projection), ReLU())


def resnet(stage_blocks, name: str) -> Module:
    """Build a bottleneck ResNet with the given per-stage block counts."""
    if len(stage_blocks) != 4:
        raise ValueError(f"{name}: expected 4 stages, got {len(stage_blocks)}")
    layers = [
        Conv2d(3, 64, 7, stride=2, padding=3),
        BatchNorm2d(64),
        ReLU(),
        MaxPool2d(3, stride=2, padding=1),
    ]
    c_in = 64
    for stage, blocks in enumerate(stage_blocks):
        width = 64 * (2**stage)
        for block in range(blocks):
            stride = 2 if (stage > 0 and block == 0) else 1
            layers.append(_bottleneck(c_in, width, stride))
            c_in = 4 * width
    layers.extend([GlobalAvgPool2d(), Flatten(), Linear(2048, 1000)])
    return Sequential(*layers)


def resnet50() -> Module:
    return resnet([3, 4, 6, 3], "resnet50")


def resnet101() -> Module:
    return resnet([3, 4, 23, 3], "resnet101")
