"""BERT (Devlin et al. 2019), NVIDIA DeepLearningExamples-style.

The paper uses BERT-large for inference (batch size 2) and BERT-base
("BERT-basic") for training (batch size 8); both take 128-token
sequences.  Dense GEMM stacks make BERT the most compute-intensive
workload in Table 1 (72% compute throughput at inference).
"""

from __future__ import annotations

from repro.frameworks.layers.nlp import Embedding, LayerNorm, TransformerEncoderLayer
from repro.frameworks.layers.vision import Linear
from repro.frameworks.module import Module, Sequential

__all__ = ["bert_base", "bert_large", "bert", "BERT_SEQ_LEN"]

BERT_SEQ_LEN = 128
BERT_VOCAB = 30522


def bert(layers: int, hidden: int, heads: int, ffn: int) -> Module:
    """Encoder-only BERT: embeddings, N encoder layers, pooler head."""
    modules = [Embedding(BERT_VOCAB, hidden), LayerNorm(hidden)]
    modules.extend(
        TransformerEncoderLayer(hidden, heads, ffn) for _ in range(layers)
    )
    modules.append(Linear(hidden, hidden))  # pooler
    return Sequential(*modules)


def bert_base() -> Module:
    return bert(layers=12, hidden=768, heads=12, ffn=3072)


def bert_large() -> Module:
    return bert(layers=24, hidden=1024, heads=16, ffn=4096)
