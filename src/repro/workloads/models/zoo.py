"""Workload registry: the paper's five models with Table 1 batch sizes.

``get_plan(model, kind)`` returns the lowered op plan for one inference
request or one training iteration, using the exact batch sizes of
Table 1 (inference: ResNet50/MobileNetV2/ResNet101/Transformer batch 4,
BERT-large batch 2; training: ResNet50/101 batch 32, MobileNetV2 batch
64, BERT-base and Transformer batch 8).  Plans are cached — building
ResNet-101's ~700-kernel training trace is not free.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from repro.frameworks.lowering import OpPlan, lower_inference, lower_training
from repro.frameworks.module import Module

from .bert import BERT_SEQ_LEN, bert_base, bert_large
from .mobilenet import mobilenet_v2
from .resnet import resnet50, resnet101
from .transformer import TRANSFORMER_SEQ_LEN, transformer_xl

__all__ = ["MODEL_NAMES", "VISION_MODELS", "NLP_MODELS", "get_plan",
           "batch_size_for", "DEFAULT_BATCH_SIZES"]

MODEL_NAMES = ("resnet50", "mobilenet_v2", "resnet101", "bert", "transformer")
VISION_MODELS = ("resnet50", "mobilenet_v2", "resnet101")
NLP_MODELS = ("bert", "transformer")

# Table 1 of the paper.
DEFAULT_BATCH_SIZES: Dict[Tuple[str, str], int] = {
    ("resnet50", "inference"): 4,
    ("mobilenet_v2", "inference"): 4,
    ("resnet101", "inference"): 4,
    ("bert", "inference"): 2,
    ("transformer", "inference"): 4,
    ("resnet50", "training"): 32,
    ("mobilenet_v2", "training"): 64,
    ("resnet101", "training"): 32,
    ("bert", "training"): 8,
    ("transformer", "training"): 8,
}


def batch_size_for(model: str, kind: str) -> int:
    try:
        return DEFAULT_BATCH_SIZES[(model, kind)]
    except KeyError:
        raise KeyError(f"no default batch size for ({model!r}, {kind!r})") from None


def _build_model(model: str, kind: str) -> Module:
    if model == "resnet50":
        return resnet50()
    if model == "resnet101":
        return resnet101()
    if model == "mobilenet_v2":
        return mobilenet_v2()
    if model == "bert":
        # Paper: BERT-large for inference, BERT-base ("basic") for training.
        return bert_large() if kind == "inference" else bert_base()
    if model == "transformer":
        return transformer_xl()
    raise KeyError(f"unknown model {model!r}; known: {MODEL_NAMES}")


def _input_shape(model: str, batch: int) -> Tuple[int, ...]:
    if model in VISION_MODELS:
        return (batch, 3, 224, 224)
    if model == "bert":
        return (batch, BERT_SEQ_LEN)
    if model == "transformer":
        return (batch, TRANSFORMER_SEQ_LEN)
    raise KeyError(f"unknown model {model!r}")


@lru_cache(maxsize=None)
def get_plan(model: str, kind: str, batch_size: int = 0) -> OpPlan:
    """Lowered plan for one request/iteration of ``model``.

    ``batch_size`` of 0 selects the paper's Table 1 default.
    """
    if kind not in ("inference", "training"):
        raise ValueError(f"kind must be inference|training, got {kind!r}")
    batch = batch_size or batch_size_for(model, kind)
    module = _build_model(model, kind)
    shape = _input_shape(model, batch)
    if kind == "inference":
        return lower_inference(module, shape, f"{model}-inf-b{batch}")
    return lower_training(module, shape, f"{model}-train-b{batch}")
