"""MobileNetV2 (Sandler et al. 2018), TorchVision-style.

Inverted residual blocks with depthwise convolutions, which is why this
model skews memory-bound (Figure 4 of the paper) and shows the lowest
compute throughput utilization in Table 1.
"""

from __future__ import annotations

from repro.frameworks.layers.vision import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    ReLU,
)
from repro.frameworks.module import Module, Residual, Sequential

__all__ = ["mobilenet_v2", "INVERTED_RESIDUAL_SETTINGS"]

# (expansion t, output channels c, repeats n, first stride s)
INVERTED_RESIDUAL_SETTINGS = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def _inverted_residual(c_in: int, c_out: int, stride: int, expand: int) -> Module:
    """Expand 1x1 -> depthwise 3x3 -> project 1x1, skip when shapes match."""
    hidden = c_in * expand
    layers = []
    if expand != 1:
        layers.extend([Conv2d(c_in, hidden, 1), BatchNorm2d(hidden), ReLU()])
    layers.extend(
        [
            DepthwiseConv2d(hidden, 3, stride=stride, padding=1),
            BatchNorm2d(hidden),
            ReLU(),
            Conv2d(hidden, c_out, 1),
            BatchNorm2d(c_out),
        ]
    )
    body = Sequential(*layers)
    if stride == 1 and c_in == c_out:
        return Residual(body)
    return body


def mobilenet_v2() -> Module:
    layers = [Conv2d(3, 32, 3, stride=2, padding=1), BatchNorm2d(32), ReLU()]
    c_in = 32
    for expand, c_out, repeats, first_stride in INVERTED_RESIDUAL_SETTINGS:
        for block in range(repeats):
            stride = first_stride if block == 0 else 1
            layers.append(_inverted_residual(c_in, c_out, stride, expand))
            c_in = c_out
    layers.extend(
        [
            Conv2d(c_in, 1280, 1),
            BatchNorm2d(1280),
            ReLU(),
            GlobalAvgPool2d(),
            Flatten(),
            Linear(1280, 1000),
        ]
    )
    return Sequential(*layers)
