"""LLM token-generation workload (paper §7 extension).

The paper's discussion section observes that the sequential token-
generation phase of LLM inference is *memory-bound* — every decode
step streams the full weight matrices to produce one token — leaving
compute throughput and SMs underutilized, and proposes applying Orion's
resource-aware policy to collocate LLM inference with compute-intensive
workloads.  This module implements that workload so the proposal can be
evaluated:

* a prefill phase (standard batched transformer forward over the
  prompt — compute-leaning), followed by
* ``gen_tokens`` decode steps, each a stack of GEMV-shaped kernels
  (m = batch size) plus a KV-cache attention scan.  At small batch the
  cost model classifies these memory-bound, matching the §7 claim.

The KV cache contributes to the job's resident state, which is why LLMs
are a poor fit for naive GPU sharing (§3) — the plan's ``state_bytes``
reflects weights + cache.
"""

from __future__ import annotations

import math
from typing import List

from repro.frameworks.lowering import OpPlan, PlannedOp
from repro.frameworks.specbuild import FP32_BYTES, gemm_spec, softmax_spec
from repro.frameworks.module import Namer
from repro.kernels.kernel import KernelSpec, MemoryOpKind

__all__ = ["LlmConfig", "llm_generation_plan", "LLM_SMALL"]


class LlmConfig:
    """Decoder-only transformer configuration."""

    def __init__(self, layers: int = 24, hidden: int = 2048, heads: int = 16,
                 ffn: int = 8192, vocab: int = 32000, name: str = "llm"):
        if hidden % heads != 0:
            raise ValueError(f"hidden {hidden} not divisible by heads {heads}")
        if min(layers, hidden, heads, ffn, vocab) < 1:
            raise ValueError("LLM dimensions must be >= 1")
        self.layers = layers
        self.hidden = hidden
        self.heads = heads
        self.ffn = ffn
        self.vocab = vocab
        self.name = name

    @property
    def params(self) -> int:
        per_layer = 4 * self.hidden**2 + 2 * self.hidden * self.ffn
        return self.layers * per_layer + self.vocab * self.hidden

    def kv_cache_bytes(self, batch: int, tokens: int) -> int:
        # K and V per layer per token: 2 * hidden fp32 values.
        return FP32_BYTES * 2 * self.layers * self.hidden * batch * tokens


# A laptop-scale config whose decode step still moves ~0.5 GB of
# weights — firmly memory-bound, like real LLM decoding.
LLM_SMALL = LlmConfig(layers=16, hidden=1536, heads=12, ffn=6144,
                      name="llm-small")


def _decode_step_specs(config: LlmConfig, batch: int, cache_len: int,
                       namer: Namer) -> List[KernelSpec]:
    """Kernels for generating one token (seq position = cache_len)."""
    h, ffn = config.hidden, config.ffn
    specs: List[KernelSpec] = []
    for _layer in range(config.layers):
        # GEMV-shaped projections: m = batch rows against the full
        # weight matrices -> arithmetic intensity ~ batch, memory bound
        # for small batches.
        specs.append(gemm_spec(namer.name("dec_qkv"), batch, 3 * h, h))
        # KV-cache attention: stream the cache (memory bound).
        cache_values = 2 * h * max(cache_len, 1)
        specs.append(KernelSpec(
            name=namer.name("dec_attn_cache"),
            flops=2.0 * batch * h * max(cache_len, 1),
            bytes_moved=FP32_BYTES * batch * cache_values,
            launch=gemm_spec("probe", batch, h, max(cache_len, 1)).launch,
            compute_efficiency=0.50,
            memory_efficiency=0.85,
        ))
        specs.append(softmax_spec(namer.name("dec_softmax"),
                                  batch * config.heads * max(cache_len, 1)))
        specs.append(gemm_spec(namer.name("dec_out"), batch, h, h))
        specs.append(gemm_spec(namer.name("dec_ffn_in"), batch, ffn, h))
        specs.append(gemm_spec(namer.name("dec_ffn_out"), batch, h, ffn))
    # LM head over the final hidden state.
    specs.append(gemm_spec(namer.name("dec_lm_head"), batch, config.vocab, h))
    return specs


def _prefill_specs(config: LlmConfig, batch: int, prompt_len: int,
                   namer: Namer) -> List[KernelSpec]:
    """Standard batched forward over the prompt (compute-leaning)."""
    rows = batch * prompt_len
    h, ffn = config.hidden, config.ffn
    specs: List[KernelSpec] = []
    for _layer in range(config.layers):
        specs.append(gemm_spec(namer.name("pre_qkv"), rows, 3 * h, h))
        specs.append(gemm_spec(namer.name("pre_scores"), prompt_len,
                               prompt_len, h // config.heads,
                               batch=batch * config.heads))
        specs.append(softmax_spec(namer.name("pre_softmax"),
                                  batch * config.heads * prompt_len**2))
        specs.append(gemm_spec(namer.name("pre_context"), prompt_len,
                               h // config.heads, prompt_len,
                               batch=batch * config.heads))
        specs.append(gemm_spec(namer.name("pre_out"), rows, h, h))
        specs.append(gemm_spec(namer.name("pre_ffn_in"), rows, ffn, h))
        specs.append(gemm_spec(namer.name("pre_ffn_out"), rows, h, ffn))
    return specs


def llm_generation_plan(config: LlmConfig = LLM_SMALL, batch: int = 1,
                        prompt_len: int = 128, gen_tokens: int = 16) -> OpPlan:
    """One LLM serving request: prefill + ``gen_tokens`` decode steps.

    Decode-step kernel ids are shared across steps of the same cache
    bucket so the offline profile stays compact, exactly as a real
    deployment would profile per-shape kernels once.  ``gen_tokens=0``
    is a prefill-only request (the continuous-batching scenario issues
    prefill and decode as separate plans).
    """
    if min(batch, prompt_len) < 1:
        raise ValueError("batch and prompt_len must be >= 1")
    if gen_tokens < 0:
        raise ValueError("gen_tokens must be >= 0")
    model_name = f"{config.name}-b{batch}-p{prompt_len}-g{gen_tokens}"
    namer = Namer(model_name)
    ops: List[PlannedOp] = [
        PlannedOp("copy", copy_bytes=FP32_BYTES * batch * prompt_len,
                  copy_kind=MemoryOpKind.MEMCPY_H2D)
    ]
    ops.extend(PlannedOp("forward", spec=s)
               for s in _prefill_specs(config, batch, prompt_len, namer))
    # Decode steps reuse one kernel set per power-of-two cache bucket.
    bucket_specs = {}
    for step in range(gen_tokens):
        cache_len = prompt_len + step
        bucket = 2 ** int(math.ceil(math.log2(max(cache_len, 1))))
        if bucket not in bucket_specs:
            bucket_namer = Namer(f"{model_name}/cache{bucket}")
            bucket_specs[bucket] = _decode_step_specs(
                config, batch, bucket, bucket_namer
            )
        ops.extend(PlannedOp("decode", spec=s) for s in bucket_specs[bucket])
    out_bytes = FP32_BYTES * batch * max(gen_tokens, 1)
    ops.append(PlannedOp("output", copy_bytes=out_bytes,
                         copy_kind=MemoryOpKind.MEMCPY_D2H))
    state = (FP32_BYTES * config.params
             + config.kv_cache_bytes(batch, prompt_len + gen_tokens))
    return OpPlan(model_name, "inference", batch, ops, config.params,
                  FP32_BYTES * batch * prompt_len, state)
