"""Transformer-XL-style language model (NVIDIA DeepLearningExamples).

Approximated as a deep decoder-only stack: 16 layers, d_model 512,
8 heads, FFN 2048, 192-token segments — matching the memory-bound
profile Table 1 reports for the paper's "Transformer" workload.
"""

from __future__ import annotations

from repro.frameworks.layers.nlp import Embedding, LayerNorm, TransformerEncoderLayer
from repro.frameworks.layers.vision import Linear
from repro.frameworks.module import Module, Sequential

__all__ = ["transformer_xl", "TRANSFORMER_SEQ_LEN"]

TRANSFORMER_SEQ_LEN = 192
TRANSFORMER_VOCAB = 32000


def transformer_xl(layers: int = 16, hidden: int = 512, heads: int = 8,
                   ffn: int = 2048) -> Module:
    modules = [Embedding(TRANSFORMER_VOCAB, hidden), LayerNorm(hidden)]
    modules.extend(
        TransformerEncoderLayer(hidden, heads, ffn) for _ in range(layers)
    )
    modules.append(Linear(hidden, TRANSFORMER_VOCAB))  # LM head
    return Sequential(*modules)
