"""Workloads: model zoo, arrival processes, traces, client job drivers."""

from .apollo import APOLLO_BASE_RPS, apollo_trace
from .arrivals import (
    ArrivalProcess,
    ClosedLoop,
    PoissonArrivals,
    TraceArrivals,
    UniformArrivals,
    make_arrivals,
)
from .clients import (
    ClientStats,
    InferenceClient,
    RequestRecord,
    RestartingInferenceClient,
    RestartingTrainingClient,
    TrainingClient,
)
from .models import MODEL_NAMES, NLP_MODELS, VISION_MODELS, batch_size_for, get_plan
from .rates import TABLE3_RPS, rps_for
from .registry import (
    WORKLOADS,
    LlmWorkload,
    WorkloadSpec,
    ZooWorkload,
    build_plan,
    get_workload,
    register_workload,
    workload_names,
)

__all__ = [
    "apollo_trace",
    "APOLLO_BASE_RPS",
    "ArrivalProcess",
    "UniformArrivals",
    "PoissonArrivals",
    "TraceArrivals",
    "ClosedLoop",
    "make_arrivals",
    "InferenceClient",
    "TrainingClient",
    "RestartingInferenceClient",
    "RestartingTrainingClient",
    "ClientStats",
    "RequestRecord",
    "get_plan",
    "batch_size_for",
    "MODEL_NAMES",
    "VISION_MODELS",
    "NLP_MODELS",
    "TABLE3_RPS",
    "rps_for",
    "WorkloadSpec",
    "ZooWorkload",
    "LlmWorkload",
    "WORKLOADS",
    "register_workload",
    "get_workload",
    "workload_names",
    "build_plan",
]
