"""Baseline GPU-sharing backends evaluated against Orion (paper §6.1)."""

from repro.runtime.direct import DedicatedBackend

from .reef import REEF_QUEUE_SIZE, ReefBackend
from .spatial import MpsBackend, PriorityStreamsBackend, StreamsBackend
from .temporal import TemporalBackend
from .ticktock import TickTockBackend

__all__ = [
    "TemporalBackend",
    "StreamsBackend",
    "PriorityStreamsBackend",
    "MpsBackend",
    "ReefBackend",
    "REEF_QUEUE_SIZE",
    "TickTockBackend",
    "DedicatedBackend",
    "BASELINE_NAMES",
]

BASELINE_NAMES = (
    "ideal",
    "temporal",
    "streams",
    "priority-streams",
    "mps",
    "reef",
    "ticktock",
    "orion",
)
