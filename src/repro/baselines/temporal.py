"""Temporal sharing baseline (§4, §6.1).

Time-slices the GPU at request/minibatch granularity: one job's request
runs at a time, with the high-priority job's requests served first
among waiters.  An arriving high-priority request must still wait for
any ongoing best-effort iteration to finish — the head-of-line blocking
the paper identifies as temporal sharing's core weakness.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.gpu.device import GpuDevice
from repro.runtime.backend import Backend, BackendOptions, ClientInfo, Op
from repro.sim.engine import Simulator
from repro.sim.process import Signal
from repro.sim.resources import FifoLock

__all__ = ["TemporalBackend"]


class TemporalBackend(Backend):
    """Request-granularity time slicing with priority."""

    name = "temporal"

    def __init__(self, sim: Simulator, device: GpuDevice,
                 options: Optional[BackendOptions] = None):
        super().__init__(sim, options)
        self.device = device
        self._streams: Dict[str, object] = {}
        self._gpu_lock = FifoLock(sim)
        self._holding: Optional[str] = None
        # Outstanding (not yet granted) slice requests, for cancellation
        # when a waiting client dies.
        self._pending_grants: Dict[str, Signal] = {}
        # Per-client slice-wait telemetry (temporal sharing has no
        # software op queues; its "queue" is the wait for the GPU lock).
        # Instruments live on the MetricsRegistry; cached per client.
        self._waits: Dict[str, tuple] = {}
        self.set_telemetry()

    def _wait_instruments(self, client_id: str) -> tuple:
        inst = self._waits.get(client_id)
        if inst is None:
            inst = (self.metrics.counter("slice_wait_total", client=client_id),
                    self.metrics.gauge("slice_waiting", client=client_id))
            self._waits[client_id] = inst
        return inst

    def register_client(self, client_id: str, high_priority: bool, kind: str) -> ClientInfo:
        info = self._register(client_id, high_priority, kind)
        self._streams[client_id] = self.device.create_stream(
            name=f"{client_id}-stream"
        )
        return info

    def submit(self, client_id: str, op: Op) -> Signal:
        # Memory operations (model-state allocation at startup) are
        # allowed outside a slice; kernels require holding it.
        if op.is_kernel and self._holding != client_id:
            raise RuntimeError(
                f"temporal sharing: client {client_id!r} submitted a kernel "
                "outside its time slice (begin_request was not awaited)"
            )
        return self._streams[client_id].submit(op)

    def begin_request(self, client_id: str,
                      deadline: Optional[float] = None) -> Optional[Signal]:
        info = self.client_info(client_id)
        grant = self._gpu_lock.acquire(priority=info.priority, holder=client_id)
        enqueued, waiting = self._wait_instruments(client_id)
        enqueued.value += 1

        def on_grant(_sig):
            self._holding = client_id
            self._pending_grants.pop(client_id, None)
            waiting.value = 0

        if not grant.triggered:
            self._pending_grants[client_id] = grant
            waiting.set(1)
            if self.tracer.enabled:
                self.tracer.instant("scheduler", "slice_wait",
                                    client=client_id)
        grant.add_callback(on_grant)
        return grant

    def end_request(self, client_id: str) -> None:
        if self._holding != client_id:
            raise RuntimeError(f"end_request from non-holder {client_id!r}")
        self._holding = None
        self._gpu_lock.release()

    def _deregister_cleanup(self, info: ClientInfo) -> None:
        client_id = info.client_id
        # A dead client must not wedge the time-slice rotation: withdraw
        # its queued slice request, or hand the GPU on if it held it.
        pending = self._pending_grants.pop(client_id, None)
        if pending is not None:
            self._gpu_lock.cancel(pending)
        if self._holding == client_id:
            self._holding = None
            self._gpu_lock.release()
        stream = self._streams.pop(client_id, None)
        if stream is not None:
            self.device.destroy_stream(stream)
        self.device.release_client(client_id)

    def queue_telemetry(self) -> Dict[str, dict]:
        """Slice-wait snapshot in the uniform queue-telemetry schema:
        ``depth`` is 1 while the client waits for its time slice."""
        snapshot = {}
        for client_id, (enqueued, waiting) in sorted(self._waits.items()):
            snapshot[client_id] = {
                "depth": 1 if client_id in self._pending_grants else 0,
                "enqueued_total": enqueued.value,
                "max_depth_seen": waiting.max_seen,
                "rejected_total": 0,
                "max_depth": None,
            }
        return snapshot

    def devices(self) -> List[GpuDevice]:
        return [self.device]
