"""Tick-Tock / Wavelet baseline (Wang et al., MLSys '21; §6.1).

Tick-Tock offsets the forward and backward passes of two collocated
training jobs (one runs its "tick" forward while the other runs its
"tock" backward) to minimize aggregate memory usage, synchronizing at
phase boundaries.  The Orion paper's criticism — which this
implementation reproduces — is exactly that synchronization: at every
phase boundary the fastest job waits for the slowest, so aggregate
throughput is gated by the slower job.

Implementation: training clients emit forward/backward/update phase
markers; the backend holds clients at a phase barrier until every
registered training client reaches it, releasing them in lockstep with
alternating offsets.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.gpu.device import GpuDevice
from repro.runtime.backend import Backend, BackendOptions, ClientInfo, Op
from repro.sim.engine import Simulator
from repro.sim.process import Signal

__all__ = ["TickTockBackend"]


class TickTockBackend(Backend):
    """Phase-synchronized training collocation."""

    name = "ticktock"

    def __init__(self, sim: Simulator, device: GpuDevice,
                 options: Optional[BackendOptions] = None):
        super().__init__(sim, options)
        self.device = device
        self._streams: Dict[str, object] = {}
        self._waiting: Dict[str, Signal] = {}
        self.barriers_released = 0
        # Per-client barrier-wait telemetry (Tick-Tock has no software
        # op queues; its "queue" is the phase barrier).  Instruments
        # live on the MetricsRegistry; cached per client.
        self._waits: Dict[str, tuple] = {}
        self.set_telemetry()

    def _wait_instruments(self, client_id: str) -> tuple:
        inst = self._waits.get(client_id)
        if inst is None:
            inst = (self.metrics.counter("barrier_wait_total",
                                         client=client_id),
                    self.metrics.gauge("barrier_waiting", client=client_id))
            self._waits[client_id] = inst
        return inst

    def register_client(self, client_id: str, high_priority: bool, kind: str) -> ClientInfo:
        if kind != "training":
            raise ValueError("Tick-Tock collocates training jobs only")
        info = self._register(client_id, high_priority, kind)
        self._streams[client_id] = self.device.create_stream(
            name=f"ticktock-{client_id}"
        )
        return info

    def submit(self, client_id: str, op: Op) -> Signal:
        self.client_info(client_id)
        return self._streams[client_id].submit(op)

    def phase_marker(self, client_id: str, phase: str) -> Optional[Signal]:
        """Barrier: wait until every training client reaches a boundary."""
        if phase == "update":
            # Updates piggyback on the backward slot; no extra barrier.
            return None
        if len(self.clients) < 2:
            return None
        gate = Signal(self.sim)
        self._waiting[client_id] = gate
        enqueued, waiting_g = self._wait_instruments(client_id)
        enqueued.value += 1
        waiting_g.set(1)
        if len(self._waiting) == len(self.clients):
            self._release_barrier()
        return gate

    def _deregister_cleanup(self, info: ClientInfo) -> None:
        client_id = info.client_id
        stream = self._streams.pop(client_id, None)
        if stream is not None:
            self.device.destroy_stream(stream)
        self.device.release_client(client_id)
        self._waiting.pop(client_id, None)
        # A dead partner must not strand survivors at the barrier: if
        # everyone still alive is already waiting, release them.  The
        # base class removes the dead client from ``clients`` after this
        # hook runs, hence the ``- 1``.
        if self._waiting and len(self._waiting) >= len(self.clients) - 1:
            self._release_barrier()

    def _release_barrier(self) -> None:
        waiting, self._waiting = self._waiting, {}
        self.barriers_released += 1
        if self.tracer.enabled:
            self.tracer.instant("scheduler", "barrier_release",
                                clients=len(waiting))
        for client_id, signal in waiting.items():
            if client_id in self._waits:
                self._waits[client_id][1].value = 0
            signal.trigger()

    def queue_telemetry(self) -> Dict[str, dict]:
        """Barrier-wait snapshot in the uniform queue-telemetry schema:
        ``depth`` is 1 while the client is held at a phase barrier."""
        snapshot = {}
        for client_id, (enqueued, waiting) in sorted(self._waits.items()):
            snapshot[client_id] = {
                "depth": 1 if client_id in self._waiting else 0,
                "enqueued_total": enqueued.value,
                "max_depth_seen": waiting.max_seen,
                "rejected_total": 0,
                "max_depth": None,
            }
        return snapshot

    def devices(self) -> List[GpuDevice]:
        return [self.device]
