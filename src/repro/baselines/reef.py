"""REEF-N baseline (Han et al., OSDI '22; §6.1 of the Orion paper).

REEF targets AMD GPUs where kernels can be preempted; for NVIDIA GPUs
its authors proposed REEF-N, a restricted variant in which high-
priority kernels *bypass* best-effort kernels in software queues before
submission (no preemption after submission).  Following the Orion
paper's reimplementation:

* high-priority ops are forwarded immediately to a high-priority stream;
* best-effort kernels launch only while the high-priority software
  queue is empty, keeping at most ``queue_size`` (12, per discussion
  with the REEF authors) kernels outstanding on the GPU;
* kernel selection considers *size* (a best-effort kernel must fit in
  the SMs the running kernels leave free — REEF's dynamic kernel
  padding) and expected latency, but NOT compute/memory profiles —
  the interference-blindness Orion fixes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.gpu.device import GpuDevice
from repro.gpu.errors import CudaError, CudaErrorCode
from repro.kernels.kernel import KernelOp, MemoryOp
from repro.runtime.backend import (
    Backend,
    BackendOptions,
    ClientInfo,
    Op,
    SoftwareQueue,
    UnknownClientError,
)
from repro.sim.engine import Simulator
from repro.sim.process import Signal, spawn

__all__ = ["ReefBackend", "REEF_QUEUE_SIZE"]

REEF_QUEUE_SIZE = 12


class _BeState:
    __slots__ = ("queue", "stream", "outstanding")

    def __init__(self, queue: SoftwareQueue, stream):
        self.queue = queue
        self.stream = stream
        self.outstanding = 0


class ReefBackend(Backend):
    """REEF-N scheduling policy."""

    name = "reef"

    def __init__(self, sim: Simulator, device: GpuDevice,
                 queue_size: int = REEF_QUEUE_SIZE,
                 be_queue_depth: Optional[int] = None,
                 options: Optional[BackendOptions] = None):
        super().__init__(sim, options)
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if be_queue_depth is not None and be_queue_depth < 1:
            raise ValueError("be_queue_depth must be >= 1")
        self.device = device
        self.queue_size = queue_size
        # Overload protection: bound on each BE *software* queue (in
        # front of queue_size, which caps submitted-to-GPU kernels).
        # Overflow rejects with the retryable QUEUE_FULL status.
        self.be_queue_depth = be_queue_depth
        self._hp_stream = None
        self._hp_queue: Optional[SoftwareQueue] = None
        self._hp_client_id: Optional[str] = None
        self._be: Dict[str, _BeState] = {}
        self._be_order: List[str] = []
        self._rr_index = 0
        self._wake = Signal(sim)
        self._started = False
        self.be_kernels_launched = 0
        self.set_telemetry()

    def register_client(self, client_id: str, high_priority: bool, kind: str) -> ClientInfo:
        info = self._register(client_id, high_priority, kind)
        if high_priority:
            if self._hp_stream is not None:
                raise ValueError("REEF-N supports one high-priority client")
            self._hp_stream = self.device.create_stream(priority=1, name="reef-hp")
            self._hp_queue = self._new_queue(client_id)
            self._hp_client_id = client_id
        else:
            stream = self.device.create_stream(priority=0, name=f"reef-be-{client_id}")
            queue = self._new_queue(client_id, max_depth=self.be_queue_depth)
            self._be[client_id] = _BeState(queue, stream)
            self._be_order.append(client_id)
        return info

    def devices(self) -> List[GpuDevice]:
        return [self.device]

    def start(self) -> None:
        if not self._started:
            self._started = True
            spawn(self.sim, self._run_scheduler(), "reef-scheduler")

    def submit(self, client_id: str, op: Op) -> Signal:
        # Hot path: direct dict lookup (client_info adds a call frame).
        info = self.clients.get(client_id)
        if info is None:
            raise UnknownClientError(client_id, self.name)
        if info.high_priority:
            done = self._hp_queue.push(op)
        elif isinstance(op, MemoryOp):
            done = self._be[client_id].stream.submit(op)
            self._watch(done)
            return done
        else:
            queue = self._be[client_id].queue
            if queue.full:
                queue.rejected_total += 1
                done = Signal(self.sim)
                done.trigger(None, error=CudaError(
                    CudaErrorCode.QUEUE_FULL,
                    f"software queue full (depth {queue.depth}/{queue.max_depth})",
                    client_id=client_id, time=self.sim.now))
                return done
            done = queue.push(op)
        self._wake_scheduler()
        return done

    def _deregister_cleanup(self, info: ClientInfo) -> None:
        client_id = info.client_id
        error = CudaError(CudaErrorCode.CLIENT_KILLED,
                          "client deregistered with ops pending",
                          client_id=client_id, time=self.sim.now)
        # Repair scheduler bookkeeping before any signal fires: a
        # triggered signal can resume the scheduler synchronously, and
        # it must never observe the dead client in its state.
        if client_id == self._hp_client_id:
            hp_queue, hp_stream = self._hp_queue, self._hp_stream
            self._hp_stream = None
            self._hp_queue = None
            self._hp_client_id = None
            for _op, done in hp_queue.drain():
                done.trigger(None, error=error)
            self.device.destroy_stream(hp_stream, error=error)
        elif client_id in self._be:
            state = self._be.pop(client_id)
            self._be_order.remove(client_id)
            self._rr_index = self._rr_index % len(self._be_order) \
                if self._be_order else 0
            for _op, done in state.queue.drain():
                done.trigger(None, error=error)
            self.device.destroy_stream(state.stream, error=error)
        self.device.release_client(client_id)
        self._wake_scheduler()

    def _wake_scheduler(self) -> None:
        if not self._wake.triggered:
            self._wake.trigger()

    @property
    def hp_pending(self) -> bool:
        return self._hp_queue is not None and bool(len(self._hp_queue))

    def _free_sms(self) -> int:
        """SMs available for padding.

        Resident kernels hold their SMs; SMs are also reserved for the
        high-priority stream's next pending kernel so a best-effort
        kernel never races the real-time work into a just-freed slot.
        """
        reserved = self.device.sm_backlog
        if self._hp_stream is not None:
            for stream_op in self._hp_stream.queue:
                if isinstance(stream_op.op, KernelOp):
                    reserved += stream_op.op.sm_needed
                    break
        return max(0, self.device.spec.num_sms - reserved)

    def _run_scheduler(self):
        while True:
            progressed = True
            while progressed:
                progressed = False
                # HP bypass: drain the HP queue first, always.
                while self.hp_pending:
                    op, done = self._hp_queue.pop()
                    inner = self._hp_stream.submit(op)
                    inner.add_callback(
                        lambda sig, d=done: d.trigger(sig.value, error=sig.error))
                    self._watch(inner)
                    progressed = True
                for offset in range(len(self._be_order)):
                    client_id = self._be_order[(self._rr_index + offset)
                                               % len(self._be_order)]
                    if self._try_launch_be(client_id):
                        self._rr_index = (self._rr_index + offset + 1) \
                            % len(self._be_order)
                        progressed = True
            self._wake = Signal(self.sim)
            yield self._wake

    def _try_launch_be(self, client_id: str) -> bool:
        state = self._be[client_id]
        op = state.queue.peek()
        if op is None:
            return False
        if state.outstanding >= self.queue_size:
            return False
        # A BE kernel launches when the HP job has no work anywhere
        # (queue and stream drained), or — REEF's dynamic kernel
        # padding — when it is small enough to fit in the SMs the
        # resident kernels leave free.  No profile awareness.
        hp_idle = not self.hp_pending and (
            self._hp_stream is None or not self._hp_stream.busy
        )
        if not hp_idle:
            if not isinstance(op, KernelOp):
                return False
            if op.sm_needed > self._free_sms():
                return False
        op, done = state.queue.pop()
        inner = state.stream.submit(op)
        state.outstanding += 1

        def on_done(sig, d=done, s=state):
            s.outstanding -= 1
            d.trigger(sig.value, error=sig.error)
            self._wake_scheduler()

        inner.add_callback(on_done)
        self.be_kernels_launched += 1
        return True

    def _watch(self, done: Signal) -> None:
        done.add_callback(lambda _sig: self._wake_scheduler())
