"""Spatial-sharing baselines built on direct stream submission.

* GPU Streams — every client is a thread of one process submitting to
  its own default-priority stream; launches contend on the Python GIL.
* Priority Streams — GPU Streams plus a high-priority CUDA stream for
  the high-priority job (one rung of the Figure-14 ablation ladder).
* MPS — every client is its own *process* (no shared GIL), all streams
  effectively default priority across processes; full spatial sharing
  with no interference awareness.
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.device import GpuDevice
from repro.runtime.backend import BackendOptions
from repro.runtime.direct import DirectStreamBackend
from repro.sim.engine import Simulator

__all__ = ["StreamsBackend", "PriorityStreamsBackend", "MpsBackend"]


class StreamsBackend(DirectStreamBackend):
    """Multi-threaded clients, one default-priority stream each."""

    name = "streams"
    process_per_client = False

    def __init__(self, sim: Simulator, device: GpuDevice,
                 options: Optional[BackendOptions] = None):
        super().__init__(sim, device, use_priorities=False, options=options)


class PriorityStreamsBackend(DirectStreamBackend):
    """GPU Streams with a high-priority stream for the HP job."""

    name = "priority-streams"
    process_per_client = False

    def __init__(self, sim: Simulator, device: GpuDevice,
                 options: Optional[BackendOptions] = None):
        super().__init__(sim, device, use_priorities=True, options=options)


class MpsBackend(DirectStreamBackend):
    """NVIDIA MPS: process-per-client spatial sharing.

    Cross-process stream priorities are not honoured under MPS
    (see §6.4's note that priorities are unavailable in MPS mode), so
    all streams are default priority; clients avoid GIL contention.
    """

    name = "mps"
    process_per_client = True

    def __init__(self, sim: Simulator, device: GpuDevice,
                 options: Optional[BackendOptions] = None):
        super().__init__(sim, device, use_priorities=False, options=options)
