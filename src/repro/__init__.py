"""Reproduction of "Orion: Interference-aware, Fine-grained GPU Sharing
for ML Applications" (EuroSys '24) on a calibrated discrete-event GPU
simulator.

Public entry points:

* :mod:`repro.core` — the Orion scheduler.
* :mod:`repro.baselines` — temporal, Streams, MPS, REEF-N, Tick-Tock, Ideal.
* :mod:`repro.experiments` — configs + runner for every paper table/figure.
* :mod:`repro.workloads` — the five DNN models, arrival processes, clients.
* :mod:`repro.gpu` / :mod:`repro.sim` — the simulated device substrate.
"""

__version__ = "1.0.0"

from repro.core import OrionBackend, OrionConfig
from repro.experiments import ExperimentConfig, JobSpec, run_experiment

__all__ = [
    "OrionBackend",
    "OrionConfig",
    "ExperimentConfig",
    "JobSpec",
    "run_experiment",
    "__version__",
]
