"""Kernel profile records and the JSON profile store (paper §5.2).

Orion's offline profiling phase emits, per model, a file with one entry
per kernel: expected duration, compute/memory throughput utilization,
SM requirement, and roofline class.  The online scheduler loads this
into an in-memory lookup table indexed by kernel identifier.  This
module defines those records and their (de)serialization.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional

from repro.kernels.kernel import ResourceProfile

__all__ = ["KernelProfile", "ModelProfile", "ProfileStore"]


@dataclass(frozen=True)
class KernelProfile:
    """Profiled characteristics of one kernel."""

    kernel_id: str
    duration: float
    compute_util: float
    memory_util: float
    sm_needed: int
    profile: ResourceProfile

    def to_dict(self) -> dict:
        d = asdict(self)
        d["profile"] = self.profile.value
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "KernelProfile":
        d = dict(d)
        d["profile"] = ResourceProfile(d["profile"])
        return cls(**d)


@dataclass
class ModelProfile:
    """Per-model profiling output: kernel table + request latency."""

    model_name: str
    kind: str
    device_name: str
    request_latency: float
    kernels: Dict[str, KernelProfile] = field(default_factory=dict)

    def lookup(self, kernel_id: str) -> Optional[KernelProfile]:
        return self.kernels.get(kernel_id)

    def to_dict(self) -> dict:
        return {
            "model_name": self.model_name,
            "kind": self.kind,
            "device_name": self.device_name,
            "request_latency": self.request_latency,
            "kernels": {k: v.to_dict() for k, v in self.kernels.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ModelProfile":
        kernels = {k: KernelProfile.from_dict(v) for k, v in d["kernels"].items()}
        return cls(
            model_name=d["model_name"],
            kind=d["kind"],
            device_name=d["device_name"],
            request_latency=float(d["request_latency"]),
            kernels=kernels,
        )

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1))

    @classmethod
    def load(cls, path) -> "ModelProfile":
        return cls.from_dict(json.loads(Path(path).read_text()))


class ProfileStore:
    """In-memory lookup table over many model profiles.

    The Orion scheduler holds one of these; lookups are by kernel id
    (kernel ids embed the model name, so the flat namespace is safe).
    """

    def __init__(self):
        self._models: Dict[str, ModelProfile] = {}
        self._kernels: Dict[str, KernelProfile] = {}

    def add(self, profile: ModelProfile) -> None:
        key = f"{profile.model_name}:{profile.kind}"
        self._models[key] = profile
        self._kernels.update(profile.kernels)

    def model(self, model_name: str, kind: str) -> ModelProfile:
        key = f"{model_name}:{kind}"
        try:
            return self._models[key]
        except KeyError:
            raise KeyError(f"no profile for {key}; run the profiler first") from None

    def lookup(self, kernel_id: str) -> Optional[KernelProfile]:
        return self._kernels.get(kernel_id)

    def drop(self, kernel_id: str) -> bool:
        """Remove a kernel's entry (fault injection: profile loss).

        Subsequent lookups miss, exercising the scheduler's
        profile-miss fallback.  Returns True if the entry existed.
        """
        existed = self._kernels.pop(kernel_id, None) is not None
        for model in self._models.values():
            model.kernels.pop(kernel_id, None)
        return existed

    def corrupt(self, kernel_id: str, factor: float = 10.0) -> bool:
        """Scale a kernel's profiled duration (fault injection: stale or
        wrong profile data).  Returns True if the entry existed."""
        profile = self._kernels.get(kernel_id)
        if profile is None:
            return False
        corrupted = replace(profile, duration=profile.duration * factor)
        self._kernels[kernel_id] = corrupted
        for model in self._models.values():
            if kernel_id in model.kernels:
                model.kernels[kernel_id] = corrupted
        return True

    def __len__(self) -> int:
        return len(self._kernels)
