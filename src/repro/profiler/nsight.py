"""Offline workload profiler — the simulator's Nsight Compute/Systems.

``profile_plan`` characterizes every kernel of a workload by running it
solo on a dedicated simulated device (per-kernel metrics, as Nsight
Compute measures them in isolation) and measures the end-to-end solo
request latency by simulating one full request including memory copies
and launch overheads (as Nsight Systems' timeline would show it).

Optional multiplicative measurement noise models profiling error; the
scheduler consumes only these profiled values — never the simulator's
ground truth — preserving the paper's offline-profile architecture.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.frameworks.lowering import OpPlan, instantiate_plan
from repro.gpu.device import GpuDevice
from repro.gpu.specs import DeviceSpec
from repro.kernels.kernel import KernelOp
from repro.runtime.client import ClientContext
from repro.runtime.direct import DedicatedBackend
from repro.runtime.host import HostThread
from repro.sim.engine import Simulator
from repro.sim.process import spawn

from .profiles import KernelProfile, ModelProfile, ProfileStore

__all__ = ["profile_plan", "profile_models", "measure_solo_latency"]


def measure_solo_latency(plan: OpPlan, device_spec: DeviceSpec,
                         iterations: int = 3) -> float:
    """Mean end-to-end solo latency of one request/iteration."""
    sim = Simulator()
    backend = DedicatedBackend(sim, lambda: GpuDevice(sim, device_spec))
    host = HostThread(sim)
    ctx = ClientContext(backend, "profiler", host,
                        high_priority=True, kind=plan.kind)
    horizon = 1e9  # closed loop bounded by iteration count below
    latencies = []

    def run():
        yield from ctx.malloc(plan.state_bytes)
        for _ in range(iterations):
            start = sim.now
            ops = instantiate_plan(plan, device_spec, client_id="profiler")
            for op in ops:
                if isinstance(op, KernelOp):
                    yield from ctx.launch_kernel(op)
                else:
                    yield from ctx.memcpy(op.nbytes, op.kind, blocking=op.blocking)
            yield from ctx.synchronize()
            latencies.append(sim.now - start)

    spawn(sim, run(), "profile-run")
    sim.run(until=horizon)
    if len(latencies) != iterations:
        raise RuntimeError("solo profiling run did not complete")
    return float(np.mean(latencies))


def profile_plan(plan: OpPlan, device_spec: DeviceSpec,
                 noise_rng: Optional[np.random.Generator] = None,
                 noise: float = 0.0) -> ModelProfile:
    """Profile every kernel of ``plan`` plus solo request latency."""
    if noise < 0 or noise >= 0.5:
        raise ValueError("noise must be in [0, 0.5)")
    kernels = {}
    for op in instantiate_plan(plan, device_spec, client_id="profiler"):
        if not isinstance(op, KernelOp):
            continue
        if op.spec.name in kernels:
            continue
        factor = 1.0
        if noise > 0 and noise_rng is not None:
            factor = float(noise_rng.uniform(1.0 - noise, 1.0 + noise))
        kernels[op.spec.name] = KernelProfile(
            kernel_id=op.spec.name,
            duration=op.duration * factor,
            compute_util=min(1.0, op.compute_util * factor),
            memory_util=min(1.0, op.memory_util * factor),
            sm_needed=op.sm_needed,
            profile=op.profile,
        )
    latency = measure_solo_latency(plan, device_spec)
    return ModelProfile(
        model_name=plan.model_name,
        kind=plan.kind,
        device_name=device_spec.name,
        request_latency=latency,
        kernels=kernels,
    )


def profile_models(plans, device_spec: DeviceSpec, **kwargs) -> ProfileStore:
    """Profile several plans into one store."""
    store = ProfileStore()
    for plan in plans:
        store.add(profile_plan(plan, device_spec, **kwargs))
    return store
