"""Offline workload profiling (the paper's Nsight-based phase, §5.2)."""

from .nsight import measure_solo_latency, profile_models, profile_plan
from .profiles import KernelProfile, ModelProfile, ProfileStore

__all__ = [
    "KernelProfile",
    "ModelProfile",
    "ProfileStore",
    "profile_plan",
    "profile_models",
    "measure_solo_latency",
]
