"""Latency digests: the percentile summaries the paper reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.workloads.clients import RequestRecord

__all__ = ["LatencySummary", "summarize_latencies", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (numpy 'linear'), q in [0, 100]."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q out of range: {q}")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class LatencySummary:
    """p50/p95/p99 + moments for one client's request latencies."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def ratio_to(self, other: "LatencySummary") -> float:
        """p99 inflation over a reference (e.g. the Ideal baseline)."""
        if other.p99 <= 0:
            raise ValueError("reference p99 must be positive")
        return self.p99 / other.p99

    @classmethod
    def empty(cls) -> "LatencySummary":
        return cls(0, float("nan"), float("nan"), float("nan"),
                   float("nan"), float("nan"))


def summarize_latencies(records: Iterable[RequestRecord],
                        after: float = 0.0) -> LatencySummary:
    """Summarize request latencies for records arriving at/after ``after``."""
    lats = [r.latency for r in records if r.arrival >= after]
    if not lats:
        return LatencySummary.empty()
    arr = np.asarray(lats, dtype=float)
    return LatencySummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        max=float(arr.max()),
    )
