"""GPU utilization aggregation from device telemetry segments.

The device records piecewise-constant segments ``(t0, t1, compute,
memory_bw, sm_busy)`` whenever the resident kernel set changes.  This
module turns them into the paper's metrics: time-averaged utilization
(Table 1) and binned utilization traces (Figures 1, 8, 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["UtilizationAverages", "average_utilization", "binned_trace"]

Segment = Tuple[float, float, float, float, float]


@dataclass(frozen=True)
class UtilizationAverages:
    """Time-averaged device utilization over a window."""

    compute: float
    memory_bw: float
    sm_busy: float
    window: float


def average_utilization(segments: Sequence[Segment], start: float,
                        end: float) -> UtilizationAverages:
    """Time-weighted averages over [start, end).

    Gaps between segments (device idle) count as zero utilization, so
    the denominator is the whole window — matching how Nsight-derived
    whole-workload averages are computed in the paper.
    """
    if end <= start:
        raise ValueError("window end must exceed start")
    window = end - start
    compute = memory = sm = 0.0
    for t0, t1, c, m, s in segments:
        lo, hi = max(t0, start), min(t1, end)
        if hi <= lo:
            continue
        weight = hi - lo
        compute += c * weight
        memory += m * weight
        sm += s * weight
    return UtilizationAverages(compute / window, memory / window, sm / window, window)


def binned_trace(segments: Sequence[Segment], start: float, end: float,
                 bin_width: float = 1e-3) -> Tuple[np.ndarray, np.ndarray,
                                                   np.ndarray, np.ndarray]:
    """Utilization trace in fixed bins: (times, compute, memory, sm).

    ``times`` are bin left edges.  Each bin holds the time-weighted mean
    utilization within it — the series behind Figures 1, 8, and 9.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if end <= start:
        raise ValueError("window end must exceed start")
    n_bins = int(np.ceil((end - start) / bin_width))
    compute = np.zeros(n_bins)
    memory = np.zeros(n_bins)
    sm = np.zeros(n_bins)
    for t0, t1, c, m, s in segments:
        lo, hi = max(t0, start), min(t1, end)
        if hi <= lo:
            continue
        first = int((lo - start) / bin_width)
        last = min(n_bins - 1, int((hi - start) / bin_width))
        for b in range(first, last + 1):
            b_lo = start + b * bin_width
            b_hi = b_lo + bin_width
            overlap = min(hi, b_hi) - max(lo, b_lo)
            if overlap > 0:
                compute[b] += c * overlap
                memory[b] += m * overlap
                sm[b] += s * overlap
    compute /= bin_width
    memory /= bin_width
    sm /= bin_width
    times = start + np.arange(n_bins) * bin_width
    return times, np.clip(compute, 0, 1), np.clip(memory, 0, 1), np.clip(sm, 0, 1)
