"""Throughput accounting (requests/s for inference, iterations/s for training)."""

from __future__ import annotations

from typing import Iterable

from repro.workloads.clients import RequestRecord

__all__ = ["throughput", "completed_in_window"]


def completed_in_window(records: Iterable[RequestRecord], start: float,
                        end: float) -> int:
    """Requests that *completed* inside [start, end)."""
    if end <= start:
        raise ValueError("window end must exceed start")
    return sum(1 for r in records if start <= r.end < end)


def throughput(records: Iterable[RequestRecord], start: float, end: float) -> float:
    """Completions per second over [start, end)."""
    return completed_in_window(records, start, end) / (end - start)
