"""Metrics: latency digests, throughput, utilization aggregation, cost
model, and the error/availability ledger for fault-injection runs."""

from .availability import ClientLedger, ErrorLedger
from .cost import cost_savings, makespan_savings
from .latency import LatencySummary, percentile, summarize_latencies
from .throughput import completed_in_window, throughput
from .utilization import UtilizationAverages, average_utilization, binned_trace

__all__ = [
    "ClientLedger",
    "ErrorLedger",
    "LatencySummary",
    "summarize_latencies",
    "percentile",
    "throughput",
    "completed_in_window",
    "UtilizationAverages",
    "average_utilization",
    "binned_trace",
    "cost_savings",
    "makespan_savings",
]
