"""Metrics: latency digests, throughput, utilization aggregation, cost model."""

from .cost import cost_savings, makespan_savings
from .latency import LatencySummary, percentile, summarize_latencies
from .throughput import completed_in_window, throughput
from .utilization import UtilizationAverages, average_utilization, binned_trace

__all__ = [
    "LatencySummary",
    "summarize_latencies",
    "percentile",
    "throughput",
    "completed_in_window",
    "UtilizationAverages",
    "average_utilization",
    "binned_trace",
    "cost_savings",
    "makespan_savings",
]
