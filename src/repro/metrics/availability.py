"""Availability and error accounting for fault-injection runs.

The :class:`ErrorLedger` is the single sink for everything that goes
wrong in a run: per-client error counts by CUDA error code, requests
served vs failed, restart counts, and time-to-recover samples (from a
client going down to its replacement serving again).  Serialization is
deliberately canonical — sorted keys, rounded times — so two runs of
the same seeded fault plan produce byte-identical ledgers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["ClientLedger", "ErrorLedger"]

# Times are rounded before storage so float noise from event ordering
# can never leak into the serialized ledger.
_TIME_DECIMALS = 9


def _round(t: float) -> float:
    return round(float(t), _TIME_DECIMALS)


@dataclass
class ClientLedger:
    """One client's error/availability record."""

    served: int = 0
    failed: int = 0
    #: Requests dropped by overload protection (deadline expired before
    #: any GPU work was issued) — neither served nor failed.
    shed: int = 0
    restarts: int = 0
    errors: Dict[str, int] = field(default_factory=dict)
    recovery_times: List[float] = field(default_factory=list)
    down_since: Optional[float] = None
    downtime: float = 0.0
    #: Run horizon in simulated seconds; set via ErrorLedger.finalize so
    #: uptime_fraction can be serialized (None = unknown).
    horizon: Optional[float] = None

    def uptime_fraction(self, now: Optional[float] = None) -> Optional[float]:
        """Fraction of the horizon this client was not down (None when
        no horizon was recorded).  An interval still open at the end of
        the run counts as downtime up to ``now`` (default: horizon)."""
        if self.horizon is None or self.horizon <= 0:
            return None
        down = self.downtime
        if self.down_since is not None:
            end = _round(now if now is not None else self.horizon)
            down += max(0.0, end - self.down_since)
        return _round(max(0.0, 1.0 - down / self.horizon))

    def time_to_recover(self) -> Optional[float]:
        """Mean observed down-to-serving-again delay (None = no sample)."""
        if not self.recovery_times:
            return None
        return _round(sum(self.recovery_times) / len(self.recovery_times))

    def to_dict(self) -> dict:
        return {
            "served": self.served,
            "failed": self.failed,
            "shed": self.shed,
            "restarts": self.restarts,
            "errors": dict(sorted(self.errors.items())),
            "recovery_times": [_round(t) for t in self.recovery_times],
            "downtime": _round(self.downtime),
            "uptime_fraction": self.uptime_fraction(),
            "time_to_recover": self.time_to_recover(),
        }


class ErrorLedger:
    """Run-wide error, failure, and recovery accounting."""

    def __init__(self):
        self._clients: Dict[str, ClientLedger] = {}
        self.injections: List[dict] = []

    def client(self, name: str) -> ClientLedger:
        if name not in self._clients:
            self._clients[name] = ClientLedger()
        return self._clients[name]

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_error(self, name: str, code: str, time: float) -> None:
        entry = self.client(name)
        entry.errors[code] = entry.errors.get(code, 0) + 1

    def record_served(self, name: str) -> None:
        self.client(name).served += 1

    def record_failed(self, name: str) -> None:
        self.client(name).failed += 1

    def record_shed(self, name: str) -> None:
        self.client(name).shed += 1

    def record_down(self, name: str, time: float) -> None:
        entry = self.client(name)
        if entry.down_since is None:
            entry.down_since = _round(time)

    def record_recovered(self, name: str, time: float) -> None:
        """The client (or its replacement) is serving again."""
        entry = self.client(name)
        entry.restarts += 1
        if entry.down_since is not None:
            delta = _round(time) - entry.down_since
            entry.recovery_times.append(_round(delta))
            entry.downtime = _round(entry.downtime + delta)
            entry.down_since = None

    def record_injection(self, entry: dict) -> None:
        self.injections.append(dict(entry))

    def finalize(self, horizon: float) -> None:
        """Stamp the run horizon on every client entry so serialized
        ledgers carry uptime fractions.  Idempotent; call at run end."""
        for entry in self._clients.values():
            entry.horizon = horizon

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def total_errors(self) -> int:
        return sum(sum(c.errors.values()) for c in self._clients.values())

    def availability(self, name: str, horizon: float,
                     now: Optional[float] = None) -> float:
        """Fraction of the horizon the client was not down."""
        if horizon <= 0:
            return 1.0
        entry = self.client(name)
        down = entry.downtime
        if entry.down_since is not None:
            down += _round(now if now is not None else horizon) - entry.down_since
        return max(0.0, 1.0 - down / horizon)

    def to_dict(self) -> dict:
        return {
            "clients": {name: entry.to_dict()
                        for name, entry in sorted(self._clients.items())},
            "injections": self.injections,
            "total_errors": self.total_errors(),
        }

    def to_json(self) -> str:
        """Canonical serialization — byte-identical across identical runs."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def format_table(self) -> str:
        header = (f"{'client':<14} {'served':>7} {'failed':>7} {'shed':>6} "
                  f"{'restarts':>8} {'errors':>7}  error codes")
        lines = [header, "-" * len(header)]
        for name, entry in sorted(self._clients.items()):
            codes = ",".join(f"{code}x{n}"
                             for code, n in sorted(entry.errors.items()))
            lines.append(
                f"{name:<14} {entry.served:>7} {entry.failed:>7} "
                f"{entry.shed:>6} "
                f"{entry.restarts:>8} {sum(entry.errors.values()):>7}  "
                f"{codes or '-'}"
            )
        return "\n".join(lines)
