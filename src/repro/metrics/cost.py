"""GPU cost model (paper §6.2, Table 4).

    cost_savings = (N_dedicated_GPUs * JCT_dedicated)
                 / (N_collocated_GPUs * JCT_collocated)
                 = N_dedicated * Throughput_collocated / Throughput_dedicated

for the throughput-bound (best-effort) job, assuming the high-priority
job keeps its performance — which is what Orion's policy enforces.
"""

from __future__ import annotations

__all__ = ["cost_savings", "makespan_savings"]


def cost_savings(dedicated_throughput: float, collocated_throughput: float,
                 dedicated_gpus: int = 2, collocated_gpus: int = 1) -> float:
    """Table 4's formula; >1 means collocation is cheaper."""
    if dedicated_throughput <= 0 or collocated_throughput <= 0:
        raise ValueError("throughputs must be positive")
    if dedicated_gpus < 1 or collocated_gpus < 1:
        raise ValueError("GPU counts must be >= 1")
    return (dedicated_gpus * collocated_throughput) / (
        collocated_gpus * dedicated_throughput
    )


def makespan_savings(sequential_makespan: float, collocated_makespan: float) -> float:
    """Train-train use case: same GPU held for less total time (§6.2.2)."""
    if sequential_makespan <= 0 or collocated_makespan <= 0:
        raise ValueError("makespans must be positive")
    return sequential_makespan / collocated_makespan
