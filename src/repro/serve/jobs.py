"""Job objects, lifecycle state machine, and the bounded pending queue.

A submitted scenario becomes a :class:`Job` that moves through

    QUEUED -> DISPATCHED -> RUNNING -> {COMPLETED, FAILED, CANCELED,
                                        INTERRUPTED}

where QUEUED and DISPATCHED jobs can also jump straight to CANCELED
(cancel verb, or shutdown draining the queue), and QUEUED jobs can
jump straight to FAILED (admission-time failure: a journaled spec
that can no longer be rebuilt at recovery).  Two recovery edges
exist on top of the happy path: DISPATCHED/RUNNING -> QUEUED is a
*requeue* (crash recovery under ``--recover=requeue``, or the watchdog
re-admitting a hung job), and DISPATCHED/RUNNING -> INTERRUPTED is the
terminal verdict under ``--recover=fail`` when a crash caught the job
mid-flight.  Transitions are validated — an illegal move raises
:class:`LifecycleError` rather than silently corrupting state, which
is what keeps the daemon's accounting exact under concurrent cancels,
watchdog requeues, and journal replay.

The :class:`PendingQueue` is the PR-2 overload idiom applied to jobs
instead of kernels: a bounded priority queue that *rejects at
admission* when full (``queue_full``) instead of buffering unbounded
work.  Priority is a submit-time integer (higher first); ties dequeue
FIFO by submission sequence.  Cancels are lazy (the heap entry is
skipped on pop), with the stale fraction compacted away once it
crosses a threshold so cancel churn cannot grow the heap unboundedly.
"""

from __future__ import annotations

import threading
from heapq import heapify, heappop, heappush
from itertools import count
from typing import Any, Dict, List, Optional

from repro.experiments.scenario import Scenario

__all__ = [
    "QUEUED", "DISPATCHED", "RUNNING", "COMPLETED", "FAILED", "CANCELED",
    "INTERRUPTED",
    "TERMINAL_STATES", "JOB_STATES",
    "LifecycleError", "QueueFull",
    "Job", "PendingQueue",
]

QUEUED = "QUEUED"
DISPATCHED = "DISPATCHED"
RUNNING = "RUNNING"
COMPLETED = "COMPLETED"
FAILED = "FAILED"
CANCELED = "CANCELED"
INTERRUPTED = "INTERRUPTED"

JOB_STATES = (QUEUED, DISPATCHED, RUNNING, COMPLETED, FAILED, CANCELED,
              INTERRUPTED)
TERMINAL_STATES = frozenset((COMPLETED, FAILED, CANCELED, INTERRUPTED))

_ALLOWED = {
    QUEUED: frozenset((DISPATCHED, CANCELED, FAILED)),
    DISPATCHED: frozenset((RUNNING, CANCELED, QUEUED, INTERRUPTED)),
    RUNNING: frozenset((COMPLETED, FAILED, CANCELED, QUEUED, INTERRUPTED)),
    COMPLETED: frozenset(),
    FAILED: frozenset(),
    CANCELED: frozenset(),
    INTERRUPTED: frozenset(),
}


class LifecycleError(RuntimeError):
    """An illegal job state transition."""


class QueueFull(RuntimeError):
    """The bounded pending queue rejected a submission."""


class Job:
    """One submitted scenario run and its full lifecycle record.

    ``spec`` is the JSON-safe submission record (name/kind, seed,
    duration, overrides) echoed back on status; ``scenario`` is the
    built :class:`Scenario` the worker executes.  ``result_json`` is
    the *exact* canonical string ``run(scenario).to_json()`` produced —
    stored verbatim so the daemon's determinism contract (byte-identical
    to a direct run) cannot be eroded by a re-serialization.
    """

    __slots__ = ("job_id", "scenario", "spec", "priority", "state",
                 "error", "result_json", "events_processed", "sim_time",
                 "cancel_requested", "transitions", "_lock",
                 "key", "attempt", "abort_requested", "last_heartbeat",
                 "hang_detected_at", "recovered")

    def __init__(self, job_id: str, scenario: Optional[Scenario],
                 spec: Dict[str, Any],
                 priority: int = 0, *, clock: float = 0.0,
                 key: Optional[str] = None):
        self.job_id = job_id
        self.scenario = scenario
        self.spec = spec
        self.priority = int(priority)
        self.key = key
        self.state = QUEUED
        self.error: Optional[str] = None
        self.result_json: Optional[str] = None
        self.events_processed: Optional[int] = None
        self.sim_time: Optional[float] = None
        self.cancel_requested = False
        #: Cooperative watchdog abort (hang, not a client cancel) — the
        #: worker requeues instead of CANCELING when this fires.
        self.abort_requested = False
        #: 1-based execution attempt; bumped on every requeue so a
        #: wedged worker's late outcome is recognizably stale.
        self.attempt = 1
        #: time.monotonic() of the last engine abort-hook poll (the
        #: run's heartbeat); None while not running.
        self.last_heartbeat: Optional[float] = None
        self.hang_detected_at: Optional[float] = None
        #: True when this Job was rebuilt from the journal at startup.
        self.recovered = False
        # (state, wall-clock seconds) pairs, QUEUED first.
        self.transitions: List[List[Any]] = [[QUEUED, clock]]
        self._lock = threading.Lock()

    @classmethod
    def restore(cls, record: Dict[str, Any],
                scenario: Optional[Scenario]) -> "Job":
        """Rebuild a Job from a journal-replay record (see
        :mod:`repro.serve.journal`) — state, transitions, error, and
        the byte-exact ``result_json`` are restored verbatim."""
        job = cls(record["id"], scenario, record["spec"],
                  priority=record.get("priority", 0),
                  key=record.get("key"))
        job.state = record["state"]
        job.error = record.get("error")
        job.result_json = record.get("result_json")
        job.events_processed = record.get("events_processed")
        job.sim_time = record.get("sim_time")
        job.attempt = record.get("attempt", 1)
        job.transitions = [list(t) for t in record.get("transitions", [])] \
            or [[QUEUED, 0.0]]
        job.recovered = True
        return job

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, state: str, *, clock: float = 0.0,
                   error: Optional[str] = None) -> None:
        """Move to ``state``; raises :class:`LifecycleError` if illegal."""
        with self._lock:
            if state not in _ALLOWED[self.state]:
                raise LifecycleError(
                    f"{self.job_id}: illegal transition "
                    f"{self.state} -> {state}")
            self.state = state
            if error is not None:
                self.error = error
            self.transitions.append([state, clock])

    def try_transition(self, state: str, *, clock: float = 0.0,
                       error: Optional[str] = None) -> bool:
        """Like :meth:`transition` but returns False instead of raising
        when the move is illegal (lost races with a concurrent cancel)."""
        with self._lock:
            if state not in _ALLOWED[self.state]:
                return False
            self.state = state
            if error is not None:
                self.error = error
            self.transitions.append([state, clock])
            return True

    def describe(self) -> Dict[str, Any]:
        """JSON-safe record for status/history responses."""
        with self._lock:
            return {
                "id": self.job_id,
                "state": self.state,
                "priority": self.priority,
                "spec": self.spec,
                "seed": (self.scenario.seed if self.scenario is not None
                         else self.spec.get("seed",
                                            (self.spec.get("params") or {})
                                            .get("seed", 0))),
                "key": self.key,
                "attempt": self.attempt,
                "recovered": self.recovered,
                "cancel_requested": self.cancel_requested,
                "error": self.error,
                "events_processed": self.events_processed,
                "sim_time": self.sim_time,
                "has_result": self.result_json is not None,
                "transitions": [list(t) for t in self.transitions],
            }


class PendingQueue:
    """Bounded, thread-safe priority queue of QUEUED jobs.

    ``push`` raises :class:`QueueFull` past ``max_pending`` —
    reject-when-full, never block-the-submitter (the daemon must keep
    answering status requests under overload).  ``pop`` blocks up to
    ``timeout`` so worker threads can poll their stop flag.
    """

    #: Compact the heap once at least this many lazily-canceled
    #: entries are stale AND they are at least half the heap — keeps
    #: heap size O(live) under cancel churn without paying a rebuild
    #: on every cancel.
    COMPACT_MIN_STALE = 8

    def __init__(self, max_pending: int):
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        self.max_pending = max_pending
        self._heap: List[tuple] = []
        self._removed: set = set()
        self._seq = count()
        self._cond = threading.Condition()

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap) - len(self._removed)

    @property
    def heap_size(self) -> int:
        """Raw heap length including stale lazily-canceled entries
        (bounded-churn invariant tested in tests/test_serve.py)."""
        with self._cond:
            return len(self._heap)

    def push(self, job: Job, force: bool = False) -> None:
        """Admit a job; raises :class:`QueueFull` past ``max_pending``
        unless ``force`` — requeues and crash recovery must never drop
        an already-accepted job, so they bypass the admission bound."""
        with self._cond:
            if not force and \
                    len(self._heap) - len(self._removed) >= self.max_pending:
                raise QueueFull(
                    f"pending queue is full ({self.max_pending} jobs)")
            heappush(self._heap, (-job.priority, next(self._seq), job))
            self._cond.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Highest-priority job, or None when empty after ``timeout``."""
        with self._cond:
            if not self._live_locked():
                self._cond.wait(timeout)
            return self._pop_locked()

    def remove(self, job_id: str) -> Optional[Job]:
        """Pull a specific job out of the queue (cancel path).  Lazy,
        like the engine calendar: the heap entry is skipped on pop."""
        with self._cond:
            for _, _, job in self._heap:
                if job.job_id == job_id and job.job_id not in self._removed:
                    self._removed.add(job.job_id)
                    self._compact_locked()
                    return job
            return None

    def _compact_locked(self) -> None:
        if len(self._removed) < self.COMPACT_MIN_STALE \
                or 2 * len(self._removed) < len(self._heap):
            return
        self._heap = [entry for entry in self._heap
                      if entry[2].job_id not in self._removed]
        heapify(self._heap)
        self._removed.clear()

    def drain(self) -> List[Job]:
        """Empty the queue, returning the jobs in dequeue order
        (shutdown path)."""
        drained = []
        with self._cond:
            while True:
                job = self._pop_locked()
                if job is None:
                    return drained
                drained.append(job)

    def _live_locked(self) -> bool:
        return len(self._heap) - len(self._removed) > 0

    def _pop_locked(self) -> Optional[Job]:
        while self._heap:
            _, _, job = heappop(self._heap)
            if job.job_id in self._removed:
                self._removed.discard(job.job_id)
                continue
            return job
        return None
