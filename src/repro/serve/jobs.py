"""Job objects, lifecycle state machine, and the bounded pending queue.

A submitted scenario becomes a :class:`Job` that moves through

    QUEUED -> DISPATCHED -> RUNNING -> {COMPLETED, FAILED, CANCELED}

where QUEUED and DISPATCHED jobs can also jump straight to CANCELED
(cancel verb, or shutdown draining the queue).  Transitions are
validated — an illegal move raises :class:`LifecycleError` rather than
silently corrupting state, which is what keeps the daemon's accounting
exact under concurrent cancels.

The :class:`PendingQueue` is the PR-2 overload idiom applied to jobs
instead of kernels: a bounded priority queue that *rejects at
admission* when full (``queue_full``) instead of buffering unbounded
work.  Priority is a submit-time integer (higher first); ties dequeue
FIFO by submission sequence.
"""

from __future__ import annotations

import threading
from heapq import heappop, heappush
from itertools import count
from typing import Any, Dict, List, Optional

from repro.experiments.scenario import Scenario

__all__ = [
    "QUEUED", "DISPATCHED", "RUNNING", "COMPLETED", "FAILED", "CANCELED",
    "TERMINAL_STATES", "JOB_STATES",
    "LifecycleError", "QueueFull",
    "Job", "PendingQueue",
]

QUEUED = "QUEUED"
DISPATCHED = "DISPATCHED"
RUNNING = "RUNNING"
COMPLETED = "COMPLETED"
FAILED = "FAILED"
CANCELED = "CANCELED"

JOB_STATES = (QUEUED, DISPATCHED, RUNNING, COMPLETED, FAILED, CANCELED)
TERMINAL_STATES = frozenset((COMPLETED, FAILED, CANCELED))

_ALLOWED = {
    QUEUED: frozenset((DISPATCHED, CANCELED)),
    DISPATCHED: frozenset((RUNNING, CANCELED)),
    RUNNING: frozenset((COMPLETED, FAILED, CANCELED)),
    COMPLETED: frozenset(),
    FAILED: frozenset(),
    CANCELED: frozenset(),
}


class LifecycleError(RuntimeError):
    """An illegal job state transition."""


class QueueFull(RuntimeError):
    """The bounded pending queue rejected a submission."""


class Job:
    """One submitted scenario run and its full lifecycle record.

    ``spec`` is the JSON-safe submission record (name/kind, seed,
    duration, overrides) echoed back on status; ``scenario`` is the
    built :class:`Scenario` the worker executes.  ``result_json`` is
    the *exact* canonical string ``run(scenario).to_json()`` produced —
    stored verbatim so the daemon's determinism contract (byte-identical
    to a direct run) cannot be eroded by a re-serialization.
    """

    __slots__ = ("job_id", "scenario", "spec", "priority", "state",
                 "error", "result_json", "events_processed", "sim_time",
                 "cancel_requested", "transitions", "_lock")

    def __init__(self, job_id: str, scenario: Scenario, spec: Dict[str, Any],
                 priority: int = 0, *, clock: float = 0.0):
        self.job_id = job_id
        self.scenario = scenario
        self.spec = spec
        self.priority = int(priority)
        self.state = QUEUED
        self.error: Optional[str] = None
        self.result_json: Optional[str] = None
        self.events_processed: Optional[int] = None
        self.sim_time: Optional[float] = None
        self.cancel_requested = False
        # (state, wall-clock seconds) pairs, QUEUED first.
        self.transitions: List[List[Any]] = [[QUEUED, clock]]
        self._lock = threading.Lock()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, state: str, *, clock: float = 0.0,
                   error: Optional[str] = None) -> None:
        """Move to ``state``; raises :class:`LifecycleError` if illegal."""
        with self._lock:
            if state not in _ALLOWED[self.state]:
                raise LifecycleError(
                    f"{self.job_id}: illegal transition "
                    f"{self.state} -> {state}")
            self.state = state
            if error is not None:
                self.error = error
            self.transitions.append([state, clock])

    def try_transition(self, state: str, *, clock: float = 0.0,
                       error: Optional[str] = None) -> bool:
        """Like :meth:`transition` but returns False instead of raising
        when the move is illegal (lost races with a concurrent cancel)."""
        with self._lock:
            if state not in _ALLOWED[self.state]:
                return False
            self.state = state
            if error is not None:
                self.error = error
            self.transitions.append([state, clock])
            return True

    def describe(self) -> Dict[str, Any]:
        """JSON-safe record for status/history responses."""
        with self._lock:
            return {
                "id": self.job_id,
                "state": self.state,
                "priority": self.priority,
                "spec": self.spec,
                "seed": self.scenario.seed,
                "cancel_requested": self.cancel_requested,
                "error": self.error,
                "events_processed": self.events_processed,
                "sim_time": self.sim_time,
                "has_result": self.result_json is not None,
                "transitions": [list(t) for t in self.transitions],
            }


class PendingQueue:
    """Bounded, thread-safe priority queue of QUEUED jobs.

    ``push`` raises :class:`QueueFull` past ``max_pending`` —
    reject-when-full, never block-the-submitter (the daemon must keep
    answering status requests under overload).  ``pop`` blocks up to
    ``timeout`` so worker threads can poll their stop flag.
    """

    def __init__(self, max_pending: int):
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        self.max_pending = max_pending
        self._heap: List[tuple] = []
        self._removed: set = set()
        self._seq = count()
        self._cond = threading.Condition()

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap) - len(self._removed)

    def push(self, job: Job) -> None:
        with self._cond:
            if len(self._heap) - len(self._removed) >= self.max_pending:
                raise QueueFull(
                    f"pending queue is full ({self.max_pending} jobs)")
            heappush(self._heap, (-job.priority, next(self._seq), job))
            self._cond.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Highest-priority job, or None when empty after ``timeout``."""
        with self._cond:
            if not self._live_locked():
                self._cond.wait(timeout)
            return self._pop_locked()

    def remove(self, job_id: str) -> Optional[Job]:
        """Pull a specific job out of the queue (cancel path).  Lazy,
        like the engine calendar: the heap entry is skipped on pop."""
        with self._cond:
            for _, _, job in self._heap:
                if job.job_id == job_id and job.job_id not in self._removed:
                    self._removed.add(job.job_id)
                    return job
            return None

    def drain(self) -> List[Job]:
        """Empty the queue, returning the jobs in dequeue order
        (shutdown path)."""
        drained = []
        with self._cond:
            while True:
                job = self._pop_locked()
                if job is None:
                    return drained
                drained.append(job)

    def _live_locked(self) -> bool:
        return len(self._heap) - len(self._removed) > 0

    def _pop_locked(self) -> Optional[Job]:
        while self._heap:
            _, _, job = heappop(self._heap)
            if job.job_id in self._removed:
                self._removed.discard(job.job_id)
                continue
            return job
        return None
